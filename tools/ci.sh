#!/usr/bin/env bash
# Prism5G CI driver: builds and tests the tree in the two configurations
# every change must keep green:
#
#   1. Release with -Werror            (fast, what benchmarks run as)
#   2. Debug + ASan + UBSan, -Werror   (memory/UB errors are fatal via
#                                       -fno-sanitize-recover=all, and the
#                                       CA5G_DCHECK contract family is on)
#   3. Debug + TSan, -Werror           (the `parallel` label: thread pool,
#                                       fleet sweep, thread-count
#                                       determinism — see docs/TESTING.md)
#
# Between them, an observability smoke runs the `ca5g quickstart`
# pipeline and asserts the exported metrics/report JSON is valid and
# covers the instrumented layers (see docs/OBSERVABILITY.md), and a
# serving smoke replays a trace through the in-process PredictionServer
# via `ca5g loadgen` and asserts completions with zero errors (see
# docs/SERVING.md). An inference fast-path smoke then proves the
# compiled plans are bit-identical to the autograd forward
# (`bench_infer_fastpath --equality-only`).
#
# Parallel tests that fail are retried once via `ctest --rerun-failed`;
# a pass on retry is reported LOUDLY as flaky and still fails the run —
# a nondeterministic parallel test is a bug, not noise.
#
# Usage:
#   tools/ci.sh            full suite in all configurations
#   tools/ci.sh --fast     full Release suite, but only the labelled
#                          `lint` + `sanitize` smoke subset under ASan
#                          (the TSan `parallel` stage always runs: it is
#                          already a small labelled subset)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "+ $*" >&2; "$@"; }

# --- 1. Release + WERROR ----------------------------------------------------
run cmake -B build-ci-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPRISM5G_WERROR=ON
run cmake --build build-ci-release -j "$JOBS"
run ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

# --- 1b. Observability smoke: quickstart telemetry export -------------------
# One process through sim → trace round-trip → train → eval, exporting the
# metrics snapshot and run report; assert the JSON parses and the layers
# that must be instrumented actually reported.
OBS_DIR=$(mktemp -d)
trap 'rm -rf "$OBS_DIR"' EXIT
run ./build-ci-release/tools/ca5g quickstart --seed 7 \
  --metrics-out "$OBS_DIR/metrics.json" --report-out "$OBS_DIR/report.json"
run python3 - "$OBS_DIR" <<'EOF'
import json, sys
d = sys.argv[1]
m = json.load(open(f"{d}/metrics.json"))
assert m["counters"]["sim.steps_total"] > 0, "sim did not count steps"
hist = m["histograms"]["predictor.inference_ns"]
assert hist["count"] > 0, "predictor inference histogram is empty"
layers = {k.split(".")[0] for s in ("counters", "gauges", "histograms") for k in m[s]}
assert len(layers) >= 5, f"expected >=5 instrumented layers, got {sorted(layers)}"
r = json.load(open(f"{d}/report.json"))
assert r["run"] == "quickstart" and r["wall_s"] > 0 and "kpis" in r
events = [json.loads(l) for l in open(f"{d}/report.json.events.jsonl")]
assert events, "run report emitted no events"
print(f"obs smoke OK: layers={sorted(layers)}, events={len(events)}")
EOF

# --- 1c. Serving smoke: trace-replay loadgen against in-process server ------
# Two seconds of closed-loop replay through the micro-batching
# PredictionServer must complete requests without errors and export a
# parseable serve.* metrics snapshot (see docs/SERVING.md).
run ./build-ci-release/tools/ca5g loadgen --duration 2 --speed 200 --seed 7 \
  --closed-loop 1 --metrics-out "$OBS_DIR/serve_metrics.json"
run python3 - "$OBS_DIR" <<'EOF'
import json, sys
d = sys.argv[1]
m = json.load(open(f"{d}/serve_metrics.json"))
c = m["counters"]
assert c.get("serve.completed_total", 0) > 0, "loadgen completed no requests"
assert c.get("serve.errors_total", 0) == 0, "server reported prediction errors"
assert c.get("serve.loadgen_errors_total", 0) == 0, "loadgen saw bad horizons"
assert c["serve.requests_total"] >= c["serve.completed_total"]
assert m["histograms"]["serve.request_latency_ns"]["count"] > 0
print(f"serve smoke OK: completed={c['serve.completed_total']}, "
      f"batches={c.get('serve.batches_total', 0)}")
EOF

# --- 1d. Inference fast-path smoke: compiled plans must match the graph -----
# Bit-identity between the compiled inference plans and the autograd
# forward for every deep predictor, without the timing loops (the ≥3x
# speedup gate runs as the bench_infer_fastpath_smoke ctest in stage 1).
run ./build-ci-release/bench/bench_infer_fastpath --equality-only

# --- 2. ASan + UBSan (fatal on first report) --------------------------------
run cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPRISM5G_WERROR=ON \
  "-DPRISM5G_SANITIZE=address;undefined"
run cmake --build build-ci-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  # Labelled smoke subset: contract layer, 3GPP tables, tensor autodiff,
  # trace schema, scheduler/CA manager — the layers where memory errors live.
  run ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" -L 'lint|sanitize'
else
  run ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"
fi

# --- 3. TSan on the parallel pipeline ---------------------------------------
# The work-stealing pool, fleet sweep, and thread-count-determinism tests
# under ThreadSanitizer: any data race in the offline parallel pipeline
# is fatal here. A failure is retried once so a flaky (racy-but-rarely)
# test surfaces as FLAKY instead of hiding behind a green re-run; either
# way the stage fails.
run cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPRISM5G_WERROR=ON \
  -DPRISM5G_SANITIZE=thread
run cmake --build build-ci-tsan -j "$JOBS"
if ! run ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" -L parallel; then
  echo "ci.sh: parallel tests FAILED under TSan; re-running failures once..." >&2
  if run ctest --test-dir build-ci-tsan --rerun-failed --output-on-failure; then
    echo "==================================================================" >&2
    echo "ci.sh: FLAKY parallel tests: failed once, then passed on re-run." >&2
    echo "This is nondeterminism in the parallel pipeline — fix it, do not" >&2
    echo "retry it away. Failing the run." >&2
    echo "==================================================================" >&2
  else
    echo "ci.sh: parallel tests fail deterministically under TSan" >&2
  fi
  exit 1
fi

echo "ci.sh: all configurations green"
