#!/usr/bin/env bash
# Prism5G CI driver: builds and tests the tree in the two configurations
# every change must keep green:
#
#   1. Release with -Werror            (fast, what benchmarks run as)
#   2. Debug + ASan + UBSan, -Werror   (memory/UB errors are fatal via
#                                       -fno-sanitize-recover=all, and the
#                                       CA5G_DCHECK contract family is on)
#
# Usage:
#   tools/ci.sh            full suite in both configurations
#   tools/ci.sh --fast     full Release suite, but only the labelled
#                          `lint` + `sanitize` smoke subset under ASan
#                          (keeps wall-clock near a single plain run)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "+ $*" >&2; "$@"; }

# --- 1. Release + WERROR ----------------------------------------------------
run cmake -B build-ci-release -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPRISM5G_WERROR=ON
run cmake --build build-ci-release -j "$JOBS"
run ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

# --- 2. ASan + UBSan (fatal on first report) --------------------------------
run cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPRISM5G_WERROR=ON \
  "-DPRISM5G_SANITIZE=address;undefined"
run cmake --build build-ci-asan -j "$JOBS"
if [[ "$FAST" == 1 ]]; then
  # Labelled smoke subset: contract layer, 3GPP tables, tensor autodiff,
  # trace schema, scheduler/CA manager — the layers where memory errors live.
  run ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" -L 'lint|sanitize'
else
  run ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"
fi

echo "ci.sh: all configurations green"
