// ca5g — command-line front end to the library.
//
//   ca5g simulate  --op OpZ --env urban --mobility driving
//                  --duration 60 --seed 7 [--rat 4g|5g] [--out trace.csv]
//   ca5g census    trace.csv
//   ca5g evaluate  --op OpZ --mobility driving --scale short
//                  --model Prism5G [--save model.bin]
//   ca5g qoe       --app vivo|abr --model Prism5G
//   ca5g quickstart [--seed N]       (sim → trace I/O → train → evaluate)
//   ca5g serve     --model HarmonicMean --ues 8 --workers 4 [--speed X]
//   ca5g loadgen   --speed 200 --duration 2 [--closed-loop 1] [--trace F]
//   ca5g sweep     --ues 8 --duration 10 --threads 0 [--seed N]
//
// Every subcommand accepts --metrics-out FILE (metrics registry JSON) and
// --report-out FILE (run summary JSON + FILE.events.jsonl timeline).
// Every subcommand is deterministic for a given --seed (serve/loadgen:
// the offered request stream is; completion timing is wall-clock).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "apps/abr.hpp"
#include "apps/vivo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_io.hpp"

namespace {

using namespace ca5g;

/// Minimal --key value argument parser (flags require a value).
std::map<std::string, std::string> parse_args(int argc, char** argv, int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << key << "\n";
      std::exit(2);
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

ran::OperatorId parse_op(const std::string& name) {
  if (name == "OpX") return ran::OperatorId::kOpX;
  if (name == "OpY") return ran::OperatorId::kOpY;
  if (name == "OpZ") return ran::OperatorId::kOpZ;
  std::cerr << "unknown operator: " << name << " (use OpX/OpY/OpZ)\n";
  std::exit(2);
}

radio::Environment parse_env(const std::string& name) {
  if (name == "urban") return radio::Environment::kUrbanMacro;
  if (name == "suburban") return radio::Environment::kSuburbanMacro;
  if (name == "beltway" || name == "highway") return radio::Environment::kHighway;
  if (name == "indoor") return radio::Environment::kIndoor;
  std::cerr << "unknown environment: " << name << "\n";
  std::exit(2);
}

sim::Mobility parse_mobility(const std::string& name) {
  if (name == "stationary") return sim::Mobility::kStationary;
  if (name == "walking") return sim::Mobility::kWalking;
  if (name == "driving") return sim::Mobility::kDriving;
  std::cerr << "unknown mobility: " << name << "\n";
  std::exit(2);
}

/// Write --metrics-out / --report-out files if requested. Called at the
/// end of every subcommand so any run can export its telemetry.
void export_telemetry(const std::map<std::string, std::string>& args,
                      const obs::RunReport& report) {
  const auto metrics_path = get(args, "metrics-out", "");
  const auto report_path = get(args, "report-out", "");
  if (metrics_path.empty() && report_path.empty()) return;

  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out.good()) {
      std::cerr << "cannot open --metrics-out path: " << metrics_path << "\n";
      std::exit(1);
    }
    out << obs::to_json(snapshot);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (!report_path.empty()) {
    report.write_summary(report_path, &snapshot);
    report.write_events(obs::RunReport::events_path_for(report_path));
    std::cout << "run report written to " << report_path << "\n";
  }
}

void print_trace_summary(const sim::Trace& trace) {
  const auto agg = trace.aggregate_series();
  const auto ccs = trace.cc_count_series();
  std::size_t events = 0;
  for (const auto& s : trace.samples) events += s.events.size();
  common::TextTable table("Trace summary");
  table.set_header({"Metric", "Value"});
  table.add_row({"samples", std::to_string(trace.samples.size())});
  table.add_row({"step (s)", common::TextTable::num(trace.step_s, 3)});
  table.add_row({"tput mean (Mbps)", common::TextTable::num(common::mean(agg), 1)});
  table.add_row({"tput std (Mbps)", common::TextTable::num(common::stddev(agg), 1)});
  table.add_row({"tput peak (Mbps)", common::TextTable::num(common::max_value(agg), 1)});
  table.add_row({"CC count mean", common::TextTable::num(common::mean(ccs), 2)});
  table.add_row({"CC count max", common::TextTable::num(common::max_value(ccs), 0)});
  table.add_row({"RRC events", std::to_string(events)});
  std::cout << table;
}

int cmd_simulate(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  sim::ScenarioConfig config;
  config.op = parse_op(get(args, "op", "OpZ"));
  config.env = parse_env(get(args, "env", "urban"));
  config.ue_indoor = config.env == radio::Environment::kIndoor;
  config.mobility = parse_mobility(get(args, "mobility", "driving"));
  config.duration_s = std::stod(get(args, "duration", "60"));
  config.step_s = std::stod(get(args, "step", "0.01"));
  config.seed = std::stoull(get(args, "seed", "7"));
  if (get(args, "rat", "5g") == "4g") {
    config.rat = phy::Rat::kLte;
    config.cc_slots = 5;
  }

  obs::RunReport report("simulate");
  report.meta("op", get(args, "op", "OpZ"));
  report.meta("env", get(args, "env", "urban"));
  report.meta("mobility", get(args, "mobility", "driving"));
  report.meta("seed", static_cast<double>(config.seed));
  report.meta("duration_s", config.duration_s);
  report.meta("step_s", config.step_s);

  report.event("phase", "simulate");
  const auto trace = sim::run_scenario(config);
  print_trace_summary(trace);
  report.kpi("samples", static_cast<double>(trace.samples.size()));
  report.kpi("tput_mean_mbps", common::mean(trace.aggregate_series()));
  const auto out = get(args, "out", "");
  if (!out.empty()) {
    report.event("phase", "save-trace");
    sim::save_trace(trace, out);
    std::cout << "\nwrote " << out << "\n";
  }
  export_telemetry(args, report);
  return 0;
}

int cmd_census(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: ca5g census <trace.csv> [--metrics-out F] [--report-out F]\n";
    return 2;
  }
  const auto args = parse_args(argc, argv, 3);
  obs::RunReport report("census");
  report.meta("trace", argv[2]);
  report.event("phase", "load-trace");
  const auto trace = sim::load_trace(argv[2]);
  report.kpi("samples", static_cast<double>(trace.samples.size()));
  print_trace_summary(trace);

  std::map<std::string, std::size_t> combos;
  for (const auto& s : trace.samples) {
    std::string combo;
    for (const auto& cc : s.ccs) {
      if (!cc.active) continue;
      if (!combo.empty()) combo += "+";
      combo += std::string(phy::band_info(cc.band).name);
    }
    if (!combo.empty()) ++combos[combo];
  }
  common::TextTable table("CA combination census");
  table.set_header({"Combination", "Share(%)"});
  for (const auto& [combo, count] : combos)
    table.add_row(
        {combo, common::TextTable::num(100.0 * count / trace.samples.size(), 1)});
  std::cout << table;
  export_telemetry(args, report);
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  eval::SubDatasetId id;
  id.op = parse_op(get(args, "op", "OpZ"));
  id.mobility = parse_mobility(get(args, "mobility", "driving"));
  const auto scale = get(args, "scale", "short") == "long" ? eval::TimeScale::kLong
                                                           : eval::TimeScale::kShort;

  obs::RunReport report("evaluate");
  report.meta("op", get(args, "op", "OpZ"));
  report.meta("mobility", get(args, "mobility", "driving"));
  report.meta("scale", eval::time_scale_name(scale));
  report.meta("seed", std::stod(get(args, "seed", "42")));

  std::cout << "Generating " << id.label() << " dataset at "
            << eval::time_scale_name(scale) << "...\n";
  report.event("phase", "generate-dataset");
  auto gen = eval::GenerationConfig::from_env();
  gen.threads = std::stoul(get(args, "threads", "0"));
  const auto ds = eval::make_ml_dataset(id, scale, gen);
  common::Rng rng(std::stoull(get(args, "seed", "42")));
  const auto split = ds.random_split(0.5, 0.2, rng);

  const auto model_name = get(args, "model", "Prism5G");
  auto model = eval::make_predictor(model_name);
  report.meta("model", model->name());
  std::cout << "Training " << model->name() << " on " << split.train.size()
            << " windows...\n";
  report.event("phase", "train-and-evaluate");
  const double rmse = eval::train_and_evaluate(*model, ds, split);
  report.kpi("test_rmse", rmse);
  std::cout << model->name() << " test RMSE (normalized): "
            << common::TextTable::num(rmse, 4) << "\n";

  const auto save = get(args, "save", "");
  if (!save.empty()) {
    if (auto* deep = dynamic_cast<predictors::DeepPredictor*>(model.get())) {
      deep->save(save);
      std::cout << "model parameters saved to " << save << "\n";
    } else {
      std::cerr << "--save is only supported for deep models\n";
      return 2;
    }
  }
  export_telemetry(args, report);
  return 0;
}

int cmd_qoe(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto app = get(args, "app", "vivo");
  const auto model_name = get(args, "model", "Prism5G");
  const bool abr = app == "abr";

  obs::RunReport report("qoe");
  report.meta("app", app);
  report.meta("model", model_name);
  report.meta("seed", std::stod(get(args, "seed", "42")));

  eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto scale = abr ? eval::TimeScale::kLong : eval::TimeScale::kShort;
  report.event("phase", "generate-dataset");
  auto gen = eval::GenerationConfig::from_env();
  gen.threads = std::stoul(get(args, "threads", "0"));
  const auto ds = eval::make_ml_dataset(id, scale, gen);
  common::Rng rng(std::stoull(get(args, "seed", "42")));
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::cout << "Training " << model_name << "...\n";
  report.event("phase", "train");
  std::shared_ptr<predictors::Predictor> model{eval::make_predictor(model_name)};
  model->fit(ds, split.train, split.val);
  report.event("phase", "session");

  auto session_gen = eval::GenerationConfig::from_env();
  session_gen.seed += 31337;
  session_gen.traces = 1;
  const auto trace = eval::generate_traces(id, scale, session_gen).front();

  traces::DatasetSpec spec;
  apps::ModelEstimator estimator(model, spec, ds.cc_slots(), ds.tput_scale_mbps());
  apps::IdealEstimator ideal;

  if (abr) {
    apps::AbrConfig config;
    config.total_chunks = 40;
    const auto r_model = apps::run_mpc_abr(trace, estimator, config);
    const auto r_ideal = apps::run_mpc_abr(trace, ideal, config);
    common::TextTable table("MPC ABR session QoE");
    table.set_header({"Forecaster", "AvgBitrate(Mbps)", "Stall(s)"});
    table.add_row({model->name(), common::TextTable::num(r_model.avg_bitrate_mbps, 1),
                   common::TextTable::num(r_model.stall_time_s, 1)});
    table.add_row({"Ideal", common::TextTable::num(r_ideal.avg_bitrate_mbps, 1),
                   common::TextTable::num(r_ideal.stall_time_s, 1)});
    std::cout << table;
    report.kpi("avg_bitrate_mbps", r_model.avg_bitrate_mbps);
    report.kpi("stall_time_s", r_model.stall_time_s);
  } else {
    apps::VivoConfig config;
    config.max_bitrate_mbps = 750.0;
    const auto r_model = apps::run_vivo(trace, estimator, config);
    const auto r_ideal = apps::run_vivo(trace, ideal, config);
    common::TextTable table("ViVo session QoE");
    table.set_header({"Estimator", "AvgQuality", "Stall(s)"});
    table.add_row({model->name(), common::TextTable::num(r_model.avg_quality, 2),
                   common::TextTable::num(r_model.stall_time_s, 2)});
    table.add_row({"Ideal", common::TextTable::num(r_ideal.avg_quality, 2),
                   common::TextTable::num(r_ideal.stall_time_s, 2)});
    std::cout << table;
    report.kpi("avg_quality", r_model.avg_quality);
    report.kpi("stall_time_s", r_model.stall_time_s);
  }
  export_telemetry(args, report);
  return 0;
}

// quickstart: one small end-to-end pass that exercises every
// instrumented layer in a single process — simulate, round-trip the
// trace through the CSV codec, window it into a dataset, train a tiny
// LSTM, and evaluate it. This is what `tools/ci.sh` runs in its obs
// stage to assert the exported metrics cover sim/ran/phy/nn/predictor/
// trace_io.
int cmd_quickstart(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto seed = std::stoull(get(args, "seed", "7"));

  obs::RunReport report("quickstart");
  report.meta("seed", static_cast<double>(seed));
  report.meta("scenario", "OpZ urban driving 10s @ 10ms");

  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.env = radio::Environment::kUrbanMacro;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 10.0;
  config.step_s = 0.01;
  config.seed = seed;

  report.event("phase", "simulate");
  std::cout << "Simulating " << config.duration_s << " s (10 ms steps)...\n";
  const auto trace = sim::run_scenario(config);
  report.kpi("sim_samples", static_cast<double>(trace.samples.size()));

  // Round-trip through the CSV codec in memory so trace_io counters
  // reflect a real encode/decode pass without touching disk.
  report.event("phase", "trace-roundtrip");
  const auto reloaded = sim::trace_from_csv(sim::trace_to_csv(trace));

  report.event("phase", "window-dataset");
  traces::DatasetSpec spec;
  spec.history = 10;
  spec.horizon = 10;
  spec.stride = 20;
  const auto ds = traces::Dataset::from_traces({reloaded}, spec,
                                               std::stoul(get(args, "threads", "0")));
  common::Rng rng(seed);
  const auto split = ds.random_split(0.5, 0.2, rng);
  report.kpi("windows", static_cast<double>(ds.windows().size()));

  report.event("phase", "train");
  predictors::TrainConfig train_config;
  train_config.epochs = 2;
  train_config.hidden = 8;
  train_config.layers = 1;
  train_config.batch_size = 16;
  train_config.patience = 2;
  train_config.seed = seed;
  predictors::LstmPredictor model(train_config);
  std::cout << "Training a small " << model.name() << " on " << split.train.size()
            << " windows...\n";
  model.fit(ds, split.train, split.val);

  report.event("phase", "evaluate");
  const double rmse = predictors::evaluate_rmse(model, split.test);
  report.kpi("test_rmse", rmse);
  std::cout << model.name() << " test RMSE (normalized): "
            << common::TextTable::num(rmse, 4) << "\n";

  export_telemetry(args, report);
  return 0;
}

// serve / loadgen: the online serving path. Both run the full in-process
// stack — simulate (or load) a trace, fit the model, install it in a
// ModelRegistry, start the micro-batching PredictionServer, and drive it
// with the deterministic trace-replay LoadGen. `serve` defaults to an
// open-loop real-time-ish demo; `loadgen` defaults to a 200× replay that
// stresses the batching path (CI's serve smoke stage runs it for 2 s).
int cmd_serve_or_loadgen(int argc, char** argv, bool is_loadgen) {
  const auto args = parse_args(argc, argv, 2);
  const auto seed = std::stoull(get(args, "seed", "7"));
  const auto model_name = get(args, "model", "HarmonicMean");

  obs::RunReport report(is_loadgen ? "loadgen" : "serve");
  report.meta("model", model_name);
  report.meta("seed", static_cast<double>(seed));

  // 1. The trace to replay: a recorded CSV, or a fresh simulation.
  report.event("phase", "acquire-trace");
  sim::Trace trace;
  const auto trace_path = get(args, "trace", "");
  if (!trace_path.empty()) {
    trace = sim::load_trace(trace_path);
  } else {
    sim::ScenarioConfig scenario;
    scenario.op = parse_op(get(args, "op", "OpZ"));
    scenario.env = parse_env(get(args, "env", "urban"));
    scenario.ue_indoor = scenario.env == radio::Environment::kIndoor;
    scenario.mobility = parse_mobility(get(args, "mobility", "driving"));
    scenario.duration_s = std::stod(get(args, "sim-duration", "20"));
    scenario.seed = seed;
    std::cout << "Simulating a " << scenario.duration_s << " s replay trace...\n";
    trace = sim::run_scenario(scenario);
  }

  // 2. Fit (or load) the serving model on windows of that trace; the
  // dataset also fixes the normalization scale the sessions will use.
  report.event("phase", "fit-model");
  traces::DatasetSpec spec;
  spec.stride = 5;
  const auto ds = traces::Dataset::from_traces({trace}, spec);
  common::Rng rng(seed);
  const auto split = ds.random_split(0.5, 0.2, rng);
  std::shared_ptr<predictors::Predictor> model{eval::make_predictor(model_name)};
  const auto load_path = get(args, "load", "");
  if (!load_path.empty()) {
    auto* deep = dynamic_cast<predictors::DeepPredictor*>(model.get());
    if (deep == nullptr) {
      std::cerr << "--load is only supported for deep models\n";
      return 2;
    }
    deep->load(ds, load_path);
    std::cout << "loaded " << model->name() << " parameters from " << load_path << "\n";
  } else {
    std::cout << "Fitting " << model->name() << " on " << split.train.size()
              << " windows...\n";
    model->fit(ds, split.train, split.val);
  }

  serve::ModelRegistry registry;
  registry.install(model->name(), model);

  // 3. Server + load generator.
  serve::ServerConfig server_config;
  server_config.workers = std::stoul(get(args, "workers", "4"));
  server_config.max_batch = std::stoul(get(args, "batch", "32"));
  server_config.batch_deadline =
      std::chrono::microseconds(std::stoul(get(args, "deadline-us", "1000")));
  server_config.queue_capacity = std::stoul(get(args, "queue", "4096"));
  server_config.history = ds.history();
  server_config.cc_slots = ds.cc_slots();
  server_config.tput_scale_mbps = ds.tput_scale_mbps();

  serve::LoadGenConfig gen_config;
  gen_config.ues = std::stoul(get(args, "ues", "8"));
  gen_config.speed = std::stod(get(args, "speed", is_loadgen ? "200" : "1"));
  gen_config.closed_loop = get(args, "closed-loop", "0") == "1";
  gen_config.max_in_flight = std::stoul(get(args, "max-in-flight", "256"));
  gen_config.duration_s = std::stod(get(args, "duration", is_loadgen ? "2" : "5"));
  gen_config.seed = seed;
  gen_config.expected_horizon = ds.horizon();

  report.meta("workers", static_cast<double>(server_config.workers));
  report.meta("max_batch", static_cast<double>(server_config.max_batch));
  report.meta("ues", static_cast<double>(gen_config.ues));
  report.meta("speed", gen_config.speed);

  report.event("phase", "replay");
  std::cout << "Serving " << gen_config.ues << " UEs with " << server_config.workers
            << " workers (batch " << server_config.max_batch << ", deadline "
            << server_config.batch_deadline.count() << " µs, "
            << (gen_config.closed_loop ? "closed" : "open") << " loop, "
            << gen_config.speed << "x)...\n";
  serve::LoadGen gen(gen_config);
  serve::LoadGenReport result;
  {
    serve::PredictionServer server(server_config, registry, gen.completion());
    result = gen.run(server, trace);
    server.stop();
  }

  common::TextTable table(is_loadgen ? "Load generator report" : "Serve session report");
  table.set_header({"Metric", "Value"});
  table.add_row({"offered", std::to_string(result.offered)});
  table.add_row({"admitted", std::to_string(result.admitted)});
  table.add_row({"completed", std::to_string(result.completed)});
  table.add_row({"warm-up rejected", std::to_string(result.warmup)});
  table.add_row({"shed", std::to_string(result.shed)});
  table.add_row({"errors", std::to_string(result.errors)});
  table.add_row({"wall (s)", common::TextTable::num(result.wall_s, 2)});
  table.add_row({"completed/s", common::TextTable::num(result.completed_per_s, 0)});
  table.add_row({"p50 latency (ms)", common::TextTable::num(result.p50_latency_ns / 1e6, 3)});
  table.add_row({"p99 latency (ms)", common::TextTable::num(result.p99_latency_ns / 1e6, 3)});
  std::cout << table;

  report.kpi("offered", static_cast<double>(result.offered));
  report.kpi("completed", static_cast<double>(result.completed));
  report.kpi("shed", static_cast<double>(result.shed));
  report.kpi("errors", static_cast<double>(result.errors));
  report.kpi("completed_per_s", result.completed_per_s);
  report.kpi("p99_latency_ms", result.p99_latency_ns / 1e6);
  export_telemetry(args, report);
  return 0;
}

// sweep: the fleet-scale offline pipeline. Enumerates the (operator,
// mobility, UE) cross product, runs every unit concurrently on the
// work-stealing pool, and prints per-cell statistics plus the fleet
// hash — the determinism fingerprint that must not depend on --threads.
int cmd_sweep(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  sim::SweepSpec spec;
  spec.ues_per_cell = std::stoul(get(args, "ues", "4"));
  spec.duration_s = std::stod(get(args, "duration", "10"));
  spec.step_s = std::stod(get(args, "step", "0.01"));
  spec.env = parse_env(get(args, "env", "urban"));
  spec.seed = std::stoull(get(args, "seed", "2024"));
  spec.threads = std::stoul(get(args, "threads", "0"));
  const auto op_filter = get(args, "op", "");
  if (!op_filter.empty()) spec.ops = {parse_op(op_filter)};
  const auto mobility_filter = get(args, "mobility", "");
  if (!mobility_filter.empty()) spec.mobilities = {parse_mobility(mobility_filter)};

  obs::RunReport report("sweep");
  report.meta("ues_per_cell", static_cast<double>(spec.ues_per_cell));
  report.meta("duration_s", spec.duration_s);
  report.meta("seed", static_cast<double>(spec.seed));

  report.event("phase", "sweep");
  const auto result = sim::run_sweep(spec);
  report.meta("threads", static_cast<double>(result.threads_used));

  common::TextTable table("Fleet sweep (" + std::to_string(result.units.size()) +
                          " units, " + std::to_string(result.threads_used) +
                          " threads)");
  table.set_header({"Unit", "Samples", "Mean(Mbps)", "Peak(Mbps)", "MeanCCs"});
  for (const auto& u : result.units)
    table.add_row({u.unit.label(), std::to_string(u.samples),
                   common::TextTable::num(u.mean_tput_mbps, 1),
                   common::TextTable::num(u.peak_tput_mbps, 1),
                   common::TextTable::num(u.mean_cc_count, 2)});
  std::cout << table;

  std::ostringstream hash;
  hash << std::hex << result.fleet_hash;
  std::cout << "fleet hash: " << hash.str() << "\n"
            << "wall: " << common::TextTable::num(result.wall_s, 2) << " s, steals: "
            << result.pool_steals << "\n";
  report.kpi("units", static_cast<double>(result.units.size()));
  report.kpi("wall_s", result.wall_s);
  report.kpi("pool_steals", static_cast<double>(result.pool_steals));
  export_telemetry(args, report);
  return 0;
}

void usage() {
  std::cout << "ca5g — CA-aware 5G throughput prediction toolkit\n\n"
            << "subcommands:\n"
            << "  simulate  --op OpX|OpY|OpZ --env urban|suburban|beltway|indoor\n"
            << "            --mobility stationary|walking|driving --duration S\n"
            << "            [--rat 4g|5g] [--step S] [--seed N] [--out trace.csv]\n"
            << "  census    <trace.csv>\n"
            << "  evaluate  --op .. --mobility .. --scale short|long\n"
            << "            --model Prophet|LSTM|TCN|Lumos5G|GBDT|RF|Prism5G\n"
            << "            [--save model.bin] [--seed N]\n"
            << "  qoe       --app vivo|abr --model <name> [--seed N]\n"
            << "  quickstart [--seed N]   small end-to-end sim+train+eval pass\n"
            << "  serve     open-loop online prediction demo: per-UE streaming\n"
            << "            sessions + micro-batched inference\n"
            << "            [--model N] [--load F] [--trace F] [--ues N] [--workers N]\n"
            << "            [--batch N] [--deadline-us N] [--queue N] [--speed X]\n"
            << "            [--duration S] [--sim-duration S] [--seed N]\n"
            << "  loadgen   trace-replay load generator against an in-process server\n"
            << "            (same flags; plus [--closed-loop 0|1] [--max-in-flight N])\n"
            << "  sweep     fleet-scale parallel simulation sweep over the\n"
            << "            (operator, mobility, UE) cross product\n"
            << "            [--ues N] [--duration S] [--step S] [--env E] [--seed N]\n"
            << "            [--op OpX] [--mobility M] [--threads N]\n\n"
            << "all subcommands accept --metrics-out FILE and --report-out FILE\n"
            << "to export the metrics registry and a per-run report as JSON.\n"
            << "--threads 0 (the default) uses every hardware thread (or\n"
            << "CA5G_THREADS); dataset generation and sweeps are bit-identical\n"
            << "at any thread count.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "simulate") return cmd_simulate(argc, argv);
    if (command == "census") return cmd_census(argc, argv);
    if (command == "evaluate") return cmd_evaluate(argc, argv);
    if (command == "qoe") return cmd_qoe(argc, argv);
    if (command == "quickstart") return cmd_quickstart(argc, argv);
    if (command == "serve") return cmd_serve_or_loadgen(argc, argv, /*is_loadgen=*/false);
    if (command == "loadgen") return cmd_serve_or_loadgen(argc, argv, /*is_loadgen=*/true);
    if (command == "sweep") return cmd_sweep(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}
