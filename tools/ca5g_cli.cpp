// ca5g — command-line front end to the library.
//
//   ca5g simulate  --op OpZ --env urban --mobility driving
//                  --duration 60 --seed 7 [--rat 4g|5g] [--out trace.csv]
//   ca5g census    trace.csv
//   ca5g evaluate  --op OpZ --mobility driving --scale short
//                  --model Prism5G [--save model.bin]
//   ca5g qoe       --app vivo|abr --model Prism5G
//   ca5g quickstart [--seed N]       (sim → trace I/O → train → evaluate)
//
// Every subcommand accepts --metrics-out FILE (metrics registry JSON) and
// --report-out FILE (run summary JSON + FILE.events.jsonl timeline).
// Every subcommand is deterministic for a given --seed.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "apps/abr.hpp"
#include "apps/vivo.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "eval/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/trace_io.hpp"

namespace {

using namespace ca5g;

/// Minimal --key value argument parser (flags require a value).
std::map<std::string, std::string> parse_args(int argc, char** argv, int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << key << "\n";
      std::exit(2);
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

std::string get(const std::map<std::string, std::string>& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

ran::OperatorId parse_op(const std::string& name) {
  if (name == "OpX") return ran::OperatorId::kOpX;
  if (name == "OpY") return ran::OperatorId::kOpY;
  if (name == "OpZ") return ran::OperatorId::kOpZ;
  std::cerr << "unknown operator: " << name << " (use OpX/OpY/OpZ)\n";
  std::exit(2);
}

radio::Environment parse_env(const std::string& name) {
  if (name == "urban") return radio::Environment::kUrbanMacro;
  if (name == "suburban") return radio::Environment::kSuburbanMacro;
  if (name == "beltway" || name == "highway") return radio::Environment::kHighway;
  if (name == "indoor") return radio::Environment::kIndoor;
  std::cerr << "unknown environment: " << name << "\n";
  std::exit(2);
}

sim::Mobility parse_mobility(const std::string& name) {
  if (name == "stationary") return sim::Mobility::kStationary;
  if (name == "walking") return sim::Mobility::kWalking;
  if (name == "driving") return sim::Mobility::kDriving;
  std::cerr << "unknown mobility: " << name << "\n";
  std::exit(2);
}

/// Write --metrics-out / --report-out files if requested. Called at the
/// end of every subcommand so any run can export its telemetry.
void export_telemetry(const std::map<std::string, std::string>& args,
                      const obs::RunReport& report) {
  const auto metrics_path = get(args, "metrics-out", "");
  const auto report_path = get(args, "report-out", "");
  if (metrics_path.empty() && report_path.empty()) return;

  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out.good()) {
      std::cerr << "cannot open --metrics-out path: " << metrics_path << "\n";
      std::exit(1);
    }
    out << obs::to_json(snapshot);
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  if (!report_path.empty()) {
    report.write_summary(report_path, &snapshot);
    report.write_events(obs::RunReport::events_path_for(report_path));
    std::cout << "run report written to " << report_path << "\n";
  }
}

void print_trace_summary(const sim::Trace& trace) {
  const auto agg = trace.aggregate_series();
  const auto ccs = trace.cc_count_series();
  std::size_t events = 0;
  for (const auto& s : trace.samples) events += s.events.size();
  common::TextTable table("Trace summary");
  table.set_header({"Metric", "Value"});
  table.add_row({"samples", std::to_string(trace.samples.size())});
  table.add_row({"step (s)", common::TextTable::num(trace.step_s, 3)});
  table.add_row({"tput mean (Mbps)", common::TextTable::num(common::mean(agg), 1)});
  table.add_row({"tput std (Mbps)", common::TextTable::num(common::stddev(agg), 1)});
  table.add_row({"tput peak (Mbps)", common::TextTable::num(common::max_value(agg), 1)});
  table.add_row({"CC count mean", common::TextTable::num(common::mean(ccs), 2)});
  table.add_row({"CC count max", common::TextTable::num(common::max_value(ccs), 0)});
  table.add_row({"RRC events", std::to_string(events)});
  std::cout << table;
}

int cmd_simulate(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  sim::ScenarioConfig config;
  config.op = parse_op(get(args, "op", "OpZ"));
  config.env = parse_env(get(args, "env", "urban"));
  config.ue_indoor = config.env == radio::Environment::kIndoor;
  config.mobility = parse_mobility(get(args, "mobility", "driving"));
  config.duration_s = std::stod(get(args, "duration", "60"));
  config.step_s = std::stod(get(args, "step", "0.01"));
  config.seed = std::stoull(get(args, "seed", "7"));
  if (get(args, "rat", "5g") == "4g") {
    config.rat = phy::Rat::kLte;
    config.cc_slots = 5;
  }

  obs::RunReport report("simulate");
  report.meta("op", get(args, "op", "OpZ"));
  report.meta("env", get(args, "env", "urban"));
  report.meta("mobility", get(args, "mobility", "driving"));
  report.meta("seed", static_cast<double>(config.seed));
  report.meta("duration_s", config.duration_s);
  report.meta("step_s", config.step_s);

  report.event("phase", "simulate");
  const auto trace = sim::run_scenario(config);
  print_trace_summary(trace);
  report.kpi("samples", static_cast<double>(trace.samples.size()));
  report.kpi("tput_mean_mbps", common::mean(trace.aggregate_series()));
  const auto out = get(args, "out", "");
  if (!out.empty()) {
    report.event("phase", "save-trace");
    sim::save_trace(trace, out);
    std::cout << "\nwrote " << out << "\n";
  }
  export_telemetry(args, report);
  return 0;
}

int cmd_census(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: ca5g census <trace.csv> [--metrics-out F] [--report-out F]\n";
    return 2;
  }
  const auto args = parse_args(argc, argv, 3);
  obs::RunReport report("census");
  report.meta("trace", argv[2]);
  report.event("phase", "load-trace");
  const auto trace = sim::load_trace(argv[2]);
  report.kpi("samples", static_cast<double>(trace.samples.size()));
  print_trace_summary(trace);

  std::map<std::string, std::size_t> combos;
  for (const auto& s : trace.samples) {
    std::string combo;
    for (const auto& cc : s.ccs) {
      if (!cc.active) continue;
      if (!combo.empty()) combo += "+";
      combo += std::string(phy::band_info(cc.band).name);
    }
    if (!combo.empty()) ++combos[combo];
  }
  common::TextTable table("CA combination census");
  table.set_header({"Combination", "Share(%)"});
  for (const auto& [combo, count] : combos)
    table.add_row(
        {combo, common::TextTable::num(100.0 * count / trace.samples.size(), 1)});
  std::cout << table;
  export_telemetry(args, report);
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  eval::SubDatasetId id;
  id.op = parse_op(get(args, "op", "OpZ"));
  id.mobility = parse_mobility(get(args, "mobility", "driving"));
  const auto scale = get(args, "scale", "short") == "long" ? eval::TimeScale::kLong
                                                           : eval::TimeScale::kShort;

  obs::RunReport report("evaluate");
  report.meta("op", get(args, "op", "OpZ"));
  report.meta("mobility", get(args, "mobility", "driving"));
  report.meta("scale", eval::time_scale_name(scale));
  report.meta("seed", std::stod(get(args, "seed", "42")));

  std::cout << "Generating " << id.label() << " dataset at "
            << eval::time_scale_name(scale) << "...\n";
  report.event("phase", "generate-dataset");
  const auto ds = eval::make_ml_dataset(id, scale, eval::GenerationConfig::from_env());
  common::Rng rng(std::stoull(get(args, "seed", "42")));
  const auto split = ds.random_split(0.5, 0.2, rng);

  const auto model_name = get(args, "model", "Prism5G");
  auto model = eval::make_predictor(model_name);
  report.meta("model", model->name());
  std::cout << "Training " << model->name() << " on " << split.train.size()
            << " windows...\n";
  report.event("phase", "train-and-evaluate");
  const double rmse = eval::train_and_evaluate(*model, ds, split);
  report.kpi("test_rmse", rmse);
  std::cout << model->name() << " test RMSE (normalized): "
            << common::TextTable::num(rmse, 4) << "\n";

  const auto save = get(args, "save", "");
  if (!save.empty()) {
    if (auto* deep = dynamic_cast<predictors::DeepPredictor*>(model.get())) {
      deep->save(save);
      std::cout << "model parameters saved to " << save << "\n";
    } else {
      std::cerr << "--save is only supported for deep models\n";
      return 2;
    }
  }
  export_telemetry(args, report);
  return 0;
}

int cmd_qoe(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto app = get(args, "app", "vivo");
  const auto model_name = get(args, "model", "Prism5G");
  const bool abr = app == "abr";

  obs::RunReport report("qoe");
  report.meta("app", app);
  report.meta("model", model_name);
  report.meta("seed", std::stod(get(args, "seed", "42")));

  eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto scale = abr ? eval::TimeScale::kLong : eval::TimeScale::kShort;
  report.event("phase", "generate-dataset");
  const auto ds = eval::make_ml_dataset(id, scale, eval::GenerationConfig::from_env());
  common::Rng rng(std::stoull(get(args, "seed", "42")));
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::cout << "Training " << model_name << "...\n";
  report.event("phase", "train");
  std::shared_ptr<predictors::Predictor> model{eval::make_predictor(model_name)};
  model->fit(ds, split.train, split.val);
  report.event("phase", "session");

  auto session_gen = eval::GenerationConfig::from_env();
  session_gen.seed += 31337;
  session_gen.traces = 1;
  const auto trace = eval::generate_traces(id, scale, session_gen).front();

  traces::DatasetSpec spec;
  apps::ModelEstimator estimator(model, spec, ds.cc_slots(), ds.tput_scale_mbps());
  apps::IdealEstimator ideal;

  if (abr) {
    apps::AbrConfig config;
    config.total_chunks = 40;
    const auto r_model = apps::run_mpc_abr(trace, estimator, config);
    const auto r_ideal = apps::run_mpc_abr(trace, ideal, config);
    common::TextTable table("MPC ABR session QoE");
    table.set_header({"Forecaster", "AvgBitrate(Mbps)", "Stall(s)"});
    table.add_row({model->name(), common::TextTable::num(r_model.avg_bitrate_mbps, 1),
                   common::TextTable::num(r_model.stall_time_s, 1)});
    table.add_row({"Ideal", common::TextTable::num(r_ideal.avg_bitrate_mbps, 1),
                   common::TextTable::num(r_ideal.stall_time_s, 1)});
    std::cout << table;
    report.kpi("avg_bitrate_mbps", r_model.avg_bitrate_mbps);
    report.kpi("stall_time_s", r_model.stall_time_s);
  } else {
    apps::VivoConfig config;
    config.max_bitrate_mbps = 750.0;
    const auto r_model = apps::run_vivo(trace, estimator, config);
    const auto r_ideal = apps::run_vivo(trace, ideal, config);
    common::TextTable table("ViVo session QoE");
    table.set_header({"Estimator", "AvgQuality", "Stall(s)"});
    table.add_row({model->name(), common::TextTable::num(r_model.avg_quality, 2),
                   common::TextTable::num(r_model.stall_time_s, 2)});
    table.add_row({"Ideal", common::TextTable::num(r_ideal.avg_quality, 2),
                   common::TextTable::num(r_ideal.stall_time_s, 2)});
    std::cout << table;
    report.kpi("avg_quality", r_model.avg_quality);
    report.kpi("stall_time_s", r_model.stall_time_s);
  }
  export_telemetry(args, report);
  return 0;
}

// quickstart: one small end-to-end pass that exercises every
// instrumented layer in a single process — simulate, round-trip the
// trace through the CSV codec, window it into a dataset, train a tiny
// LSTM, and evaluate it. This is what `tools/ci.sh` runs in its obs
// stage to assert the exported metrics cover sim/ran/phy/nn/predictor/
// trace_io.
int cmd_quickstart(int argc, char** argv) {
  const auto args = parse_args(argc, argv, 2);
  const auto seed = std::stoull(get(args, "seed", "7"));

  obs::RunReport report("quickstart");
  report.meta("seed", static_cast<double>(seed));
  report.meta("scenario", "OpZ urban driving 10s @ 10ms");

  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.env = radio::Environment::kUrbanMacro;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 10.0;
  config.step_s = 0.01;
  config.seed = seed;

  report.event("phase", "simulate");
  std::cout << "Simulating " << config.duration_s << " s (10 ms steps)...\n";
  const auto trace = sim::run_scenario(config);
  report.kpi("sim_samples", static_cast<double>(trace.samples.size()));

  // Round-trip through the CSV codec in memory so trace_io counters
  // reflect a real encode/decode pass without touching disk.
  report.event("phase", "trace-roundtrip");
  const auto reloaded = sim::trace_from_csv(sim::trace_to_csv(trace));

  report.event("phase", "window-dataset");
  traces::DatasetSpec spec;
  spec.history = 10;
  spec.horizon = 10;
  spec.stride = 20;
  const auto ds = traces::Dataset::from_traces({reloaded}, spec);
  common::Rng rng(seed);
  const auto split = ds.random_split(0.5, 0.2, rng);
  report.kpi("windows", static_cast<double>(ds.windows().size()));

  report.event("phase", "train");
  predictors::TrainConfig train_config;
  train_config.epochs = 2;
  train_config.hidden = 8;
  train_config.layers = 1;
  train_config.batch_size = 16;
  train_config.patience = 2;
  train_config.seed = seed;
  predictors::LstmPredictor model(train_config);
  std::cout << "Training a small " << model.name() << " on " << split.train.size()
            << " windows...\n";
  model.fit(ds, split.train, split.val);

  report.event("phase", "evaluate");
  const double rmse = predictors::evaluate_rmse(model, split.test);
  report.kpi("test_rmse", rmse);
  std::cout << model.name() << " test RMSE (normalized): "
            << common::TextTable::num(rmse, 4) << "\n";

  export_telemetry(args, report);
  return 0;
}

void usage() {
  std::cout << "ca5g — CA-aware 5G throughput prediction toolkit\n\n"
            << "subcommands:\n"
            << "  simulate  --op OpX|OpY|OpZ --env urban|suburban|beltway|indoor\n"
            << "            --mobility stationary|walking|driving --duration S\n"
            << "            [--rat 4g|5g] [--step S] [--seed N] [--out trace.csv]\n"
            << "  census    <trace.csv>\n"
            << "  evaluate  --op .. --mobility .. --scale short|long\n"
            << "            --model Prophet|LSTM|TCN|Lumos5G|GBDT|RF|Prism5G\n"
            << "            [--save model.bin] [--seed N]\n"
            << "  qoe       --app vivo|abr --model <name> [--seed N]\n"
            << "  quickstart [--seed N]   small end-to-end sim+train+eval pass\n\n"
            << "all subcommands accept --metrics-out FILE and --report-out FILE\n"
            << "to export the metrics registry and a per-run report as JSON.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "simulate") return cmd_simulate(argc, argv);
    if (command == "census") return cmd_census(argc, argv);
    if (command == "evaluate") return cmd_evaluate(argc, argv);
    if (command == "qoe") return cmd_qoe(argc, argv);
    if (command == "quickstart") return cmd_quickstart(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  usage();
  return 2;
}
