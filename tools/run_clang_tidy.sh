#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources using the compile_commands.json of an existing build tree.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir] [clang-tidy-args...]
#
# The build dir defaults to ./build and must have been configured already
# (the root CMakeLists.txt always exports compile_commands.json).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
shift || true

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH — install LLVM/clang tooling" >&2
  exit 127
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 1
fi

# First-party translation units only; the compile database also covers
# GTest/benchmark-internal TUs we do not want to lint.
mapfile -t SOURCES < <(find src tools tests bench examples -name '*.cpp' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$BUILD_DIR" -quiet "$@" "${SOURCES[@]}"
else
  for src in "${SOURCES[@]}"; do
    echo "== $src"
    clang-tidy -p "$BUILD_DIR" --quiet "$@" "$src"
  done
fi
