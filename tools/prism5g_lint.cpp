// prism5g_lint — domain-invariant lint over the compiled 3GPP tables and
// the trace schema.
//
// Everything downstream of the PHY model (Figures 1–26, the predictors,
// the QoE studies) silently trusts these tables; a transposed MCS row or a
// mistyped band frequency skews every benchmark figure without failing a
// unit test. This binary statically validates:
//
//   * the TS 38.214 MCS/CQI tables (contiguity, modulation order steps,
//     code-rate bounds, spectral-efficiency monotonicity),
//   * the SINR→CQI→MCS link-adaptation chain (monotone, never outruns the
//     channel),
//   * the TS 38.214 §5.1.3.2 TBS quantizer against independently computed
//     reference vectors and the small-TBS table shape,
//   * the 3GPP band catalogue (duplex/frequency/range sanity for every
//     band, exact expectations for the paper's NR bands),
//   * numerology/RB-capacity spot values from TS 38.101,
//   * the Table 12 trace schema (CSV header completeness, round-trip,
//     field-range validation),
//   * the observability metric names registered by the code paths the lint
//     itself exercises (the `layer.noun_unit` convention from
//     docs/OBSERVABILITY.md — wrong names would silently fragment
//     dashboards and per-run reports).
//
// It is registered as a ctest (label: lint). `--self-test` additionally
// proves the detectors fire by running the same checks over deliberately
// corrupted copies of the MCS/TBS/CQI/band tables and over malformed
// metric names — guarding against the lint itself rotting into a rubber
// stamp.
#include <cmath>
#include <cstring>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "nn/infer.hpp"
#include "obs/metrics.hpp"
#include "phy/band.hpp"
#include "phy/mcs.hpp"
#include "phy/numerology.hpp"
#include "phy/tbs.hpp"
#include "serve/server.hpp"
#include "sim/trace.hpp"
#include "sim/trace_io.hpp"

namespace {

using namespace ca5g;

/// Collects lint failures; checks are free functions over table spans so the
/// self-test can rerun them against corrupted copies.
class Linter {
 public:
  explicit Linter(bool verbose) : verbose_(verbose) {}

  void expect(bool ok, const std::string& what) {
    ++checks_;
    if (!ok) {
      failures_.push_back(what);
      if (verbose_) std::cerr << "  FAIL: " << what << '\n';
    }
  }

  [[nodiscard]] int checks() const noexcept { return checks_; }
  [[nodiscard]] const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }

 private:
  bool verbose_;
  int checks_ = 0;
  std::vector<std::string> failures_;
};

std::string describe(const char* what, int index, const char* detail) {
  std::ostringstream os;
  os << what << '[' << index << "]: " << detail;
  return os.str();
}

// --- TS 38.214 Table 5.1.3.1-2 (MCS) ---------------------------------------

void lint_mcs_table(Linter& lint, std::span<const phy::McsEntry> table) {
  lint.expect(table.size() == static_cast<std::size_t>(phy::kMaxMcsIndex) + 1,
              "MCS table must have kMaxMcsIndex+1 rows");
  for (int i = 0; i < static_cast<int>(table.size()); ++i) {
    const auto& row = table[static_cast<std::size_t>(i)];
    lint.expect(row.index == i, describe("mcs", i, "index column must equal position"));
    lint.expect(row.modulation_order == 2 || row.modulation_order == 4 ||
                    row.modulation_order == 6 || row.modulation_order == 8,
                describe("mcs", i, "Qm must be one of 2/4/6/8"));
    lint.expect(row.code_rate > 0.0 && row.code_rate <= 948.0 / 1024.0,
                describe("mcs", i, "code rate must lie in (0, 948/1024]"));
    if (i > 0) {
      const auto& prev = table[static_cast<std::size_t>(i - 1)];
      lint.expect(row.modulation_order >= prev.modulation_order,
                  describe("mcs", i, "modulation order must be non-decreasing"));
      lint.expect(row.efficiency() > prev.efficiency(),
                  describe("mcs", i, "spectral efficiency must be strictly increasing"));
    }
  }
}

// --- TS 38.214 Table 5.2.2.1-3 (CQI) ---------------------------------------

void lint_cqi_table(Linter& lint, std::span<const phy::CqiEntry> table) {
  lint.expect(table.size() == static_cast<std::size_t>(phy::kMaxCqiIndex) + 1,
              "CQI table must have kMaxCqiIndex+1 rows");
  if (table.empty()) return;
  lint.expect(table[0].index == 0 && table[0].efficiency == 0.0,
              "CQI 0 must be the out-of-range sentinel");
  for (int i = 1; i < static_cast<int>(table.size()); ++i) {
    const auto& row = table[static_cast<std::size_t>(i)];
    lint.expect(row.index == i, describe("cqi", i, "index column must equal position"));
    lint.expect(std::abs(row.efficiency - row.modulation_order * row.code_rate) < 5e-4,
                describe("cqi", i, "efficiency column must equal Qm x R"));
    if (i > 1) {
      const auto& prev = table[static_cast<std::size_t>(i - 1)];
      lint.expect(row.efficiency > prev.efficiency,
                  describe("cqi", i, "efficiency must be strictly increasing"));
      lint.expect(row.min_sinr_db > prev.min_sinr_db,
                  describe("cqi", i, "SINR threshold must be strictly increasing"));
    }
  }
}

// --- Link-adaptation chain --------------------------------------------------

void lint_link_adaptation(Linter& lint) {
  // CQI reporting is monotone in SINR and spans the full index range.
  int prev_cqi = 0;
  for (double sinr = -20.0; sinr <= 40.0; sinr += 0.25) {
    const int cqi = phy::cqi_from_sinr(sinr);
    lint.expect(cqi >= prev_cqi, "cqi_from_sinr must be monotone in SINR");
    lint.expect(cqi >= 0 && cqi <= phy::kMaxCqiIndex, "cqi_from_sinr out of range");
    prev_cqi = cqi;
  }
  lint.expect(phy::cqi_from_sinr(-30.0) == 0, "deep fade must report CQI 0");
  lint.expect(phy::cqi_from_sinr(40.0) == phy::kMaxCqiIndex,
              "ideal channel must report CQI 15");

  // Link adaptation never outruns what the reported CQI promises. MCS 0 is
  // the floor: CQI 1's efficiency (0.1523) sits below the lowest MCS rate
  // (0.2344), and the link then runs MCS 0 at elevated BLER.
  int prev_mcs = 0;
  for (int cqi = 1; cqi <= phy::kMaxCqiIndex; ++cqi) {
    const int mcs = phy::mcs_from_cqi(cqi);
    lint.expect(mcs >= prev_mcs, "mcs_from_cqi must be non-decreasing in CQI");
    lint.expect(mcs == 0 || phy::mcs_entry(mcs).efficiency() <=
                                phy::cqi_entry(cqi).efficiency + 1e-9,
                "selected MCS efficiency must not exceed the CQI's");
    prev_mcs = mcs;
  }

  // BLER model: ~10% at the operating point (where the CQI backs the MCS;
  // the CQI-1 floor case legitimately runs hotter), falling with margin.
  for (int cqi = 1; cqi <= phy::kMaxCqiIndex; ++cqi) {
    const int mcs = phy::mcs_from_cqi(cqi);
    const double at = phy::bler_estimate(phy::cqi_entry(cqi).min_sinr_db, mcs);
    const double above = phy::bler_estimate(phy::cqi_entry(cqi).min_sinr_db + 10.0, mcs);
    const bool backed =
        phy::mcs_entry(mcs).efficiency() <= phy::cqi_entry(cqi).efficiency + 1e-9;
    lint.expect(!backed || at <= 0.35,
                "BLER at the CQI operating point must be near the 10% target");
    lint.expect(above < at || at == 0.0, "BLER must fall as SINR margin grows");
  }
}

// --- TS 38.214 §5.1.3.2 TBS quantizer --------------------------------------

/// One independently computed TBS reference vector (worked by hand from the
/// spec's step 3/4 procedure, not copied from the implementation).
struct TbsVector {
  int prb;
  int symbols;
  int dmrs;
  int mcs;
  int layers;
  std::int64_t expected_bits;
};

constexpr TbsVector kTbsVectors[] = {
    // 1 PRB, MCS0, 1 layer: N_re=156, N_info=36.56 → N'=32 → table → 32.
    {1, 14, 12, 0, 1, 32},
    // 5 PRB, 12 symbols, MCS4: N_re=132·5, N_info=776.02 → N'=776 → 808.
    {5, 12, 12, 4, 1, 808},
    // 10 PRB, MCS10, 2 layers: N_info=8019.38 → N'=7936 → C=1 → 7936.
    {10, 14, 12, 10, 2, 7936},
    // Full 100 MHz @ 273 PRB, MCS27, 4 layers: N_info=1261669.5 →
    // N'=1277952 → C=152 → 1277992.
    {273, 14, 12, 27, 4, 1277992},
    // Zero allocation carries zero bits.
    {0, 14, 12, 10, 1, 0},
};

void lint_tbs(Linter& lint, std::span<const int> small_table) {
  // Shape of the small-TBS quantization table.
  lint.expect(small_table.size() == 93, "small-TBS table must have 93 entries");
  if (!small_table.empty()) {
    lint.expect(small_table.front() == 24, "small-TBS table must start at 24");
    lint.expect(small_table.back() == 3824, "small-TBS table must end at 3824");
  }
  for (int i = 0; i < static_cast<int>(small_table.size()); ++i) {
    const int tbs = small_table[static_cast<std::size_t>(i)];
    lint.expect(tbs % 8 == 0, describe("small_tbs", i, "entries must be byte-aligned"));
    if (i > 0)
      lint.expect(tbs > small_table[static_cast<std::size_t>(i - 1)],
                  describe("small_tbs", i, "entries must be strictly increasing"));
  }

  // Cross-check the full quantizer against the worked reference vectors.
  for (int i = 0; i < static_cast<int>(std::size(kTbsVectors)); ++i) {
    const auto& v = kTbsVectors[static_cast<std::size_t>(i)];
    phy::TbsParams p;
    p.prb_count = v.prb;
    p.symbols = v.symbols;
    p.dmrs_re_per_prb = v.dmrs;
    p.mcs_index = v.mcs;
    p.mimo_layers = v.layers;
    const auto got = phy::transport_block_size(p);
    std::ostringstream os;
    os << "TBS vector " << i << " (prb=" << v.prb << " mcs=" << v.mcs << " v=" << v.layers
       << "): expected " << v.expected_bits << ", got " << got;
    lint.expect(got == v.expected_bits, os.str());
  }
}

// --- 3GPP band catalogue ----------------------------------------------------

/// Exact expectations for the paper's NR bands (Table 6 / §3.1).
struct BandFact {
  const char* name;
  phy::Duplex duplex;
  phy::BandRange range;
  double min_freq_mhz;
  double max_freq_mhz;
};

constexpr BandFact kNrBandFacts[] = {
    {"n5", phy::Duplex::kFdd, phy::BandRange::kLow, 800.0, 900.0},
    {"n25", phy::Duplex::kFdd, phy::BandRange::kMid, 1850.0, 1995.0},
    {"n41", phy::Duplex::kTdd, phy::BandRange::kMid, 2496.0, 2690.0},
    {"n71", phy::Duplex::kFdd, phy::BandRange::kLow, 580.0, 700.0},
    {"n77", phy::Duplex::kTdd, phy::BandRange::kMid, 3300.0, 4200.0},
    {"n260", phy::Duplex::kTdd, phy::BandRange::kHigh, 37000.0, 40000.0},
    {"n261", phy::Duplex::kTdd, phy::BandRange::kHigh, 27500.0, 28350.0},
};

void lint_band_catalogue(Linter& lint, std::span<const phy::BandInfo> bands) {
  lint.expect(bands.size() == phy::kBandCount, "band catalogue size mismatch");
  for (int i = 0; i < static_cast<int>(bands.size()); ++i) {
    const auto& b = bands[static_cast<std::size_t>(i)];
    const bool nr = b.rat == phy::Rat::kNr;
    lint.expect(!b.name.empty() && b.name.front() == (nr ? 'n' : 'b'),
                describe("band", i, "name prefix must match the RAT"));
    lint.expect(b.center_freq_mhz > 0.0, describe("band", i, "frequency must be positive"));
    lint.expect(!b.bandwidths_mhz.empty(), describe("band", i, "no channel bandwidths"));
    lint.expect(!b.scs_khz.empty(), describe("band", i, "no subcarrier spacings"));
    for (std::size_t k = 1; k < b.bandwidths_mhz.size(); ++k)
      lint.expect(b.bandwidths_mhz[k] > b.bandwidths_mhz[k - 1],
                  describe("band", i, "bandwidth list must be ascending"));
    for (int bw : b.bandwidths_mhz)
      lint.expect(bw >= 5 && bw <= 400, describe("band", i, "bandwidth outside 5..400 MHz"));

    // Range class must agree with the carrier frequency (FR1/FR2 split per
    // TS 38.104: low < 1 GHz ≤ mid < 7.125 GHz ≤ FR2 gap < 24.25 GHz ≤ high).
    if (b.range == phy::BandRange::kLow)
      lint.expect(b.center_freq_mhz < 1000.0, describe("band", i, "low band above 1 GHz"));
    else if (b.range == phy::BandRange::kMid)
      lint.expect(b.center_freq_mhz >= 1000.0 && b.center_freq_mhz < 7125.0,
                  describe("band", i, "mid band outside 1–7.125 GHz"));
    else
      lint.expect(b.center_freq_mhz >= 24250.0,
                  describe("band", i, "mmWave band below FR2"));

    // Subcarrier spacing must match the RAT/range: LTE is 15 kHz only;
    // NR FR1 uses 15/30, FR2 uses 120.
    for (int scs : b.scs_khz) {
      if (!nr)
        lint.expect(scs == 15, describe("band", i, "LTE SCS must be 15 kHz"));
      else if (b.range == phy::BandRange::kHigh)
        lint.expect(scs == 120, describe("band", i, "FR2 SCS must be 120 kHz"));
      else
        lint.expect(scs == 15 || scs == 30,
                    describe("band", i, "NR FR1 SCS must be 15 or 30 kHz"));
    }

    // Names are unique and round-trip through the lookup.
    for (int j = 0; j < i; ++j)
      lint.expect(bands[static_cast<std::size_t>(j)].name != b.name,
                  describe("band", i, "duplicate band name"));
  }

  // Exact facts for the NR bands the paper's operators deploy.
  for (const auto& fact : kNrBandFacts) {
    const phy::BandInfo* found = nullptr;
    for (const auto& b : bands)
      if (b.name == fact.name) found = &b;
    std::ostringstream os;
    os << "NR band " << fact.name;
    if (found == nullptr) {
      lint.expect(false, os.str() + " missing from the catalogue");
      continue;
    }
    lint.expect(found->duplex == fact.duplex, os.str() + ": wrong duplex mode");
    lint.expect(found->range == fact.range, os.str() + ": wrong band range class");
    lint.expect(found->center_freq_mhz >= fact.min_freq_mhz &&
                    found->center_freq_mhz <= fact.max_freq_mhz,
                os.str() + ": carrier frequency outside the 3GPP band");
    lint.expect(found->rat == phy::Rat::kNr, os.str() + ": must be an NR band");
  }

  lint.expect(phy::downlink_duty(phy::Duplex::kFdd) == 1.0,
              "FDD dedicates the full DL channel");
  const double tdd = phy::downlink_duty(phy::Duplex::kTdd);
  lint.expect(tdd > 0.5 && tdd < 1.0, "TDD DL duty must lie in (0.5, 1)");
}

// --- TS 38.101 numerology / RB capacity -------------------------------------

void lint_numerology(Linter& lint) {
  lint.expect(phy::slots_per_subframe(15) == 1, "15 kHz SCS has 1 slot/subframe");
  lint.expect(phy::slots_per_subframe(30) == 2, "30 kHz SCS has 2 slots/subframe");
  lint.expect(phy::slots_per_subframe(120) == 8, "120 kHz SCS has 8 slots/subframe");
  lint.expect(std::abs(phy::slot_duration_s(30) - 0.0005) < 1e-12,
              "30 kHz slot lasts 0.5 ms");
  // Spot values from TS 38.101-1/-2 Table 5.3.2-1 and the LTE 5 RB/MHz rule.
  lint.expect(phy::max_resource_blocks(phy::Rat::kNr, 100, 30) == 273,
              "NR 100 MHz @ 30 kHz must give 273 RB");
  lint.expect(phy::max_resource_blocks(phy::Rat::kNr, 20, 15) == 106,
              "NR 20 MHz @ 15 kHz must give 106 RB");
  lint.expect(phy::max_resource_blocks(phy::Rat::kNr, 100, 120) == 66,
              "NR FR2 100 MHz @ 120 kHz must give 66 RB");
  lint.expect(phy::max_resource_blocks(phy::Rat::kLte, 20, 15) == 100,
              "LTE 20 MHz must give 100 RB");
}

// --- Table 12 trace schema ---------------------------------------------------

/// Per-CC fields the paper's Table 12 feature schema requires in the CSV.
constexpr const char* kCcFields[] = {"active", "pcell", "band", "chan",   "bw",
                                     "pci",    "rsrp",  "rsrq", "sinr",   "cqi",
                                     "bler",   "rb",    "layers", "mcs",  "tput"};
constexpr const char* kMetaFields[] = {"time_s", "hour",   "op",       "env",
                                       "mobility", "modem", "step_s",  "cc_slots",
                                       "pos_x",  "pos_y",  "event",    "agg_tput_mbps"};

sim::Trace tiny_trace() {
  sim::Trace trace;
  trace.cc_slots = 2;
  trace.step_s = 0.01;
  for (int i = 0; i < 3; ++i) {
    sim::TraceSample s;
    s.time_s = 0.01 * i;
    s.hour_of_day = 12.0;
    s.aggregate_tput_mbps = 120.0 + i;
    s.ccs.assign(2, sim::CcSample{});
    s.ccs[0].active = true;
    s.ccs[0].is_pcell = true;
    s.ccs[0].band = phy::BandId::kN41;
    s.ccs[0].bandwidth_mhz = 100;
    s.ccs[0].rsrp_dbm = -85.0;
    s.ccs[0].sinr_db = 18.0;
    s.ccs[0].cqi = 12;
    s.ccs[0].mcs = 22;
    s.ccs[0].rb = 240;
    s.ccs[0].layers = 4;
    s.ccs[0].bler = 0.08;
    s.ccs[0].tput_mbps = 110.0 + i;
    trace.samples.push_back(std::move(s));
  }
  return trace;
}

void lint_trace_schema(Linter& lint) {
  const auto trace = tiny_trace();
  const auto doc = sim::trace_to_csv(trace);

  auto has_column = [&doc](const std::string& name) {
    for (const auto& h : doc.header)
      if (h == name) return true;
    return false;
  };

  for (const char* field : kMetaFields)
    lint.expect(has_column(field), std::string("trace CSV missing metadata column ") + field);
  for (std::size_t slot = 0; slot < trace.cc_slots; ++slot)
    for (const char* field : kCcFields)
      lint.expect(has_column("cc" + std::to_string(slot) + "_" + field),
                  "trace CSV missing per-CC column cc" + std::to_string(slot) + "_" + field);
  lint.expect(doc.header.size() ==
                  std::size(kMetaFields) + trace.cc_slots * std::size(kCcFields),
              "trace CSV has unexpected extra columns");
  lint.expect(doc.rows.size() == trace.samples.size(),
              "trace CSV must emit one row per sample");

  // Round-trip: parse back (which runs the Table 12 range validation) and
  // compare the load-bearing fields.
  try {
    const auto restored = sim::trace_from_csv(doc);
    lint.expect(restored.samples.size() == trace.samples.size(),
                "trace CSV round-trip lost samples");
    lint.expect(restored.cc_slots == trace.cc_slots, "trace CSV round-trip lost CC slots");
    const auto& a = trace.samples.front().ccs.front();
    const auto& b = restored.samples.front().ccs.front();
    lint.expect(a.band == b.band && a.cqi == b.cqi && a.mcs == b.mcs && a.rb == b.rb &&
                    a.layers == b.layers,
                "trace CSV round-trip corrupted per-CC fields");
  } catch (const std::exception& e) {
    lint.expect(false, std::string("trace CSV round-trip threw: ") + e.what());
  }

  // Field-range validation rejects a corrupted record.
  auto bad = trace;
  bad.samples[1].ccs[0].cqi = 99;
  bool threw = false;
  try {
    sim::validate(bad);
  } catch (const common::CheckError&) {
    threw = true;
  }
  lint.expect(threw, "Table 12 validation must reject CQI 99");
}

// --- Observability metric naming convention ----------------------------------

void lint_metric_names(Linter& lint, const std::vector<std::string>& names) {
  for (const auto& name : names)
    lint.expect(obs::is_valid_metric_name(name),
                "metric name violates the layer.noun_unit convention: " + name);
#if PRISM5G_OBS_ENABLED
  // The earlier passes exercised instrumented code (cqi_from_sinr,
  // mcs_from_cqi, transport_block_size, the trace CSV round trip), so an
  // empty registry means the instrumentation macros stopped registering.
  lint.expect(!names.empty(),
              "instrumented code paths registered no metrics — the "
              "CA5G_METRIC_* macros are not reaching the registry");
#endif
}

/// The serving layer declares its full metric surface up front
/// (serve::kServeMetricNames — the contract docs/SERVING.md documents).
/// Lint validates the declared list rather than a live registry: these
/// names must be well-formed even in builds that never start a server.
void lint_serve_metric_names(Linter& lint) {
  std::vector<std::string> names;
  for (const auto name : serve::kServeMetricNames) names.emplace_back(name);
  lint.expect(!names.empty(), "serve layer declares no metrics");
  for (const auto& name : names)
    lint.expect(name.rfind("serve.", 0) == 0,
                "serve metric not under the serve. layer prefix: " + name);
  lint_metric_names(lint, names);
}

/// The inference fast path likewise declares its metric surface up front
/// (nn::infer::kInferMetricNames, recorded by DeepPredictor::run_plan).
/// Same rationale as the serve list: validate the declared contract, not
/// a registry that only fills once a model has served predictions.
void lint_infer_metric_names(Linter& lint) {
  std::vector<std::string> names;
  for (const auto name : nn::infer::kInferMetricNames) names.emplace_back(name);
  lint.expect(!names.empty(), "inference fast path declares no metrics");
  for (const auto& name : names)
    lint.expect(name.rfind("infer.", 0) == 0,
                "infer metric not under the infer. layer prefix: " + name);
  lint_metric_names(lint, names);
}

// --- Self-test: the detectors must fire on corrupted tables ------------------

/// Runs `check` against a corrupted table copy and reports whether it
/// produced at least one failure.
template <typename Fn>
bool detects(Fn&& check) {
  Linter sub(/*verbose=*/false);
  check(sub);
  return !sub.failures().empty();
}

void self_test(Linter& lint) {
  // Corrupted MCS table: swap two rows' code rates → efficiency dips.
  {
    std::vector<phy::McsEntry> mcs;
    for (int i = 0; i <= phy::kMaxMcsIndex; ++i) mcs.push_back(phy::mcs_entry(i));
    std::swap(mcs[14].code_rate, mcs[15].code_rate);
    lint.expect(detects([&](Linter& sub) { lint_mcs_table(sub, mcs); }),
                "self-test: corrupted MCS row (swapped code rates) must be detected");
  }
  // Corrupted MCS table: impossible code rate.
  {
    std::vector<phy::McsEntry> mcs;
    for (int i = 0; i <= phy::kMaxMcsIndex; ++i) mcs.push_back(phy::mcs_entry(i));
    mcs[27].code_rate = 1.02;
    lint.expect(detects([&](Linter& sub) { lint_mcs_table(sub, mcs); }),
                "self-test: MCS code rate above 948/1024 must be detected");
  }
  // Corrupted CQI table: swapped SINR thresholds.
  {
    std::vector<phy::CqiEntry> cqi;
    for (int i = 0; i <= phy::kMaxCqiIndex; ++i) cqi.push_back(phy::cqi_entry(i));
    std::swap(cqi[7].min_sinr_db, cqi[8].min_sinr_db);
    lint.expect(detects([&](Linter& sub) { lint_cqi_table(sub, cqi); }),
                "self-test: corrupted CQI thresholds must be detected");
  }
  // Corrupted small-TBS table: a non-byte-aligned entry.
  {
    std::vector<int> table(phy::small_tbs_table().begin(), phy::small_tbs_table().end());
    table[40] += 4;
    lint.expect(detects([&](Linter& sub) { lint_tbs(sub, table); }),
                "self-test: corrupted small-TBS entry must be detected");
  }
  // Corrupted band catalogue: n41 flipped to FDD at an FR2 frequency.
  {
    std::vector<phy::BandInfo> bands(phy::all_bands().begin(), phy::all_bands().end());
    for (auto& b : bands)
      if (b.name == "n41") {
        b.duplex = phy::Duplex::kFdd;
        b.center_freq_mhz = 26000.0;
      }
    lint.expect(detects([&](Linter& sub) { lint_band_catalogue(sub, bands); }),
                "self-test: corrupted n41 duplex/frequency must be detected");
  }
  // Malformed metric names: each offender must trip the naming rule.
  for (const char* bad : {"NoLayer_total", "sim.steps", "sim..steps_total",
                          "Sim.steps_total", "sim.steps_furlongs",
                          // serve-flavoured offenders: bad unit suffix,
                          // missing layer, camel-case noun.
                          "serve.shed_requests", "shed_total",
                          "serve.queueDepth_count",
                          // infer-flavoured offenders: camel-case noun,
                          // non-canonical unit, missing layer prefix.
                          "infer.planRuns_total", "infer.arena_megabytes",
                          "plan_runs_total"}) {
    lint.expect(
        detects([&](Linter& sub) { lint_metric_names(sub, {std::string(bad)}); }),
        std::string("self-test: malformed metric name must be detected: ") + bad);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool run_self_test = false;
  bool verbose = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      run_self_test = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      verbose = false;
    } else {
      std::cerr << "usage: prism5g_lint [--self-test] [--quiet]\n";
      return 2;
    }
  }

  Linter lint(verbose);

  std::vector<phy::McsEntry> mcs;
  for (int i = 0; i <= phy::kMaxMcsIndex; ++i) mcs.push_back(phy::mcs_entry(i));
  std::vector<phy::CqiEntry> cqi;
  for (int i = 0; i <= phy::kMaxCqiIndex; ++i) cqi.push_back(phy::cqi_entry(i));

  lint_mcs_table(lint, mcs);
  lint_cqi_table(lint, cqi);
  lint_link_adaptation(lint);
  lint_tbs(lint, phy::small_tbs_table());
  lint_band_catalogue(lint, phy::all_bands());
  lint_numerology(lint);
  lint_trace_schema(lint);
  // Runs last: the passes above exercised instrumented code, so the global
  // registry now holds every metric name those paths register.
  lint_metric_names(lint, obs::MetricsRegistry::global().names());
  lint_serve_metric_names(lint);
  lint_infer_metric_names(lint);
  if (run_self_test) self_test(lint);

  if (lint.failures().empty()) {
    std::cout << "prism5g_lint: " << lint.checks() << " checks passed"
              << (run_self_test ? " (incl. corruption self-test)" : "") << '\n';
    return 0;
  }
  std::cerr << "prism5g_lint: " << lint.failures().size() << " of " << lint.checks()
            << " checks FAILED\n";
  for (const auto& f : lint.failures()) std::cerr << "  " << f << '\n';
  return 1;
}
