// Fig. 9: the mapping among transport block size (TBS), MCS, and
// resource-element count (symbol allocation), at 2 MIMO layers — the
// PHY-layer envelope of per-CC throughput.
#include "bench_util.hpp"

#include "phy/mcs.hpp"
#include "phy/tbs.hpp"

int main() {
  using namespace ca5g;
  bench::banner("Fig. 9", "TBS vs MCS vs symbol allocation (2 MIMO layers, 100 PRBs)");

  common::TextTable table("Transport block size (bits) per slot");
  std::vector<std::string> header{"Symbols\\MCS"};
  const std::vector<int> mcs_points{0, 4, 9, 14, 19, 23, 27};
  for (int mcs : mcs_points) header.push_back("MCS" + std::to_string(mcs));
  table.set_header(header);

  for (int symbols = 2; symbols <= 14; symbols += 2) {
    std::vector<std::string> row{std::to_string(symbols)};
    for (int mcs : mcs_points) {
      phy::TbsParams p;
      p.prb_count = 100;
      p.symbols = symbols;
      p.mcs_index = mcs;
      p.mimo_layers = 2;
      row.push_back(std::to_string(phy::transport_block_size(p)));
    }
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // The #RE axis of the figure.
  common::TextTable re_table("Resource elements per allocation (100 PRBs)");
  re_table.set_header({"Symbols", "RE/PRB", "Total RE"});
  for (int symbols = 2; symbols <= 14; symbols += 2) {
    phy::TbsParams p;
    p.prb_count = 100;
    p.symbols = symbols;
    re_table.add_row({std::to_string(symbols),
                      std::to_string(phy::resource_elements_per_prb(p)),
                      std::to_string(phy::total_resource_elements(p))});
  }
  std::cout << re_table << "\n";
  std::cout << "Paper shape: TBS grows monotonically along both axes; the\n"
            << "RE/PRB count caps at 156 (TS 38.214 quantizer).\n";
  return 0;
}
