// Figs. 17, 18, 33–36: prediction time series on an urban driving
// trace, zooming into transition zones — Z1 (throughput drop at SCell
// deactivation) and Z2 (boost at SCell activation). Prophet/LSTM
// over-/under-shoot at transitions; Prism5G tracks them, and its
// per-CC heads decompose the aggregate (Figs. 33–34).
#include "bench_util.hpp"
#include "eval/pipeline.hpp"

namespace {

using namespace ca5g;

/// First-step-of-horizon prediction series over a whole trace.
std::vector<double> prediction_series(const predictors::Predictor& model,
                                      const sim::Trace& trace, double scale_mbps) {
  traces::DatasetSpec spec;
  std::vector<double> out;
  for (std::size_t now = spec.history;
       now + spec.horizon < trace.samples.size(); ++now) {
    const auto w = traces::build_window(trace.samples, now - spec.history, spec, 4,
                                        scale_mbps, true);
    out.push_back(model.predict(w).front() * scale_mbps);
  }
  return out;
}

/// RMSE restricted to ±`radius` samples around CC-count changes.
double transition_rmse(const std::vector<double>& pred, const sim::Trace& trace,
                       std::size_t radius) {
  traces::DatasetSpec spec;
  const auto counts = trace.cc_count_series();
  std::vector<double> p, t;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const std::size_t target_idx = i + spec.history;  // first horizon step
    bool near = false;
    for (std::size_t j = target_idx > radius ? target_idx - radius : 0;
         j < std::min(counts.size() - 1, target_idx + radius); ++j)
      near = near || counts[j] != counts[j + 1];
    if (!near) continue;
    p.push_back(pred[i]);
    t.push_back(trace.samples[target_idx].aggregate_tput_mbps);
  }
  if (p.size() < 5) return 0.0;
  return common::rmse(p, t);
}

}  // namespace

int main() {
  bench::banner("Figs. 17-18 / 33-36",
                "Prediction time series & transition zones Z1/Z2 (10 ms scale)");
  bench::BenchReport bench_json("fig17_transitions");

  // Training data: the standard OpZ driving short-scale sub-dataset.
  auto gen = eval::GenerationConfig::from_env();
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kShort, gen);
  common::Rng rng(170);
  const auto split = ds.random_split(0.5, 0.2, rng);

  auto prophet = eval::make_predictor("Prophet");
  auto lstm = eval::make_predictor("LSTM");
  auto prism = eval::make_predictor("Prism5G");
  prophet->fit(ds, split.train, split.val);
  std::cerr << "  training LSTM...\n";
  lstm->fit(ds, split.train, split.val);
  std::cerr << "  training Prism5G...\n";
  prism->fit(ds, split.train, split.val);

  // Fresh evaluation trace from the same campaign distribution.
  auto eval_gen = gen;
  eval_gen.seed = gen.seed + 4321;
  eval_gen.traces = 1;
  eval_gen.short_trace_duration_s = 40.0;
  const auto trace = eval::generate_traces(id, eval::TimeScale::kShort, eval_gen).front();

  const auto truth = trace.aggregate_series();
  const auto p_prophet = prediction_series(*prophet, trace, ds.tput_scale_mbps());
  const auto p_lstm = prediction_series(*lstm, trace, ds.tput_scale_mbps());
  const auto p_prism = prediction_series(*prism, trace, ds.tput_scale_mbps());

  std::cout << "Real    : " << bench::sparkline(truth) << "\n"
            << "Prophet : " << bench::sparkline(p_prophet) << "\n"
            << "LSTM    : " << bench::sparkline(p_lstm) << "\n"
            << "Prism5G : " << bench::sparkline(p_prism) << "\n\n";

  // Whole-trace and transition-zone RMSE (Fig. 18's Z1/Z2 contrast).
  traces::DatasetSpec spec;
  std::vector<double> aligned_truth;
  for (std::size_t i = 0; i < p_prism.size(); ++i)
    aligned_truth.push_back(truth[i + spec.history]);
  common::TextTable table("First-step prediction error (Mbps RMSE)");
  table.set_header({"Model", "Whole trace", "Transition zones (±0.25 s)"});
  auto add = [&](const char* name, const std::vector<double>& pred) {
    const double whole = common::rmse(pred, aligned_truth);
    const double zones = transition_rmse(pred, trace, 25);
    table.add_row({name, common::TextTable::num(whole, 0),
                   common::TextTable::num(zones, 0)});
    bench_json.result(std::string(name) + "_rmse_mbps", whole);
    bench_json.result(std::string(name) + "_transition_rmse_mbps", zones);
  };
  add("Prophet", p_prophet);
  add("LSTM", p_lstm);
  add("Prism5G", p_prism);
  std::cout << table << "\n";

  // Figs. 33-34: per-CC decomposition by Prism5G at one test window.
  auto* prism_model = dynamic_cast<core::Prism5G*>(prism.get());
  if (prism_model != nullptr && !split.test.empty()) {
    const auto& w = *split.test.front();
    const auto per_cc = prism_model->predict_per_cc(w);
    common::TextTable cc_table("Per-CC prediction vs target (first horizon step, Mbps)");
    cc_table.set_header({"CC slot", "Predicted", "Actual"});
    for (std::size_t c = 0; c < per_cc.size(); ++c)
      cc_table.add_row({"cc" + std::to_string(c),
                        common::TextTable::num(per_cc[c].front() * ds.tput_scale_mbps(), 0),
                        common::TextTable::num(w.cc_target[0][c] * ds.tput_scale_mbps(), 0)});
    std::cout << cc_table << "\n";
  }

  std::cout << "Paper shape: Prophet/LSTM overestimate in Z1 (drop) and\n"
            << "underestimate in Z2 (boost); Prism5G reacts fastest at\n"
            << "transitions and models each CC individually (Figs. 33-34).\n";
  return 0;
}
