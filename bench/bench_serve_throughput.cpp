// Serving throughput/latency budget. Drives the PredictionServer with
// the closed-loop trace-replay LoadGen (serve/loadgen) on a synthetic CA
// trace and enforces two acceptance thresholds:
//
//  1. >= 50k predictions/sec sustained with the naive (HarmonicMean)
//     predictor on 4 worker threads (CA5G_SERVE_MIN_RPS overrides);
//  2. p99 submit-to-completion latency under 2x the batch deadline —
//     micro-batching must add bounded, not unbounded, queueing delay.
//
// Sanitizer builds (TSan/ASan) run the same pipeline for the race/memory
// coverage but skip the performance assertions: instrumented code is
// legitimately 5-20x slower.
//
// `--smoke` shortens the run for ctest registration (label: serve).
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "predictors/naive.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "traces/dataset.hpp"

namespace {

using namespace ca5g;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

/// Same learnable structure the predictor unit tests use: cc0 sinusoid
/// PCell, cc1 square-wave SCell — cheap to generate, realistic feature
/// occupancy for windowing.
sim::Trace synthetic_trace(std::size_t samples) {
  sim::Trace trace;
  trace.op = ran::OperatorId::kOpZ;
  trace.mobility = "synthetic";
  trace.step_s = 0.01;
  trace.cc_slots = 4;
  for (std::size_t i = 0; i < samples; ++i) {
    sim::TraceSample s;
    s.time_s = static_cast<double>(i) * trace.step_s;
    s.ccs.assign(4, sim::CcSample{});
    const double t = static_cast<double>(i);

    sim::CcSample& cc0 = s.ccs[0];
    cc0.active = true;
    cc0.is_pcell = true;
    cc0.band = phy::BandId::kN41;
    cc0.bandwidth_mhz = 100;
    cc0.rsrp_dbm = -85.0 + 10.0 * std::sin(t / 40.0);
    cc0.sinr_db = 20.0 + 8.0 * std::sin(t / 40.0);
    cc0.cqi = 12;
    cc0.rb = 200;
    cc0.layers = 4;
    cc0.mcs = 22;
    cc0.tput_mbps = 500.0 + 280.0 * std::sin(t / 40.0);

    if ((static_cast<std::size_t>(t / 60.0) % 2) == 0) {
      sim::CcSample& cc1 = s.ccs[1];
      cc1.active = true;
      cc1.band = phy::BandId::kN25;
      cc1.bandwidth_mhz = 20;
      cc1.rsrp_dbm = -95.0;
      cc1.sinr_db = 12.0;
      cc1.cqi = 9;
      cc1.rb = 95;
      cc1.layers = 1;
      cc1.mcs = 16;
      cc1.tput_mbps = 150.0;
    }
    for (const auto& cc : s.ccs) s.aggregate_tput_mbps += cc.tput_mbps;
    trace.samples.push_back(std::move(s));
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("serve throughput",
                std::string("micro-batched predictions/sec + tail latency (") +
                    (kSanitizedBuild ? "sanitized build: perf asserts off" : "perf-asserted") +
                    ")");

  const auto trace = synthetic_trace(2000);
  traces::DatasetSpec spec;
  spec.stride = 5;
  const auto ds = traces::Dataset::from_traces({trace}, spec);

  auto model = std::make_shared<predictors::HarmonicMeanPredictor>();
  common::Rng rng(7);
  const auto split = ds.random_split(0.5, 0.2, rng);
  model->fit(ds, split.train, split.val);

  serve::ModelRegistry registry;
  registry.install("harmonic_mean", model);

  serve::ServerConfig server_config;
  server_config.workers = 4;
  server_config.max_batch = 32;
  server_config.batch_deadline = std::chrono::microseconds(1000);
  server_config.queue_capacity = 4096;
  server_config.history = ds.history();
  server_config.cc_slots = ds.cc_slots();
  server_config.tput_scale_mbps = ds.tput_scale_mbps();

  serve::LoadGenConfig gen_config;
  gen_config.ues = 16;
  gen_config.speed = 1000.0;
  gen_config.closed_loop = true;
  gen_config.max_in_flight = 256;
  gen_config.duration_s = smoke ? 1.0 : 3.0;
  gen_config.seed = 7;
  gen_config.expected_horizon = ds.horizon();

  serve::LoadGen gen(gen_config);
  serve::PredictionServer server(server_config, registry, gen.completion());
  const auto report = gen.run(server, trace);

  common::TextTable table("serve throughput (closed loop, " +
                          std::to_string(server_config.workers) + " workers, batch " +
                          std::to_string(server_config.max_batch) + ", deadline " +
                          std::to_string(server_config.batch_deadline.count()) + " us)");
  table.set_header({"metric", "value"});
  table.add_row({"offered", std::to_string(report.offered)});
  table.add_row({"completed", std::to_string(report.completed)});
  table.add_row({"shed", std::to_string(report.shed)});
  table.add_row({"errors", std::to_string(report.errors)});
  table.add_row({"wall s", common::TextTable::num(report.wall_s)});
  table.add_row({"predictions/s", common::TextTable::num(report.completed_per_s, 0)});
  table.add_row({"p50 latency ms", common::TextTable::num(report.p50_latency_ns / 1e6)});
  table.add_row({"p99 latency ms", common::TextTable::num(report.p99_latency_ns / 1e6)});
  std::cout << table.to_string() << "\n";

  bool ok = true;
  if (report.completed == 0) {
    std::cerr << "FAIL: no predictions completed\n";
    ok = false;
  }
  if (report.errors != 0) {
    std::cerr << "FAIL: " << report.errors << " errored predictions\n";
    ok = false;
  }

  if (kSanitizedBuild) {
    std::cout << "sanitized build: skipping throughput/latency thresholds\n";
    return ok ? 0 : 1;
  }

  double min_rps = 50000.0;
  if (const char* env = std::getenv("CA5G_SERVE_MIN_RPS")) min_rps = std::atof(env);
  if (report.completed_per_s < min_rps) {
    std::cerr << "FAIL: " << report.completed_per_s << " predictions/s < required "
              << min_rps << "\n";
    ok = false;
  }

  const double p99_budget_ns =
      2.0 * static_cast<double>(server_config.batch_deadline.count()) * 1e3;
  if (report.p99_latency_ns > p99_budget_ns) {
    std::cerr << "FAIL: p99 latency " << report.p99_latency_ns / 1e6 << " ms > budget "
              << p99_budget_ns / 1e6 << " ms (2x batch deadline)\n";
    ok = false;
  }

  std::cout << (ok ? "PASS" : "FAIL") << ": serve throughput budget\n";
  return ok ? 0 : 1;
}
