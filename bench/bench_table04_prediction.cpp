// Table 4 — the headline result: RMSE of Prism5G vs. Prophet, LSTM,
// TCN, and Lumos5G on the six sub-datasets (3 operators × walking/
// driving) at both time scales (10 ms / 100 ms horizon and 1 s / 10 s
// horizon). Lower is better; the final column is Prism5G's improvement
// over the best baseline.
#include <chrono>

#include "bench_util.hpp"
#include "eval/pipeline.hpp"

namespace {

using namespace ca5g;

const std::vector<std::string> kModels{"Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G"};

}  // namespace

int main() {
  bench::banner("Table 4",
                "Prediction RMSE (normalized) — Prism5G vs baselines, "
                "6 sub-datasets x 2 time scales");

  const auto gen = eval::GenerationConfig::from_env();

  for (auto scale : {eval::TimeScale::kShort, eval::TimeScale::kLong}) {
    common::TextTable table("Table 4 — " + eval::time_scale_name(scale));
    auto header = std::vector<std::string>{"Dataset"};
    for (const auto& m : kModels) header.push_back(m);
    header.push_back("Improv.(%)");
    table.set_header(header);

    common::RunningStats improvements;
    for (const auto& id : eval::all_sub_datasets()) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto ds = eval::make_ml_dataset(id, scale, gen);
      common::Rng rng(42 + static_cast<std::uint64_t>(id.op));
      const auto split = ds.random_split(0.5, 0.2, rng);

      std::vector<std::string> row{id.label()};
      double best_baseline = 1e9, prism = 0.0;
      for (const auto& name : kModels) {
        auto model = eval::make_predictor(name);
        const double rmse = eval::train_and_evaluate(*model, ds, split);
        row.push_back(common::TextTable::num(rmse, 3));
        if (name == "Prism5G")
          prism = rmse;
        else
          best_baseline = std::min(best_baseline, rmse);
      }
      const double improv = 100.0 * (best_baseline - prism) / best_baseline;
      improvements.add(improv);
      row.push_back(common::TextTable::num(improv, 2));
      table.add_row(std::move(row));

      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      std::cerr << "  [" << eval::time_scale_name(scale) << "] " << id.label()
                << " done in " << elapsed << "s\n";
    }
    std::cout << table;
    std::cout << "Mean improvement over best baseline: "
              << common::TextTable::num(improvements.mean(), 1) << "% (max "
              << common::TextTable::num(improvements.max(), 1) << "%)\n\n";
  }

  std::cout << "Paper shape: Prism5G wins every cell; average ≈14% / max ≈22%\n"
            << "RMSE reduction vs the best baseline; Prophet is consistently\n"
            << "the weakest; driving datasets are harder than walking.\n";
  return 0;
}
