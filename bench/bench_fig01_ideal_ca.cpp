// Fig. 1 / Fig. 23: achievable 4G and 5G throughput under the ideal
// channel condition (stationary, line-of-sight), showing how each added
// component carrier boosts the aggregate, for all three operators.
#include "bench_util.hpp"

#include "ue/capability.hpp"

namespace {

using namespace ca5g;

/// Average per-slot and aggregate throughput over a stationary run,
/// parked in line-of-sight of the operator's richest CA site.
/// `fr1_only` locks out mmWave to show the FR1 C-band CA row.
void report_operator(ran::OperatorId op, phy::Rat rat, common::TextTable& table,
                     bool fr1_only = false) {
  sim::ScenarioConfig config;
  config.op = op;
  config.rat = rat;
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = bench::fast_mode() ? 10.0 : 40.0;
  config.cc_slots = rat == phy::Rat::kLte ? 5 : 8;
  config.seed = 1200 + static_cast<std::uint64_t>(op) * 17 +
                (rat == phy::Rat::kNr ? 1 : 0);
  ran::DeploymentParams dep_params;
  dep_params.seed = config.seed * 977 + 13;
  const auto dep = ran::make_deployment(op, config.env, dep_params);

  if (fr1_only) {
    for (const auto& band : phy::all_bands())
      if (band.rat == phy::Rat::kNr && band.range != phy::BandRange::kHigh)
        config.band_lock.push_back(band.id);
  }
  // Park next to the site with the most usable carriers of this RAT.
  std::size_t best_site = 0, best_count = 0;
  for (std::size_t i = 0; i < dep.sites.size(); ++i) {
    std::size_t count = 0;
    for (auto id : dep.sites[i].carriers) {
      const auto& info = phy::band_info(dep.carrier(id).band);
      if (info.rat != rat) continue;
      if (fr1_only && info.range == phy::BandRange::kHigh) continue;
      ++count;
    }
    if (count > best_count) {
      best_count = count;
      best_site = i;
    }
  }
  const auto& hot_site = dep.sites[best_site];
  config.stationary_position =
      radio::Position{hot_site.pos.x + 60.0, hot_site.pos.y + 25.0};
  sim::SimulationEngine engine(dep, config);
  const auto trace = engine.run();

  std::string label = rat == phy::Rat::kNr ? "5G" : "4G";
  if (fr1_only) label += "-FR1";
  std::vector<std::string> row{ran::operator_name(op), label};
  double total = 0.0;
  std::size_t max_ccs = 0;
  for (std::size_t slot = 0; slot < config.cc_slots; ++slot) {
    const double cc_mean = common::mean(trace.cc_series(slot));
    if (cc_mean > 0.5) max_ccs = slot + 1;
    total += cc_mean;
  }
  for (std::size_t slot = 0; slot < 8; ++slot) {
    if (slot < config.cc_slots) {
      const double cc_mean = common::mean(trace.cc_series(slot));
      row.push_back(cc_mean > 0.5 ? common::TextTable::num(cc_mean, 0) : "-");
    } else {
      row.push_back("-");
    }
  }
  const auto agg = trace.aggregate_series();
  row.push_back(std::to_string(max_ccs));
  row.push_back(common::TextTable::num(common::mean(agg), 0));
  row.push_back(common::TextTable::num(common::percentile(agg, 99.5), 0));
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  bench::banner("Fig. 1 / Fig. 23",
                "CA boosts 4G and 5G throughput under ideal channel conditions "
                "(per-CC mean contributions, Mbps)");

  common::TextTable table("Ideal-condition throughput by operator (Mbps)");
  table.set_header({"Oper.", "RAT", "CC1", "CC2", "CC3", "CC4", "CC5", "CC6", "CC7",
                    "CC8", "#CC", "AggMean", "AggPeak"});
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    report_operator(op, phy::Rat::kLte, table);
    if (op != ran::OperatorId::kOpZ)
      report_operator(op, phy::Rat::kNr, table, /*fr1_only=*/true);
    report_operator(op, phy::Rat::kNr, table);
  }
  std::cout << table << "\n";

  std::cout << "Paper anchors: OpZ 5G 4CC FR1 peak ≈ 1.7 Gbps; OpX/OpY C-band CA\n"
            << "averages 1.3/1.6 Gbps; 4G CA reaches ≈ 100-300 Mbps.\n";
  return 0;
}
