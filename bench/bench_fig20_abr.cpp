// Figs. 20–21: UHD (16K) video-on-demand streaming with MPC ABR.
// MPC's harmonic-mean predictor is swapped for Prophet / LSTM / Prism5G
// (1 s scale, 10 s horizon). Reports average bitrate and stall time
// (Fig. 20) and the stall-time tail percentiles across sessions
// (Fig. 21).
#include "bench_util.hpp"
#include "apps/abr.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;
  bench::banner("Figs. 20-21",
                "MPC ABR (16K ladder) with swapped throughput predictors, 1 s scale");

  auto gen = eval::GenerationConfig::from_env();
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kLong, gen);
  common::Rng rng(200);
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::shared_ptr<predictors::Predictor> prophet{eval::make_predictor("Prophet")};
  std::shared_ptr<predictors::Predictor> lstm{eval::make_predictor("LSTM")};
  std::shared_ptr<predictors::Predictor> prism{eval::make_predictor("Prism5G")};
  prophet->fit(ds, split.train, split.val);
  std::cerr << "  training LSTM...\n";
  lstm->fit(ds, split.train, split.val);
  std::cerr << "  training Prism5G...\n";
  prism->fit(ds, split.train, split.val);

  traces::DatasetSpec spec;
  std::vector<std::pair<std::string, std::shared_ptr<apps::ThroughputEstimator>>>
      estimators;
  estimators.emplace_back("MPC (harmonic mean)",
                          std::make_shared<apps::HarmonicMeanEstimator>(5));
  estimators.emplace_back("MPC+Prophet", std::make_shared<apps::ModelEstimator>(
                                              prophet, spec, 4, ds.tput_scale_mbps()));
  estimators.emplace_back("MPC+LSTM", std::make_shared<apps::ModelEstimator>(
                                          lstm, spec, 4, ds.tput_scale_mbps()));
  estimators.emplace_back("MPC+Prism5G", std::make_shared<apps::ModelEstimator>(
                                             prism, spec, 4, ds.tput_scale_mbps()));

  // Streaming sessions over fresh 1 s-scale traces.
  auto eval_gen = gen;
  eval_gen.seed = gen.seed + 2020;
  eval_gen.traces = bench::fast_mode() ? 6 : 12;
  eval_gen.long_trace_duration_s = bench::fast_mode() ? 120.0 : 200.0;
  const auto traces_vec = eval::generate_traces(id, eval::TimeScale::kLong, eval_gen);

  apps::AbrConfig config;
  config.total_chunks = bench::fast_mode() ? 40 : 75;

  common::TextTable fig20("Fig. 20 — average QoE across sessions");
  fig20.set_header({"Predictor", "AvgBitrate(Mbps)", "AvgStall(s)"});
  common::TextTable fig21("Fig. 21 — stall-time tail percentiles (s)");
  fig21.set_header({"Predictor", "P90", "P95", "P99"});

  for (const auto& [name, estimator] : estimators) {
    std::vector<double> bitrates, stall_times;
    for (const auto& trace : traces_vec) {
      const auto r = apps::run_mpc_abr(trace, *estimator, config);
      bitrates.push_back(r.avg_bitrate_mbps);
      stall_times.push_back(r.stall_time_s);
    }
    fig20.add_row({name, common::TextTable::num(common::mean(bitrates), 1),
                   common::TextTable::num(common::mean(stall_times), 1)});
    fig21.add_row({name, common::TextTable::num(common::percentile(stall_times, 90), 1),
                   common::TextTable::num(common::percentile(stall_times, 95), 1),
                   common::TextTable::num(common::percentile(stall_times, 99), 1)});
    std::cerr << "  " << name << " done\n";
  }
  std::cout << fig20 << "\n" << fig21 << "\n";

  std::cout << "Paper shape: MPC+Prism5G cuts average stall time ≈19% with a\n"
            << "slight bitrate gain; Prophet/LSTM raise bitrate ≈2.5% but\n"
            << "barely reduce stalls (they overestimate during CC removals).\n"
            << "Tail stalls improve most: paper reports −50.8/−33.0/−16.0 s at\n"
            << "P99/P95/P90 for Prism5G.\n";
  return 0;
}
