// Design-choice ablation (paper §9 future work): swap Prism5G's LSTM
// encoder for a transformer (self-attention) encoder and compare
// accuracy and training behaviour on one sub-dataset per time scale.
#include "bench_util.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;
  bench::banner("Encoder ablation (paper §9)",
                "Prism5G with LSTM vs transformer per-CC encoders");

  auto gen = eval::GenerationConfig::from_env();
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};

  common::TextTable table("Prism5G encoder ablation (RMSE)");
  table.set_header({"Scale", "LSTM encoder", "Transformer encoder", "Epochs L/T"});
  for (auto scale : {eval::TimeScale::kShort, eval::TimeScale::kLong}) {
    const auto ds = eval::make_ml_dataset(id, scale, gen);
    common::Rng rng(99);
    const auto split = ds.random_split(0.5, 0.2, rng);

    const auto tc = predictors::train_config_from_env();
    core::Prism5gConfig lstm_config;
    core::Prism5G lstm_model(tc, lstm_config);
    const double lstm_rmse = eval::train_and_evaluate(lstm_model, ds, split);

    core::Prism5gConfig tr_config;
    tr_config.encoder = core::EncoderKind::kTransformer;
    core::Prism5G tr_model(tc, tr_config);
    const double tr_rmse = eval::train_and_evaluate(tr_model, ds, split);

    table.add_row({eval::time_scale_name(scale), common::TextTable::num(lstm_rmse, 3),
                   common::TextTable::num(tr_rmse, 3),
                   std::to_string(lstm_model.val_history().size()) + "/" +
                       std::to_string(tr_model.val_history().size())});
    std::cerr << "  " << eval::time_scale_name(scale) << " done\n";
  }
  std::cout << table << "\n";
  std::cout << "The framework is architecture-agnostic (paper §5.2): both\n"
            << "encoders share weights across CCs and plug into the same\n"
            << "mask/fusion machinery.\n";
  return 0;
}
