// Fig. 2 / Fig. 24: throughput distributions of 4G and 5G are
// multimodal — the modes correspond to areas covered by different CA
// combinations. Prints histograms and detected mode counts per
// operator/RAT from pooled driving traces.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

std::vector<double> pooled_driving_tput(ran::OperatorId op, phy::Rat rat) {
  std::vector<double> all;
  const std::size_t runs = bench::fast_mode() ? 2 : 4;
  for (std::size_t i = 0; i < runs; ++i) {
    sim::ScenarioConfig config;
    config.op = op;
    config.rat = rat;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = bench::fast_mode() ? 30.0 : 60.0;
    config.step_s = 0.02;
    config.cc_slots = rat == phy::Rat::kLte ? 5 : 4;
    config.seed = 400 + 31 * i + 7 * static_cast<std::uint64_t>(op) +
                  (rat == phy::Rat::kNr ? 3 : 0);
    const auto agg = sim::run_scenario(config).aggregate_series();
    all.insert(all.end(), agg.begin(), agg.end());
  }
  return all;
}

void print_histogram(const std::vector<double>& xs, const std::string& label) {
  const double hi = common::percentile(xs, 99.5);
  const auto counts = common::histogram(xs, 0.0, hi, 24);
  std::size_t peak = 1;
  for (auto c : counts) peak = std::max(peak, c);
  std::cout << label << " (0 .. " << common::TextTable::num(hi, 0) << " Mbps, "
            << xs.size() << " samples, "
            << common::count_modes(xs, 24, 0.015) << " modes)\n";
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const auto bars = static_cast<std::size_t>(48.0 * counts[b] / peak);
    std::cout << "  " << common::TextTable::num(hi * b / counts.size(), 0) << "\t|"
              << std::string(bars, '#') << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner("Fig. 2 / Fig. 24",
                "Multimodal throughput distributions induced by CA "
                "(pooled urban driving samples)");

  common::TextTable table("Mode counts per operator/RAT");
  table.set_header({"Oper.", "RAT", "Samples", "Mean", "Std", "P95", "Modes"});
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    for (auto rat : {phy::Rat::kLte, phy::Rat::kNr}) {
      const auto xs = pooled_driving_tput(op, rat);
      const auto s = bench::summarize(xs);
      table.add_row({ran::operator_name(op), rat == phy::Rat::kNr ? "5G" : "4G",
                     std::to_string(xs.size()), common::TextTable::num(s.mean, 0),
                     common::TextTable::num(s.stddev, 0),
                     common::TextTable::num(s.p95, 0),
                     std::to_string(common::count_modes(xs, 24, 0.015))});
    }
  }
  std::cout << table << "\n";

  print_histogram(pooled_driving_tput(ran::OperatorId::kOpZ, phy::Rat::kNr),
                  "OpZ 5G throughput histogram");
  print_histogram(pooled_driving_tput(ran::OperatorId::kOpZ, phy::Rat::kLte),
                  "OpZ 4G throughput histogram");

  std::cout << "Paper shape: both 4G and 5G distributions show multiple peaks\n"
            << "(CA combination coverage areas); 5G spans a far wider range.\n";
  return 0;
}
