// Fig. 7 + Appendix A.2 "Impact of CC Changes": a 120-second urban
// drive showing drastic throughput changes when CCs are added/removed,
// plus the CC-change cadence and throughput-variance statistics per
// environment.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct CcChangeStats {
  double mean_interval_s = 0.0;
  double tput_std_around_changes = 0.0;
  double tput_std_stable = 0.0;
  std::size_t changes = 0;
};

CcChangeStats analyze(const sim::Trace& trace) {
  CcChangeStats stats;
  const auto counts = trace.cc_count_series();
  const auto agg = trace.aggregate_series();
  std::vector<std::size_t> change_idx;
  for (std::size_t i = 1; i < counts.size(); ++i)
    if (counts[i] != counts[i - 1]) change_idx.push_back(i);
  stats.changes = change_idx.size();
  if (change_idx.size() >= 2)
    stats.mean_interval_s = (trace.step_s * static_cast<double>(change_idx.back() -
                                                                change_idx.front())) /
                            static_cast<double>(change_idx.size() - 1);

  // Std-dev of throughput within ±2.5 s of a change vs. elsewhere.
  const auto window = static_cast<std::size_t>(2.5 / trace.step_s);
  std::vector<bool> near_change(agg.size(), false);
  for (auto idx : change_idx)
    for (std::size_t i = idx > window ? idx - window : 0;
         i < std::min(agg.size(), idx + window); ++i)
      near_change[i] = true;
  std::vector<double> near, stable;
  for (std::size_t i = 0; i < agg.size(); ++i)
    (near_change[i] ? near : stable).push_back(agg[i]);
  if (near.size() > 2) stats.tput_std_around_changes = common::stddev(near);
  if (stable.size() > 2) stats.tput_std_stable = common::stddev(stable);
  return stats;
}

}  // namespace

int main() {
  bench::banner("Fig. 7 / App. A.2",
                "CC add/remove dynamics during a 120 s urban drive");

  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 120.0;
  config.step_s = 0.02;
  config.seed = 7070;
  const auto trace = sim::run_scenario(config);

  std::cout << "Aggregate throughput: " << bench::sparkline(trace.aggregate_series())
            << "\n";
  std::cout << "Active CC count:      " << bench::sparkline(trace.cc_count_series())
            << "\n\n";

  // Event ledger (the paper's annotated arrows).
  std::cout << "RRC CA events:\n";
  for (const auto& s : trace.samples)
    for (const auto& e : s.events)
      std::cout << "  t=" << common::TextTable::num(e.time_s, 2) << "s  "
                << ran::rrc_event_name(e.type) << "\n";
  std::cout << "\n";

  common::TextTable table("CC-change cadence & variance by environment");
  table.set_header({"Env", "Changes", "MeanInterval(s)", "TputStd@change",
                    "TputStd stable"});
  for (auto env : {radio::Environment::kUrbanMacro, radio::Environment::kSuburbanMacro,
                   radio::Environment::kHighway}) {
    sim::ScenarioConfig env_config = config;
    env_config.env = env;
    env_config.duration_s = bench::fast_mode() ? 60.0 : 150.0;
    env_config.seed = 7100 + static_cast<std::uint64_t>(env);
    const auto stats = analyze(sim::run_scenario(env_config));
    const std::string name = env == radio::Environment::kUrbanMacro ? "Urban"
                             : env == radio::Environment::kSuburbanMacro ? "Suburban"
                                                                         : "Beltway";
    table.add_row({name, std::to_string(stats.changes),
                   common::TextTable::num(stats.mean_interval_s, 1),
                   common::TextTable::num(stats.tput_std_around_changes, 0),
                   common::TextTable::num(stats.tput_std_stable, 0)});
  }
  std::cout << table << "\n";
  std::cout << "Paper shape: CC additions/removals cause ≈2× throughput jumps\n"
            << "within a second; variance near changes far exceeds the stable\n"
            << "periods (paper: 212 vs 123 Mbps std in urban driving).\n";
  return 0;
}
