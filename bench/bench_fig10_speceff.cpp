// Fig. 10: spectral efficiency (bps/Hz) of selected channels across
// low/mid/high bands under good channel conditions (CQI > 12),
// measured from band-locked stationary runs.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct Probe {
  ran::OperatorId op;
  phy::BandId band;
  const char* label;
};

}  // namespace

int main() {
  bench::banner("Fig. 10",
                "Spectral efficiency of selected channels (good channel, CQI>12)");

  const std::vector<Probe> probes{
      {ran::OperatorId::kOpZ, phy::BandId::kN71, "n71 (low, FDD)"},
      {ran::OperatorId::kOpZ, phy::BandId::kN25, "n25 (mid, FDD)"},
      {ran::OperatorId::kOpZ, phy::BandId::kN41, "n41 (mid, TDD)"},
      {ran::OperatorId::kOpY, phy::BandId::kN77, "n77 (mid, TDD)"},
      {ran::OperatorId::kOpY, phy::BandId::kN261, "n261 (mmWave)"},
  };

  common::TextTable table("Spectral efficiency under ideal conditions");
  table.set_header({"Channel", "BW(MHz)", "Mean Tput(Mbps)", "Eff(bps/Hz)", "CQI"});
  std::uint64_t seed = 1010;
  for (const auto& probe : probes) {
    sim::ScenarioConfig config;
    config.op = probe.op;
    config.mobility = sim::Mobility::kStationary;
    config.duration_s = bench::fast_mode() ? 15.0 : 40.0;
    config.band_lock = {probe.band};
    config.modem = ue::ModemModel::kX50;  // single CC
    config.cc_slots = 1;
    config.seed = seed++;

    ran::DeploymentParams params;
    params.seed = config.seed * 7 + 1;
    const auto dep = ran::make_deployment(probe.op, config.env, params);
    // Park close to a site hosting the band.
    for (std::size_t i = 0; i < dep.sites.size(); ++i) {
      bool has = false;
      for (auto id : dep.sites[i].carriers) has = has || dep.carrier(id).band == probe.band;
      if (has) {
        config.stationary_position =
            radio::Position{dep.sites[i].pos.x + 50.0, dep.sites[i].pos.y + 20.0};
        break;
      }
    }
    sim::SimulationEngine engine(dep, config);
    const auto trace = engine.run();

    // Filter to good-channel samples (CQI > 12) as in the paper.
    std::vector<double> tput;
    double bw = 0;
    double cqi_sum = 0;
    for (const auto& s : trace.samples) {
      if (s.ccs.empty() || !s.ccs[0].active || s.ccs[0].cqi <= 12) continue;
      tput.push_back(s.ccs[0].tput_mbps);
      bw = s.ccs[0].bandwidth_mhz;
      cqi_sum += s.ccs[0].cqi;
    }
    if (tput.empty()) {
      table.add_row({probe.label, "-", "-", "-", "-"});
      continue;
    }
    const double mean = common::mean(tput);
    table.add_row({probe.label, common::TextTable::num(bw, 0),
                   common::TextTable::num(mean, 0),
                   common::TextTable::num(mean / bw, 2),
                   common::TextTable::num(cqi_sum / tput.size(), 1)});
  }
  std::cout << table << "\n";
  std::cout << "Paper shape: mid-band TDD channels (n41/n77) achieve the best\n"
            << "bps/Hz; low-band FDD is antenna-limited (2 layers); mmWave\n"
            << "trades per-Hz efficiency for raw bandwidth.\n";
  return 0;
}
