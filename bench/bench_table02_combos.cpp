// Table 2 / 6 / 7: per-operator channel allocation (bands, duplex
// modes, bandwidths) and the CA combinations observed in drive tests,
// with ordered/unique-set counts and aggregate bandwidths.
#include <map>
#include <set>

#include "bench_util.hpp"

namespace {

using namespace ca5g;

void channel_allocation_table(ran::OperatorId op) {
  ran::DeploymentParams params;
  params.seed = 77 + static_cast<std::uint64_t>(op);
  const auto dep = ran::make_deployment(op, radio::Environment::kUrbanMacro, params);

  // Band → set of bandwidths and channel count.
  std::map<phy::BandId, std::set<int>> bandwidths;
  std::map<phy::BandId, std::set<int>> channels;
  for (const auto& c : dep.carriers) {
    bandwidths[c.band].insert(c.bandwidth_mhz);
    channels[c.band].insert(c.channel_index);
  }

  common::TextTable table("Table 6 — " + ran::operator_name(op) +
                          " channel allocation");
  table.set_header({"Band", "Duplex", "Freq(MHz)", "BW(MHz)", "#Ch"});
  for (const auto& [band, bws] : bandwidths) {
    const auto& info = phy::band_info(band);
    std::string bw_list;
    for (int bw : bws) {
      if (!bw_list.empty()) bw_list += ',';
      bw_list += std::to_string(bw);
    }
    table.add_row({std::string(info.name),
                   info.duplex == phy::Duplex::kFdd ? "FDD" : "TDD",
                   common::TextTable::num(info.center_freq_mhz, 0), bw_list,
                   std::to_string(channels[band].size())});
  }
  std::cout << table << "\n";
}

void combo_census(ran::OperatorId op) {
  // Aggregate over several drive runs, as the paper aggregates a
  // campaign. Key: ordered list of (band, channel) — the paper counts
  // both SCell-order-sensitive and unique-set combinations.
  std::map<std::string, std::pair<int, std::set<std::string>>> by_label;  // unused
  std::set<std::vector<int>> ordered_4g, ordered_5g;
  std::set<std::set<int>> sets_4g, sets_5g;
  std::map<std::set<int>, int> set_bw_5g;

  const std::size_t runs = bench::fast_mode() ? 2 : 5;
  for (auto rat : {phy::Rat::kLte, phy::Rat::kNr}) {
    for (std::size_t run = 0; run < runs; ++run) {
      sim::ScenarioConfig config;
      config.op = op;
      config.rat = rat;
      config.mobility = sim::Mobility::kDriving;
      config.duration_s = bench::fast_mode() ? 25.0 : 50.0;
      config.step_s = 0.02;
      config.cc_slots = rat == phy::Rat::kLte ? 5 : 8;
      config.seed = 500 + run * 97 + static_cast<std::uint64_t>(op) * 11 +
                    (rat == phy::Rat::kNr ? 1 : 0);
      const auto trace = sim::run_scenario(config);
      for (const auto& s : trace.samples) {
        std::vector<int> ordered;
        std::set<int> unordered;
        int bw = 0;
        for (const auto& cc : s.ccs) {
          if (!cc.active) continue;
          const int key = static_cast<int>(cc.band) * 8 + cc.channel_index;
          ordered.push_back(key);
          unordered.insert(key);
          bw += cc.bandwidth_mhz;
        }
        if (ordered.size() < 2) continue;
        if (rat == phy::Rat::kNr) {
          ordered_5g.insert(ordered);
          sets_5g.insert(unordered);
          set_bw_5g[unordered] = bw;
        } else {
          ordered_4g.insert(ordered);
          sets_4g.insert(unordered);
        }
      }
    }
  }

  common::TextTable table("Table 2(b)/7 — " + ran::operator_name(op) +
                          " CA combination census");
  table.set_header({"Family", "Max CCs", "Max Aggr. BW", "Num (ordered/sets)"});
  std::size_t max_4g = 0, max_5g = 0;
  for (const auto& v : ordered_4g) max_4g = std::max(max_4g, v.size());
  int max_bw_5g = 0;
  for (const auto& v : ordered_5g) max_5g = std::max(max_5g, v.size());
  for (const auto& [unordered, bw] : set_bw_5g) max_bw_5g = std::max(max_bw_5g, bw);
  table.add_row({"4G up to " + std::to_string(max_4g) + " CCs", std::to_string(max_4g),
                 "~100 MHz", std::to_string(ordered_4g.size()) + "/" +
                                 std::to_string(sets_4g.size())});
  table.add_row({"5G combos", std::to_string(max_5g),
                 std::to_string(max_bw_5g) + " MHz",
                 std::to_string(ordered_5g.size()) + "/" +
                     std::to_string(sets_5g.size())});
  std::cout << table << "\n";
}

}  // namespace

int main() {
  bench::banner("Table 2 / 6 / 7",
                "Channel allocation and CA combinations per operator");
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    channel_allocation_table(op);
    combo_census(op);
  }
  std::cout << "Paper shape: 4G combos far outnumber 5G combos; OpZ reaches 4\n"
            << "FR1 CCs / 180 MHz; OpX & OpY reach 8 mmWave CCs / 800 MHz.\n";
  return 0;
}
