// Tables 8–10 / Figs. 31–32: temporal dynamics. Per-CC signal strength
// is stable across times of day (Table 8), while rush-hour load shrinks
// the RB allocation — throughput drops even though CQI/MCS stay flat —
// especially at locations with poor coverage (Tables 9–10).
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct HourStats {
  double rsrp[4] = {0, 0, 0, 0};
  double rsrp_std[4] = {0, 0, 0, 0};
  double cqi = 0, mcs = 0, rb = 0, tput = 0;
};

HourStats probe(double hour, bool good_coverage, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = bench::fast_mode() ? 20.0 : 60.0;
  config.start_hour = hour;
  config.seed = seed;
  config.stationary_position = good_coverage ? radio::Position{120.0, 40.0}
                                             : radio::Position{180.0, 190.0};
  const auto trace = sim::run_scenario(config);

  HourStats stats;
  std::vector<double> rsrp_series[4];
  std::size_t n = 0;
  for (const auto& s : trace.samples) {
    bool any = false;
    for (std::size_t c = 0; c < 4 && c < s.ccs.size(); ++c) {
      if (!s.ccs[c].active) continue;
      rsrp_series[c].push_back(s.ccs[c].rsrp_dbm);
      stats.cqi += s.ccs[c].cqi;
      stats.mcs += s.ccs[c].mcs;
      stats.rb += s.ccs[c].rb;
      any = true;
      ++n;
    }
    if (any) stats.tput += s.aggregate_tput_mbps;
  }
  if (n > 0) {
    stats.cqi /= n;
    stats.mcs /= n;
    stats.rb /= n;
    stats.tput /= trace.samples.size();
  }
  for (std::size_t c = 0; c < 4; ++c) {
    if (rsrp_series[c].empty()) continue;
    stats.rsrp[c] = common::mean(rsrp_series[c]);
    stats.rsrp_std[c] = common::stddev(rsrp_series[c]);
  }
  return stats;
}

}  // namespace

int main() {
  bench::banner("Tables 8-10 / Figs. 31-32",
                "Temporal dynamics: per-CC RSRP stability vs load-driven RB shrink");

  // Table 8: per-CC signal strength at peak (T1) and off-peak (T2, T3).
  const double hours[3] = {17.0, 11.0, 23.0};  // T1 rush, T2 midday, T3 night
  const char* labels[3] = {"T1 (rush 17:00)", "T2 (11:00)", "T3 (23:00)"};

  common::TextTable t8("Table 8 — per-CC RSRP (dBm) by time of day (good coverage)");
  t8.set_header({"Time", "CC-1", "CC-2", "CC-3", "CC-4"});
  for (int t = 0; t < 3; ++t) {
    const auto stats = probe(hours[t], true, 808);
    std::vector<std::string> row{labels[t]};
    for (int c = 0; c < 4; ++c)
      row.push_back(common::TextTable::num(stats.rsrp[c], 1) + " ± " +
                    common::TextTable::num(stats.rsrp_std[c], 1));
    t8.add_row(std::move(row));
  }
  std::cout << t8 << "\n";

  // Tables 9 & 10: CQI/MCS/#RB at good and bad coverage spots.
  for (bool good : {true, false}) {
    common::TextTable table(good ? "Table 9 — good-coverage location"
                                 : "Table 10 — bad-coverage location");
    table.set_header({"Time", "CQI", "MCS", "#RB", "AggTput(Mbps)"});
    for (int t = 0; t < 3; ++t) {
      const auto stats = probe(hours[t], good, good ? 809 : 810);
      table.add_row({labels[t], common::TextTable::num(stats.cqi, 1),
                     common::TextTable::num(stats.mcs, 1),
                     common::TextTable::num(stats.rb, 1),
                     common::TextTable::num(stats.tput, 0)});
    }
    std::cout << table << "\n";
  }

  std::cout << "Paper shape: per-CC RSRP converges across times of day\n"
            << "(hardware doesn't move); CQI/MCS stay flat while #RB — and\n"
            << "with it throughput — shrinks at rush hour, most visibly at\n"
            << "poorly covered locations.\n";
  return 0;
}
