// Table 14: generalizability of Prism5G — (1) train/test split by whole
// traces (same route, different runs) and (2) evaluation on traces from
// entirely new routes not in the training set. OpZ walking, 1 s scale,
// as in the paper.
#include "bench_util.hpp"
#include "eval/pipeline.hpp"

namespace {

using namespace ca5g;

const std::vector<std::string> kModels{"Prophet", "LSTM", "Lumos5G", "Prism5G"};

void evaluate_setting(const std::string& label, const traces::Dataset& train_ds,
                      const traces::Dataset::Split& split, common::TextTable& table) {
  std::vector<std::string> row{label};
  double best_baseline = 1e9, prism = 0.0;
  for (const auto& name : kModels) {
    auto model = eval::make_predictor(name);
    const double rmse = eval::train_and_evaluate(*model, train_ds, split);
    row.push_back(common::TextTable::num(rmse, 3));
    if (name == "Prism5G")
      prism = rmse;
    else
      best_baseline = std::min(best_baseline, rmse);
  }
  row.push_back(common::TextTable::num(100.0 * (best_baseline - prism) / best_baseline, 1));
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  bench::banner("Table 14",
                "Generalizability: unseen runs of the same route & entirely new routes "
                "(OpZ walking, 1 s scale)");

  auto gen = eval::GenerationConfig::from_env();
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kWalking};

  common::TextTable table("Table 14 — RMSE under generalization splits");
  auto header = std::vector<std::string>{"Setting"};
  for (const auto& m : kModels) header.push_back(m);
  header.push_back("Improv.(%)");
  table.set_header(header);

  // (1) Same route, different runs: split whole traces.
  {
    const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kLong, gen);
    common::Rng rng(141);
    const auto split = ds.trace_split(0.6, 0.2, rng);
    evaluate_setting("(1) same route, unseen runs", ds, split, table);
    std::cerr << "  setting (1) done\n";
  }

  // (2) New routes: train on the standard dataset, test on traces
  // simulated over different deployments/routes (fresh seeds).
  {
    const auto train_ds = eval::make_ml_dataset(id, eval::TimeScale::kLong, gen);
    auto new_gen = gen;
    new_gen.seed = gen.seed + 99991;  // different deployment & routes
    const auto test_traces = eval::generate_traces(id, eval::TimeScale::kLong, new_gen);
    traces::DatasetSpec spec;
    // Evaluate new-route windows on the training normalization scale so
    // predictions and targets share units.
    std::vector<traces::Window> new_windows;
    for (const auto& trace : test_traces)
      for (std::size_t start = 0; start + 20 <= trace.samples.size(); start += 2)
        new_windows.push_back(traces::build_window(trace.samples, start, spec, 4,
                                                   train_ds.tput_scale_mbps()));
    common::Rng rng(142);
    auto split = train_ds.random_split(0.7, 0.2, rng);
    split.test.clear();
    for (const auto& w : new_windows) split.test.push_back(&w);
    evaluate_setting("(2) entirely new routes", train_ds, split, table);
    std::cerr << "  setting (2) done\n";
  }

  std::cout << table << "\n";
  std::cout << "Paper shape: Prism5G stays best under both splits (≈9.4% and\n"
            << "≈12.5% lower RMSE than the best baseline); new routes are\n"
            << "harder than unseen runs of a known route for every model.\n";
  return 0;
}
