// Figs. 26–29: mobility & scenario effects. (26) driving throughput per
// operator/environment/RAT; (27/28) indoor walking — FDD-TDD CA with a
// low-band PCell keeps OpZ connected indoors; (29) UE-capability impact
// (S10/S21/S22 modem generations).
#include "bench_util.hpp"

namespace {

using namespace ca5g;

double mean_drive_tput(ran::OperatorId op, phy::Rat rat, radio::Environment env,
                       std::uint64_t seed) {
  common::RunningStats stats;
  const std::size_t runs = bench::fast_mode() ? 1 : 3;
  for (std::size_t run = 0; run < runs; ++run) {
    sim::ScenarioConfig config;
    config.op = op;
    config.rat = rat;
    config.env = env;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = bench::fast_mode() ? 30.0 : 70.0;
    config.step_s = 0.05;
    config.cc_slots = rat == phy::Rat::kLte ? 5 : 4;
    config.seed = seed + run * 101;
    stats.add(common::mean(sim::run_scenario(config).aggregate_series()));
  }
  return stats.mean();
}

}  // namespace

int main() {
  bench::banner("Figs. 26-29", "Mobility, indoor coverage, and UE capability");

  // --- Fig. 26: driving throughput.
  common::TextTable fig26("Fig. 26 — mean driving throughput (Mbps)");
  fig26.set_header({"Oper.", "RAT", "Urban", "Suburban", "Beltway"});
  std::uint64_t seed = 2600;
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    for (auto rat : {phy::Rat::kLte, phy::Rat::kNr}) {
      std::vector<std::string> row{ran::operator_name(op),
                                   rat == phy::Rat::kNr ? "5G" : "4G"};
      for (auto env : {radio::Environment::kUrbanMacro,
                       radio::Environment::kSuburbanMacro, radio::Environment::kHighway})
        row.push_back(
            common::TextTable::num(mean_drive_tput(op, rat, env, seed++), 0));
      fig26.add_row(std::move(row));
    }
  }
  std::cout << fig26 << "\n";

  // --- Figs. 27-28: indoor walking; OpZ's low-band PCell advantage.
  common::TextTable fig27("Figs. 27-28 — indoor walking (Mbps / PCell band / coverage)");
  fig27.set_header({"Oper.", "MeanTput", "PCell low-band share(%)", "Connected(%)"});
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    sim::ScenarioConfig config;
    config.op = op;
    config.env = radio::Environment::kIndoor;
    config.ue_indoor = true;
    config.mobility = sim::Mobility::kWalking;
    config.duration_s = bench::fast_mode() ? 40.0 : 90.0;
    config.step_s = 0.05;
    config.seed = 2700 + static_cast<std::uint64_t>(op);
    const auto trace = sim::run_scenario(config);
    std::size_t low_pcell = 0, connected = 0;
    for (const auto& s : trace.samples) {
      if (s.active_cc_count() == 0) continue;
      ++connected;
      if (phy::band_info(s.ccs[0].band).range == phy::BandRange::kLow) ++low_pcell;
    }
    fig27.add_row(
        {ran::operator_name(op),
         common::TextTable::num(common::mean(trace.aggregate_series()), 0),
         common::TextTable::num(connected ? 100.0 * low_pcell / connected : 0.0, 0),
         common::TextTable::num(100.0 * connected / trace.samples.size(), 0)});
  }
  std::cout << fig27 << "\n";

  // --- Fig. 29: UE capability (modem generation) on a walking route.
  common::TextTable fig29("Fig. 29 — UE capability impact (OpZ outdoor walking)");
  fig29.set_header({"Phone/modem", "MeanTput(Mbps)", "MeanCCs", "MaxCCs"});
  for (auto modem : {ue::ModemModel::kX50, ue::ModemModel::kX60, ue::ModemModel::kX65,
                     ue::ModemModel::kX70}) {
    sim::ScenarioConfig config;
    config.op = ran::OperatorId::kOpZ;
    config.mobility = sim::Mobility::kWalking;
    config.duration_s = bench::fast_mode() ? 40.0 : 90.0;
    config.step_s = 0.05;
    config.modem = modem;
    config.seed = 2900;
    const auto trace = sim::run_scenario(config);
    const auto& capability = ue::ue_capability(modem);
    const auto counts = trace.cc_count_series();
    fig29.add_row({std::string(capability.phone_model) + " (" +
                       std::string(capability.modem_name) + ")",
                   common::TextTable::num(common::mean(trace.aggregate_series()), 0),
                   common::TextTable::num(common::mean(counts), 2),
                   common::TextTable::num(common::max_value(counts), 0)});
  }
  std::cout << fig29 << "\n";

  std::cout << "Paper shape: urban > suburban > beltway 5G throughput; OpZ\n"
            << "keeps indoor 5G via FDD low-band PCell (others often drop);\n"
            << "newer modems aggregate more CCs → higher throughput (S10\n"
            << "cannot SA-CA at all).\n";
  return 0;
}
