// Fig. 15: the same 40 MHz n41 channel used as SCell in two different
// CA combinations — same RSRP/CQI/layers, very different throughput,
// because the scheduler starves the extra SCell once the combination's
// aggregate bandwidth is large (busy-cell RB throttling).
#include "bench_util.hpp"

#include "ran/scheduler.hpp"

namespace {

using namespace ca5g;

ran::CcAllocation average_scell(const ran::CaContext& ctx, double load, int draws) {
  ran::Scheduler scheduler;
  common::Rng rng(15150);
  ran::Carrier carrier;
  carrier.band = phy::BandId::kN41;
  carrier.bandwidth_mhz = 40;
  carrier.scs_khz = 30;
  radio::LinkMeasurement link;
  link.rsrp_dbm = -88.0;
  link.sinr_db = 22.0;
  const auto capability = ue::ue_capability(ue::ModemModel::kX70);

  double tput = 0, rb = 0, layers = 0, cqi = 0;
  for (int i = 0; i < draws; ++i) {
    const auto alloc = scheduler.allocate(carrier, link, ctx, capability, load, rng);
    tput += alloc.tput_bps / 1e6;
    rb += alloc.rb;
    layers += alloc.layers;
    cqi += alloc.cqi;
  }
  ran::CcAllocation mean;
  mean.tput_bps = tput / draws * 1e6;
  mean.rb = static_cast<int>(rb / draws);
  mean.layers = static_cast<int>(layers / draws + 0.5);
  mean.cqi = static_cast<int>(cqi / draws + 0.5);
  return mean;
}

}  // namespace

int main() {
  bench::banner("Fig. 15",
                "Same 40 MHz n41 SCell in different CA combinations "
                "(busy cell, load = 0.6)");

  const int draws = 2000;
  // Combination 1: n41(100) + n41(40) — 140 MHz intra-band.
  ran::CaContext narrow;
  narrow.active_ccs = 2;
  narrow.aggregate_bw_mhz = 140;
  narrow.is_pcell = false;
  // Combination 2: n25(20) + n41(100) + n41(40) + n71(20) — wider combo.
  ran::CaContext wide;
  wide.active_ccs = 4;
  wide.aggregate_bw_mhz = 180;
  wide.is_pcell = false;
  // Combination 3: an even wider hypothetical (paper: "with the other
  // CCs having 120MHz bandwidth" → 240 MHz total).
  ran::CaContext widest;
  widest.active_ccs = 3;
  widest.aggregate_bw_mhz = 240;
  widest.is_pcell = false;

  common::TextTable table("40 MHz n41 SCell allocation by combination");
  table.set_header({"Combination", "AggBW", "CQI", "Layers", "#RB", "Tput(Mbps)"});
  auto add = [&](const char* label, const ran::CaContext& ctx) {
    const auto a = average_scell(ctx, 0.6, draws);
    table.add_row({label, std::to_string(ctx.aggregate_bw_mhz), std::to_string(a.cqi),
                   std::to_string(a.layers), std::to_string(a.rb),
                   common::TextTable::num(a.tput_bps / 1e6, 0)});
  };
  add("n41+n41 (140MHz)", narrow);
  add("n41+n71+n25+n41 (180MHz)", wide);
  add("n25+n41(120)+n41 (240MHz)", widest);
  std::cout << table << "\n";

  std::cout << "Paper shape: identical RSRP/CQI/layers across combinations, yet\n"
            << "the SCell's #RB — and with it throughput — shrinks sharply in\n"
            << "the widest combination (service-busy-area throttling).\n";
  return 0;
}
