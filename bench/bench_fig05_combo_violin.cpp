// Fig. 5: aggregate throughput distributions of six representative 5G
// CA combinations ("violin" plots). The same aggregate bandwidth can
// yield very different throughput depending on the band combination.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct ComboSpec {
  std::string label;
  ran::OperatorId op;
  std::vector<std::pair<phy::BandId, int>> channels;  ///< (band, bandwidth)
  int aggregate_bw;
};

/// Run a stationary band-locked scenario restricted to exactly the
/// carriers of the combination at the best hosting site.
std::vector<double> combo_tput(const ComboSpec& spec, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.op = spec.op;
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = bench::fast_mode() ? 20.0 : 60.0;
  config.seed = seed;

  ran::DeploymentParams params;
  params.seed = seed * 31 + 5;
  const auto dep = ran::make_deployment(spec.op, radio::Environment::kUrbanMacro, params);

  // Find a site hosting all requested channels; lock to those carriers.
  for (std::size_t site_idx = 0; site_idx < dep.sites.size(); ++site_idx) {
    std::vector<ran::CarrierId> lock;
    auto needed = spec.channels;
    for (auto id : dep.sites[site_idx].carriers) {
      const auto& c = dep.carrier(id);
      for (auto it = needed.begin(); it != needed.end(); ++it) {
        if (it->first == c.band && it->second == c.bandwidth_mhz) {
          lock.push_back(id);
          needed.erase(it);
          break;
        }
      }
    }
    if (needed.empty()) {
      config.carrier_lock = lock;
      config.stationary_position = radio::Position{dep.sites[site_idx].pos.x + 150.0,
                                                   dep.sites[site_idx].pos.y + 80.0};
      sim::SimulationEngine engine(dep, config);
      return engine.run().aggregate_series();
    }
  }
  return {};
}

}  // namespace

int main() {
  bench::banner("Fig. 5",
                "Throughput distributions of 5G CA combinations (same aggregate "
                "bandwidth != same performance)");

  // The paper's six combinations, mapped to our OpZ/OpY deployments.
  const std::vector<ComboSpec> combos{
      {"n41a+n25 (120MHz)", ran::OperatorId::kOpZ,
       {{phy::BandId::kN41, 100}, {phy::BandId::kN25, 20}}, 120},
      {"n77a+n77b (140MHz)", ran::OperatorId::kOpX,
       {{phy::BandId::kN77, 100}, {phy::BandId::kN77, 40}}, 140},
      {"n77c+n77d (160MHz)", ran::OperatorId::kOpY,
       {{phy::BandId::kN77, 100}, {phy::BandId::kN77, 60}}, 160},
      {"n41a+n25+n41b (160MHz)", ran::OperatorId::kOpZ,
       {{phy::BandId::kN41, 100}, {phy::BandId::kN25, 20}, {phy::BandId::kN41, 40}}, 160},
      {"n41a+n71+n25+n41b (180MHz)", ran::OperatorId::kOpZ,
       {{phy::BandId::kN41, 100}, {phy::BandId::kN71, 20}, {phy::BandId::kN25, 20},
        {phy::BandId::kN41, 40}}, 180},
      {"n41a+n71 (120MHz)", ran::OperatorId::kOpZ,
       {{phy::BandId::kN41, 100}, {phy::BandId::kN71, 20}}, 120},
  };

  common::TextTable table("Aggregate throughput by CA combination (Mbps)");
  table.set_header({"Combination", "AggBW", "Mean", "Std", "P5", "Median", "P95", "Peak"});
  std::uint64_t seed = 5100;
  for (const auto& combo : combos) {
    const auto xs = combo_tput(combo, seed++);
    if (xs.empty()) {
      table.add_row({combo.label, std::to_string(combo.aggregate_bw), "-", "-", "-", "-",
                     "-", "-"});
      continue;
    }
    const auto s = bench::summarize(xs);
    table.add_row({combo.label, std::to_string(combo.aggregate_bw),
                   common::TextTable::num(s.mean, 0), common::TextTable::num(s.stddev, 0),
                   common::TextTable::num(s.p5, 0), common::TextTable::num(s.p50, 0),
                   common::TextTable::num(s.p95, 0), common::TextTable::num(s.max, 0)});
  }
  std::cout << table << "\n";
  std::cout << "Paper shape: at equal aggregate bandwidth, n77+n77 roughly\n"
            << "doubles n41+n25 (TDD wide channels beat re-farmed FDD);\n"
            << "the 4CC 180 MHz combo is the most consistent performer.\n";
  return 0;
}
