// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each bench prints the rows/series of its artifact;
// absolute values come from the simulator substrate, so the *shape*
// (orderings, ratios, crossovers) is the comparison target — see
// EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace ca5g::bench {

/// True when CA5G_FAST=1 (reduced trace counts / epochs).
inline bool fast_mode() {
  const char* v = std::getenv("CA5G_FAST");
  return v != nullptr && v[0] == '1';
}

/// Standard banner naming the paper artifact being regenerated.
inline void banner(const std::string& artifact, const std::string& description) {
  std::cout << "\n################################################################\n"
            << "# Reproducing " << artifact << "\n# " << description << "\n"
            << "# (mode: " << (fast_mode() ? "FAST — reduced sizes" : "full") << ")\n"
            << "################################################################\n\n";
}

/// Distribution summary row used by several "violin"/CDF figures.
struct DistSummary {
  double mean = 0, stddev = 0, p5 = 0, p50 = 0, p95 = 0, max = 0;
};

inline DistSummary summarize(const std::vector<double>& xs) {
  DistSummary s;
  s.mean = common::mean(xs);
  s.stddev = common::stddev(xs);
  s.p5 = common::percentile(xs, 5);
  s.p50 = common::percentile(xs, 50);
  s.p95 = common::percentile(xs, 95);
  s.max = common::max_value(xs);
  return s;
}

/// Render a throughput series as a coarse ASCII sparkline (time-series
/// figures print these so the "shape" is visible in text output).
inline std::string sparkline(const std::vector<double>& xs, std::size_t width = 72) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (xs.empty()) return "";
  const double lo = common::min_value(xs);
  const double hi = common::max_value(xs);
  const double range = hi > lo ? hi - lo : 1.0;
  std::string out;
  const std::size_t bucket = std::max<std::size_t>(1, xs.size() / width);
  for (std::size_t start = 0; start < xs.size(); start += bucket) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = start; i < std::min(xs.size(), start + bucket); ++i, ++n)
      acc += xs[i];
    const double v = (acc / n - lo) / range;
    out += kLevels[std::min<std::size_t>(7, static_cast<std::size_t>(v * 8))];
  }
  return out;
}

/// Machine-readable bench output: collects named scalar results and, on
/// destruction, writes BENCH_<name>.json — {"bench", "results", "metrics"}
/// with the obs registry snapshot embedded — seeding the repo's perf
/// trajectory. Opt-in via CA5G_BENCH_JSON=1 so interactive runs stay
/// file-free; CA5G_BENCH_DIR overrides the output directory (default cwd).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void result(const std::string& key, double value) { results_.emplace_back(key, value); }

  ~BenchReport() {
    const char* enabled = std::getenv("CA5G_BENCH_JSON");
    if (enabled == nullptr || enabled[0] != '1') return;
    std::string dir = ".";
    if (const char* d = std::getenv("CA5G_BENCH_DIR"); d != nullptr && d[0] != '\0') dir = d;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out.good()) {
      std::cerr << "BenchReport: cannot open " << path << "\n";
      return;
    }
    out << "{\n  \"bench\": \"" << obs::json_escape(name_) << "\",\n  \"results\": {";
    for (std::size_t i = 0; i < results_.size(); ++i)
      out << (i == 0 ? "\n" : ",\n") << "    \"" << obs::json_escape(results_[i].first)
          << "\": " << obs::json_number(results_[i].second);
    out << (results_.empty() ? "" : "\n  ") << "},\n  \"metrics\": ";
    const std::string metrics = obs::to_json(obs::MetricsRegistry::global().snapshot());
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      out << metrics[i];
      if (metrics[i] == '\n' && i + 1 < metrics.size()) out << "  ";
    }
    out << "\n}\n";
    std::cout << "bench json written to " << path << "\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace ca5g::bench
