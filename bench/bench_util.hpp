// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each bench prints the rows/series of its artifact;
// absolute values come from the simulator substrate, so the *shape*
// (orderings, ratios, crossovers) is the comparison target — see
// EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"

namespace ca5g::bench {

/// True when CA5G_FAST=1 (reduced trace counts / epochs).
inline bool fast_mode() {
  const char* v = std::getenv("CA5G_FAST");
  return v != nullptr && v[0] == '1';
}

/// Standard banner naming the paper artifact being regenerated.
inline void banner(const std::string& artifact, const std::string& description) {
  std::cout << "\n################################################################\n"
            << "# Reproducing " << artifact << "\n# " << description << "\n"
            << "# (mode: " << (fast_mode() ? "FAST — reduced sizes" : "full") << ")\n"
            << "################################################################\n\n";
}

/// Distribution summary row used by several "violin"/CDF figures.
struct DistSummary {
  double mean = 0, stddev = 0, p5 = 0, p50 = 0, p95 = 0, max = 0;
};

inline DistSummary summarize(const std::vector<double>& xs) {
  DistSummary s;
  s.mean = common::mean(xs);
  s.stddev = common::stddev(xs);
  s.p5 = common::percentile(xs, 5);
  s.p50 = common::percentile(xs, 50);
  s.p95 = common::percentile(xs, 95);
  s.max = common::max_value(xs);
  return s;
}

/// Render a throughput series as a coarse ASCII sparkline (time-series
/// figures print these so the "shape" is visible in text output).
inline std::string sparkline(const std::vector<double>& xs, std::size_t width = 72) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (xs.empty()) return "";
  const double lo = common::min_value(xs);
  const double hi = common::max_value(xs);
  const double range = hi > lo ? hi - lo : 1.0;
  std::string out;
  const std::size_t bucket = std::max<std::size_t>(1, xs.size() / width);
  for (std::size_t start = 0; start < xs.size(); start += bucket) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = start; i < std::min(xs.size(), start + bucket); ++i, ++n)
      acc += xs[i];
    const double v = (acc / n - lo) / range;
    out += kLevels[std::min<std::size_t>(7, static_cast<std::size_t>(v * 8))];
  }
  return out;
}

}  // namespace ca5g::bench
