// Fleet sweep scaling budget. Runs the same (operator, mobility, UE)
// sweep serially and on the 8-thread work-stealing pool and enforces:
//
//  1. bit-identical fleet hashes — parallelism must never change results
//     (always checked, every build);
//  2. >= 3x wall-clock speedup at 8 threads over 1 thread
//     (CA5G_SWEEP_MIN_SPEEDUP overrides).
//
// The speedup threshold is skipped under sanitizers (instrumented code
// has its own scaling profile) and on hosts with fewer than 8 hardware
// threads, where an 8-thread pool just timeslices one core.
//
// `--smoke` shortens the simulated duration for ctest registration
// (label: parallel).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace ca5g;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

sim::SweepSpec base_spec(bool smoke) {
  sim::SweepSpec spec;
  spec.ues_per_cell = smoke ? 2 : 4;        // 3 ops x 2 mobilities x ues
  spec.duration_s = smoke ? 2.0 : 10.0;
  spec.step_s = 0.01;
  spec.seed = 2024;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("parallel sweep",
                std::string("fleet sweep scaling + thread-count determinism (") +
                    (kSanitizedBuild ? "sanitized build: perf asserts off" : "perf-asserted") +
                    ")");

  auto spec = base_spec(smoke);
  spec.threads = 1;
  const auto serial = sim::run_sweep(spec);
  spec.threads = 8;
  const auto pooled = sim::run_sweep(spec);

  common::TextTable table("sweep scaling (" + std::to_string(serial.units.size()) +
                          " units, " + common::TextTable::num(spec.duration_s, 0) +
                          " s each)");
  table.set_header({"metric", "1 thread", "8 threads"});
  table.add_row({"wall s", common::TextTable::num(serial.wall_s),
                 common::TextTable::num(pooled.wall_s)});
  table.add_row({"steals", "0", std::to_string(pooled.pool_steals)});
  const double speedup = pooled.wall_s > 0.0 ? serial.wall_s / pooled.wall_s : 0.0;
  table.add_row({"speedup", "1.00", common::TextTable::num(speedup)});
  std::cout << table.to_string() << "\n";

  bool ok = true;
  if (serial.fleet_hash != pooled.fleet_hash) {
    std::cerr << "FAIL: fleet hash depends on thread count (1 thread: " << std::hex
              << serial.fleet_hash << ", 8 threads: " << pooled.fleet_hash << std::dec
              << ")\n";
    ok = false;
  }
  for (std::size_t i = 0; ok && i < serial.units.size(); ++i) {
    if (serial.units[i].trace_hash != pooled.units[i].trace_hash) {
      std::cerr << "FAIL: unit " << serial.units[i].unit.label()
                << " trace hash depends on thread count\n";
      ok = false;
    }
  }

  if (kSanitizedBuild) {
    std::cout << "sanitized build: skipping speedup threshold\n";
    return ok ? 0 : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 8) {
    std::cout << "only " << hw << " hardware threads: skipping speedup threshold\n";
    return ok ? 0 : 1;
  }

  double min_speedup = 3.0;
  if (const char* env = std::getenv("CA5G_SWEEP_MIN_SPEEDUP")) min_speedup = std::atof(env);
  if (speedup < min_speedup) {
    std::cerr << "FAIL: speedup " << speedup << "x < required " << min_speedup << "x\n";
    ok = false;
  }

  std::cout << (ok ? "PASS" : "FAIL") << ": parallel sweep budget\n";
  return ok ? 0 : 1;
}
