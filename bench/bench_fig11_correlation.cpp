// Figs. 11–13: why per-CC modeling matters. Pearson correlations
// between each cell's RSRP and throughput — own-cell vs. cross-cell —
// for intra-band (n41+n41) and inter-band (n41+n25) CA, plus the
// PCell↔SCell RSRP correlation over time.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct CorrelationResult {
  double own_p = 0, own_s = 0;      ///< RSRP_x ↔ Tput_x
  double cross_ps = 0, cross_sp = 0;///< RSRP_P↔Tput_S, RSRP_S↔Tput_P
  double rsrp_rsrp = 0;             ///< RSRP_P ↔ RSRP_S
};

CorrelationResult correlate(const std::vector<std::pair<phy::BandId, int>>& channels,
                            std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = bench::fast_mode() ? 60.0 : 150.0;
  config.step_s = 0.05;
  config.seed = seed;

  ran::DeploymentParams params;
  params.seed = seed * 13 + 3;
  const auto dep = ran::make_deployment(config.op, config.env, params);
  // Lock to every instance of the requested (band, bandwidth) pairs so
  // the drive keeps reproducing this 2CC combination.
  for (const auto& c : dep.carriers)
    for (const auto& [band, bw] : channels)
      if (c.band == band && c.bandwidth_mhz == bw) config.carrier_lock.push_back(c.id);

  sim::SimulationEngine engine(dep, config);
  // Correlate at 1 s granularity (paper-style sampling); averaging
  // marginalizes slot-level scheduling noise.
  const auto trace = engine.run().resampled(1.0);

  std::vector<double> rsrp_p, rsrp_s, tput_p, tput_s;
  for (const auto& s : trace.samples) {
    if (s.active_cc_count() < 2) continue;
    rsrp_p.push_back(s.ccs[0].rsrp_dbm);
    tput_p.push_back(s.ccs[0].tput_mbps);
    rsrp_s.push_back(s.ccs[1].rsrp_dbm);
    tput_s.push_back(s.ccs[1].tput_mbps);
  }
  CorrelationResult r;
  if (rsrp_p.size() < 30) return r;
  r.own_p = common::pearson(rsrp_p, tput_p);
  r.own_s = common::pearson(rsrp_s, tput_s);
  r.cross_ps = common::pearson(rsrp_p, tput_s);
  r.cross_sp = common::pearson(rsrp_s, tput_p);
  r.rsrp_rsrp = common::pearson(rsrp_p, rsrp_s);
  return r;
}

}  // namespace

int main() {
  bench::banner("Figs. 11-13",
                "RSRP↔throughput correlations: intra-band vs inter-band CA");

  const auto intra = correlate({{phy::BandId::kN41, 100}, {phy::BandId::kN41, 40}}, 111);
  const auto inter = correlate({{phy::BandId::kN41, 100}, {phy::BandId::kN25, 20}}, 112);

  common::TextTable table("Pearson correlation coefficients");
  table.set_header({"Pairing", "Intra (n41+n41)", "Inter (n41+n25)"});
  auto row = [&](const char* label, double a, double b) {
    table.add_row({label, common::TextTable::num(a, 2), common::TextTable::num(b, 2)});
  };
  row("PCell RSRP vs PCell Tput (own)", intra.own_p, inter.own_p);
  row("SCell RSRP vs SCell Tput (own)", intra.own_s, inter.own_s);
  row("PCell RSRP vs SCell Tput (cross)", intra.cross_ps, inter.cross_ps);
  row("SCell RSRP vs PCell Tput (cross)", intra.cross_sp, inter.cross_sp);
  row("PCell RSRP vs SCell RSRP (Fig.13)", intra.rsrp_rsrp, inter.rsrp_rsrp);
  std::cout << table << "\n";

  std::cout << "Paper shape: own-cell correlations stay strong (>0.6) in both\n"
            << "cases; cross-cell correlations stay high for intra-band CA but\n"
            << "drop markedly for inter-band CA (≈0.5-0.55) — one CC's RSRP\n"
            << "cannot predict another band's throughput. Motivates Prism5G's\n"
            << "per-CC modeling.\n";
  return 0;
}
