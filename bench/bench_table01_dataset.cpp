// Table 1: overall statistics of the collected CA dataset. Regenerates
// the equivalent census for the simulated measurement campaign: unique
// frequency channels, unique CA combinations, and trace volumes.
#include <map>
#include <set>

#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct Census {
  std::set<std::pair<phy::BandId, int>> channels_4g, channels_5g;
  std::set<std::vector<int>> combos_4g_ordered, combos_5g_ordered;
  std::set<std::set<int>> combos_4g_sets, combos_5g_sets;
  double km = 0.0;
  double minutes = 0.0;
};

void scan_trace(const sim::Trace& trace, Census& census) {
  radio::Position prev = trace.samples.front().pos;
  for (const auto& s : trace.samples) {
    census.km += radio::distance_m(prev, s.pos) / 1000.0;
    prev = s.pos;
    std::vector<int> ordered;
    std::set<int> unordered;
    bool is_nr = false;
    for (const auto& cc : s.ccs) {
      if (!cc.active) continue;
      is_nr = phy::is_nr(cc.band);
      const int key = static_cast<int>(cc.band) * 8 + cc.channel_index;
      ordered.push_back(key);
      unordered.insert(key);
      (is_nr ? census.channels_5g : census.channels_4g).insert({cc.band, cc.channel_index});
    }
    if (ordered.size() >= 2) {
      (is_nr ? census.combos_5g_ordered : census.combos_4g_ordered).insert(ordered);
      (is_nr ? census.combos_5g_sets : census.combos_4g_sets).insert(unordered);
    }
  }
  census.minutes += trace.samples.size() * trace.step_s / 60.0;
}

}  // namespace

int main() {
  bench::banner("Table 1", "Overall statistics of the simulated CA measurement campaign");

  Census census;
  const std::size_t runs_per_cell = bench::fast_mode() ? 1 : 2;
  std::map<std::string, std::pair<double, double>> per_scenario;  // km, min

  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    for (auto rat : {phy::Rat::kLte, phy::Rat::kNr}) {
      for (auto env : {radio::Environment::kUrbanMacro, radio::Environment::kSuburbanMacro,
                       radio::Environment::kHighway, radio::Environment::kIndoor}) {
        for (std::size_t run = 0; run < runs_per_cell; ++run) {
          sim::ScenarioConfig config;
          config.op = op;
          config.rat = rat;
          config.env = env;
          config.ue_indoor = env == radio::Environment::kIndoor;
          config.mobility = env == radio::Environment::kIndoor ? sim::Mobility::kWalking
                                                               : sim::Mobility::kDriving;
          config.duration_s = bench::fast_mode() ? 20.0 : 45.0;
          config.step_s = 0.02;
          config.cc_slots = rat == phy::Rat::kLte ? 5 : 4;
          config.seed = 900 + 101 * run + 13 * static_cast<std::uint64_t>(op) +
                        3 * static_cast<std::uint64_t>(env) + (rat == phy::Rat::kNr);
          const auto trace = sim::run_scenario(config);
          Census before = census;
          scan_trace(trace, census);
          const std::string key = env == radio::Environment::kUrbanMacro ? "Urban"
                                  : env == radio::Environment::kSuburbanMacro ? "Suburban"
                                  : env == radio::Environment::kHighway ? "Beltway"
                                                                        : "Indoor";
          per_scenario[key].first += census.km - before.km;
          per_scenario[key].second += census.minutes - before.minutes;
        }
      }
    }
  }

  common::TextTable table("Collected (simulated) CA dataset");
  table.set_header({"Field", "Value"});
  table.add_row({"Operators", "OpX, OpY, OpZ"});
  table.add_row({"# Freq. channels 4G", std::to_string(census.channels_4g.size())});
  table.add_row({"# Freq. channels 5G", std::to_string(census.channels_5g.size())});
  table.add_row({"# CA combos 4G (ordered/sets)",
                 std::to_string(census.combos_4g_ordered.size()) + "/" +
                     std::to_string(census.combos_4g_sets.size())});
  table.add_row({"# CA combos 5G (ordered/sets)",
                 std::to_string(census.combos_5g_ordered.size()) + "/" +
                     std::to_string(census.combos_5g_sets.size())});
  table.add_row({"Mobilities", "Stationary, Walking, Driving"});
  for (const auto& [key, value] : per_scenario)
    table.add_row({"Traces: " + key, common::TextTable::num(value.first, 0) + " km / " +
                                         common::TextTable::num(value.second, 0) + " min"});
  std::cout << table << "\n";
  std::cout << "Paper: 86 4G / 44 5G channels; 511 4G / 61 5G combos (a far\n"
            << "larger campaign); the simulated census preserves the 4G>5G\n"
            << "channel-diversity ordering and multi-combo structure.\n";
  return 0;
}
