// Fig. 6: throughput time series of n25 and n41 used alone (band
// locked, no CA) vs. aggregated as n41+n25 — the aggregate is not the
// sum of the stand-alone throughputs (the paper observes deficits of
// 49% and more).
#include "bench_util.hpp"

namespace {

using namespace ca5g;

std::vector<double> locked_run(const std::vector<phy::BandId>& bands, std::uint64_t seed,
                               std::size_t max_ccs) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = 60.0;
  config.band_lock = bands;
  config.seed = seed;
  // Restricting the modem restricts CC count (lock a combo width).
  config.modem = max_ccs >= 4 ? ue::ModemModel::kX70
                 : max_ccs >= 2 ? ue::ModemModel::kX60
                                : ue::ModemModel::kX55;
  if (max_ccs == 1) config.modem = ue::ModemModel::kX50;  // no SA CA
  return sim::run_scenario(config).aggregate_series();
}

}  // namespace

int main() {
  bench::banner("Fig. 6", "n25 / n41 alone vs. aggregated (n41+n25)");

  // Same deployment/site statistics; band lock forces single-channel use.
  const auto n25_alone = locked_run({phy::BandId::kN25}, 606, 1);
  const auto n41_alone = locked_run({phy::BandId::kN41}, 606, 1);
  const auto aggregated = locked_run({phy::BandId::kN41, phy::BandId::kN25}, 606, 2);

  common::TextTable table("60-second stationary traces (Mbps)");
  table.set_header({"Series", "Mean", "Std", "Peak"});
  auto add = [&](const std::string& label, const std::vector<double>& xs) {
    const auto s = bench::summarize(xs);
    table.add_row({label, common::TextTable::num(s.mean, 0),
                   common::TextTable::num(s.stddev, 0), common::TextTable::num(s.max, 0)});
  };
  add("n25 alone", n25_alone);
  add("n41 alone", n41_alone);
  add("n41+n25 aggregated", aggregated);
  std::cout << table << "\n";

  std::cout << "n25 alone:   " << bench::sparkline(n25_alone) << "\n"
            << "n41 alone:   " << bench::sparkline(n41_alone) << "\n"
            << "n41+n25 CA:  " << bench::sparkline(aggregated) << "\n\n";

  const double sum = common::mean(n25_alone) + common::mean(n41_alone);
  const double agg = common::mean(aggregated);
  std::size_t below_half = 0;
  for (double x : aggregated)
    if (x < 0.51 * sum) ++below_half;
  std::cout << "Sum of stand-alone means: " << common::TextTable::num(sum, 0)
            << " Mbps;  aggregated mean: " << common::TextTable::num(agg, 0)
            << " Mbps;  mean deficit: "
            << common::TextTable::num(100.0 * (sum - agg) / sum, 1) << "%\n"
            << "Instants >=49% below the theoretical sum: "
            << common::TextTable::num(100.0 * below_half / aggregated.size(), 1)
            << "% of samples\n"
            << "Paper: the aggregate is not the sum of the parts; it falls\n"
            << ">=49% below the theoretical sum at times (power/rank\n"
            << "re-balancing under CA, §4.3).\n";
  return 0;
}
