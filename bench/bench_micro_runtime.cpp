// §6.1 "Runtime" micro-benchmarks (google-benchmark): training epoch
// cost and per-sample inference latency of Prism5G vs the LSTM
// baseline (compiled plan and autograd graph separately), the
// blocked-vs-naive matmul kernels on the model's actual shapes, plus
// the simulator's step rate. The paper reports Prism5G at +34.1%
// training and +23.2% inference vs LSTM, staying < 1 ms per sample.
//
// With CA5G_BENCH_JSON=1 every benchmark's per-iteration real time is
// also written to BENCH_micro_runtime.json, seeding the repo's kernel
// perf trajectory from this change on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bench_util.hpp"
#include "core/prism5g.hpp"
#include "eval/pipeline.hpp"
#include "nn/infer.hpp"
#include "predictors/deep.hpp"

namespace {

using namespace ca5g;

/// One shared small dataset for all runtime benchmarks.
const traces::Dataset& shared_dataset() {
  static const traces::Dataset ds = [] {
    eval::GenerationConfig gen;
    gen.traces = 2;
    gen.short_trace_duration_s = 20.0;
    gen.short_stride = 8;
    return eval::make_ml_dataset({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                                 eval::TimeScale::kShort, gen);
  }();
  return ds;
}

predictors::TrainConfig micro_config(std::size_t epochs) {
  predictors::TrainConfig config;
  config.epochs = epochs;
  config.hidden = 32;
  config.layers = 2;
  config.batch_size = 64;
  config.patience = 1000;  // no early stop: fixed work per iteration
  return config;
}

template <typename Model>
void train_benchmark(benchmark::State& state) {
  const auto& ds = shared_dataset();
  common::Rng rng(1);
  const auto split = ds.random_split(0.5, 0.1, rng);
  for (auto _ : state) {
    Model model(micro_config(1));  // one epoch per iteration
    model.fit(ds, split.train, {});
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(split.train.size()));
}

template <typename Model>
void inference_benchmark(benchmark::State& state, bool fast_path) {
  const auto& ds = shared_dataset();
  common::Rng rng(2);
  const auto split = ds.random_split(0.5, 0.1, rng);
  Model model(micro_config(2));
  model.fit(ds, split.train, {});
  model.set_fast_path(fast_path);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = *split.test[i % split.test.size()];
    benchmark::DoNotOptimize(model.predict(w));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrainEpoch_LSTM(benchmark::State& state) {
  train_benchmark<predictors::LstmPredictor>(state);
}
void BM_TrainEpoch_Prism5G(benchmark::State& state) {
  train_benchmark<core::Prism5G>(state);
}
void BM_Inference_LSTM(benchmark::State& state) {
  inference_benchmark<predictors::LstmPredictor>(state, true);
}
void BM_Inference_Prism5G(benchmark::State& state) {
  inference_benchmark<core::Prism5G>(state, true);
}
void BM_Inference_LSTM_Graph(benchmark::State& state) {
  inference_benchmark<predictors::LstmPredictor>(state, false);
}
void BM_Inference_Prism5G_Graph(benchmark::State& state) {
  inference_benchmark<core::Prism5G>(state, false);
}

// --- Matmul kernels on the model's actual shapes -----------------------------
//
// Arg triples are (rows, in, out). The shapes are the serving batch's
// hot matmuls: LSTM flat-input gates (32×55·55×128), hidden-to-gates
// (32×32·32×128), Prism5G encoder input (32×16·16×128), the fusion
// MLP's first layer (32×144·144×32), and the single-window (B = 1)
// hidden-to-gates shape the per-UE serving call runs.

/// Deterministic nonzero values: keeps the blocked kernel on its fused
/// four-row path, so the comparison measures kernel structure, not the
/// zero-skip rate.
std::vector<float> kernel_operand(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 0.25f + 0.001f * static_cast<float>(i % 101);
  return v;
}

void BM_MatmulBlocked(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out = static_cast<std::size_t>(state.range(2));
  const auto x = kernel_operand(rows * in);
  const auto w = kernel_operand(in * out);
  std::vector<float> y(rows * out);
  for (auto _ : state) {
    nn::infer::matmul_xw(x.data(), w.data(), nullptr, y.data(), rows, in, out);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * in * out));
}

void BM_MatmulNaive(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto in = static_cast<std::size_t>(state.range(1));
  const auto out = static_cast<std::size_t>(state.range(2));
  const auto x = kernel_operand(rows * in);
  const auto w = kernel_operand(in * out);
  std::vector<float> y(rows * out);
  for (auto _ : state) {
    // The graph kernel accumulates into a zeroed result, so the zeroing
    // is part of its per-op cost.
    std::fill(y.begin(), y.end(), 0.0f);
    nn::infer::matmul_ab_naive(x.data(), w.data(), y.data(), rows, in, out);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * in * out));
}

void BM_SimulatorStep(benchmark::State& state) {
  // Cost of one 10 ms simulation step (trace generation rate).
  const auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::ScenarioConfig config;
    config.op = ran::OperatorId::kOpZ;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = static_cast<double>(steps) * 0.01;
    config.seed = 3;
    benchmark::DoNotOptimize(sim::run_scenario(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}

BENCHMARK(BM_TrainEpoch_LSTM)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainEpoch_Prism5G)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_LSTM)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Inference_Prism5G)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Inference_LSTM_Graph)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Inference_Prism5G_Graph)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatmulBlocked)
    ->Args({32, 55, 128})
    ->Args({32, 32, 128})
    ->Args({32, 16, 128})
    ->Args({32, 144, 32})
    ->Args({1, 32, 128})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MatmulNaive)
    ->Args({32, 55, 128})
    ->Args({32, 32, 128})
    ->Args({32, 16, 128})
    ->Args({32, 144, 32})
    ->Args({1, 32, 128})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SimulatorStep)->Arg(500)->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every run's per-iteration real seconds
/// tee'd into the BenchReport (written as BENCH_micro_runtime.json when
/// CA5G_BENCH_JSON=1).
class ReportTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportTeeReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      report_.result(run.benchmark_name() + ".s_per_iter",
                     run.real_accumulated_time /
                         static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("micro_runtime");
  ReportTeeReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
