// §6.1 "Runtime" micro-benchmarks (google-benchmark): training epoch
// cost and per-sample inference latency of Prism5G vs the LSTM
// baseline, plus the simulator's step rate. The paper reports Prism5G
// at +34.1% training and +23.2% inference vs LSTM, staying < 1 ms per
// sample.
#include <benchmark/benchmark.h>

#include "core/prism5g.hpp"
#include "eval/pipeline.hpp"
#include "predictors/deep.hpp"

namespace {

using namespace ca5g;

/// One shared small dataset for all runtime benchmarks.
const traces::Dataset& shared_dataset() {
  static const traces::Dataset ds = [] {
    eval::GenerationConfig gen;
    gen.traces = 2;
    gen.short_trace_duration_s = 20.0;
    gen.short_stride = 8;
    return eval::make_ml_dataset({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                                 eval::TimeScale::kShort, gen);
  }();
  return ds;
}

predictors::TrainConfig micro_config(std::size_t epochs) {
  predictors::TrainConfig config;
  config.epochs = epochs;
  config.hidden = 32;
  config.layers = 2;
  config.batch_size = 64;
  config.patience = 1000;  // no early stop: fixed work per iteration
  return config;
}

template <typename Model>
void train_benchmark(benchmark::State& state) {
  const auto& ds = shared_dataset();
  common::Rng rng(1);
  const auto split = ds.random_split(0.5, 0.1, rng);
  for (auto _ : state) {
    Model model(micro_config(1));  // one epoch per iteration
    model.fit(ds, split.train, {});
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(split.train.size()));
}

template <typename Model>
void inference_benchmark(benchmark::State& state) {
  const auto& ds = shared_dataset();
  common::Rng rng(2);
  const auto split = ds.random_split(0.5, 0.1, rng);
  Model model(micro_config(2));
  model.fit(ds, split.train, {});
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& w = *split.test[i % split.test.size()];
    benchmark::DoNotOptimize(model.predict(w));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TrainEpoch_LSTM(benchmark::State& state) {
  train_benchmark<predictors::LstmPredictor>(state);
}
void BM_TrainEpoch_Prism5G(benchmark::State& state) {
  train_benchmark<core::Prism5G>(state);
}
void BM_Inference_LSTM(benchmark::State& state) {
  inference_benchmark<predictors::LstmPredictor>(state);
}
void BM_Inference_Prism5G(benchmark::State& state) {
  inference_benchmark<core::Prism5G>(state);
}

void BM_SimulatorStep(benchmark::State& state) {
  // Cost of one 10 ms simulation step (trace generation rate).
  const auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::ScenarioConfig config;
    config.op = ran::OperatorId::kOpZ;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = static_cast<double>(steps) * 0.01;
    config.seed = 3;
    benchmark::DoNotOptimize(sim::run_scenario(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}

BENCHMARK(BM_TrainEpoch_LSTM)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainEpoch_Prism5G)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Inference_LSTM)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Inference_Prism5G)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SimulatorStep)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
