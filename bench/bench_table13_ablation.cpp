// Table 13: ablation study — Prism5G without the state-trigger
// mechanism ("No State") and without the fusion module ("No Fusion"),
// against the full model, on all six sub-datasets at both time scales.
#include "bench_util.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;
  bench::banner("Table 13", "Ablation: No-State / No-Fusion vs full Prism5G (RMSE)");

  const auto gen = eval::GenerationConfig::from_env();
  const std::vector<std::string> variants{"Prism5G-nostate", "Prism5G-nofusion",
                                          "Prism5G"};

  for (auto scale : {eval::TimeScale::kShort, eval::TimeScale::kLong}) {
    common::TextTable table("Table 13 — " + eval::time_scale_name(scale));
    table.set_header({"Dataset", "No State", "No Fusion", "Prism5G", "ΔState(%)",
                      "ΔFusion(%)"});
    common::RunningStats state_delta, fusion_delta;
    // Fast mode covers the representative operator only (the paper
    // also leans on OpZ for its in-depth analyses).
    for (const auto& id : eval::all_sub_datasets()) {
      if (bench::fast_mode() && id.op != ran::OperatorId::kOpZ) continue;
      const auto ds = eval::make_ml_dataset(id, scale, gen);
      common::Rng rng(84 + static_cast<std::uint64_t>(id.op));
      const auto split = ds.random_split(0.5, 0.2, rng);

      std::vector<double> rmse;
      for (const auto& name : variants) {
        auto model = eval::make_predictor(name);
        rmse.push_back(eval::train_and_evaluate(*model, ds, split));
      }
      const double ds_pct = 100.0 * (rmse[0] - rmse[2]) / rmse[2];
      const double df_pct = 100.0 * (rmse[1] - rmse[2]) / rmse[2];
      state_delta.add(ds_pct);
      fusion_delta.add(df_pct);
      table.add_row({id.label(), common::TextTable::num(rmse[0], 3),
                     common::TextTable::num(rmse[1], 3),
                     common::TextTable::num(rmse[2], 3),
                     common::TextTable::num(ds_pct, 1),
                     common::TextTable::num(df_pct, 1)});
      std::cerr << "  [" << eval::time_scale_name(scale) << "] " << id.label()
                << " done\n";
    }
    std::cout << table;
    std::cout << "Mean RMSE increase without state: "
              << common::TextTable::num(state_delta.mean(), 1) << "% (max "
              << common::TextTable::num(state_delta.max(), 1)
              << "%); without fusion: " << common::TextTable::num(fusion_delta.mean(), 1)
              << "% (max " << common::TextTable::num(fusion_delta.max(), 1) << "%)\n\n";
  }

  std::cout << "Paper shape: removing the state trigger raises RMSE ≈5.3%\n"
            << "avg / 7.1% max; removing fusion ≈6.2% avg / 9.5% max.\n";
  return 0;
}
