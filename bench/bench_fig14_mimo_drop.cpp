// Fig. 14: the same channel (n25) measured with and without CA at the
// same location — RSRP/CQI/#RB barely change, yet throughput halves
// because the MIMO layer count collapses under CA.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

struct ChannelStats {
  double rsrp = 0, cqi = 0, layers = 0, rb = 0, cc_tput = 0, total_tput = 0;
  std::size_t n = 0;
};

ChannelStats probe_n25(bool with_ca, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = bench::fast_mode() ? 20.0 : 60.0;
  config.seed = seed;
  if (with_ca) {
    config.band_lock = {phy::BandId::kN41, phy::BandId::kN25};  // n41+n25+n41 combo
  } else {
    config.band_lock = {phy::BandId::kN25};
    config.modem = ue::ModemModel::kX50;  // no CA
  }
  const auto trace = sim::run_scenario(config);

  ChannelStats stats;
  for (const auto& s : trace.samples) {
    for (const auto& cc : s.ccs) {
      if (!cc.active || cc.band != phy::BandId::kN25) continue;
      stats.rsrp += cc.rsrp_dbm;
      stats.cqi += cc.cqi;
      stats.layers += cc.layers;
      stats.rb += cc.rb;
      stats.cc_tput += cc.tput_mbps;
      stats.total_tput += s.aggregate_tput_mbps;
      ++stats.n;
    }
  }
  if (stats.n > 0) {
    const auto dn = static_cast<double>(stats.n);
    stats.rsrp /= dn;
    stats.cqi /= dn;
    stats.layers /= dn;
    stats.rb /= dn;
    stats.cc_tput /= dn;
    stats.total_tput /= dn;
  }
  return stats;
}

}  // namespace

int main() {
  bench::banner("Fig. 14",
                "Same channel (n25) with and without CA: MIMO layers collapse");

  const auto ca = probe_n25(true, 1414);
  const auto no_ca = probe_n25(false, 1414);

  common::TextTable table("n25 at the same location");
  table.set_header({"Metric", "CA (n41+n25+n41)", "NonCA (n25)"});
  table.add_row({"RSRP (dBm)", common::TextTable::num(ca.rsrp, 1),
                 common::TextTable::num(no_ca.rsrp, 1)});
  table.add_row({"CQI", common::TextTable::num(ca.cqi, 1),
                 common::TextTable::num(no_ca.cqi, 1)});
  table.add_row({"MIMO layers", common::TextTable::num(ca.layers, 1),
                 common::TextTable::num(no_ca.layers, 1)});
  table.add_row({"#RB", common::TextTable::num(ca.rb, 1),
                 common::TextTable::num(no_ca.rb, 1)});
  table.add_row({"n25 Tput (Mbps)", common::TextTable::num(ca.cc_tput, 0),
                 common::TextTable::num(no_ca.cc_tput, 0)});
  table.add_row({"Total Tput (Mbps)", common::TextTable::num(ca.total_tput, 0),
                 common::TextTable::num(no_ca.total_tput, 0)});
  std::cout << table << "\n";

  std::cout << "Paper anchors: RSRP ≈ -68/-70 dBm, CQI ≈ 12 in both cases, but\n"
            << "MIMO drops 3 → 1 under CA and n25 throughput halves (212 Mbps\n"
            << "alone vs ≈100 in CA); total CA throughput is still 4× higher.\n";
  return 0;
}
