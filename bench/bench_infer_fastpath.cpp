// Inference fast-path budget. For every DeepPredictor with a compiled
// plan (LSTM, TCN, Lumos5G, Prism5G) this bench runs the serving model
// shape (T = 10, H = 10, hidden = 32, 2 layers) through both execution
// paths at the batch sizes the server dispatches (B = 1, 8, 32) and
// enforces:
//
//  1. bit-identical predictions between the compiled plan and the
//     autograd graph (always checked, every build — the fast path must
//     be invisible);
//  2. >= 3x wall-clock speedup of the plan over the graph per model at
//     B = 1, the paper's per-UE serving call (CA5G_INFER_MIN_SPEEDUP
//     overrides).
//
// B = 1 is the gated shape because it is where the graph tax lives:
// every autograd op allocates its Node + value/grad vectors once per
// *op*, independent of batch rows, so single-window inference is almost
// pure overhead. At B = 32 both paths converge on a shared floor the
// plan cannot legally cross — bit-identity pins sigmoid/tanh to the
// exact libm calls and every dot product to the graph's accumulation
// order, and those transcendentals dominate the batched forward. The
// B = 8/32 rows are reported (and exported via CA5G_BENCH_JSON) so the
// batched trajectory is tracked, just not gated.
//
// Sanitized builds skip the timing loops entirely and run only the
// bit-identity check: the speedup threshold would be meaningless there
// (allocator interception taxes the two paths asymmetrically) and the
// 10–20x sanitizer slowdown would blow the ctest timeout for nothing —
// concurrency coverage lives in test_infer_fastpath instead. `--smoke`
// shortens the timing loops for ctest registration (labels: serve,
// parallel); `--equality-only` forces the same equality-only behaviour
// in any build — that's the CI stage that proves equivalence even in
// unusual build configs.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/prism5g.hpp"
#include "predictors/deep.hpp"
#include "tests/test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif

/// The serving shape: hidden 32, 2 layers, micro-batches of 32 windows.
TrainConfig serving_config() {
  TrainConfig config;
  config.epochs = 1;  // weights don't affect timing; keep fit cheap
  config.hidden = 32;
  config.layers = 2;
  config.batch_size = 32;
  return config;
}

double time_predict_many(const DeepPredictor& model,
                         std::span<const traces::Window* const> batch,
                         std::size_t reps) {
  (void)model.predict_many(batch);  // warm up (sizes the arena)
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) (void)model.predict_many(batch);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() /
         static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const bool equality_only =
      kSanitizedBuild ||
      (argc > 1 && std::strcmp(argv[1], "--equality-only") == 0);
  bench::banner("inference fast path",
                std::string("compiled plan vs autograd graph on the serving batch shape (") +
                    (kSanitizedBuild ? "sanitized build: perf asserts off" : "perf-asserted") +
                    ")");
  bench::BenchReport report("infer_fastpath");

  const auto ds = test::synthetic_dataset(2, 400);
  common::Rng rng(42);
  const auto split = ds.random_split(0.6, 0.2, rng);

  // One serving micro-batch: 32 windows, exactly what serve::Worker
  // hands predict_many.
  const std::size_t batch_size = std::min<std::size_t>(32, split.test.size());
  const std::span<const traces::Window* const> batch(split.test.data(), batch_size);

  std::vector<std::unique_ptr<DeepPredictor>> models;
  models.push_back(std::make_unique<LstmPredictor>(serving_config()));
  models.push_back(std::make_unique<TcnPredictor>(serving_config()));
  models.push_back(std::make_unique<Lumos5gPredictor>(serving_config()));
  models.push_back(std::make_unique<core::Prism5G>(serving_config()));

  bool ok = true;
  const std::size_t reps = smoke ? 20 : 200;
  double min_speedup = 3.0;
  if (const char* env = std::getenv("CA5G_INFER_MIN_SPEEDUP"))
    min_speedup = std::atof(env);

  common::TextTable table("plan vs graph across serving batch sizes (" +
                          std::to_string(reps) + " reps at B=" +
                          std::to_string(batch_size) + ")");
  table.set_header({"model", "graph ms", "plan ms", "speedup", "us/window"});

  for (auto& model : models) {
    model->fit(ds, split.train, split.val);
    if (!model->fast_path_active()) {
      std::cerr << "FAIL: " << model->name() << " compiled no plan\n";
      ok = false;
      continue;
    }

    // 1. Bit-identity — never skipped. The plan must reproduce the
    // autograd forward exactly on every window and horizon step.
    const auto fast = model->predict_many(split.test);
    model->set_fast_path(false);
    const auto graph = model->predict_many(split.test);
    for (std::size_t i = 0; i < fast.size(); ++i) {
      if (fast[i] != graph[i]) {
        std::cerr << "FAIL: " << model->name()
                  << " plan diverged from graph on window " << i << "\n";
        ok = false;
        break;
      }
    }
    model->set_fast_path(true);
    if (equality_only) {
      std::cout << model->name() << ": plan == graph on " << fast.size()
                << " windows\n";
      continue;
    }

    // 2. Speedup across serving batch shapes. Smaller batches run more
    // reps so every row integrates a similar amount of wall clock, and
    // each shape takes the best of three interleaved trials — external
    // load (ctest -j neighbours) only ever deflates a measured speedup,
    // so the max is the robust estimate of what the plan can do.
    for (const std::size_t b : {std::size_t{1}, std::size_t{8}, batch_size}) {
      const std::span<const traces::Window* const> sub(split.test.data(), b);
      const std::size_t b_reps = reps * batch_size / b;
      double graph_ms = 0.0, plan_ms = 0.0, speedup = 0.0;
      for (int trial = 0; trial < 3; ++trial) {
        model->set_fast_path(false);
        const double g = time_predict_many(*model, sub, b_reps);
        model->set_fast_path(true);
        const double p = time_predict_many(*model, sub, b_reps);
        const double s = p > 0.0 ? g / p : 0.0;
        if (s > speedup) {
          graph_ms = g;
          plan_ms = p;
          speedup = s;
        }
      }
      const std::string tag = model->name() + ".B" + std::to_string(b);
      table.add_row({model->name() + " B=" + std::to_string(b),
                     common::TextTable::num(graph_ms), common::TextTable::num(plan_ms),
                     common::TextTable::num(speedup),
                     common::TextTable::num(plan_ms * 1000.0 / static_cast<double>(b))});
      report.result(tag + ".graph_ms", graph_ms);
      report.result(tag + ".plan_ms", plan_ms);
      report.result(tag + ".speedup", speedup);

      if (b != 1) continue;
      if (speedup < min_speedup) {
        std::cerr << "FAIL: " << model->name() << " B=1 plan speedup " << speedup
                  << "x < required " << min_speedup << "x\n";
        ok = false;
      }
    }
  }

  if (equality_only) {
    if (kSanitizedBuild)
      std::cout << "sanitized build: timing loops skipped\n";
    std::cout << (ok ? "PASS" : "FAIL") << ": fast-path equality\n";
    return ok ? 0 : 1;
  }

  std::cout << table.to_string() << "\n";
  std::cout << (ok ? "PASS" : "FAIL") << ": inference fast-path budget\n";
  return ok ? 0 : 1;
}
