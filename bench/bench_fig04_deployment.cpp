// Fig. 4 / Fig. 25: spatial CA deployment. Prints (a) the CC count
// observed along an urban drive route (the paper's street map colours)
// and (b) 4G/5G CA prevalence percentages per operator and environment.
#include "bench_util.hpp"

namespace {

using namespace ca5g;

/// Fraction of drive samples with ≥2 CCs (CA active).
double ca_prevalence(ran::OperatorId op, phy::Rat rat, radio::Environment env,
                     std::uint64_t seed) {
  const std::size_t runs = bench::fast_mode() ? 2 : 4;
  std::size_t ca = 0, total = 0;
  for (std::size_t run = 0; run < runs; ++run) {
    sim::ScenarioConfig config;
    config.op = op;
    config.rat = rat;
    config.env = env;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = bench::fast_mode() ? 30.0 : 80.0;
    config.step_s = 0.05;
    config.cc_slots = rat == phy::Rat::kLte ? 5 : 4;
    config.seed = seed * 1000 + run * 37;
    const auto trace = sim::run_scenario(config);
    for (const auto& s : trace.samples)
      if (s.active_cc_count() >= 2) ++ca;
    total += trace.samples.size();
  }
  return 100.0 * static_cast<double>(ca) / static_cast<double>(total);
}

}  // namespace

int main() {
  bench::banner("Fig. 4 / Fig. 25", "CA deployment prevalence and spatial CC map");

  // (a) CC count along a drive (Fig. 4's colour-coded street map).
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 120.0;
  config.step_s = 0.05;
  config.seed = 4242;
  const auto trace = sim::run_scenario(config);
  std::cout << "OpZ urban drive — CC count along the route (2-min trace):\n  "
            << bench::sparkline(trace.cc_count_series()) << "\n";
  std::size_t dist[5] = {0, 0, 0, 0, 0};
  for (const auto& s : trace.samples) ++dist[std::min<std::size_t>(4, s.active_cc_count())];
  std::cout << "  CC-count share:";
  for (int c = 0; c <= 4; ++c)
    std::cout << "  " << c << "CC="
              << common::TextTable::num(100.0 * dist[c] / trace.samples.size(), 1) << "%";
  std::cout << "\n\n";

  // (b) Prevalence matrix (Fig. 25).
  common::TextTable table("CA prevalence (% of drive samples with >=2 CCs)");
  table.set_header({"Oper.", "RAT", "Urban", "Suburban", "Beltway"});
  std::uint64_t seed = 640;
  for (auto op : {ran::OperatorId::kOpX, ran::OperatorId::kOpY, ran::OperatorId::kOpZ}) {
    for (auto rat : {phy::Rat::kLte, phy::Rat::kNr}) {
      std::vector<std::string> row{ran::operator_name(op),
                                   rat == phy::Rat::kNr ? "5G" : "4G"};
      for (auto env : {radio::Environment::kUrbanMacro,
                       radio::Environment::kSuburbanMacro, radio::Environment::kHighway})
        row.push_back(common::TextTable::num(ca_prevalence(op, rat, env, seed++), 0) + "%");
      table.add_row(std::move(row));
    }
  }
  std::cout << table << "\n";
  std::cout << "Paper shape: 4G CA is near-ubiquitous for all operators; 5G CA\n"
            << "prevalence is OpZ >> OpY > OpX and urban > suburban > beltway\n"
            << "(paper averages 86% / 44% / 24% in urban areas).\n";
  return 0;
}
