// Fig. 19: ViVo driven by Prism5G vs Prophet vs LSTM vs the built-in
// history estimator, relative to ideal ViVo, over 4CC CA traces
// (scaled-up 750 Mbps ladder, 100 ms decisions).
#include "bench_util.hpp"
#include "apps/vivo.hpp"
#include "eval/pipeline.hpp"

namespace {

using namespace ca5g;

}  // namespace

int main() {
  bench::banner("Fig. 19", "ViVo + {History, Prophet, LSTM, Prism5G} vs ViVo(ideal)");

  auto gen = eval::GenerationConfig::from_env();
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kShort, gen);
  common::Rng rng(190);
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::shared_ptr<predictors::Predictor> prophet{eval::make_predictor("Prophet")};
  std::shared_ptr<predictors::Predictor> lstm{eval::make_predictor("LSTM")};
  std::shared_ptr<predictors::Predictor> prism{eval::make_predictor("Prism5G")};
  prophet->fit(ds, split.train, split.val);
  std::cerr << "  training LSTM...\n";
  lstm->fit(ds, split.train, split.val);
  std::cerr << "  training Prism5G...\n";
  prism->fit(ds, split.train, split.val);

  traces::DatasetSpec spec;
  apps::VivoConfig config;
  config.max_bitrate_mbps = 750.0;

  std::vector<std::pair<std::string, std::shared_ptr<apps::ThroughputEstimator>>>
      estimators;
  estimators.emplace_back("Ideal", std::make_shared<apps::IdealEstimator>());
  estimators.emplace_back("History", std::make_shared<apps::HistoryMeanEstimator>(10));
  estimators.emplace_back("ViVo+Prophet", std::make_shared<apps::ModelEstimator>(
                                              prophet, spec, 4, ds.tput_scale_mbps()));
  estimators.emplace_back("ViVo+LSTM", std::make_shared<apps::ModelEstimator>(
                                            lstm, spec, 4, ds.tput_scale_mbps()));
  estimators.emplace_back("ViVo+Prism5G", std::make_shared<apps::ModelEstimator>(
                                              prism, spec, 4, ds.tput_scale_mbps()));

  // Evaluation traces (fresh runs, up to 4 CCs — the paper uses 2300+
  // traces; we use a representative handful).
  auto eval_gen = gen;
  eval_gen.seed = gen.seed + 777;
  eval_gen.traces = bench::fast_mode() ? 3 : 6;
  eval_gen.short_trace_duration_s = bench::fast_mode() ? 30.0 : 60.0;
  const auto traces_vec = eval::generate_traces(id, eval::TimeScale::kShort, eval_gen);

  common::TextTable table("ViVo QoE vs ideal across evaluation traces (means)");
  table.set_header({"Estimator", "AvgQuality", "QualityDrop(%)", "Stall(s)",
                    "StallIncrease(pp)"});
  std::vector<apps::VivoResult> ideal_results;
  for (const auto& trace : traces_vec)
    ideal_results.push_back(apps::run_vivo(trace, *estimators.front().second, config));

  for (const auto& [name, estimator] : estimators) {
    common::RunningStats quality, drop, stall, stall_pp;
    for (std::size_t i = 0; i < traces_vec.size(); ++i) {
      const auto r = apps::run_vivo(traces_vec[i], *estimator, config);
      quality.add(r.avg_quality);
      drop.add(r.quality_drop_pct(ideal_results[i]));
      stall.add(r.stall_time_s);
      stall_pp.add(r.stall_increase_pct(ideal_results[i]));
    }
    table.add_row({name, common::TextTable::num(quality.mean(), 2),
                   common::TextTable::num(drop.mean(), 1),
                   common::TextTable::num(stall.mean(), 1),
                   common::TextTable::num(stall_pp.mean(), 1)});
  }
  std::cout << table << "\n";
  std::cout << "Paper shape: ViVo+Prism5G is near-optimal (closest to ideal on\n"
            << "both axes); LSTM improves but is far from optimal; Prophet\n"
            << "lifts quality at the cost of extra stalls.\n";
  return 0;
}
