// Fig. 8: ViVo QoE with the built-in history-based bandwidth estimator,
// relative to ideal ViVo — (a) over a no-CA 5G channel (standard ViVo,
// bitrates up to 375 Mbps) and (b) over a 4CC CA channel (scaled-up
// ViVo, bitrates up to 750 Mbps). CA's variability worsens relative QoE.
#include "bench_util.hpp"
#include "apps/vivo.hpp"

namespace {

using namespace ca5g;

sim::Trace make_trace(bool with_ca, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = bench::fast_mode() ? 40.0 : 90.0;
  config.seed = seed;
  if (!with_ca) {
    config.band_lock = {phy::BandId::kN41};
    config.modem = ue::ModemModel::kX50;  // single carrier
  }
  return sim::run_scenario(config);
}

}  // namespace

int main() {
  bench::banner("Fig. 8", "ViVo QoE vs ideal, without CA and with (up to) 4CC CA");

  const std::size_t runs = bench::fast_mode() ? 4 : 8;
  for (bool with_ca : {false, true}) {
    apps::VivoConfig config;
    config.max_bitrate_mbps = with_ca ? 750.0 : 375.0;  // scaled-up ViVo for CA
    common::TextTable table(std::string("ViVo (history estimator) vs ViVo(ideal) — ") +
                            (with_ca ? "4CC CA, 750 Mbps ladder" : "no CA, 375 Mbps ladder"));
    table.set_header({"Run", "Tput mean/std", "QualityDrop(%)", "StallIncrease(pp)"});
    common::RunningStats drops, stalls;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto trace = make_trace(with_ca, 800 + run * 13 + (with_ca ? 1 : 0));
      apps::HistoryMeanEstimator history(10);
      apps::IdealEstimator ideal;
      const auto r_hist = apps::run_vivo(trace, history, config);
      const auto r_ideal = apps::run_vivo(trace, ideal, config);
      const double drop = r_hist.quality_drop_pct(r_ideal);
      const double stall = r_hist.stall_increase_pct(r_ideal);
      drops.add(drop);
      stalls.add(stall);
      const auto agg = trace.aggregate_series();
      table.add_row({std::to_string(run),
                     common::TextTable::num(common::mean(agg), 0) + "/" +
                         common::TextTable::num(common::stddev(agg), 0),
                     common::TextTable::num(drop, 1),
                     common::TextTable::num(stall, 1)});
    }
    std::cout << table;
    std::cout << "Mean quality drop " << common::TextTable::num(drops.mean(), 1)
              << "%, mean stall increase " << common::TextTable::num(stalls.mean(), 1)
              << " pp\n\n";
  }

  std::cout << "Paper shape: without CA most runs degrade ≤5% on one metric;\n"
            << "with 4CC CA the history-based estimator visibly worsens both\n"
            << "quality and stall time relative to ideal (higher variability).\n";
  return 0;
}
