// Observability tax measurement. Two claims are verified:
//
//  1. Enabled overhead < 2%: per-op costs of Counter::inc /
//     Histogram::observe / ScopedTimer are measured directly, the number
//     of instrument updates a sim run actually performs is read back from
//     the registry snapshot, and the product is compared against the
//     run's wall time.
//
//  2. Disabled path compiles to nothing: building with -DPRISM5G_OBS=OFF
//     (PRISM5G_OBS_ENABLED=0) swaps the macros below for constexpr null
//     instruments. The static_asserts prove the stand-ins are empty,
//     trivially-destructible literal types — every method a constexpr
//     no-op on a stateless object, so the optimizer erases the calls and
//     the micro loops below time an empty loop (~0 ns/op). Run this
//     bench in both build flavours to see the per-step cost converge.
//
// `--smoke` runs reduced iteration counts for ctest registration.
#include <cstring>
#include <iostream>
#include <type_traits>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace_span.hpp"

namespace {

using namespace ca5g;

#if !PRISM5G_OBS_ENABLED
// The disabled-build contract: null instruments must carry no state and
// no destructor logic, otherwise "compiles to nothing" would be a lie.
static_assert(sizeof(obs::NullCounter) == 1 && std::is_empty_v<obs::NullCounter>);
static_assert(sizeof(obs::NullGauge) == 1 && std::is_empty_v<obs::NullGauge>);
static_assert(sizeof(obs::NullHistogram) == 1 && std::is_empty_v<obs::NullHistogram>);
static_assert(sizeof(obs::NullScopedTimer) == 1 &&
              std::is_trivially_destructible_v<obs::NullScopedTimer>);
#endif

double ns_per_op(std::size_t iters, const auto& body) {
  obs::StopWatch watch;
  for (std::size_t i = 0; i < iters; ++i) body(i);
  return static_cast<double>(watch.elapsed_ns()) / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("Observability overhead",
                std::string("instrument micro-costs + sim-engine step tax (") +
                    (PRISM5G_OBS_ENABLED ? "instrumented" : "PRISM5G_OBS=OFF") + " build)");

  const std::size_t iters = smoke ? 100000 : 10000000;
  CA5G_METRIC_COUNTER(bench_counter, "bench.obs_overhead_ops_total");
  CA5G_METRIC_HISTOGRAM(bench_hist, "bench.obs_overhead_observe_ns");

  const double counter_ns = ns_per_op(iters, [&](std::size_t) { bench_counter.inc(); });
  const double observe_ns =
      ns_per_op(iters, [&](std::size_t i) { bench_hist.observe(static_cast<double>(i + 1)); });
  const double timer_ns = ns_per_op(iters / 10, [&](std::size_t) {
    CA5G_SCOPED_TIMER(bench_hist);
  });

  common::TextTable micro("Instrument micro-costs");
  micro.set_header({"Operation", "ns/op"});
  micro.add_row({"Counter::inc", common::TextTable::num(counter_ns, 2)});
  micro.add_row({"Histogram::observe", common::TextTable::num(observe_ns, 2)});
  micro.add_row({"ScopedTimer (construct+destroy)", common::TextTable::num(timer_ns, 2)});
  std::cout << micro << "\n";

  // Sim-engine step cost with whatever instrumentation this build has.
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.env = radio::Environment::kUrbanMacro;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = smoke ? 5.0 : 60.0;
  config.step_s = 0.01;
  config.seed = 17;

  obs::StopWatch sim_watch;
  const auto trace = sim::run_scenario(config);
  const double sim_wall_ns = static_cast<double>(sim_watch.elapsed_ns());
  const double steps = static_cast<double>(trace.samples.size());
  const double step_ns = sim_wall_ns / steps;

  common::TextTable engine("Sim engine step cost");
  engine.set_header({"Metric", "Value"});
  engine.add_row({"steps", common::TextTable::num(steps, 0)});
  engine.add_row({"ns/step", common::TextTable::num(step_ns, 0)});
  engine.add_row({"steps/s", common::TextTable::num(1e9 / step_ns, 0)});

  bench::BenchReport bench_json("obs_overhead");
  bench_json.result("counter_inc_ns", counter_ns);
  bench_json.result("histogram_observe_ns", observe_ns);
  bench_json.result("scoped_timer_ns", timer_ns);
  bench_json.result("sim_step_ns", step_ns);

#if PRISM5G_OBS_ENABLED
  // Estimate the instrumentation share of the sim run: the registry
  // knows exactly how many updates the run performed; each costs about
  // a counter-inc or an observe.
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  double counter_updates = 0.0;
  for (const auto& kv : snapshot.counters)
    if (kv.first.rfind("bench.", 0) != 0) counter_updates += static_cast<double>(kv.second);
  double observe_updates = 0.0;
  for (const auto& h : snapshot.histograms)
    if (h.name.rfind("bench.", 0) != 0) observe_updates += static_cast<double>(h.count);
  const double instrument_ns = counter_updates * counter_ns + observe_updates * observe_ns;
  const double share = 100.0 * instrument_ns / sim_wall_ns;
  engine.add_row({"instrument updates",
                  common::TextTable::num(counter_updates + observe_updates, 0)});
  engine.add_row({"instrumentation share (%)", common::TextTable::num(share, 3)});
  std::cout << engine << "\n";
  bench_json.result("instrument_share_pct", share);
  if (share >= 2.0) {
    std::cerr << "FAIL: instrumentation overhead " << share << "% >= 2%\n";
    return 1;
  }
  std::cout << "PASS: instrumentation share " << common::TextTable::num(share, 3)
            << "% of sim wall time (< 2% budget)\n";
#else
  std::cout << engine << "\n"
            << "PRISM5G_OBS=OFF build: instrument loops above time empty loops —\n"
            << "the macros expanded to constexpr null objects (see static_asserts),\n"
            << "so the sim step cost here IS the zero-overhead baseline.\n";
#endif
  return 0;
}
