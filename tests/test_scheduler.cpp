// Unit tests for the per-CC scheduler: link adaptation, load response,
// the Fig. 14 FDD layer drop under CA, and the Fig. 15 SCell throttle.
#include <gtest/gtest.h>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ran/scheduler.hpp"

namespace {

using namespace ca5g::ran;
using ca5g::common::Rng;
using ca5g::phy::BandId;
using ca5g::radio::LinkMeasurement;
using ca5g::ue::ModemModel;
using ca5g::ue::ue_capability;

Carrier carrier_of(BandId band, int bw, int scs) {
  Carrier c;
  c.band = band;
  c.bandwidth_mhz = bw;
  c.scs_khz = scs;
  return c;
}

LinkMeasurement link(double sinr_db, double rsrp = -85.0) {
  LinkMeasurement m;
  m.rsrp_dbm = rsrp;
  m.sinr_db = sinr_db;
  m.rsrq_db = -10.0;
  return m;
}

/// Average allocation over many draws to marginalize scheduler noise.
CcAllocation average_alloc(const Scheduler& sched, const Carrier& c,
                           const LinkMeasurement& m, const CaContext& ctx, double load,
                           int draws = 300) {
  Rng rng(99);
  CcAllocation mean{};
  double tput = 0.0, rb = 0.0, layers = 0.0, bler = 0.0;
  const auto capability = ue_capability(ModemModel::kX70);
  for (int i = 0; i < draws; ++i) {
    const auto a = sched.allocate(c, m, ctx, capability, load, rng);
    tput += a.tput_bps;
    rb += a.rb;
    layers += a.layers;
    bler += a.bler;
    mean.cqi = a.cqi;
    mean.mcs = a.mcs;
  }
  mean.tput_bps = tput / draws;
  mean.rb = static_cast<int>(rb / draws);
  mean.layers = static_cast<int>(std::lround(layers / draws));
  mean.bler = bler / draws;
  return mean;
}

TEST(Scheduler, RankThresholds) {
  EXPECT_EQ(Scheduler::rank_from_sinr(30.0), 4);
  EXPECT_EQ(Scheduler::rank_from_sinr(16.0), 3);
  EXPECT_EQ(Scheduler::rank_from_sinr(10.0), 2);
  EXPECT_EQ(Scheduler::rank_from_sinr(0.0), 1);
}

TEST(Scheduler, OutOfRangeChannelGetsNothing) {
  Scheduler sched;
  Rng rng(1);
  const auto a = sched.allocate(carrier_of(BandId::kN41, 100, 30), link(-14.0),
                                CaContext{}, ue_capability(ModemModel::kX70), 0.3, rng);
  EXPECT_EQ(a.cqi, 0);
  EXPECT_EQ(a.rb, 0);
  EXPECT_DOUBLE_EQ(a.tput_bps, 0.0);
}

TEST(Scheduler, GoodChannelGetsHighGrant) {
  Scheduler sched;
  const auto a = average_alloc(sched, carrier_of(BandId::kN41, 100, 30), link(30.0),
                               CaContext{}, 0.1);
  EXPECT_GE(a.cqi, 14);
  EXPECT_GE(a.mcs, 24);
  EXPECT_EQ(a.layers, 4);
  EXPECT_GT(a.rb, 180);      // most of 273 RBs
  EXPECT_GT(a.tput_bps, 5e8);  // hundreds of Mbps
}

TEST(Scheduler, LoadShrinksRbGrant) {
  Scheduler sched;
  const auto quiet = average_alloc(sched, carrier_of(BandId::kN41, 100, 30), link(30.0),
                                   CaContext{}, 0.05);
  const auto busy = average_alloc(sched, carrier_of(BandId::kN41, 100, 30), link(30.0),
                                  CaContext{}, 0.9);
  EXPECT_GT(quiet.rb, busy.rb + 40);
}

TEST(Scheduler, Fig14_FddLayersCollapseUnderCa) {
  // The paper's Fig. 14: n25 runs 3 layers alone but only 1 inside a
  // 3CC combination at the same RSRP/CQI.
  Scheduler sched;
  const auto alone = average_alloc(sched, carrier_of(BandId::kN25, 20, 15), link(28.0),
                                   CaContext{1, 20, true, false}, 0.2);
  EXPECT_EQ(alone.layers, 3);
  CaContext ca3;
  ca3.active_ccs = 3;
  ca3.aggregate_bw_mhz = 160;
  ca3.is_pcell = false;
  const auto in_ca = average_alloc(sched, carrier_of(BandId::kN25, 20, 15), link(28.0),
                                   ca3, 0.2);
  EXPECT_EQ(in_ca.layers, 1);
  // Throughput roughly drops with the rank (paper: 212 → ~100 Mbps).
  EXPECT_LT(in_ca.tput_bps, 0.6 * alone.tput_bps);
}

TEST(Scheduler, TddLayersSurviveCa) {
  Scheduler sched;
  CaContext ca4;
  ca4.active_ccs = 4;
  ca4.aggregate_bw_mhz = 180;
  ca4.is_pcell = true;
  const auto a = average_alloc(sched, carrier_of(BandId::kN41, 100, 30), link(30.0),
                               ca4, 0.2);
  EXPECT_EQ(a.layers, 4);
}

TEST(Scheduler, Fig15_ScellThrottledInWideBusyCombos) {
  // Same 40 MHz n41 SCell: full RBs in a 140 MHz combo, starved in a
  // 240 MHz combo when the cell is busy (paper Fig. 15).
  Scheduler sched;
  CaContext narrow;
  narrow.active_ccs = 2;
  narrow.aggregate_bw_mhz = 112;
  narrow.is_pcell = false;
  CaContext wide;
  wide.active_ccs = 3;
  wide.aggregate_bw_mhz = 240;
  wide.is_pcell = false;
  const auto in_narrow = average_alloc(sched, carrier_of(BandId::kN41, 40, 30),
                                       link(25.0), narrow, 0.7);
  const auto in_wide = average_alloc(sched, carrier_of(BandId::kN41, 40, 30),
                                     link(25.0), wide, 0.7);
  EXPECT_LT(in_wide.rb, in_narrow.rb);
  EXPECT_LT(in_wide.tput_bps, 0.8 * in_narrow.tput_bps);
}

TEST(Scheduler, PcellNeverThrottled) {
  Scheduler sched;
  CaContext wide;
  wide.active_ccs = 3;
  wide.aggregate_bw_mhz = 240;
  wide.is_pcell = true;
  CaContext alone;
  const auto pcell_wide = average_alloc(sched, carrier_of(BandId::kN41, 100, 30),
                                        link(25.0), wide, 0.7);
  const auto standalone = average_alloc(sched, carrier_of(BandId::kN41, 100, 30),
                                        link(25.0), alone, 0.7);
  EXPECT_NEAR(pcell_wide.rb, standalone.rb, standalone.rb * 0.15);
}

TEST(Scheduler, MmwaveCappedAtTwoLayers) {
  Scheduler sched;
  const auto a = average_alloc(sched, carrier_of(BandId::kN260, 100, 120), link(30.0),
                               CaContext{}, 0.1);
  EXPECT_LE(a.layers, 2);
}

TEST(Scheduler, LowBandCappedAtTwoLayers) {
  Scheduler sched;
  const auto a = average_alloc(sched, carrier_of(BandId::kN71, 20, 15), link(30.0),
                               CaContext{}, 0.1);
  EXPECT_LE(a.layers, 2);
}

TEST(Scheduler, UtilizationNoiseMakesThroughputBursty) {
  Scheduler sched;
  Rng rng(7);
  const auto capability = ue_capability(ModemModel::kX70);
  std::vector<double> tputs;
  for (int i = 0; i < 2000; ++i)
    tputs.push_back(sched.allocate(carrier_of(BandId::kN41, 100, 30), link(30.0),
                                   CaContext{}, capability, 0.2, rng)
                        .tput_bps);
  const double cv = ca5g::common::stddev(tputs) / ca5g::common::mean(tputs);
  EXPECT_GT(cv, 0.15);  // bursty, like real 10 ms traces
  EXPECT_LT(cv, 0.8);
}

TEST(Scheduler, InvalidContextThrows) {
  Scheduler sched;
  Rng rng(1);
  CaContext bad;
  bad.active_ccs = 0;
  EXPECT_THROW((void)sched.allocate(carrier_of(BandId::kN41, 100, 30), link(20.0), bad,
                                    ue_capability(ModemModel::kX70), 0.2, rng),
               ca5g::common::CheckError);
}

}  // namespace
