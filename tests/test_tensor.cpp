// Tests for the autograd engine, including numerical gradient checks of
// every differentiable op (central finite differences).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "common/check.hpp"
#include "nn/tensor.hpp"

namespace {

using namespace ca5g::nn;
using ca5g::common::Rng;

/// Numerically verify d(f)/d(leaf) against autograd for every element of
/// every leaf tensor. `f` must build a fresh graph each call.
void grad_check(std::vector<Tensor> leaves, const std::function<Tensor()>& f,
                double tolerance = 2e-2) {
  for (auto& leaf : leaves) leaf.zero_grad();
  Tensor out = f();
  out.backward();
  std::vector<std::vector<float>> analytic;
  for (auto& leaf : leaves) analytic.push_back(leaf.grad());

  const float eps = 1e-2f;  // float precision: keep the step large-ish
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    for (std::size_t i = 0; i < leaves[l].values().size(); ++i) {
      const float saved = leaves[l].values()[i];
      leaves[l].values()[i] = saved + eps;
      const double plus = f().at(0, 0);
      leaves[l].values()[i] = saved - eps;
      const double minus = f().at(0, 0);
      leaves[l].values()[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(analytic[l][i], numeric,
                  tolerance * std::max(1.0, std::abs(numeric)))
          << "leaf " << l << " element " << i;
    }
  }
}

Tensor leaf(Rng& rng, std::size_t r, std::size_t c) {
  return Tensor::randn(rng, r, c, 0.5f, true);
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  t.set(1, 2, 5.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_THROW((void)t.at(2, 0), ca5g::common::CheckError);
  EXPECT_FALSE(Tensor{}.defined());
}

TEST(Tensor, FactoryFunctions) {
  const auto c = Tensor::constant(2, 2, 3.5f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 3.5f);
  const auto f = Tensor::from({1, 2, 3, 4}, 2, 2);
  EXPECT_FLOAT_EQ(f.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor::from({1, 2, 3}, 2, 2), ca5g::common::CheckError);
  Rng rng(1);
  const auto r = Tensor::randn(rng, 4, 4, 1.0f);
  EXPECT_TRUE(r.requires_grad());
}

TEST(Tensor, MatmulForward) {
  const auto a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const auto b = Tensor::from({5, 6, 7, 8}, 2, 2);
  const auto c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
  EXPECT_THROW(matmul(a, Tensor::zeros(3, 2)), ca5g::common::CheckError);
}

TEST(Tensor, AddBroadcastForward) {
  const auto a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const auto row = Tensor::from({10, 20}, 1, 2);
  const auto c = a + row;
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 24.0f);
}

TEST(Tensor, SliceAndConcatForward) {
  const auto a = Tensor::from({1, 2, 3, 4, 5, 6}, 2, 3);
  const auto s = slice_cols(a, 1, 2);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_FLOAT_EQ(s.at(1, 0), 5.0f);
  const std::vector<Tensor> parts{s, s};
  const auto c = concat_cols(parts);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_FLOAT_EQ(c.at(0, 2), 2.0f);
  EXPECT_THROW(slice_cols(a, 2, 2), ca5g::common::CheckError);
}

TEST(Tensor, SumAndMean) {
  const auto a = Tensor::from({1, 2, 3, 4}, 2, 2);
  EXPECT_FLOAT_EQ(sum_all(a).at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(mean_all(a).at(0, 0), 2.5f);
}

TEST(Tensor, DetachBreaksGraph) {
  Rng rng(2);
  auto a = leaf(rng, 2, 2);
  const auto d = a.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.at(0, 0), a.at(0, 0));
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor t(2, 2, true);
  EXPECT_THROW(t.backward(), ca5g::common::CheckError);
}

// ---- Gradient checks --------------------------------------------------------

TEST(GradCheck, Matmul) {
  Rng rng(10);
  auto a = leaf(rng, 3, 4);
  auto b = leaf(rng, 4, 2);
  grad_check({a, b}, [&] { return sum_all(matmul(a, b)); });
}

TEST(GradCheck, AddSameShape) {
  Rng rng(11);
  auto a = leaf(rng, 2, 3);
  auto b = leaf(rng, 2, 3);
  grad_check({a, b}, [&] { return sum_all((a + b) * (a + b)); });
}

TEST(GradCheck, AddRowBroadcast) {
  Rng rng(12);
  auto a = leaf(rng, 3, 2);
  auto row = leaf(rng, 1, 2);
  grad_check({a, row}, [&] { return sum_all((a + row) * (a + row)); });
}

TEST(GradCheck, Subtract) {
  Rng rng(13);
  auto a = leaf(rng, 2, 2);
  auto b = leaf(rng, 2, 2);
  grad_check({a, b}, [&] { return sum_all((a - b) * (a - b)); });
}

TEST(GradCheck, HadamardAndBroadcastMul) {
  Rng rng(14);
  auto a = leaf(rng, 2, 3);
  auto b = leaf(rng, 2, 3);
  grad_check({a, b}, [&] { return sum_all(a * b); });
  auto row = leaf(rng, 1, 3);
  grad_check({a, row}, [&] { return sum_all(a * row); });
}

TEST(GradCheck, Scale) {
  Rng rng(15);
  auto a = leaf(rng, 2, 2);
  grad_check({a}, [&] { return sum_all(scale(a, -2.5f)); });
}

TEST(GradCheck, Tanh) {
  Rng rng(16);
  auto a = leaf(rng, 2, 3);
  grad_check({a}, [&] { return sum_all(tanh_op(a)); });
}

TEST(GradCheck, Sigmoid) {
  Rng rng(17);
  auto a = leaf(rng, 2, 3);
  grad_check({a}, [&] { return sum_all(sigmoid(a)); });
}

TEST(GradCheck, Relu) {
  Rng rng(18);
  auto a = leaf(rng, 3, 3);
  // Keep values away from the kink for a clean numerical comparison.
  for (auto& v : a.values())
    if (std::abs(v) < 0.1f) v = 0.3f;
  grad_check({a}, [&] { return sum_all(relu(a)); });
}

TEST(GradCheck, SliceConcat) {
  Rng rng(19);
  auto a = leaf(rng, 2, 4);
  grad_check({a}, [&] {
    const auto left = slice_cols(a, 0, 2);
    const auto right = slice_cols(a, 2, 2);
    const std::vector<Tensor> parts{right, left};
    return sum_all(concat_cols(parts) * concat_cols(parts));
  });
}

TEST(GradCheck, MseLoss) {
  Rng rng(20);
  auto pred = leaf(rng, 3, 2);
  const auto target = Tensor::constant(3, 2, 0.3f);
  grad_check({pred}, [&] { return mse_loss(pred, target); });
}

TEST(GradCheck, CompositeExpression) {
  // A small MLP-like composite: tests accumulation through shared nodes.
  Rng rng(21);
  auto w1 = leaf(rng, 3, 4);
  auto w2 = leaf(rng, 4, 1);
  auto x = leaf(rng, 2, 3);
  grad_check({w1, w2, x}, [&] {
    const auto h = tanh_op(matmul(x, w1));
    return sum_all(matmul(h, w2));
  });
}

TEST(GradCheck, ReusedTensorAccumulates) {
  Rng rng(22);
  auto a = leaf(rng, 2, 2);
  // a appears twice: gradient must accumulate both paths.
  grad_check({a}, [&] { return sum_all(a * a + a); });
}

TEST(Tensor, SoftmaxRowsForward) {
  const auto a = Tensor::from({0, 0, 0, 1, 2, 3}, 2, 3);
  const auto s = softmax_rows(a);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(s.at(0, c), 1.0f / 3, 1e-6);
  float sum = 0.0f;
  for (std::size_t c = 0; c < 3; ++c) sum += s.at(1, c);
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(s.at(1, 2), s.at(1, 1));
}

TEST(GradCheck, SoftmaxRows) {
  Rng rng(30);
  auto a = leaf(rng, 2, 4);
  const auto weights = Tensor::from({1, -2, 0.5, 3, -1, 2, 0.3, -0.7}, 2, 4);
  grad_check({a}, [&] { return sum_all(softmax_rows(a) * weights); });
}

TEST(Tensor, RowwiseDotForward) {
  const auto a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const auto b = Tensor::from({5, 6, 7, 8}, 2, 2);
  const auto d = rowwise_dot(a, b);
  EXPECT_EQ(d.cols(), 1u);
  EXPECT_FLOAT_EQ(d.at(0, 0), 17.0f);
  EXPECT_FLOAT_EQ(d.at(1, 0), 53.0f);
}

TEST(GradCheck, RowwiseDot) {
  Rng rng(31);
  auto a = leaf(rng, 3, 3);
  auto b = leaf(rng, 3, 3);
  grad_check({a, b}, [&] { return sum_all(rowwise_dot(a, b) * rowwise_dot(a, b)); });
}

TEST(Tensor, MulColBroadcastForward) {
  const auto a = Tensor::from({1, 2, 3, 4}, 2, 2);
  const auto col = Tensor::from({10, -1}, 2, 1);
  const auto m = mul_col_broadcast(a, col);
  EXPECT_FLOAT_EQ(m.at(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), -3.0f);
  EXPECT_THROW(mul_col_broadcast(a, Tensor::zeros(3, 1)), ca5g::common::CheckError);
}

TEST(GradCheck, MulColBroadcast) {
  Rng rng(32);
  auto a = leaf(rng, 3, 2);
  auto col = leaf(rng, 3, 1);
  grad_check({a, col}, [&] { return sum_all(mul_col_broadcast(a, col)); });
}

TEST(Tensor, GradientAccumulatesAcrossBackwards) {
  Rng rng(23);
  auto a = leaf(rng, 1, 1);
  auto loss1 = sum_all(a);
  loss1.backward();
  auto loss2 = sum_all(a);
  loss2.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);  // 1 + 1
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

}  // namespace
