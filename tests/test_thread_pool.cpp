// Tests for the shared work-stealing pool: completion and coverage
// guarantees, slot-exclusive parallel_for semantics, exception
// propagation, and the CA5G_THREADS sizing knob. Runs under CI's TSan
// `parallel` stage — these tests are the pool's race coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using namespace ca5g;

TEST(ThreadPool, RunsEverySubmittedTask) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  common::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  common::ThreadPool pool(2);
  pool.wait_idle();  // nothing submitted: must not hang
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    common::ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) pool.submit([&] { count.fetch_add(1); });
    // No wait_idle: shutdown itself must complete the queue.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  common::parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOneElement) {
  common::ThreadPool pool(2);
  common::parallel_for(pool, 0, [&](std::size_t) { FAIL() << "fn called for n=0"; });
  int calls = 0;
  common::parallel_for(1, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForSingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  common::parallel_for(1, 8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  common::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception round.
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesTaskException) {
  EXPECT_THROW(common::parallel_for(4, 64,
                                    [](std::size_t i) {
                                      if (i == 13) throw std::runtime_error("index boom");
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, StealsHappenWhenOneQueueHoldsAllTheWork) {
  // Round-robin submit spreads 2 tasks over 4 queues; the two sleeping
  // owners force the idle workers to steal the rest. Submitting many
  // more tasks than workers makes at least one steal overwhelmingly
  // deterministic in practice; the invariant checked is completion.
  common::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      count.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
  EXPECT_GE(pool.steal_count(), 0u);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  ::setenv("CA5G_THREADS", "3", 1);
  EXPECT_EQ(common::default_thread_count(), 3u);
  ::setenv("CA5G_THREADS", "0", 1);  // invalid: falls back to hardware
  EXPECT_GE(common::default_thread_count(), 1u);
  ::unsetenv("CA5G_THREADS");
  EXPECT_GE(common::default_thread_count(), 1u);
}

}  // namespace
