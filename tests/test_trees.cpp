// Unit tests for regression trees, GBDT, and random forest.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "predictors/trees.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;

/// Step-function data: y = 1 when x0 > 0.5, else 0 — trivially splittable.
void make_step_data(std::vector<std::vector<double>>& x, std::vector<double>& y,
                    std::size_t n, common::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    x.push_back({a, b});
    y.push_back(a > 0.5 ? 1.0 : 0.0);
  }
}

TEST(RegressionTree, LearnsStepFunction) {
  common::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_step_data(x, y, 400, rng);
  RegressionTree tree;
  RegressionTree::Config config;
  config.max_depth = 3;
  config.feature_subsample = 2;  // consider both features
  tree.fit(x, y, config, rng);
  EXPECT_GT(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict({0.9, 0.5}), 1.0, 0.1);
  EXPECT_NEAR(tree.predict({0.1, 0.5}), 0.0, 0.1);
}

TEST(RegressionTree, DepthZeroIsMean) {
  common::Rng rng(2);
  std::vector<std::vector<double>> x{{0.0}, {1.0}};
  std::vector<double> y{2.0, 4.0};
  RegressionTree tree;
  RegressionTree::Config config;
  config.max_depth = 0;
  tree.fit(x, y, config, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({0.5}), 3.0);
}

TEST(RegressionTree, MinLeafSizeRespected) {
  common::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  make_step_data(x, y, 10, rng);
  RegressionTree tree;
  RegressionTree::Config config;
  config.min_samples_leaf = 6;  // 10 samples cannot split into 6+6
  config.feature_subsample = 2;
  tree.fit(x, y, config, rng);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RegressionTree, RejectsEmptyOrMismatched) {
  common::Rng rng(4);
  RegressionTree tree;
  EXPECT_THROW(tree.fit({}, {}, {}, rng), common::CheckError);
  EXPECT_THROW(tree.fit({{1.0}}, {1.0, 2.0}, {}, rng), common::CheckError);
  EXPECT_THROW((void)tree.predict({1.0}), common::CheckError);  // unfitted
}

TEST(Gbdt, BeatsConstantBaseline) {
  const auto ds = ca5g::test::synthetic_dataset(2, 300);
  common::Rng rng(5);
  const auto split = ds.random_split(0.6, 0.1, rng);
  GbdtPredictor gbdt;
  gbdt.fit(ds, split.train, split.val);
  const double gbdt_rmse = evaluate_rmse(gbdt, split.test);

  // Constant-mean baseline RMSE for comparison.
  double mean = 0.0;
  std::size_t n = 0;
  for (const auto* w : split.train)
    for (double t : w->target) {
      mean += t;
      ++n;
    }
  mean /= static_cast<double>(n);
  double sq = 0.0;
  std::size_t m = 0;
  for (const auto* w : split.test)
    for (double t : w->target) {
      sq += (t - mean) * (t - mean);
      ++m;
    }
  const double baseline_rmse = std::sqrt(sq / static_cast<double>(m));
  EXPECT_LT(gbdt_rmse, 0.8 * baseline_rmse);
}

TEST(Gbdt, PredictionHorizonMatchesDataset) {
  const auto ds = ca5g::test::synthetic_dataset(1, 150);
  common::Rng rng(6);
  const auto split = ds.random_split(0.6, 0.1, rng);
  GbdtPredictor gbdt;
  gbdt.fit(ds, split.train, split.val);
  EXPECT_EQ(gbdt.predict(*split.test.front()).size(), ds.horizon());
  EXPECT_EQ(gbdt.name(), "GBDT");
}

TEST(RandomForest, LearnsAndIsBounded) {
  const auto ds = ca5g::test::synthetic_dataset(1, 250);
  common::Rng rng(7);
  const auto split = ds.random_split(0.6, 0.1, rng);
  RandomForestPredictor rf;
  rf.fit(ds, split.train, split.val);
  const double rmse = evaluate_rmse(rf, split.test);
  EXPECT_LT(rmse, 0.25);
  for (const auto* w : split.test) {
    for (double p : rf.predict(*w)) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.5);
    }
  }
}

TEST(Trees, PredictBeforeFitThrows) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  GbdtPredictor gbdt;
  EXPECT_THROW((void)gbdt.predict(ds.windows().front()), common::CheckError);
  RandomForestPredictor rf;
  EXPECT_THROW((void)rf.predict(ds.windows().front()), common::CheckError);
}

TEST(Trees, FlattenWindowDimensions) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  const auto flat = flatten_window(ds.windows().front());
  EXPECT_EQ(flat.size(), ds.history() * ds.flat_dim());
}

}  // namespace
