// Tests for the Prism5G CA-aware predictor: architecture invariants,
// learning, per-CC decomposition, masking semantics, and ablations.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/prism5g.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using predictors::TrainConfig;

TrainConfig tiny_config() {
  TrainConfig config;
  config.epochs = 12;
  config.hidden = 16;
  config.layers = 1;
  config.batch_size = 32;
  config.patience = 12;
  return config;
}

/// Strong per-CC supervision so the tiny training budget still forces
/// the heads to track their own carriers (what the per-CC assertions
/// below verify).
core::Prism5gConfig strong_aux() {
  core::Prism5gConfig config;
  config.per_cc_loss_weight = 0.5f;
  return config;
}

class Prism5gTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<traces::Dataset>(ca5g::test::synthetic_dataset(2, 300));
    common::Rng rng(21);
    split_ = ds_->random_split(0.6, 0.15, rng);
  }
  std::unique_ptr<traces::Dataset> ds_;
  traces::Dataset::Split split_;
};

TEST_F(Prism5gTest, NamesReflectAblations) {
  EXPECT_EQ(core::Prism5G(tiny_config()).name(), "Prism5G");
  core::Prism5gConfig no_state;
  no_state.use_state = false;
  EXPECT_EQ(core::Prism5G(tiny_config(), no_state).name(), "Prism5G(no-state)");
  core::Prism5gConfig no_fusion;
  no_fusion.use_fusion = false;
  EXPECT_EQ(core::Prism5G(tiny_config(), no_fusion).name(), "Prism5G(no-fusion)");
}

TEST_F(Prism5gTest, LearnsSyntheticStructure) {
  core::Prism5G model(tiny_config(), strong_aux());
  model.fit(*ds_, split_.train, split_.val);
  const double rmse = predictors::evaluate_rmse(model, split_.test);
  EXPECT_LT(rmse, 0.15);  // structured synthetic data is very learnable
}

TEST_F(Prism5gTest, AggregateEqualsSumOfPerCcHeads) {
  core::Prism5G model(tiny_config(), strong_aux());
  model.fit(*ds_, split_.train, split_.val);
  const auto& w = *split_.test.front();
  const auto agg = model.predict(w);
  const auto per_cc = model.predict_per_cc(w);
  ASSERT_EQ(per_cc.size(), ds_->cc_slots());
  for (std::size_t h = 0; h < agg.size(); ++h) {
    double sum = 0.0;
    for (const auto& cc : per_cc) sum += cc[h];
    // predict() clamps to [0, 1.5]; compare against the clamped sum.
    EXPECT_NEAR(agg[h], std::clamp(sum, 0.0, 1.5), 0.02);
  }
}

TEST_F(Prism5gTest, PerCcPredictionsTrackPerCcTargets) {
  core::Prism5G model(tiny_config(), strong_aux());
  model.fit(*ds_, split_.train, split_.val);
  // cc0 is always active and carries most throughput; cc2/cc3 are never
  // active in the synthetic data, so their heads must output ≈ 0.
  double cc0 = 0.0, cc2 = 0.0, cc3 = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(split_.test.size(), 40); ++i) {
    const auto per_cc = model.predict_per_cc(*split_.test[i]);
    cc0 += per_cc[0].front();
    cc2 += per_cc[2].front();
    cc3 += per_cc[3].front();
    ++n;
  }
  cc0 /= n;
  cc2 /= n;
  cc3 /= n;
  EXPECT_GT(cc0, 0.25);
  EXPECT_LT(cc2, 0.08);
  EXPECT_LT(cc3, 0.08);
}

TEST_F(Prism5gTest, MaskGatesInputs) {
  // With the state mechanism on, zeroing the mask of a window must
  // change the prediction (inputs are gated by the mask).
  core::Prism5G model(tiny_config(), strong_aux());
  model.fit(*ds_, split_.train, split_.val);
  traces::Window w = *split_.test.front();
  const auto before = model.predict(w);
  for (auto& step : w.mask)
    for (auto& m : step) m = 0.0;
  const auto after = model.predict(w);
  double diff = 0.0;
  for (std::size_t h = 0; h < before.size(); ++h) diff += std::abs(before[h] - after[h]);
  EXPECT_GT(diff, 1e-3);
}

TEST_F(Prism5gTest, AblationsStillLearn) {
  core::Prism5gConfig no_state;
  no_state.use_state = false;
  core::Prism5G a(tiny_config(), no_state);
  a.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(predictors::evaluate_rmse(a, split_.test), 0.2);

  core::Prism5gConfig no_fusion;
  no_fusion.use_fusion = false;
  core::Prism5G b(tiny_config(), no_fusion);
  b.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(predictors::evaluate_rmse(b, split_.test), 0.2);
}

TEST_F(Prism5gTest, SharedEncoderKeepsParameterCountFlat) {
  // The encoder is weights-shared across CCs: parameter count must not
  // scale with the number of CC slots (only heads/fusion see C).
  core::Prism5G model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  // hidden=16: LSTM(13→16) ≈ (13+16+1)·64 ≈ 1.9k; everything together
  // must stay well under 4·LSTM-sized if sharing works.
  std::size_t total = 0;
  // Probe via a second fit on a fresh model — parameters() is protected,
  // so assert indirectly through deterministic behaviour instead.
  core::Prism5G again(tiny_config());
  again.fit(*ds_, split_.train, split_.val);
  const auto pa = model.predict(*split_.test.front());
  const auto pb = again.predict(*split_.test.front());
  for (std::size_t h = 0; h < pa.size(); ++h) EXPECT_FLOAT_EQ(pa[h], pb[h]);
  (void)total;
}

TEST_F(Prism5gTest, RespondsToCaStateChange) {
  // Construct two windows identical except cc1's activation state; a
  // CA-aware model must predict higher throughput when cc1 is active.
  core::Prism5G model(tiny_config(), strong_aux());
  model.fit(*ds_, split_.train, split_.val);

  // Find a test window where cc1 is active throughout.
  const traces::Window* active_window = nullptr;
  for (const auto* w : split_.test) {
    bool all_on = true;
    for (const auto& step : w->mask) all_on = all_on && step[1] > 0.5;
    if (all_on) {
      active_window = w;
      break;
    }
  }
  ASSERT_NE(active_window, nullptr);

  traces::Window off = *active_window;
  for (std::size_t t = 0; t < off.mask.size(); ++t) {
    off.mask[t][1] = 0.0;
    for (auto& f : off.cc_feat[t][1]) f = 0.0;
  }
  const double with_cc1 = model.predict(*active_window).front();
  const double without_cc1 = model.predict(off).front();
  EXPECT_GT(with_cc1, without_cc1 + 0.02);
}

TEST_F(Prism5gTest, TransformerEncoderVariantLearns) {
  // Paper §9 future work: the framework is architecture-agnostic — a
  // transformer per-CC encoder plugs into the same mask/fusion/heads.
  core::Prism5gConfig config = strong_aux();
  config.encoder = core::EncoderKind::kTransformer;
  core::Prism5G model(tiny_config(), config);
  EXPECT_EQ(model.name(), "Prism5G(transformer)");
  model.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(predictors::evaluate_rmse(model, split_.test), 0.25);
  // Per-CC decomposition still holds with the swapped encoder.
  const auto per_cc = model.predict_per_cc(*split_.test.front());
  EXPECT_EQ(per_cc.size(), ds_->cc_slots());
}

}  // namespace
