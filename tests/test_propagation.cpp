// Unit + property tests for propagation models.
#include <gtest/gtest.h>

#include <cmath>
#include "common/check.hpp"
#include "radio/propagation.hpp"

namespace {

using namespace ca5g::radio;

TEST(Propagation, Distance) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(Propagation, PathLossIncreasesWithDistance) {
  const double near = path_loss_db(1900, 50, Environment::kUrbanMacro);
  const double far = path_loss_db(1900, 500, Environment::kUrbanMacro);
  EXPECT_GT(far, near);
}

TEST(Propagation, PathLossIncreasesWithFrequency) {
  const double low = path_loss_db(600, 300, Environment::kUrbanMacro);
  const double mid = path_loss_db(2500, 300, Environment::kUrbanMacro);
  EXPECT_GT(mid, low);
  // The low-band advantage is what lets n71 anchor coverage (Fig. 28).
  EXPECT_NEAR(mid - low, 20.0 * std::log10(2500.0 / 600.0), 1e-6);
}

TEST(Propagation, NearFieldClamped) {
  EXPECT_DOUBLE_EQ(path_loss_db(1900, 1.0, Environment::kUrbanMacro),
                   path_loss_db(1900, 10.0, Environment::kUrbanMacro));
}

TEST(Propagation, EnvironmentOrdering) {
  // Urban NLOS is lossier than suburban, which is lossier than highway.
  const double d = 800.0;
  const double urban = path_loss_db(1900, d, Environment::kUrbanMacro);
  const double suburban = path_loss_db(1900, d, Environment::kSuburbanMacro);
  const double highway = path_loss_db(1900, d, Environment::kHighway);
  EXPECT_GT(urban, suburban);
  EXPECT_GT(suburban, highway);
}

TEST(Propagation, MmwaveUsesFr2Curve) {
  const double fr2 = path_loss_db(39000, 200, Environment::kUrbanMacro);
  const double fr1 = path_loss_db(3700, 200, Environment::kUrbanMacro);
  EXPECT_GT(fr2, fr1 + 10.0);
}

TEST(Propagation, O2iPenetration) {
  // Low band penetrates much better than mid band; mmWave is blocked.
  EXPECT_LT(o2i_penetration_db(600), o2i_penetration_db(3700));
  EXPECT_GE(o2i_penetration_db(39000), 50.0);
  EXPECT_GT(o2i_penetration_db(3700) - o2i_penetration_db(600), 8.0);
}

TEST(Propagation, NoisePower) {
  // kTB: -174 dBm/Hz + 10log10(BW) + NF.
  EXPECT_NEAR(noise_power_dbm(1.0, 0.0), -174.0, 1e-9);
  EXPECT_NEAR(noise_power_dbm(20e6, 7.0), -174.0 + 73.0 + 7.0, 0.1);
  EXPECT_THROW((void)noise_power_dbm(0.0), ca5g::common::CheckError);
  EXPECT_THROW((void)path_loss_db(-1.0, 100, Environment::kUrbanMacro),
               ca5g::common::CheckError);
}

// Property: path loss is monotone in distance for every environment.
class PathLossMonotone
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PathLossMonotone, MonotoneInDistance) {
  const auto env = static_cast<Environment>(std::get<0>(GetParam()));
  const double freq = std::get<1>(GetParam());
  double prev = -1e9;
  for (double d = 10; d <= 3000; d *= 1.5) {
    const double pl = path_loss_db(freq, d, env);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EnvFreq, PathLossMonotone,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(600.0, 1900.0, 3700.0, 39000.0)));

}  // namespace
