// Tests for the QoE applications: estimators, ViVo, and MPC ABR.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/abr.hpp"
#include "apps/vivo.hpp"
#include "common/check.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::apps;

/// Constant-throughput trace for exact QoE accounting checks.
sim::Trace constant_trace(double mbps, std::size_t samples = 3000, double step = 0.01) {
  sim::Trace trace;
  trace.step_s = step;
  trace.cc_slots = 4;
  for (std::size_t i = 0; i < samples; ++i) {
    sim::TraceSample s;
    s.time_s = static_cast<double>(i) * step;
    s.ccs.assign(4, sim::CcSample{});
    s.ccs[0].active = true;
    s.ccs[0].tput_mbps = mbps;
    s.aggregate_tput_mbps = mbps;
    trace.samples.push_back(std::move(s));
  }
  return trace;
}

TEST(Estimators, HistoryMeanAveragesRecentSamples) {
  auto trace = constant_trace(100.0, 100);
  for (std::size_t i = 90; i < 100; ++i) trace.samples[i].aggregate_tput_mbps = 200.0;
  HistoryMeanEstimator est(10);
  EXPECT_NEAR(est.estimate_mbps(trace, 100, 5), 200.0, 1e-9);
  EXPECT_NEAR(est.estimate_mbps(trace, 50, 5), 100.0, 1e-9);
}

TEST(Estimators, HarmonicMeanBelowArithmetic) {
  auto trace = constant_trace(100.0, 100);
  trace.samples[95].aggregate_tput_mbps = 1.0;  // one deep dip
  HarmonicMeanEstimator hm(10);
  HistoryMeanEstimator am(10);
  EXPECT_LT(hm.estimate_mbps(trace, 100, 5), am.estimate_mbps(trace, 100, 5));
}

TEST(Estimators, IdealReturnsActualFuture) {
  auto trace = constant_trace(100.0, 100);
  trace.samples[60].aggregate_tput_mbps = 500.0;
  IdealEstimator ideal;
  const auto series = ideal.predict_mbps(trace, 58, 5);
  EXPECT_DOUBLE_EQ(series[2], 500.0);  // index 58+2 = 60
  EXPECT_DOUBLE_EQ(series[0], 100.0);
}

TEST(Estimators, IdealClampsAtTraceEnd) {
  const auto trace = constant_trace(100.0, 50);
  IdealEstimator ideal;
  const auto series = ideal.predict_mbps(trace, 48, 10);
  EXPECT_EQ(series.size(), 10u);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 100.0);
}

TEST(Vivo, ConstantBandwidthPicksMatchingQuality) {
  // 600 Mbps channel, 750 Mbps max ladder with 6 levels (125 Mbps per
  // level): at safety 0.9 and deadline 1.5× the frame interval, ViVo can
  // afford level ⌊0.9·600·0.15/ (750/6·0.1)⌋ → bitrate ≤ 810 Mb per s of
  // frames... compute expectation directly instead:
  const auto trace = constant_trace(600.0);
  IdealEstimator ideal;
  VivoConfig config;
  const auto result = run_vivo(trace, ideal, config);
  // Highest level L with (750·L/6)·0.1 ≤ 0.9·600·0.15 → L ≤ 6.48 → 6.
  EXPECT_NEAR(result.avg_quality, 6.0, 0.01);
  EXPECT_DOUBLE_EQ(result.stall_time_s, 0.0);
  EXPECT_EQ(result.stalled_frames, 0u);
}

TEST(Vivo, LowBandwidthForcesLowQualityOrStalls) {
  const auto trace = constant_trace(60.0);
  IdealEstimator ideal;
  VivoConfig config;
  const auto result = run_vivo(trace, ideal, config);
  EXPECT_LT(result.avg_quality, 1.5);
}

TEST(Vivo, OverestimationCausesStalls) {
  // An estimator claiming 10× the real bandwidth forces deadline misses.
  class Liar final : public ThroughputEstimator {
   public:
    std::string name() const override { return "Liar"; }
    std::vector<double> predict_mbps(const sim::Trace&, std::size_t,
                                     std::size_t horizon) const override {
      return std::vector<double>(std::max<std::size_t>(horizon, 1), 3000.0);
    }
  };
  const auto trace = constant_trace(150.0);
  const auto result = run_vivo(trace, Liar{}, VivoConfig{});
  EXPECT_GT(result.stalled_frames, result.frames / 2);
  EXPECT_GT(result.stall_time_s, 0.0);
}

TEST(Vivo, IdealBeatsOrMatchesHistoryOnVolatileTrace) {
  const auto trace = ca5g::test::synthetic_trace(3000);
  IdealEstimator ideal;
  HistoryMeanEstimator history(10);
  const auto r_ideal = run_vivo(trace, ideal, VivoConfig{});
  const auto r_hist = run_vivo(trace, history, VivoConfig{});
  // The oracle never loses on both metrics simultaneously.
  const bool worse_quality = r_ideal.avg_quality < r_hist.avg_quality - 0.2;
  const bool worse_stalls = r_ideal.stall_time_s > r_hist.stall_time_s + 0.5;
  EXPECT_FALSE(worse_quality && worse_stalls);
  // QoE comparison helpers behave sensibly.
  EXPECT_NEAR(r_ideal.quality_drop_pct(r_ideal), 0.0, 1e-9);
  EXPECT_GE(r_hist.stall_increase_pct(r_ideal), -100.0);
}

TEST(Vivo, RejectsEmptyTrace) {
  sim::Trace empty;
  empty.step_s = 0.01;
  IdealEstimator ideal;
  EXPECT_THROW((void)run_vivo(empty, ideal, VivoConfig{}), common::CheckError);
}

TEST(Abr, HighBandwidthStreamsTopBitrate) {
  const auto trace = constant_trace(2000.0, 20000);
  IdealEstimator ideal;
  AbrConfig config;
  config.total_chunks = 20;
  const auto result = run_mpc_abr(trace, ideal, config);
  EXPECT_GT(result.avg_bitrate_mbps, 500.0);  // mostly 585 Mbps (16K)
  EXPECT_LT(result.stall_time_s, 1.0);
}

TEST(Abr, LowBandwidthPicksSustainableBitrate) {
  const auto trace = constant_trace(5.0, 20000);
  IdealEstimator ideal;
  AbrConfig config;
  config.total_chunks = 15;
  const auto result = run_mpc_abr(trace, ideal, config);
  // 5 Mbps channel: 2.5 Mbps is sustainable, 40.71 is not.
  EXPECT_LE(result.avg_bitrate_mbps, 10.0);
  EXPECT_GE(result.avg_bitrate_mbps, 1.5);
  EXPECT_LT(result.stall_time_s, 10.0);
}

TEST(Abr, OverestimationCausesStalls) {
  class Liar final : public ThroughputEstimator {
   public:
    std::string name() const override { return "Liar"; }
    std::vector<double> predict_mbps(const sim::Trace&, std::size_t,
                                     std::size_t horizon) const override {
      return std::vector<double>(std::max<std::size_t>(horizon, 1), 5000.0);
    }
  };
  const auto trace = constant_trace(50.0, 20000);
  AbrConfig config;
  config.total_chunks = 15;
  const auto liar = run_mpc_abr(trace, Liar{}, config);
  IdealEstimator ideal;
  const auto honest = run_mpc_abr(trace, ideal, config);
  EXPECT_GT(liar.stall_time_s, honest.stall_time_s + 5.0);
}

TEST(Abr, ChunkAccounting) {
  const auto trace = constant_trace(500.0, 20000);
  IdealEstimator ideal;
  AbrConfig config;
  config.total_chunks = 12;
  const auto result = run_mpc_abr(trace, ideal, config);
  EXPECT_EQ(result.chunks, 12u);
  // 500 Mbps sits between ladder steps (280 / 585): MPC may oscillate
  // between the neighbours but must stay within that bracket.
  EXPECT_GE(result.avg_bitrate_mbps, 280.0);
  EXPECT_LE(result.avg_bitrate_mbps, 585.0);
  EXPECT_LE(result.quality_switches, result.chunks / 2);
}

TEST(Abr, RejectsBadConfig) {
  const auto trace = constant_trace(100.0, 100);
  IdealEstimator ideal;
  AbrConfig config;
  config.bitrates_mbps.clear();
  EXPECT_THROW((void)run_mpc_abr(trace, ideal, config), common::CheckError);
}

}  // namespace
