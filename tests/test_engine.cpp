// Integration-level tests for the simulation engine: trace structure,
// determinism, CA dynamics, band locking, and scenario variants.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ca5g;

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.env = radio::Environment::kUrbanMacro;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 20.0;
  config.step_s = 0.01;
  config.seed = 42;
  return config;
}

TEST(Engine, TraceShape) {
  const auto trace = sim::run_scenario(base_config());
  EXPECT_EQ(trace.samples.size(), 2000u);
  EXPECT_EQ(trace.cc_slots, 4u);
  for (const auto& s : trace.samples) {
    EXPECT_EQ(s.ccs.size(), 4u);
    double sum = 0.0;
    for (const auto& cc : s.ccs) {
      if (!cc.active) {
        EXPECT_DOUBLE_EQ(cc.tput_mbps, 0.0);
        continue;
      }
      EXPECT_GE(cc.cqi, 0);
      EXPECT_LE(cc.cqi, 15);
      EXPECT_GE(cc.mcs, 0);
      EXPECT_LE(cc.mcs, 27);
      EXPECT_GE(cc.layers, 0);
      EXPECT_LE(cc.layers, 4);
      EXPECT_GE(cc.bler, 0.0);
      EXPECT_LE(cc.bler, 1.0);
      EXPECT_LT(cc.rsrp_dbm, -20.0);
      EXPECT_GT(cc.rsrp_dbm, -160.0);
      sum += cc.tput_mbps;
    }
    // Aggregate ≤ sum of CC throughputs (multiplexing inefficiency).
    EXPECT_LE(s.aggregate_tput_mbps, sum + 1e-6);
    EXPECT_GE(s.aggregate_tput_mbps, 0.0);
  }
}

TEST(Engine, DeterministicForSeed) {
  const auto a = sim::run_scenario(base_config());
  const auto b = sim::run_scenario(base_config());
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.samples[i].aggregate_tput_mbps, b.samples[i].aggregate_tput_mbps);
    EXPECT_EQ(a.samples[i].active_cc_count(), b.samples[i].active_cc_count());
  }
}

TEST(Engine, DifferentSeedsDiffer) {
  auto config = base_config();
  const auto a = sim::run_scenario(config);
  config.seed = 43;
  const auto b = sim::run_scenario(config);
  EXPECT_NE(common::mean(a.aggregate_series()), common::mean(b.aggregate_series()));
}

TEST(Engine, OpZDrivingUsesCa) {
  const auto trace = sim::run_scenario(base_config());
  const auto cc_counts = trace.cc_count_series();
  EXPECT_GT(common::mean(cc_counts), 1.5);  // OpZ aggregates aggressively
  EXPECT_LE(common::max_value(cc_counts), 4.0);
}

TEST(Engine, RrcEventsFireDuringDrive) {
  auto config = base_config();
  config.duration_s = 40.0;
  const auto trace = sim::run_scenario(config);
  std::size_t events = 0;
  for (const auto& s : trace.samples) events += s.events.size();
  EXPECT_GT(events, 2u);
}

TEST(Engine, BandLockRestrictsService) {
  auto config = base_config();
  config.band_lock = {phy::BandId::kN41};
  const auto trace = sim::run_scenario(config);
  for (const auto& s : trace.samples)
    for (const auto& cc : s.ccs) {
      if (cc.active) {
        EXPECT_EQ(cc.band, phy::BandId::kN41);
      }
    }
}

sim::Trace ideal_condition_trace() {
  auto config = base_config();
  config.mobility = sim::Mobility::kStationary;
  config.duration_s = 30.0;
  // Ideal channel condition = line of sight to the richest CA site.
  ran::DeploymentParams params;
  params.seed = config.seed * 977 + 13;
  const auto dep = ran::make_deployment(config.op, config.env, params);
  const auto& site = dep.sites[ran::best_ca_site(dep, phy::Rat::kNr)];
  config.stationary_position = radio::Position{site.pos.x + 60.0, site.pos.y + 25.0};
  sim::SimulationEngine engine(dep, config);
  return engine.run();
}

TEST(Engine, StationaryIdealConditionHitsHighThroughput) {
  const auto trace = ideal_condition_trace();
  const auto agg = trace.aggregate_series();
  // Paper anchor: OpZ 4CC FR1 peaks at ≈1.7 Gbps, averages ≈1+ Gbps.
  EXPECT_GT(common::max_value(agg), 1200.0);
  EXPECT_LT(common::max_value(agg), 2600.0);
  EXPECT_GT(common::mean(agg), 550.0);
}

TEST(Engine, ThroughputVariabilityMatchesPaper) {
  const auto trace = ideal_condition_trace();
  const auto agg = trace.aggregate_series();
  const double cv = common::stddev(agg) / common::mean(agg);
  // Paper §3.3: 4CC mean 700 / std 331 → cv ≈ 0.47.
  EXPECT_GT(cv, 0.2);
  EXPECT_LT(cv, 0.8);
}

TEST(Engine, IndoorReducesThroughput) {
  auto outdoor_config = base_config();
  outdoor_config.mobility = sim::Mobility::kWalking;
  outdoor_config.duration_s = 30.0;
  const auto outdoor = sim::run_scenario(outdoor_config);

  auto indoor_config = outdoor_config;
  indoor_config.env = radio::Environment::kIndoor;
  indoor_config.ue_indoor = true;
  const auto indoor = sim::run_scenario(indoor_config);

  EXPECT_LT(common::mean(indoor.aggregate_series()),
            common::mean(outdoor.aggregate_series()));
}

TEST(Engine, LteModeProducesLteTrace) {
  auto config = base_config();
  config.rat = phy::Rat::kLte;
  config.cc_slots = 5;
  config.duration_s = 10.0;
  const auto trace = sim::run_scenario(config);
  double peak = 0.0;
  for (const auto& s : trace.samples) {
    for (const auto& cc : s.ccs) {
      if (cc.active) {
        EXPECT_EQ(phy::band_info(cc.band).rat, phy::Rat::kLte);
      }
    }
    peak = std::max(peak, s.aggregate_tput_mbps);
  }
  // 4G CA peaks well below 5G but should clear tens of Mbps.
  EXPECT_GT(peak, 50.0);
  EXPECT_LT(peak, 1000.0);
}

TEST(Engine, ModemCapabilityLimitsCcCount) {
  auto config = base_config();
  config.modem = ue::ModemModel::kX60;  // 2CC FR1
  const auto trace = sim::run_scenario(config);
  EXPECT_LE(common::max_value(trace.cc_count_series()), 2.0);
}

TEST(Engine, InvalidConfigThrows) {
  auto config = base_config();
  config.step_s = 0.0;
  const auto dep = ran::make_deployment(config.op, config.env, {});
  EXPECT_THROW(sim::SimulationEngine(dep, config), common::CheckError);
}

}  // namespace
