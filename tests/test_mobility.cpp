// Unit tests for the UE mobility models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "ue/mobility.hpp"

namespace {

using namespace ca5g::ue;
using ca5g::common::Rng;
using ca5g::radio::Position;
using ca5g::radio::distance_m;

TEST(Mobility, StationaryNeverMoves) {
  StationaryMobility m({10.0, -5.0});
  for (int i = 0; i < 100; ++i) {
    const auto p = m.step(1.0);
    EXPECT_DOUBLE_EQ(p.x, 10.0);
    EXPECT_DOUBLE_EQ(p.y, -5.0);
  }
  EXPECT_DOUBLE_EQ(m.nominal_speed(), 0.0);
}

TEST(Mobility, WalkingStaysInArea) {
  WalkingMobility m(Rng(1), {0, 0}, 100.0, 1.4);
  for (int i = 0; i < 5000; ++i) {
    const auto p = m.step(0.5);
    EXPECT_LE(std::abs(p.x), 100.0 + 1e-6);
    EXPECT_LE(std::abs(p.y), 100.0 + 1e-6);
  }
}

TEST(Mobility, WalkingCoversDistanceAtNominalSpeed) {
  WalkingMobility m(Rng(2), {0, 0}, 500.0, 2.0);
  Position prev = m.position();
  double total = 0.0;
  const int steps = 2000;
  for (int i = 0; i < steps; ++i) {
    const auto p = m.step(0.1);
    total += distance_m(prev, p);
    prev = p;
  }
  // Path length equals speed × time (up to waypoint-corner effects).
  EXPECT_NEAR(total, 2.0 * 0.1 * steps, 2.0);
}

TEST(Mobility, WalkingRejectsBadConfig) {
  EXPECT_THROW(WalkingMobility(Rng(3), {0, 0}, -1.0, 1.0), ca5g::common::CheckError);
  EXPECT_THROW(WalkingMobility(Rng(3), {0, 0}, 10.0, 0.0), ca5g::common::CheckError);
}

TEST(Mobility, DrivingFollowsRoute) {
  // Straight eastbound route: y must remain 0, x must advance.
  DrivingMobility m(Rng(4), {{0, 0}, {1000, 0}}, 20.0, 0.0);
  double prev_x = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto p = m.step(1.0);
    EXPECT_NEAR(p.y, 0.0, 1e-9);
    EXPECT_GE(p.x + 1e-9, prev_x);
    prev_x = p.x;
  }
  EXPECT_GT(prev_x, 300.0);  // ≈ 20 m/s × 20 s with jitter
  EXPECT_LT(prev_x, 500.0);
}

TEST(Mobility, DrivingLoopsRoute) {
  DrivingMobility m(Rng(5), {{0, 0}, {50, 0}}, 25.0, 0.0);
  // After driving far beyond the route length, position stays on-route.
  for (int i = 0; i < 100; ++i) {
    const auto p = m.step(1.0);
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 50.0 + 1e-9);
  }
}

TEST(Mobility, DrivingStopsAtLights) {
  // With an extreme stop rate the vehicle must spend time stationary.
  DrivingMobility m(Rng(6), {{0, 0}, {10000, 0}}, 15.0, 30.0, 10.0);
  int stationary_steps = 0;
  Position prev = m.position();
  for (int i = 0; i < 600; ++i) {
    const auto p = m.step(1.0);
    if (distance_m(prev, p) < 1e-9) ++stationary_steps;
    prev = p;
  }
  EXPECT_GT(stationary_steps, 50);
}

TEST(Mobility, DrivingRejectsBadConfig) {
  EXPECT_THROW(DrivingMobility(Rng(7), {{0, 0}}, 10.0), ca5g::common::CheckError);
  EXPECT_THROW(DrivingMobility(Rng(7), {{0, 0}, {1, 1}}, 0.0), ca5g::common::CheckError);
}

TEST(Mobility, StraightRoute) {
  const auto route = straight_route({0, 0}, {100, 50}, 5);
  ASSERT_EQ(route.size(), 5u);
  EXPECT_DOUBLE_EQ(route.front().x, 0.0);
  EXPECT_DOUBLE_EQ(route.back().x, 100.0);
  EXPECT_DOUBLE_EQ(route[2].x, 50.0);
  EXPECT_DOUBLE_EQ(route[2].y, 25.0);
  EXPECT_THROW(straight_route({0, 0}, {1, 1}, 1), ca5g::common::CheckError);
}

}  // namespace
