// Malformed-input corpus for the trace CSV loader. Each case takes a
// known-good trace file, corrupts it the way real logs break (truncated
// row, NaN field, out-of-range enum code, UTF-8 BOM header), and asserts
// the loader's contract: broken rows are skipped row-by-row (never a
// whole-file abort), trace_io.rows_rejected_total counts them, and the
// TraceLoadReport preserves the first offending 1-based file line.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "sim/trace_io.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;

/// The corpus is built by corrupting this many-row baseline: big enough
/// that one bad row leaves a loadable trace, small enough to stay fast.
constexpr std::size_t kRows = 20;

class TraceIoCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto trace = test::synthetic_trace(kRows);
    baseline_ = common::to_csv(sim::trace_to_csv(trace));
    lines_.clear();
    std::istringstream in(baseline_);
    for (std::string line; std::getline(in, line);) lines_.push_back(line);
    ASSERT_EQ(lines_.size(), kRows + 1);  // header + data rows
  }

  /// Replace one comma-separated field of a 0-based data row.
  void set_field(std::size_t row, std::size_t field, const std::string& value) {
    std::vector<std::string> fields;
    std::istringstream in(lines_[row + 1]);
    for (std::string f; std::getline(in, f, ',');) fields.push_back(f);
    ASSERT_LT(field, fields.size());
    fields[field] = value;
    std::string joined;
    for (std::size_t i = 0; i < fields.size(); ++i)
      joined += (i != 0 ? "," : "") + fields[i];
    lines_[row + 1] = joined;
  }

  [[nodiscard]] std::string corpus_path(const std::string& name) const {
    return testing::TempDir() + "corpus_" + name + ".csv";
  }

  /// Write the (possibly corrupted) lines to a corpus file.
  std::string write_corpus(const std::string& name, const std::string& prefix = "") {
    const auto path = corpus_path(name);
    std::ofstream out(path, std::ios::binary);
    out << prefix;
    for (const auto& line : lines_) out << line << "\n";
    return path;
  }

  /// 0-based CSV field index of a named column (matches trace_to_csv).
  [[nodiscard]] static std::size_t column(const std::string& name) {
    const auto doc = sim::trace_to_csv(test::synthetic_trace(1));
    return doc.column(name);
  }

  std::string baseline_;
  std::vector<std::string> lines_;
};

TEST_F(TraceIoCorpusTest, TruncatedRowIsSkippedAndCounted) {
  // Cut data row 5 off mid-record (a partially flushed log).
  lines_[6] = lines_[6].substr(0, lines_[6].find(',', 40));
  const auto path = write_corpus("truncated");

  auto& rejected =
      obs::MetricsRegistry::global().counter("trace_io.rows_rejected_total");
  const auto before = rejected.value();

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows - 1);
  EXPECT_EQ(report.rows_read, kRows);
  EXPECT_EQ(report.rows_rejected, 1u);
  EXPECT_EQ(report.first_rejected_line, 7u);  // header is line 1, row 5 is line 7
  EXPECT_NE(report.first_error.find("line 7"), std::string::npos) << report.first_error;
  EXPECT_EQ(rejected.value() - before, 1u);
}

TEST_F(TraceIoCorpusTest, NanFieldFailsTheRowRangeChecks) {
  set_field(3, column("cc0_rsrp"), "nan");
  const auto path = write_corpus("nan_field");

  auto& rejected =
      obs::MetricsRegistry::global().counter("trace_io.rows_rejected_total");
  const auto before = rejected.value();

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows - 1);
  EXPECT_EQ(report.rows_rejected, 1u);
  EXPECT_EQ(report.first_rejected_line, 5u);
  EXPECT_EQ(rejected.value() - before, 1u);
}

TEST_F(TraceIoCorpusTest, BadBandEnumCodeIsRejected) {
  set_field(0, column("cc0_band"), "999");
  const auto path = write_corpus("bad_enum");

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows - 1);
  EXPECT_EQ(report.rows_rejected, 1u);
  EXPECT_EQ(report.first_rejected_line, 2u);
  EXPECT_NE(report.first_error.find("line 2"), std::string::npos) << report.first_error;
}

TEST_F(TraceIoCorpusTest, UnparsableNumberIsRejectedNotFatal) {
  set_field(9, column("agg_tput_mbps"), "not-a-number");
  const auto path = write_corpus("bad_number");

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows - 1);
  EXPECT_EQ(report.first_rejected_line, 11u);
}

TEST_F(TraceIoCorpusTest, Utf8BomHeaderIsStripped) {
  // Excel-exported CSVs lead with a BOM; the header must still resolve.
  const auto path = write_corpus("bom", "\xEF\xBB\xBF");

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows);
  EXPECT_EQ(report.rows_rejected, 0u);
  EXPECT_EQ(report.first_rejected_line, 0u);
  EXPECT_TRUE(report.first_error.empty());
}

TEST_F(TraceIoCorpusTest, MultipleBadRowsReportTheFirstOffender) {
  set_field(2, column("cc0_rsrp"), "nan");
  set_field(8, column("cc1_sinr"), "nan");
  const auto path = write_corpus("two_bad");

  auto& rejected =
      obs::MetricsRegistry::global().counter("trace_io.rows_rejected_total");
  const auto before = rejected.value();

  sim::TraceLoadReport report;
  const auto trace = sim::load_trace(path, &report);
  EXPECT_EQ(trace.samples.size(), kRows - 2);
  EXPECT_EQ(report.rows_rejected, 2u);
  EXPECT_EQ(report.first_rejected_line, 4u);  // row 2 → line 4 wins over row 8
  EXPECT_EQ(rejected.value() - before, 2u);
}

TEST_F(TraceIoCorpusTest, AllRowsBrokenAbortsWithFirstErrorContext) {
  for (std::size_t r = 0; r < kRows; ++r) set_field(r, column("cc0_rsrp"), "nan");
  const auto path = write_corpus("all_bad");

  sim::TraceLoadReport report;
  try {
    (void)sim::load_trace(path, &report);
    FAIL() << "expected CheckError for a fully corrupt file";
  } catch (const common::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_EQ(report.rows_rejected, kRows);
}

}  // namespace
