// Unit tests for the UE capability table (paper Table 5, Fig. 29).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ue/capability.hpp"

namespace {

using namespace ca5g::ue;

TEST(Capability, Fig29Anchors) {
  // S10 (X50) does not support SA-5G CA; S21 (X60) does 2CC; S22 (X65) 3CC.
  EXPECT_FALSE(ue_capability(ModemModel::kX50).supports_sa_ca);
  EXPECT_EQ(ue_capability(ModemModel::kX60).max_nr_fr1_ccs, 2);
  EXPECT_EQ(ue_capability(ModemModel::kX65).max_nr_fr1_ccs, 3);
  EXPECT_EQ(ue_capability(ModemModel::kX70).max_nr_fr1_ccs, 4);
}

TEST(Capability, MmwaveCcsReach8) {
  EXPECT_EQ(ue_capability(ModemModel::kX70).max_nr_fr2_ccs, 8);
  EXPECT_EQ(ue_capability(ModemModel::kX60).max_nr_fr2_ccs, 8);
}

TEST(Capability, LteCaSupportedEverywhere) {
  for (auto modem : {ModemModel::kX50, ModemModel::kX55, ModemModel::kX60,
                     ModemModel::kX65, ModemModel::kX70})
    EXPECT_EQ(ue_capability(modem).max_lte_ccs, 5);
}

TEST(Capability, NameRoundTrip) {
  EXPECT_EQ(modem_from_name("X55"), ModemModel::kX55);
  EXPECT_EQ(ue_capability(modem_from_name("X70")).phone_model, "Galaxy S23");
  EXPECT_THROW((void)modem_from_name("X99"), ca5g::common::CheckError);
}

// Property: capabilities are monotone across modem generations.
class CapabilityMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CapabilityMonotonicity, NewerModemsNeverRegress) {
  const auto older = static_cast<ModemModel>(GetParam());
  const auto newer = static_cast<ModemModel>(GetParam() + 1);
  EXPECT_GE(ue_capability(newer).max_nr_fr1_ccs, ue_capability(older).max_nr_fr1_ccs);
  EXPECT_GE(ue_capability(newer).max_nr_fr2_ccs, ue_capability(older).max_nr_fr2_ccs);
  EXPECT_GE(ue_capability(newer).supports_sa_ca, ue_capability(older).supports_sa_ca);
}

INSTANTIATE_TEST_SUITE_P(Generations, CapabilityMonotonicity, ::testing::Range(0, 4));

}  // namespace
