// Tests for the self-attention (transformer) encoder — the paper's
// future-work building block for Prism5G.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/attention.hpp"
#include "nn/optim.hpp"

namespace {

using namespace ca5g::nn;
using ca5g::common::Rng;

std::vector<Tensor> make_sequence(std::size_t t_len, std::size_t batch, std::size_t dim,
                                  float base = 0.1f) {
  std::vector<Tensor> seq;
  for (std::size_t t = 0; t < t_len; ++t)
    seq.push_back(Tensor::constant(batch, dim, base * static_cast<float>(t + 1)));
  return seq;
}

TEST(Attention, OutputShapes) {
  Rng rng(1);
  SelfAttentionEncoder enc(rng, 5, 8);
  const auto seq = make_sequence(6, 3, 5);
  const auto out = enc.forward(seq);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out.back().rows(), 3u);
  EXPECT_EQ(out.back().cols(), 8u);
  EXPECT_EQ(enc.model_size(), 8u);
}

TEST(Attention, CausalityHolds) {
  // Perturbing the last step must not change earlier outputs.
  Rng rng(2);
  SelfAttentionEncoder enc(rng, 4, 8);
  auto seq = make_sequence(5, 1, 4);
  const auto base = enc.forward(seq);
  seq.back() = Tensor::constant(1, 4, 9.0f);
  const auto perturbed = enc.forward(seq);
  for (std::size_t t = 0; t + 1 < seq.size(); ++t)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_FLOAT_EQ(base[t].at(0, c), perturbed[t].at(0, c)) << "t=" << t;
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c)
    diff += std::abs(base.back().at(0, c) - perturbed.back().at(0, c));
  EXPECT_GT(diff, 1e-4);
}

TEST(Attention, LastStepAttendsToHistory) {
  // Changing an EARLY step must change the last output (attention reach).
  Rng rng(3);
  SelfAttentionEncoder enc(rng, 4, 8);
  auto seq = make_sequence(6, 1, 4);
  const auto base = enc.last_hidden(seq);
  seq.front() = Tensor::constant(1, 4, -5.0f);
  const auto perturbed = enc.last_hidden(seq);
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c) diff += std::abs(base.at(0, c) - perturbed.at(0, c));
  EXPECT_GT(diff, 1e-4);
}

TEST(Attention, PositionalEncodingBreaksPermutationInvariance) {
  // Identical tokens in different orders must encode differently.
  Rng rng(4);
  SelfAttentionEncoder enc(rng, 3, 8);
  std::vector<Tensor> seq_a{Tensor::constant(1, 3, 1.0f), Tensor::constant(1, 3, -1.0f)};
  std::vector<Tensor> seq_b{Tensor::constant(1, 3, -1.0f), Tensor::constant(1, 3, 1.0f)};
  const auto ha = enc.last_hidden(seq_a);
  const auto hb = enc.last_hidden(seq_b);
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c) diff += std::abs(ha.at(0, c) - hb.at(0, c));
  EXPECT_GT(diff, 1e-4);
}

TEST(Attention, GradientsReachAllParameters) {
  Rng rng(5);
  SelfAttentionEncoder enc(rng, 3, 6);
  const auto seq = make_sequence(4, 2, 3);
  auto loss = mse_loss(enc.last_hidden(seq), Tensor::constant(2, 6, 0.2f));
  loss.backward();
  for (auto& p : enc.parameters()) {
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
  }
}

TEST(Attention, TrainsOnToyRegression) {
  // Predict the first step's value from the sequence — requires
  // attending across time.
  Rng rng(6);
  SelfAttentionEncoder enc(rng, 1, 8);
  Linear head(rng, 8, 1);
  std::vector<Tensor> params = enc.parameters();
  for (auto& p : head.parameters()) params.push_back(p);
  Adam::Config config;
  config.lr = 0.02f;
  Adam opt(params, config);

  Rng data_rng(7);
  for (int step = 0; step < 250; ++step) {
    std::vector<Tensor> seq;
    Tensor target(4, 1);
    for (std::size_t t = 0; t < 5; ++t) {
      Tensor x(4, 1);
      for (std::size_t b = 0; b < 4; ++b) {
        const float v = static_cast<float>(data_rng.uniform(-1, 1));
        x.set(b, 0, v);
        if (t == 0) target.set(b, 0, v);
      }
      seq.push_back(x);
    }
    opt.zero_grad();
    auto loss = mse_loss(head.forward(enc.last_hidden(seq)), target);
    loss.backward();
    opt.step();
  }
  // Evaluate.
  Rng eval_rng(8);
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    std::vector<Tensor> seq;
    float first = 0.0f;
    for (std::size_t t = 0; t < 5; ++t) {
      const float v = static_cast<float>(eval_rng.uniform(-1, 1));
      if (t == 0) first = v;
      seq.push_back(Tensor::constant(1, 1, v));
    }
    err += std::abs(head.forward(enc.last_hidden(seq)).at(0, 0) - first);
  }
  EXPECT_LT(err / 20.0, 0.35);  // clearly better than chance (~0.67)
}

TEST(Attention, RejectsOverlongSequence) {
  Rng rng(9);
  SelfAttentionEncoder enc(rng, 2, 4, /*max_len=*/3);
  const auto seq = make_sequence(4, 1, 2);
  EXPECT_THROW((void)enc.forward(seq), ca5g::common::CheckError);
}

}  // namespace
