// Unit tests for the deterministic PRNG (ca5g::common::Rng).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace {

using ca5g::common::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // inverted range returns lo
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaling) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child1.next_u64() == child2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(41);
  std::vector<std::size_t> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::size_t> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one.front(), 42u);
}

}  // namespace
