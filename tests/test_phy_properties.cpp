// Property-based tests for the PHY arithmetic (paper Eq. 1 and the
// TS 38.214 tables): instead of pinning individual values (test_tbs,
// test_mcs do that), these assert the *shape* of the functions over
// seeded random sweeps — monotonicity in MCS and #RB, CQI↔SINR
// round-trip stability, and non-negativity/zero-allocation behavior of
// the per-CC throughput.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "phy/band.hpp"
#include "phy/mcs.hpp"
#include "phy/tbs.hpp"

namespace {

using namespace ca5g;

phy::TbsParams random_params(common::Rng& rng) {
  phy::TbsParams p;
  p.prb_count = static_cast<int>(rng.uniform_int(1, 273));
  p.symbols = static_cast<int>(rng.uniform_int(1, 14));
  p.dmrs_re_per_prb = static_cast<int>(rng.uniform_int(6, 24));
  p.overhead_re = static_cast<int>(rng.uniform_int(0, 12));
  p.mcs_index = static_cast<int>(rng.uniform_int(0, phy::kMaxMcsIndex));
  p.mimo_layers = static_cast<int>(rng.uniform_int(1, 4));
  return p;
}

// --- TBS monotonicity --------------------------------------------------------

TEST(PhyProperties, TbsMonotoneInMcsIndex) {
  common::Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = random_params(rng);
    std::int64_t prev = -1;
    for (int mcs = 0; mcs <= phy::kMaxMcsIndex; ++mcs) {
      p.mcs_index = mcs;
      const auto tbs = phy::transport_block_size(p);
      EXPECT_GE(tbs, prev) << "TBS decreased at mcs=" << mcs << " prb=" << p.prb_count
                           << " symbols=" << p.symbols << " layers=" << p.mimo_layers;
      prev = tbs;
    }
  }
}

TEST(PhyProperties, TbsMonotoneInPrbCount) {
  common::Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    auto p = random_params(rng);
    std::int64_t prev = -1;
    for (int prb = 1; prb <= 273; prb += 4) {
      p.prb_count = prb;
      const auto tbs = phy::transport_block_size(p);
      EXPECT_GE(tbs, prev) << "TBS decreased at prb=" << prb << " mcs=" << p.mcs_index
                           << " symbols=" << p.symbols;
      prev = tbs;
    }
  }
}

TEST(PhyProperties, TbsMonotoneInMimoLayers) {
  common::Rng rng(303);
  for (int trial = 0; trial < 100; ++trial) {
    auto p = random_params(rng);
    std::int64_t prev = -1;
    for (int v = 1; v <= 8; ++v) {
      p.mimo_layers = v;
      const auto tbs = phy::transport_block_size(p);
      EXPECT_GE(tbs, prev) << "TBS decreased at layers=" << v;
      prev = tbs;
    }
  }
}

TEST(PhyProperties, NInfoMatchesEq1Factorization) {
  // N_info = N_re * R * Qm * v exactly (Eq. 1 before quantization).
  common::Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    const auto p = random_params(rng);
    const auto& mcs = phy::mcs_entry(p.mcs_index);
    const double expected = static_cast<double>(phy::total_resource_elements(p)) *
                            mcs.code_rate * mcs.modulation_order * p.mimo_layers;
    EXPECT_DOUBLE_EQ(phy::n_info(p), expected);
  }
}

// --- Per-CC throughput (Eq. 1) ----------------------------------------------

TEST(PhyProperties, SlotThroughputNonNegativeOverRandomSweep) {
  common::Rng rng(505);
  for (int trial = 0; trial < 500; ++trial) {
    const auto p = random_params(rng);
    for (const int scs : {15, 30}) {
      for (const auto duplex : {phy::Duplex::kFdd, phy::Duplex::kTdd}) {
        const double bps = phy::slot_throughput_bps(p, scs, duplex);
        EXPECT_GE(bps, 0.0);
        EXPECT_TRUE(std::isfinite(bps));
      }
    }
  }
}

TEST(PhyProperties, SlotThroughputZeroWhenNoResourceBlocks) {
  common::Rng rng(606);
  for (int trial = 0; trial < 100; ++trial) {
    auto p = random_params(rng);
    p.prb_count = 0;
    EXPECT_EQ(phy::transport_block_size(p), 0);
    EXPECT_DOUBLE_EQ(phy::slot_throughput_bps(p, 30, phy::Duplex::kTdd), 0.0);
  }
}

TEST(PhyProperties, TddNeverExceedsFddForSameAllocation) {
  // TDD spends a fraction of slots on uplink; DL throughput can only be
  // lower than FDD's for the identical allocation.
  common::Rng rng(707);
  for (int trial = 0; trial < 200; ++trial) {
    const auto p = random_params(rng);
    EXPECT_LE(phy::slot_throughput_bps(p, 30, phy::Duplex::kTdd),
              phy::slot_throughput_bps(p, 30, phy::Duplex::kFdd));
  }
}

// --- CQI <-> SINR ------------------------------------------------------------

TEST(PhyProperties, CqiSinrRoundTripIsStable) {
  // Reporting at any SINR inside CQI q's band must reproduce q: mapping
  // a reported CQI back through its threshold and re-reporting cannot
  // drift (the link-adaptation loop has a fixed point).
  for (int q = 1; q <= phy::kMaxCqiIndex; ++q) {
    const double lo = phy::cqi_entry(q).min_sinr_db;
    const double hi =
        q < phy::kMaxCqiIndex ? phy::cqi_entry(q + 1).min_sinr_db : lo + 10.0;
    for (const double sinr : {lo, (lo + hi) / 2.0}) {
      const int reported = phy::cqi_from_sinr(sinr);
      EXPECT_EQ(reported, q) << "sinr=" << sinr;
      // Round trip: threshold of the reported CQI re-reports the same CQI.
      EXPECT_EQ(phy::cqi_from_sinr(phy::cqi_entry(reported).min_sinr_db), reported);
    }
  }
}

TEST(PhyProperties, CqiFromSinrMonotoneOverRandomPairs) {
  common::Rng rng(808);
  for (int trial = 0; trial < 1000; ++trial) {
    const double a = rng.uniform(-20.0, 40.0);
    const double b = rng.uniform(-20.0, 40.0);
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    EXPECT_LE(phy::cqi_from_sinr(lo), phy::cqi_from_sinr(hi));
  }
}

TEST(PhyProperties, SinrBelowLowestThresholdReportsOutOfRange) {
  EXPECT_EQ(phy::cqi_from_sinr(phy::cqi_entry(1).min_sinr_db - 1.0), 0);
}

TEST(PhyProperties, McsFromCqiRespectsPromisedEfficiency) {
  int prev_mcs = 0;
  for (int q = 1; q <= phy::kMaxCqiIndex; ++q) {
    const int mcs = phy::mcs_from_cqi(q);
    ASSERT_GE(mcs, 0);
    ASSERT_LE(mcs, phy::kMaxMcsIndex);
    // Link adaptation never schedules beyond what the CQI promises —
    // except at the MCS 0 floor, where no weaker scheme exists (the low
    // CQI rows promise less efficiency than QPSK at the minimum rate).
    if (mcs > 0) {
      EXPECT_LE(phy::mcs_entry(mcs).efficiency(), phy::cqi_entry(q).efficiency + 1e-9);
    }
    // ...and a better channel never yields a lower MCS.
    EXPECT_GE(mcs, prev_mcs);
    prev_mcs = mcs;
  }
}

TEST(PhyProperties, BlerEstimateIsAProbabilityEverywhere) {
  common::Rng rng(909);
  for (int trial = 0; trial < 1000; ++trial) {
    const double sinr = rng.uniform(-20.0, 40.0);
    const int mcs = static_cast<int>(rng.uniform_int(0, phy::kMaxMcsIndex));
    const double bler = phy::bler_estimate(sinr, mcs);
    EXPECT_GE(bler, 0.0);
    EXPECT_LE(bler, 1.0);
  }
}

}  // namespace
