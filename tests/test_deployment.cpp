// Unit tests for operator deployment generation (paper Table 2/6/7).
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "ran/deployment.hpp"

namespace {

using namespace ca5g::ran;
using ca5g::phy::BandId;
using ca5g::phy::Rat;

DeploymentParams params(std::uint64_t seed = 5) {
  DeploymentParams p;
  p.seed = seed;
  return p;
}

TEST(Deployment, OperatorNames) {
  EXPECT_EQ(operator_name(OperatorId::kOpX), "OpX");
  EXPECT_EQ(operator_name(OperatorId::kOpZ), "OpZ");
}

TEST(Deployment, GeneratesSitesAndCarriers) {
  const auto dep = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  EXPECT_GT(dep.sites.size(), 20u);
  EXPECT_GT(dep.carriers.size(), dep.sites.size());
  for (const auto& c : dep.carriers) {
    EXPECT_LT(c.site, dep.sites.size());
    EXPECT_GT(c.tx_power_dbm, 0.0);
    EXPECT_GT(c.bandwidth_mhz, 0);
  }
  // Site back-references are consistent.
  for (std::size_t s = 0; s < dep.sites.size(); ++s)
    for (auto id : dep.sites[s].carriers) EXPECT_EQ(dep.carrier(id).site, s);
}

TEST(Deployment, OperatorBandPortfoliosMatchTable6) {
  const auto opz = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  std::set<BandId> opz_nr;
  for (const auto& c : opz.carriers)
    if (ca5g::phy::band_info(c.band).rat == Rat::kNr) opz_nr.insert(c.band);
  // OpZ re-farms n71/n25/n41, never C-band or mmWave.
  EXPECT_TRUE(opz_nr.count(BandId::kN41));
  EXPECT_TRUE(opz_nr.count(BandId::kN71));
  EXPECT_FALSE(opz_nr.count(BandId::kN77));
  EXPECT_FALSE(opz_nr.count(BandId::kN260));

  const auto opy = make_deployment(OperatorId::kOpY,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  std::set<BandId> opy_nr;
  for (const auto& c : opy.carriers)
    if (ca5g::phy::band_info(c.band).rat == Rat::kNr) opy_nr.insert(c.band);
  EXPECT_TRUE(opy_nr.count(BandId::kN77));
  EXPECT_FALSE(opy_nr.count(BandId::kN41));
}

TEST(Deployment, OpZHas4ccSites) {
  const auto dep = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  std::size_t sites_with_4_nr = 0;
  for (const auto& site : dep.sites) {
    std::size_t nr = 0;
    for (auto id : site.carriers)
      if (ca5g::phy::band_info(dep.carrier(id).band).rat == Rat::kNr) ++nr;
    if (nr >= 4) ++sites_with_4_nr;
  }
  EXPECT_GT(sites_with_4_nr, dep.sites.size() / 4);
}

TEST(Deployment, SameBandChannelsGetDistinctIndexes) {
  const auto dep = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  for (const auto& site : dep.sites) {
    std::set<std::pair<BandId, int>> seen;
    for (auto id : site.carriers) {
      const auto& c = dep.carrier(id);
      EXPECT_TRUE(seen.insert({c.band, c.channel_index}).second)
          << "duplicate channel index within a site";
    }
  }
}

TEST(Deployment, CarrierLabels) {
  const auto dep = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  const auto label = dep.carrier_label(0);
  EXPECT_FALSE(label.empty());
  EXPECT_NE(label.find('('), std::string::npos);
}

TEST(Deployment, DeterministicForSeed) {
  const auto a = make_deployment(OperatorId::kOpY,
                                 ca5g::radio::Environment::kUrbanMacro, params(11));
  const auto b = make_deployment(OperatorId::kOpY,
                                 ca5g::radio::Environment::kUrbanMacro, params(11));
  ASSERT_EQ(a.carriers.size(), b.carriers.size());
  for (std::size_t i = 0; i < a.carriers.size(); ++i) {
    EXPECT_EQ(a.carriers[i].band, b.carriers[i].band);
    EXPECT_EQ(a.carriers[i].pci, b.carriers[i].pci);
  }
}

TEST(Deployment, HighwayIsLinear) {
  const auto dep = make_deployment(OperatorId::kOpZ,
                                   ca5g::radio::Environment::kHighway, params());
  for (const auto& site : dep.sites) EXPECT_LT(std::abs(site.pos.y), 600.0);
}

TEST(Deployment, CarriersOfRatFilters) {
  const auto dep = make_deployment(OperatorId::kOpX,
                                   ca5g::radio::Environment::kUrbanMacro, params());
  const auto nr = dep.carriers_of_rat(Rat::kNr);
  const auto lte = dep.carriers_of_rat(Rat::kLte);
  EXPECT_EQ(nr.size() + lte.size(), dep.carriers.size());
  for (auto id : nr) EXPECT_EQ(ca5g::phy::band_info(dep.carrier(id).band).rat, Rat::kNr);
}

TEST(LoadProfile, RushHourPeaks) {
  LoadProfile load;
  EXPECT_GT(load.load_at_hour(17.0), load.load_at_hour(10.0));
  EXPECT_LT(load.load_at_hour(2.0), load.load_at_hour(10.0));  // midnight light
  EXPECT_NEAR(load.load_at_hour(17.0), load.rush_hour_load, 1e-9);
}

TEST(LoadProfile, RampsAreContinuousAtBoundaries) {
  LoadProfile load;
  const double before = load.load_at_hour(load.rush_hour_start_h - 0.01);
  const double at = load.load_at_hour(load.rush_hour_start_h);
  EXPECT_NEAR(before, at, 0.02);
}

TEST(Deployment, InvalidParamsThrow) {
  DeploymentParams p;
  p.extent_m = -5.0;
  EXPECT_THROW(
      make_deployment(OperatorId::kOpZ, ca5g::radio::Environment::kUrbanMacro, p),
      ca5g::common::CheckError);
}

}  // namespace
