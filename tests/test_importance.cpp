// Tests for permutation feature importance (explainability).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/prism5g.hpp"
#include "eval/importance.hpp"
#include "predictors/naive.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;

TEST(Importance, FeatureNamesMatchSchema) {
  EXPECT_EQ(eval::cc_feature_names().size(), traces::kCcFeatureDim);
  EXPECT_EQ(eval::cc_feature_names()[traces::kFeatRsrp], "ssRSRP");
  EXPECT_EQ(eval::cc_feature_names()[traces::kFeatTput], "HisTput(cc)");
}

TEST(Importance, HistoryOnlyModelIgnoresCcFeatures) {
  // The harmonic-mean predictor uses only agg_history: shuffling per-CC
  // features must not change its RMSE at all, while shuffling the
  // aggregate history must hurt it.
  const auto ds = ca5g::test::synthetic_dataset(1, 250);
  common::Rng rng(1);
  const auto split = ds.random_split(0.6, 0.1, rng);
  predictors::HarmonicMeanPredictor hm;
  hm.fit(ds, split.train, split.val);

  common::Rng perm_rng(2);
  const auto cc_importance =
      eval::permutation_importance(hm, split.test, perm_rng);
  ASSERT_EQ(cc_importance.size(), traces::kCcFeatureDim);
  for (const auto& fi : cc_importance)
    EXPECT_NEAR(fi.increase_pct(), 0.0, 1e-9) << fi.feature;

  const auto hist = eval::history_importance(hm, split.test, perm_rng);
  EXPECT_GT(hist.increase_pct(), 1.0);
}

TEST(Importance, CaAwareModelUsesCcFeatures) {
  // Prism5G consumes per-CC features: destroying them must increase its
  // error noticeably for at least some features (e.g. per-CC tput).
  const auto ds = ca5g::test::synthetic_dataset(2, 250);
  common::Rng rng(3);
  const auto split = ds.random_split(0.6, 0.15, rng);
  predictors::TrainConfig config;
  config.epochs = 10;
  config.hidden = 16;
  config.layers = 1;
  core::Prism5G prism(config);
  prism.fit(ds, split.train, split.val);

  common::Rng perm_rng(4);
  const auto importance =
      eval::permutation_importance(prism, split.test, perm_rng);
  double max_increase = 0.0;
  for (const auto& fi : importance)
    max_increase = std::max(max_increase, fi.increase_pct());
  EXPECT_GT(max_increase, 1.0);
  // Baseline RMSE is consistent across entries.
  for (const auto& fi : importance)
    EXPECT_DOUBLE_EQ(fi.baseline_rmse, importance.front().baseline_rmse);
}

TEST(Importance, RejectsEmptyTestSet) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  predictors::HarmonicMeanPredictor hm;
  hm.fit(ds, {}, {});
  common::Rng rng(5);
  EXPECT_THROW((void)eval::permutation_importance(hm, {}, rng),
               common::CheckError);
}

}  // namespace
