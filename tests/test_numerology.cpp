// Unit tests for NR numerology and RB capacity tables.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "phy/numerology.hpp"

namespace {

using namespace ca5g::phy;

TEST(Numerology, SlotsPerSubframe) {
  EXPECT_EQ(slots_per_subframe(15), 1);
  EXPECT_EQ(slots_per_subframe(30), 2);
  EXPECT_EQ(slots_per_subframe(60), 4);
  EXPECT_EQ(slots_per_subframe(120), 8);
  EXPECT_THROW((void)slots_per_subframe(45), ca5g::common::CheckError);
}

TEST(Numerology, SlotDuration) {
  EXPECT_DOUBLE_EQ(slot_duration_s(15), 1e-3);
  EXPECT_DOUBLE_EQ(slot_duration_s(30), 0.5e-3);
  EXPECT_DOUBLE_EQ(slot_duration_s(120), 0.125e-3);
}

TEST(Numerology, LteResourceBlocks) {
  EXPECT_EQ(max_resource_blocks(Rat::kLte, 20, 15), 100);
  EXPECT_EQ(max_resource_blocks(Rat::kLte, 5, 15), 25);
  EXPECT_THROW((void)max_resource_blocks(Rat::kLte, 40, 15), ca5g::common::CheckError);
  EXPECT_THROW((void)max_resource_blocks(Rat::kLte, 20, 30), ca5g::common::CheckError);
}

TEST(Numerology, NrFr1TableValues) {
  // TS 38.101-1 Table 5.3.2-1 spot checks.
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 100, 30), 273);
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 40, 30), 106);
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 20, 15), 106);
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 20, 30), 51);
}

TEST(Numerology, NrFr2TableValues) {
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 100, 120), 66);
  EXPECT_EQ(max_resource_blocks(Rat::kNr, 400, 120), 264);
}

TEST(Numerology, UnknownCombinationThrows) {
  EXPECT_THROW((void)max_resource_blocks(Rat::kNr, 37, 30), ca5g::common::CheckError);
}

TEST(Numerology, SubcarrierCount) {
  EXPECT_EQ(max_subcarriers(Rat::kNr, 100, 30), 273 * 12);
}

// Property: more bandwidth at the same SCS never means fewer RBs.
class RbMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(RbMonotonicity, RbGrowsWithBandwidth) {
  const int scs = GetParam();
  const std::vector<int> bws = scs == 15
                                   ? std::vector<int>{5, 10, 15, 20, 40, 50}
                                   : std::vector<int>{5, 10, 20, 40, 60, 80, 100};
  int prev = 0;
  for (int bw : bws) {
    const int rb = max_resource_blocks(Rat::kNr, bw, scs);
    EXPECT_GT(rb, prev);
    prev = rb;
  }
}

INSTANTIATE_TEST_SUITE_P(Scs, RbMonotonicity, ::testing::Values(15, 30));

}  // namespace
