// Unit tests for Adam and the min–max scaler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"

namespace {

using namespace ca5g::nn;
using ca5g::common::Rng;

TEST(Adam, MinimizesQuadratic) {
  // Minimize ||x - 3||² over a 2×2 parameter.
  Tensor x(2, 2, true);
  const auto target = Tensor::constant(2, 2, 3.0f);
  Adam::Config config;
  config.lr = 0.1f;
  Adam opt({x}, config);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    auto loss = mse_loss(x, target);
    loss.backward();
    opt.step();
  }
  for (float v : x.values()) EXPECT_NEAR(v, 3.0f, 0.05f);
}

TEST(Adam, TrainsTinyRegressionNet) {
  // Fit y = 2a − b with a linear layer.
  Rng rng(1);
  Linear layer(rng, 2, 1);
  Adam::Config config;
  config.lr = 0.05f;
  Adam opt(layer.parameters(), config);
  Rng data_rng(2);
  for (int step = 0; step < 500; ++step) {
    Tensor x(8, 2);
    Tensor y(8, 1);
    for (std::size_t r = 0; r < 8; ++r) {
      const float a = static_cast<float>(data_rng.uniform(-1, 1));
      const float b = static_cast<float>(data_rng.uniform(-1, 1));
      x.set(r, 0, a);
      x.set(r, 1, b);
      y.set(r, 0, 2 * a - b);
    }
    opt.zero_grad();
    auto loss = mse_loss(layer.forward(x), y);
    loss.backward();
    opt.step();
  }
  Tensor probe(1, 2);
  probe.set(0, 0, 0.5f);
  probe.set(0, 1, -0.25f);
  EXPECT_NEAR(layer.forward(probe).at(0, 0), 1.25f, 0.05f);
}

TEST(Adam, GradientClippingBoundsUpdates) {
  Tensor x(1, 1, true);
  Adam::Config config;
  config.lr = 1.0f;
  config.clip_norm = 0.001f;
  Adam opt({x}, config);
  opt.zero_grad();
  auto loss = scale(sum_all(x * x), 1000.0f);  // enormous gradient
  loss.backward();
  const float before = x.values()[0];
  opt.step();
  // Adam normalizes by sqrt(v); with clipping the step stays ≈ lr.
  EXPECT_LT(std::abs(x.values()[0] - before), 1.5f);
}

TEST(Adam, RequiresParameters) {
  EXPECT_THROW(Adam({}, Adam::Config{}), ca5g::common::CheckError);
  Tensor no_grad(1, 1, false);
  EXPECT_THROW(Adam({no_grad}, Adam::Config{}), ca5g::common::CheckError);
}

TEST(MinMaxScaler, TransformAndInverse) {
  MinMaxScaler scaler;
  scaler.fit({{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}});
  EXPECT_DOUBLE_EQ(scaler.transform(5.0, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaler.transform(10.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaler.inverse(0.5, 0), 5.0);
  EXPECT_DOUBLE_EQ(scaler.inverse(1.0, 1), 30.0);
  EXPECT_EQ(scaler.columns(), 2u);
  const auto row = scaler.transform_row({2.5, 25.0});
  EXPECT_DOUBLE_EQ(row[0], 0.25);
  EXPECT_DOUBLE_EQ(row[1], 0.75);
}

TEST(MinMaxScaler, DegenerateColumnMapsToZero) {
  MinMaxScaler scaler;
  scaler.fit({{7.0}, {7.0}});
  EXPECT_DOUBLE_EQ(scaler.transform(7.0), 0.0);
}

TEST(MinMaxScaler, SeriesFit) {
  MinMaxScaler scaler;
  const std::vector<double> series{1.0, 3.0, 5.0};
  scaler.fit_series(series);
  EXPECT_DOUBLE_EQ(scaler.transform(3.0), 0.5);
}

TEST(MinMaxScaler, ErrorsOnMisuse) {
  MinMaxScaler scaler;
  EXPECT_THROW(scaler.fit({}), ca5g::common::CheckError);
  EXPECT_FALSE(scaler.fitted());
  scaler.fit({{1.0, 2.0}});
  EXPECT_THROW((void)scaler.transform(1.0, 5), ca5g::common::CheckError);
  EXPECT_THROW(scaler.transform_row({1.0}), ca5g::common::CheckError);
}

}  // namespace
