// Unit tests for text-table formatting.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/table.hpp"

namespace {

using ca5g::common::TextTable;

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table("Demo");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table("T");
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ca5g::common::CheckError);
}

TEST(TextTable, RejectsEmptyHeader) {
  TextTable table("T");
  EXPECT_THROW(table.set_header({}), ca5g::common::CheckError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable table("T");
  table.set_header({"a", "b"});
  table.add_row({"xxxxxxxx", "1"});
  const auto text = table.to_string();
  // The 'b' header must be padded past the widest cell of column a.
  const auto header_line = text.substr(text.find('\n') + 1);
  EXPECT_GE(header_line.find('b'), 8u);
}

}  // namespace
