// Unit + property tests for the MCS/CQI tables and link-quality mapping.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "phy/mcs.hpp"

namespace {

using namespace ca5g::phy;

TEST(Mcs, TableEndpoints) {
  EXPECT_EQ(mcs_entry(0).modulation_order, 2);
  EXPECT_NEAR(mcs_entry(0).code_rate, 120.0 / 1024, 1e-9);
  EXPECT_EQ(mcs_entry(27).modulation_order, 8);
  EXPECT_NEAR(mcs_entry(27).code_rate, 948.0 / 1024, 1e-9);
  EXPECT_THROW((void)mcs_entry(-1), ca5g::common::CheckError);
  EXPECT_THROW((void)mcs_entry(28), ca5g::common::CheckError);
}

TEST(Cqi, TableEndpoints) {
  EXPECT_EQ(cqi_entry(0).modulation_order, 0);
  EXPECT_NEAR(cqi_entry(15).efficiency, 7.4063, 1e-4);
  EXPECT_THROW((void)cqi_entry(16), ca5g::common::CheckError);
}

TEST(Cqi, SinrMapping) {
  EXPECT_EQ(cqi_from_sinr(-10.0), 0);   // below the lowest threshold
  EXPECT_EQ(cqi_from_sinr(-6.0), 1);
  EXPECT_EQ(cqi_from_sinr(30.0), 15);   // excellent channel
  EXPECT_GT(cqi_from_sinr(10.0), cqi_from_sinr(0.0));
}

TEST(Cqi, McsFromCqiBounds) {
  EXPECT_EQ(mcs_from_cqi(0), 0);
  EXPECT_EQ(mcs_from_cqi(15), 27);
  // MCS efficiency must not exceed the CQI's promised efficiency —
  // except at the table floor (MCS 0), which is the best available
  // fallback for the lowest CQIs.
  for (int cqi = 1; cqi <= kMaxCqiIndex; ++cqi) {
    const int mcs = mcs_from_cqi(cqi);
    if (mcs > 0)
      EXPECT_LE(mcs_entry(mcs).efficiency(), cqi_entry(cqi).efficiency + 1e-9);
    else
      EXPECT_LE(cqi_entry(cqi).efficiency, mcs_entry(1).efficiency());
  }
}

TEST(Bler, NearTargetAtOperatingPoint) {
  // When SINR equals the MCS's threshold the BLER is the 10% design target.
  for (int cqi = 2; cqi <= 15; ++cqi) {
    const int mcs = mcs_from_cqi(cqi);
    const double bler = bler_estimate(cqi_entry(cqi).min_sinr_db, mcs);
    EXPECT_GT(bler, 0.01);
    EXPECT_LE(bler, 0.25);
  }
}

TEST(Bler, ImprovesWithMargin) {
  const double b0 = bler_estimate(10.0, 10);
  const double b3 = bler_estimate(13.0, 10);
  EXPECT_LT(b3, b0);
  EXPECT_NEAR(bler_estimate(40.0, 0), 0.0, 1e-4);
}

TEST(Bler, DegradesWhenMcsOutrunsChannel) {
  EXPECT_GT(bler_estimate(-5.0, 27), 0.9);
}

// Property: MCS efficiency strictly increases with the index.
class McsMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(McsMonotonicity, EfficiencyIncreases) {
  const int idx = GetParam();
  EXPECT_GT(mcs_entry(idx + 1).efficiency(), mcs_entry(idx).efficiency());
}

INSTANTIATE_TEST_SUITE_P(AllAdjacentPairs, McsMonotonicity,
                         ::testing::Range(0, kMaxMcsIndex));

// Property: CQI thresholds and efficiencies increase with the index.
class CqiMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CqiMonotonicity, ThresholdsIncrease) {
  const int idx = GetParam();
  EXPECT_GT(cqi_entry(idx + 1).efficiency, cqi_entry(idx).efficiency);
  EXPECT_GT(cqi_entry(idx + 1).min_sinr_db, cqi_entry(idx).min_sinr_db);
}

INSTANTIATE_TEST_SUITE_P(AllAdjacentPairs, CqiMonotonicity,
                         ::testing::Range(1, kMaxCqiIndex));

// Property: cqi_from_sinr is monotone non-decreasing in SINR.
class CqiFromSinrMonotone : public ::testing::TestWithParam<int> {};

TEST_P(CqiFromSinrMonotone, Monotone) {
  const double base = -10.0 + GetParam();
  EXPECT_LE(cqi_from_sinr(base), cqi_from_sinr(base + 1.0));
}

INSTANTIATE_TEST_SUITE_P(SinrSweep, CqiFromSinrMonotone, ::testing::Range(0, 40));

}  // namespace
