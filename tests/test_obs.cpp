// Observability layer: instrument semantics, bucket arithmetic, snapshot
// isolation/merge, thread-safety, RAII timing, and export formats.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace_span.hpp"

namespace {

using namespace ca5g;

// --- Minimal JSON reader -----------------------------------------------------
// Enough of RFC 8259 to round-trip the exporter's output: objects, arrays,
// strings (with the escapes json_escape emits), and numbers.

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber } kind = Kind::kNumber;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  JsonValue value() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      const std::string key = string_literal();
      skip_ws();
      expect(':');
      v.object.emplace(key, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = string_literal();
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E'))
      ++end;
    if (end == pos_) throw std::runtime_error("bad JSON number");
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          out += static_cast<char>(std::stoi(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          break;
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- Naming convention -------------------------------------------------------

TEST(MetricNames, ConventionAccepted) {
  EXPECT_TRUE(obs::is_valid_metric_name("sim.steps_total"));
  EXPECT_TRUE(obs::is_valid_metric_name("predictor.inference_ns"));
  EXPECT_TRUE(obs::is_valid_metric_name("nn.epoch_val_rmse"));
  EXPECT_TRUE(obs::is_valid_metric_name("ran.scheduler.rb_granted_total"));
  EXPECT_TRUE(obs::is_valid_metric_name("trace_io.rows_rejected_total"));
}

TEST(MetricNames, ConventionRejected) {
  EXPECT_FALSE(obs::is_valid_metric_name(""));
  EXPECT_FALSE(obs::is_valid_metric_name("steps_total"));        // no layer
  EXPECT_FALSE(obs::is_valid_metric_name("sim.steps"));          // no unit
  EXPECT_FALSE(obs::is_valid_metric_name("sim._total"));         // bare suffix
  EXPECT_FALSE(obs::is_valid_metric_name("Sim.steps_total"));    // uppercase
  EXPECT_FALSE(obs::is_valid_metric_name("sim..steps_total"));   // empty segment
  EXPECT_FALSE(obs::is_valid_metric_name("sim.steps_total."));   // trailing dot
  EXPECT_FALSE(obs::is_valid_metric_name("sim.1steps_total"));   // leading digit
  EXPECT_FALSE(obs::is_valid_metric_name("sim.steps_furlongs"));  // unknown unit
  EXPECT_FALSE(obs::metric_unit_suffixes().empty());
}

// --- Instrument semantics ----------------------------------------------------

TEST(Counter, IncrementAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, CountSumMinMax) {
  obs::Histogram h;
  h.observe(10.0);
  h.observe(1000.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1013.0);
  const auto snap = obs::HistogramSnapshot::from("t.x_ns", h);
  EXPECT_DOUBLE_EQ(snap.min, 3.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.mean(), 1013.0 / 3.0, 1e-9);
}

TEST(Histogram, BucketBoundaries) {
  obs::Histogram h;  // default spec: [1, 1e11), 64 log-spaced buckets
  // Every bucket's upper bound strictly exceeds the previous one, and a
  // value lands in the first bucket whose inclusive upper bound covers it.
  for (std::size_t i = 1; i < obs::Histogram::kBucketCount; ++i)
    EXPECT_GT(h.bucket_upper_bound(i), h.bucket_upper_bound(i - 1));
  for (const double v : {0.5, 1.0, 7.0, 123.0, 9.9e4, 3.3e8, 9.99e10}) {
    const std::size_t idx = h.bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kBucketCount);
    EXPECT_LE(v, h.bucket_upper_bound(idx)) << "v=" << v;
    if (idx > 0) {
      EXPECT_GT(v, h.bucket_upper_bound(idx - 1)) << "v=" << v;
    }
  }
  // Values at/above `upper` fall in the overflow bucket, whose bound is +inf.
  EXPECT_EQ(h.bucket_index(1e11), obs::Histogram::kBucketCount);
  EXPECT_EQ(h.bucket_index(1e300), obs::Histogram::kBucketCount);
  EXPECT_TRUE(std::isinf(h.bucket_upper_bound(obs::Histogram::kBucketCount)));
  // Sub-lower and non-finite values land in bucket 0 rather than crashing.
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(-5.0), 0u);
  EXPECT_EQ(h.bucket_index(std::nan("")), 0u);
}

TEST(Histogram, ObserveFillsMatchingBucket) {
  obs::Histogram h;
  const double v = 12345.0;
  h.observe(v);
  const std::size_t idx = h.bucket_index(v);
  EXPECT_EQ(h.bucket_count(idx), 1u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= obs::Histogram::kBucketCount; ++i)
    total += h.bucket_count(i);
  EXPECT_EQ(total, 1u);
}

TEST(Histogram, QuantileBucketResolution) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto snap = obs::HistogramSnapshot::from("t.q_ns", h);
  // Bucket-resolution estimate: the true quantile never exceeds it, and
  // it stays within one log-step (ratio = (1e11)^(1/64) < 1.5) above.
  const double p50 = snap.quantile(0.5);
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 50.0 * 1.5);
  EXPECT_GE(snap.quantile(0.99), snap.quantile(0.5));
  EXPECT_LE(snap.quantile(1.0), h.bucket_upper_bound(h.bucket_index(100.0)));
}

// --- Registry, snapshots, merge ----------------------------------------------

TEST(Registry, SameNameSameInstrument) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("layer.events_total");
  obs::Counter& b = reg.counter("layer.events_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.names().size(), 1u);
}

TEST(Registry, RejectsBadNames) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.counter("NoLayer"), common::CheckError);
  EXPECT_THROW(reg.gauge("layer.unsuffixed"), common::CheckError);
}

TEST(Registry, SnapshotIsolatedFromLaterUpdates) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("layer.rows_total");
  obs::Histogram& h = reg.histogram("layer.lat_ns");
  c.inc(5);
  h.observe(10.0);
  const auto snap = reg.snapshot();
  c.inc(100);
  h.observe(20.0);
  ASSERT_NE(snap.counter("layer.rows_total"), nullptr);
  EXPECT_EQ(*snap.counter("layer.rows_total"), 5u);
  ASSERT_NE(snap.histogram("layer.lat_ns"), nullptr);
  EXPECT_EQ(snap.histogram("layer.lat_ns")->count, 1u);
  EXPECT_EQ(snap.counter("layer.absent_total"), nullptr);
  EXPECT_EQ(snap.histogram("layer.absent_ns"), nullptr);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("layer.n_total");
  reg.gauge("layer.loss_rmse").set(1.0);
  c.inc(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.names().size(), 2u);  // registrations survive
}

TEST(Snapshot, MergeSumsCountersAndHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("layer.rows_total").inc(2);
  b.counter("layer.rows_total").inc(3);
  b.counter("layer.other_total").inc(7);
  a.histogram("layer.lat_ns").observe(5.0);
  b.histogram("layer.lat_ns").observe(500.0);
  auto merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(*merged.counter("layer.rows_total"), 5u);
  EXPECT_EQ(*merged.counter("layer.other_total"), 7u);
  const auto* h = merged.histogram("layer.lat_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 505.0);
  EXPECT_DOUBLE_EQ(h->min, 5.0);
  EXPECT_DOUBLE_EQ(h->max, 500.0);
}

TEST(Snapshot, MergeRejectsMismatchedSpecs) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.histogram("layer.x_ns", obs::HistogramSpec::nanoseconds()).observe(1.0);
  b.histogram("layer.x_ns", obs::HistogramSpec::mbps()).observe(1.0);
  auto merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), common::CheckError);
}

TEST(Registry, ConcurrentUpdatesAreLossless) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 25000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&reg] {
      // Each thread resolves the instruments itself: registration races
      // are part of what's under test.
      obs::Counter& c = reg.counter("layer.ops_total");
      obs::Gauge& g = reg.gauge("layer.progress_ratio");
      obs::Histogram& h = reg.histogram("layer.lat_ns");
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(static_cast<double>(i + 1));
      }
    });
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(*snap.counter("layer.ops_total"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histogram("layer.lat_ns")->count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(snap.gauges.front().second, static_cast<double>(kThreads) * kIters);
  std::uint64_t bucket_total = 0;
  for (const auto b : snap.histogram("layer.lat_ns")->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, static_cast<std::uint64_t>(kThreads) * kIters);
}

// --- RAII timing -------------------------------------------------------------

TEST(StopWatch, MeasuresElapsed) {
  obs::StopWatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  EXPECT_GT(w.elapsed_ns(), 0);
  const auto before = w.elapsed_ns();
  w.restart();
  EXPECT_LE(w.elapsed_ns(), before + 1000000);
}

TEST(ScopedTimer, RecordsOnNormalExit) {
  obs::Histogram h;
  {
    obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ScopedTimer, RecordsOnEarlyReturn) {
  obs::Histogram h;
  const auto f = [&h](bool early) {
    obs::ScopedTimer timer(h);
    if (early) return 1;
    return 2;
  };
  EXPECT_EQ(f(true), 1);
  EXPECT_EQ(f(false), 2);
  EXPECT_EQ(h.count(), 2u);
}

TEST(ScopedTimer, RecordsWhenScopeThrows) {
  obs::Histogram h;
  try {
    obs::ScopedTimer timer(h);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimer, MacroCompilesAndRecords) {
#if PRISM5G_OBS_ENABLED
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram& h = reg.histogram("test.macro_scope_ns");
  const auto before = h.count();
  {
    CA5G_SCOPED_TIMER(h);
    CA5G_SCOPED_TIMER(h);  // __LINE__ uniquing: two timers in one scope
  }
  EXPECT_EQ(h.count(), before + 2);
#else
  // Disabled build: the macro must still be a valid statement.
  constexpr obs::NullHistogram h;
  CA5G_SCOPED_TIMER(h);
  static_assert(sizeof(obs::NullScopedTimer) == 1);
#endif
}

// --- Export formats ----------------------------------------------------------

TEST(Export, JsonRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("sim.steps_total").inc(123);
  reg.gauge("nn.epoch_val_rmse").set(0.25);
  obs::Histogram& h = reg.histogram("predictor.inference_ns");
  h.observe(100.0);
  h.observe(200.0);
  h.observe(1e12);  // overflow bucket → "+inf" boundary in JSON

  const std::string text = obs::to_json(reg.snapshot());
  const JsonValue root = JsonReader(text).parse();

  EXPECT_DOUBLE_EQ(root.at("counters").at("sim.steps_total").number, 123.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("nn.epoch_val_rmse").number, 0.25);
  const JsonValue& hist = root.at("histograms").at("predictor.inference_ns");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 3.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number, 100.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number, 1e12);
  EXPECT_GT(hist.at("p50").number, 0.0);
  // Sparse [le, count] pairs: totals must re-add to `count`, and the
  // overflow observation appears under the "+inf" boundary.
  double bucket_total = 0.0;
  bool saw_inf = false;
  for (const JsonValue& pair : hist.at("buckets").array) {
    ASSERT_EQ(pair.array.size(), 2u);
    bucket_total += pair.array[1].number;
    if (pair.array[0].kind == JsonValue::Kind::kString)
      saw_inf = pair.array[0].string == "+inf";
  }
  EXPECT_DOUBLE_EQ(bucket_total, 3.0);
  EXPECT_TRUE(saw_inf);
}

TEST(Export, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
  // json_number never emits tokens JSON can't parse.
  EXPECT_EQ(obs::json_number(std::nan("")), "0");
  JsonReader reader(obs::json_number(std::numeric_limits<double>::infinity()));
  EXPECT_GT(reader.parse().number, 1e307);
}

TEST(Export, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("sim.steps_total").inc(7);
  reg.histogram("sim.step_ns").observe(50.0);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE sim_steps_total counter"), std::string::npos);
  EXPECT_NE(text.find("sim_steps_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sim_step_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("sim_step_ns_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sim_step_ns_count 1"), std::string::npos);
}

// --- Run reports -------------------------------------------------------------

TEST(RunReport, SummaryJsonParses) {
  obs::RunReport report("unit-test");
  report.meta("scenario", "OpZ/driving");
  report.meta("seed", 7.0);
  report.kpi("rmse_mbps", 12.5);
  report.event("start");
  report.event("train", "epoch=1");

  obs::MetricsRegistry reg;
  reg.counter("sim.steps_total").inc(10);
  const auto snap = reg.snapshot();

  const JsonValue root = JsonReader(report.summary_json(&snap)).parse();
  EXPECT_EQ(root.at("run").string, "unit-test");
  EXPECT_GE(root.at("wall_s").number, 0.0);
  EXPECT_EQ(root.at("meta").at("scenario").string, "OpZ/driving");
  EXPECT_DOUBLE_EQ(root.at("meta").at("seed").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("kpis").at("rmse_mbps").number, 12.5);
  EXPECT_DOUBLE_EQ(root.at("events_count").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("metrics").at("counters").at("sim.steps_total").number, 10.0);

  // Without a snapshot the "metrics" key is omitted but the rest stands.
  const JsonValue bare = JsonReader(report.summary_json()).parse();
  EXPECT_EQ(bare.object.count("metrics"), 0u);
  EXPECT_EQ(bare.at("run").string, "unit-test");
}

TEST(RunReport, EventsJsonl) {
  obs::RunReport report("evt");
  report.event("a");
  report.event("b", "detail \"quoted\"");
  const std::string jsonl = report.events_jsonl();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const auto end = jsonl.find('\n', start);
    lines.push_back(jsonl.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const JsonValue e = JsonReader(lines[i]).parse();
    EXPECT_DOUBLE_EQ(e.at("seq").number, static_cast<double>(i));
    EXPECT_GE(e.at("t_s").number, 0.0);
  }
  EXPECT_EQ(JsonReader(lines[1]).parse().at("detail").string, "detail \"quoted\"");
  EXPECT_EQ(obs::RunReport::events_path_for("/tmp/r.json"), "/tmp/r.json.events.jsonl");
}

}  // namespace
