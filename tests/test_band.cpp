// Unit + property tests for the 3GPP band catalogue.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "phy/band.hpp"

namespace {

using namespace ca5g::phy;

TEST(Band, LookupByName) {
  EXPECT_EQ(band_from_name("n41"), BandId::kN41);
  EXPECT_EQ(band_from_name("b66"), BandId::kB66);
  EXPECT_THROW((void)band_from_name("n999"), ca5g::common::CheckError);
}

TEST(Band, CatalogueSize) { EXPECT_EQ(all_bands().size(), kBandCount); }

TEST(Band, KnownProperties) {
  const auto& n41 = band_info(BandId::kN41);
  EXPECT_EQ(n41.rat, Rat::kNr);
  EXPECT_EQ(n41.duplex, Duplex::kTdd);
  EXPECT_EQ(n41.range, BandRange::kMid);
  EXPECT_DOUBLE_EQ(n41.center_freq_mhz, 2500.0);

  const auto& n71 = band_info(BandId::kN71);
  EXPECT_EQ(n71.duplex, Duplex::kFdd);
  EXPECT_EQ(n71.range, BandRange::kLow);

  const auto& n260 = band_info(BandId::kN260);
  EXPECT_TRUE(is_mmwave(BandId::kN260));
  EXPECT_DOUBLE_EQ(n260.center_freq_mhz, 39000.0);
}

TEST(Band, NrAndLtePartition) {
  int nr = 0, lte = 0;
  for (const auto& b : all_bands()) (b.rat == Rat::kNr ? nr : lte)++;
  EXPECT_EQ(nr, 8);    // n5 n25 n41 n66 n71 n77 n260 n261
  EXPECT_EQ(lte, 14);  // paper Table 6's 4G rows
}

TEST(Band, DownlinkDuty) {
  EXPECT_DOUBLE_EQ(downlink_duty(Duplex::kFdd), 1.0);
  EXPECT_GT(downlink_duty(Duplex::kTdd), 0.5);
  EXPECT_LT(downlink_duty(Duplex::kTdd), 1.0);
}

// Property sweep over the whole catalogue.
class BandProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BandProperty, EntriesAreWellFormed) {
  const auto& band = all_bands()[GetParam()];
  EXPECT_EQ(static_cast<std::size_t>(band.id), GetParam());
  EXPECT_FALSE(band.name.empty());
  EXPECT_GT(band.center_freq_mhz, 0.0);
  EXPECT_FALSE(band.bandwidths_mhz.empty());
  EXPECT_FALSE(band.scs_khz.empty());
  // Name prefix matches the RAT convention ("b" = 4G, "n" = 5G).
  EXPECT_EQ(band.name.front(), band.rat == Rat::kNr ? 'n' : 'b');
  // Range classes match frequency.
  if (band.center_freq_mhz < 1000.0) {
    EXPECT_EQ(band.range, BandRange::kLow);
  }
  if (band.center_freq_mhz >= 24000.0) {
    EXPECT_EQ(band.range, BandRange::kHigh);
  }
  // LTE bands are fixed at 15 kHz SCS and ≤ 20 MHz channels.
  if (band.rat == Rat::kLte) {
    ASSERT_EQ(band.scs_khz.size(), 1u);
    EXPECT_EQ(band.scs_khz.front(), 15);
    for (int bw : band.bandwidths_mhz) EXPECT_LE(bw, 20);
  }
  // Round-trip through band_from_name.
  EXPECT_EQ(band_from_name(band.name), band.id);
}

INSTANTIATE_TEST_SUITE_P(AllBands, BandProperty,
                         ::testing::Range<std::size_t>(0, kBandCount));

}  // namespace
