// Tests for the deep baselines (LSTM, TCN, Lumos5G Seq2Seq): learning on
// structured data, early stopping, and prediction mechanics.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "predictors/deep.hpp"
#include "predictors/naive.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;

TrainConfig tiny_config() {
  TrainConfig config;
  config.epochs = 12;
  config.hidden = 16;
  config.layers = 1;
  config.batch_size = 32;
  config.patience = 12;
  return config;
}

double constant_mean_rmse(const traces::Dataset::Split& split) {
  double mean = 0.0;
  std::size_t n = 0;
  for (const auto* w : split.train)
    for (double t : w->target) {
      mean += t;
      ++n;
    }
  mean /= static_cast<double>(n);
  double sq = 0.0;
  std::size_t m = 0;
  for (const auto* w : split.test)
    for (double t : w->target) {
      sq += (t - mean) * (t - mean);
      ++m;
    }
  return std::sqrt(sq / static_cast<double>(m));
}

class DeepModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<traces::Dataset>(ca5g::test::synthetic_dataset(2, 300));
    common::Rng rng(11);
    split_ = ds_->random_split(0.6, 0.15, rng);
  }
  std::unique_ptr<traces::Dataset> ds_;
  traces::Dataset::Split split_;
};

TEST_F(DeepModelTest, LstmLearnsStructure) {
  LstmPredictor model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(evaluate_rmse(model, split_.test), 0.7 * constant_mean_rmse(split_));
  EXPECT_EQ(model.name(), "LSTM");
  EXPECT_FALSE(model.val_history().empty());
}

TEST_F(DeepModelTest, TcnLearnsStructure) {
  TcnPredictor model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(evaluate_rmse(model, split_.test), 0.8 * constant_mean_rmse(split_));
  EXPECT_EQ(model.name(), "TCN");
}

TEST_F(DeepModelTest, Lumos5gLearnsStructure) {
  Lumos5gPredictor model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  EXPECT_LT(evaluate_rmse(model, split_.test), 0.8 * constant_mean_rmse(split_));
  EXPECT_EQ(model.name(), "Lumos5G");
}

TEST_F(DeepModelTest, PredictionsAreHorizonLengthAndBounded) {
  LstmPredictor model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  for (std::size_t i = 0; i < std::min<std::size_t>(split_.test.size(), 20); ++i) {
    const auto pred = model.predict(*split_.test[i]);
    ASSERT_EQ(pred.size(), ds_->horizon());
    for (double p : pred) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.5);
    }
  }
}

TEST_F(DeepModelTest, ValidationLossImprovesOverTraining) {
  LstmPredictor model(tiny_config());
  model.fit(*ds_, split_.train, split_.val);
  const auto& history = model.val_history();
  ASSERT_GE(history.size(), 3u);
  double best_late = 1e9, best_early = 1e9;
  for (std::size_t i = 0; i < history.size() / 2; ++i)
    best_early = std::min(best_early, history[i]);
  for (std::size_t i = history.size() / 2; i < history.size(); ++i)
    best_late = std::min(best_late, history[i]);
  EXPECT_LE(best_late, best_early + 0.02);
}

TEST_F(DeepModelTest, EarlyStoppingHonorsPatience) {
  TrainConfig config = tiny_config();
  config.epochs = 50;
  config.patience = 2;
  LstmPredictor model(config);
  model.fit(*ds_, split_.train, split_.val);
  // With patience 2 the loop must stop well before 50 epochs on this
  // quickly-saturating task.
  EXPECT_LT(model.val_history().size(), 50u);
}

TEST_F(DeepModelTest, DeterministicGivenSeed) {
  LstmPredictor a(tiny_config());
  a.fit(*ds_, split_.train, split_.val);
  LstmPredictor b(tiny_config());
  b.fit(*ds_, split_.train, split_.val);
  const auto pa = a.predict(*split_.test.front());
  const auto pb = b.predict(*split_.test.front());
  for (std::size_t h = 0; h < pa.size(); ++h) EXPECT_FLOAT_EQ(pa[h], pb[h]);
}

TEST_F(DeepModelTest, FitOnEmptyTrainThrows) {
  LstmPredictor model(tiny_config());
  EXPECT_THROW(model.fit(*ds_, {}, split_.val), common::CheckError);
}

}  // namespace
