// End-to-end PHY throughput envelope tests: peak-rate sanity per band
// class and parameterized monotonicity sweeps across the TBS pipeline —
// the quantitative backbone behind Figs. 1/9/10.
#include <gtest/gtest.h>

#include "phy/band.hpp"
#include "phy/mcs.hpp"
#include "phy/numerology.hpp"
#include "phy/tbs.hpp"

namespace {

using namespace ca5g::phy;

/// Peak PHY rate for a (band, bandwidth, layers) triple at MCS 27 with a
/// full RB allocation — the theoretical envelope of Appendix B.1.
double peak_rate_gbps(BandId band, int bw_mhz, int scs_khz, int layers) {
  const auto& info = band_info(band);
  TbsParams p;
  p.prb_count = max_resource_blocks(info.rat, bw_mhz, scs_khz);
  p.symbols = 13;
  p.mcs_index = kMaxMcsIndex;
  p.mimo_layers = layers;
  return slot_throughput_bps(p, scs_khz, info.duplex) / 1e9;
}

TEST(PhyEnvelope, N41_100MHz_FourLayers) {
  // 100 MHz @30 kHz, 4 layers, 256QAM: ≈1.6–2.2 Gbps raw (before duty
  // losses this band family is what lets OpZ peak at 1.7 Gbps with 4CC).
  const double rate = peak_rate_gbps(BandId::kN41, 100, 30, 4);
  EXPECT_GT(rate, 1.4);
  EXPECT_LT(rate, 2.4);
}

TEST(PhyEnvelope, N25_20MHz_ThreeLayers) {
  // The paper's n25: ≈212 Mbps measured alone → envelope must be above
  // that but in the same order of magnitude.
  const double rate = peak_rate_gbps(BandId::kN25, 20, 15, 3);
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.65);
}

TEST(PhyEnvelope, MmWaveSingleCc) {
  // One n260 CC: ≈0.5–1 Gbps at 2 layers → 8 CCs ≈ 4–8 Gbps envelope,
  // consistent with the paper's 4.1 Gbps measured peak.
  const double rate = peak_rate_gbps(BandId::kN260, 100, 120, 2);
  EXPECT_GT(rate, 0.5);
  EXPECT_LT(rate, 1.3);
}

TEST(PhyEnvelope, Lte20MHzTwoLayers) {
  // Classic LTE 20 MHz 2x2: ≈150–300 Mbps envelope.
  const double rate = peak_rate_gbps(BandId::kB2, 20, 15, 2);
  EXPECT_GT(rate, 0.12);
  EXPECT_LT(rate, 0.35);
}

TEST(PhyEnvelope, FddBeatsTddAtSameBandwidthAndRank) {
  // FDD dedicates the whole channel to DL; TDD pays the duty cycle.
  const double fdd = peak_rate_gbps(BandId::kN25, 20, 15, 2);
  const double tdd = peak_rate_gbps(BandId::kN41, 20, 15, 2);
  EXPECT_GT(fdd, tdd);
  EXPECT_NEAR(tdd / fdd, downlink_duty(Duplex::kTdd), 0.02);
}

/// Parameterized sweep: envelope grows with bandwidth for every FR1 SCS.
class EnvelopeBandwidthSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EnvelopeBandwidthSweep, MonotoneInBandwidth) {
  const int scs = std::get<0>(GetParam());
  const int layers = std::get<1>(GetParam());
  const std::vector<int> bws =
      scs == 15 ? std::vector<int>{5, 10, 15, 20, 40} : std::vector<int>{20, 40, 60, 100};
  double prev = 0.0;
  for (int bw : bws) {
    const double rate = peak_rate_gbps(BandId::kN41, bw, scs, layers);
    EXPECT_GT(rate, prev) << "bw=" << bw;
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(ScsLayers, EnvelopeBandwidthSweep,
                         ::testing::Combine(::testing::Values(15, 30),
                                            ::testing::Values(1, 2, 4)));

/// Parameterized sweep: the CQI→MCS→BLER chain stays consistent across
/// the whole SINR range (link adaptation never yields BLER > 50% when
/// the MCS is chosen from the reported CQI).
class LinkAdaptationSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkAdaptationSweep, ChosenMcsKeepsBlerBounded) {
  const double sinr = -8.0 + static_cast<double>(GetParam());
  const int cqi = cqi_from_sinr(sinr);
  if (cqi == 0) return;  // no transmission
  const int mcs = mcs_from_cqi(cqi);
  EXPECT_LT(bler_estimate(sinr, mcs), 0.5);
}

INSTANTIATE_TEST_SUITE_P(SinrRange, LinkAdaptationSweep, ::testing::Range(0, 44));

/// Aggregating CCs: the envelope of a combination is the sum of its
/// parts — 4CC OpZ (n41-100 + n41-40 + n25-20 + n71-20) lands in the
/// right regime for the paper's 1.7 Gbps peak after scheduler losses.
TEST(PhyEnvelope, OpZFourCcCombination) {
  const double total = peak_rate_gbps(BandId::kN41, 100, 30, 4) +
                       peak_rate_gbps(BandId::kN41, 40, 30, 4) +
                       peak_rate_gbps(BandId::kN25, 20, 15, 1) +
                       peak_rate_gbps(BandId::kN71, 20, 15, 1);
  EXPECT_GT(total, 2.0);  // envelope above the measured 1.7 Gbps peak
  EXPECT_LT(total, 3.6);  // but not absurdly so
}

}  // namespace
