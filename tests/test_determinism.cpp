// Golden-trace and thread-count determinism tests. The repo's claim is
// that every offline-pipeline stage is a pure function of (inputs, seed)
// — the same scenario produces byte-identical traces run-to-run, and the
// parallel sweep/featurization/evaluation paths produce bit-identical
// results at any --threads value.
//
// If kGoldenUrbanDriveHash mismatches after an *intentional* change to
// the simulation or the trace CSV schema, follow the update procedure in
// docs/TESTING.md (the failure message prints the new hash).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eval/pipeline.hpp"
#include "sim/engine.hpp"
#include "sim/sweep.hpp"
#include "sim/trace_io.hpp"
#include "test_helpers.hpp"
#include "traces/dataset.hpp"

namespace {

using namespace ca5g;

// FNV-1a 64 over the canonical CSV serialization of the canned
// urban-drive scenario (tests/test_helpers.hpp, seed 2024, 5 s @ 10 ms).
constexpr std::uint64_t kGoldenUrbanDriveHash = 0x5352c5f6b6118cccULL;

TEST(GoldenTrace, UrbanDriveHashMatchesGolden) {
  const auto trace = sim::run_scenario(test::urban_drive_scenario());
  const auto hash = sim::trace_hash(trace);
  EXPECT_EQ(hash, kGoldenUrbanDriveHash)
      << "urban-drive trace bytes changed. If intentional, update "
         "kGoldenUrbanDriveHash to 0x" << std::hex << hash
      << " per the procedure in docs/TESTING.md.";
}

TEST(GoldenTrace, HashIsStableAcrossRuns) {
  const auto a = sim::run_scenario(test::urban_drive_scenario());
  const auto b = sim::run_scenario(test::urban_drive_scenario());
  EXPECT_EQ(sim::trace_hash(a), sim::trace_hash(b));
  EXPECT_EQ(a.samples.size(), b.samples.size());
}

TEST(GoldenTrace, HashIsSensitiveToSeed) {
  const auto a = sim::run_scenario(test::urban_drive_scenario(2024));
  const auto b = sim::run_scenario(test::urban_drive_scenario(2025));
  EXPECT_NE(sim::trace_hash(a), sim::trace_hash(b));
}

TEST(RngSubstream, PureFunctionOfSeedAndId) {
  const common::Rng root(99);
  auto a = root.substream(7);
  auto b = root.substream(7);
  auto c = root.substream(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());

  // Deriving substreams must not advance the parent: a fresh root yields
  // the same substreams in any derivation order.
  const common::Rng root2(99);
  (void)root2.substream(1000);
  EXPECT_EQ(root.substream(7).next_u64(), root2.substream(7).next_u64());
}

sim::SweepSpec small_sweep() {
  sim::SweepSpec spec;
  spec.ops = {ran::OperatorId::kOpZ, ran::OperatorId::kOpX};
  spec.mobilities = {sim::Mobility::kDriving};
  spec.ues_per_cell = 3;
  spec.duration_s = 2.0;
  spec.seed = 2024;
  return spec;
}

TEST(Sweep, EnumerationIsDeterministicWithDistinctSeeds) {
  const auto a = sim::enumerate_units(small_sweep());
  const auto b = sim::enumerate_units(small_sweep());
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].index, i);
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i].seed, a[j].seed);
  }
}

TEST(Sweep, FleetHashIndependentOfThreadCount) {
  auto spec = small_sweep();
  spec.threads = 1;
  const auto serial = sim::run_sweep(spec);
  spec.threads = 4;
  const auto four = sim::run_sweep(spec);
  spec.threads = 8;
  const auto eight = sim::run_sweep(spec);

  EXPECT_EQ(serial.fleet_hash, four.fleet_hash);
  EXPECT_EQ(serial.fleet_hash, eight.fleet_hash);
  ASSERT_EQ(serial.units.size(), four.units.size());
  for (std::size_t i = 0; i < serial.units.size(); ++i) {
    EXPECT_EQ(serial.units[i].trace_hash, four.units[i].trace_hash) << i;
    EXPECT_EQ(serial.units[i].trace_hash, eight.units[i].trace_hash) << i;
    EXPECT_EQ(serial.units[i].samples, four.units[i].samples) << i;
  }
}

TEST(Sweep, KeptTracesMatchTheirHashes) {
  auto spec = small_sweep();
  spec.ues_per_cell = 1;
  spec.keep_traces = true;
  spec.threads = 2;
  const auto result = sim::run_sweep(spec);
  ASSERT_EQ(result.traces.size(), result.units.size());
  for (std::size_t i = 0; i < result.units.size(); ++i)
    EXPECT_EQ(sim::trace_hash(result.traces[i]), result.units[i].trace_hash) << i;
}

void expect_windows_equal(const traces::Dataset& a, const traces::Dataset& b) {
  ASSERT_EQ(a.windows().size(), b.windows().size());
  EXPECT_DOUBLE_EQ(a.tput_scale_mbps(), b.tput_scale_mbps());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    const auto& wa = a.windows()[i];
    const auto& wb = b.windows()[i];
    EXPECT_EQ(wa.trace_id, wb.trace_id) << i;
    EXPECT_EQ(wa.cc_feat, wb.cc_feat) << i;
    EXPECT_EQ(wa.mask, wb.mask) << i;
    EXPECT_EQ(wa.global, wb.global) << i;
    EXPECT_EQ(wa.agg_history, wb.agg_history) << i;
    EXPECT_EQ(wa.target, wb.target) << i;
    EXPECT_EQ(wa.cc_target, wb.cc_target) << i;
  }
}

TEST(Dataset, ParallelFeaturizationMatchesSerial) {
  std::vector<sim::Trace> list = {test::synthetic_trace(200, 0.0),
                                  test::synthetic_trace(200, 31.0)};
  traces::DatasetSpec spec;
  spec.stride = 2;
  const auto serial = traces::Dataset::from_traces(list, spec, /*threads=*/1);
  const auto pooled = traces::Dataset::from_traces(list, spec, /*threads=*/4);
  expect_windows_equal(serial, pooled);
}

TEST(EvalPipeline, ParallelTraceGenerationMatchesSerial) {
  auto gen = test::tiny_generation();
  const eval::SubDatasetId id{ran::OperatorId::kOpY, sim::Mobility::kDriving};

  gen.threads = 1;
  const auto serial = eval::generate_traces(id, eval::TimeScale::kShort, gen);
  gen.threads = 4;
  const auto pooled = eval::generate_traces(id, eval::TimeScale::kShort, gen);

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(sim::trace_hash(serial[i]), sim::trace_hash(pooled[i])) << i;
}

}  // namespace
