// Unit tests for the contract-checking layer (common/contracts.hpp):
// message formatting, operand printing, debug-only behaviour, and that
// violated PHY/RAN domain preconditions surface as CheckError, not UB.
#include <gtest/gtest.h>

#include <string>

#include "common/contracts.hpp"
#include "phy/mcs.hpp"
#include "phy/tbs.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ca5g;
using common::CheckError;

std::string message_of(void (*fn)()) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  return "";
}

TEST(Contracts, CheckPassesOnTrue) {
  EXPECT_NO_THROW(CA5G_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CA5G_CHECK_MSG(true, "never shown"));
}

TEST(Contracts, CheckThrowsWithExpressionAndLocation) {
  const std::string msg = message_of(+[] { CA5G_CHECK(2 < 1); });
  EXPECT_NE(msg.find("CA5G_CHECK failed"), std::string::npos);
  EXPECT_NE(msg.find("2 < 1"), std::string::npos);
  EXPECT_NE(msg.find("test_contracts.cpp"), std::string::npos);
}

TEST(Contracts, CheckMsgStreamsPayload) {
  const std::string msg = message_of(+[] {
    const int cqi = 31;
    CA5G_CHECK_MSG(cqi <= 15, "CQI " << cqi << " exceeds table");
  });
  EXPECT_NE(msg.find("CQI 31 exceeds table"), std::string::npos);
}

TEST(Contracts, ComparisonMacrosPrintBothOperands) {
  const std::string msg = message_of(+[] {
    const int mcs = 31;
    const int limit = 27;
    CA5G_CHECK_LE(mcs, limit);
  });
  EXPECT_NE(msg.find("CA5G_CHECK_LE failed"), std::string::npos);
  EXPECT_NE(msg.find("mcs <= limit"), std::string::npos);
  EXPECT_NE(msg.find("[31 vs 27]"), std::string::npos);
}

TEST(Contracts, ComparisonMacrosPassAndFailPerOperator) {
  EXPECT_NO_THROW(CA5G_CHECK_EQ(4, 4));
  EXPECT_THROW(CA5G_CHECK_EQ(4, 5), CheckError);
  EXPECT_NO_THROW(CA5G_CHECK_NE(4, 5));
  EXPECT_THROW(CA5G_CHECK_NE(4, 4), CheckError);
  EXPECT_NO_THROW(CA5G_CHECK_LT(1, 2));
  EXPECT_THROW(CA5G_CHECK_LT(2, 2), CheckError);
  EXPECT_NO_THROW(CA5G_CHECK_GE(2, 2));
  EXPECT_THROW(CA5G_CHECK_GE(1, 2), CheckError);
  EXPECT_NO_THROW(CA5G_CHECK_GT(3, 2));
  EXPECT_THROW(CA5G_CHECK_GT(2, 2), CheckError);
}

TEST(Contracts, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  CA5G_CHECK_GE(next(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(Contracts, NearChecksTolerance) {
  EXPECT_NO_THROW(CA5G_CHECK_NEAR(1.0, 1.05, 0.1));
  EXPECT_THROW(CA5G_CHECK_NEAR(1.0, 1.25, 0.1), CheckError);
  const std::string msg = message_of(+[] { CA5G_CHECK_NEAR(1.0, 2.0, 0.5); });
  EXPECT_NE(msg.find("tolerance"), std::string::npos);
}

TEST(Contracts, InRangeIsClosedInterval) {
  EXPECT_NO_THROW(CA5G_CHECK_IN_RANGE(0, 0, 15));
  EXPECT_NO_THROW(CA5G_CHECK_IN_RANGE(15, 0, 15));
  EXPECT_THROW(CA5G_CHECK_IN_RANGE(16, 0, 15), CheckError);
  EXPECT_THROW(CA5G_CHECK_IN_RANGE(-1, 0, 15), CheckError);
  const std::string msg = message_of(+[] {
    const int cqi = 99;
    CA5G_CHECK_IN_RANGE(cqi, 0, 15);
  });
  EXPECT_NE(msg.find("99"), std::string::npos);
  EXPECT_NE(msg.find("[0, 15]"), std::string::npos);
}

TEST(Contracts, BoundsChecksHalfOpenAndSigned) {
  EXPECT_NO_THROW(CA5G_CHECK_BOUNDS(0, 4));
  EXPECT_NO_THROW(CA5G_CHECK_BOUNDS(3, 4));
  EXPECT_THROW(CA5G_CHECK_BOUNDS(4, 4), CheckError);
  EXPECT_THROW(CA5G_CHECK_BOUNDS(-1, 4), CheckError);
}

TEST(Contracts, CheckedIndexReturnsConvertedIndex) {
  EXPECT_EQ(common::checked_index(3, 10), 3u);
  EXPECT_THROW((void)common::checked_index(10, 10), CheckError);
  EXPECT_THROW((void)common::checked_index(-2, 10, "mcs"), CheckError);
  try {
    (void)common::checked_index(-2, 10, "mcs");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("mcs"), std::string::npos);
  }
}

TEST(Contracts, DcheckMatchesBuildMode) {
  // In debug (or sanitizer) builds CA5G_DCHECK throws like CA5G_CHECK; in
  // NDEBUG builds it compiles to a type-checked no-op.
#if CA5G_ENABLE_DCHECKS
  EXPECT_THROW(CA5G_DCHECK(false), CheckError);
  EXPECT_THROW(CA5G_DCHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(CA5G_DCHECK_IN_RANGE(20, 0, 15), CheckError);
#else
  EXPECT_NO_THROW(CA5G_DCHECK(false));
  EXPECT_NO_THROW(CA5G_DCHECK_EQ(1, 2));
  EXPECT_NO_THROW(CA5G_DCHECK_IN_RANGE(20, 0, 15));
#endif
  EXPECT_NO_THROW(CA5G_DCHECK(true));
}

TEST(Contracts, DcheckNeverEvaluatesWhenDisabled) {
#if !CA5G_ENABLE_DCHECKS
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  CA5G_DCHECK(next() > 0);
  CA5G_DCHECK_GE(next(), 0);
  EXPECT_EQ(calls, 0);
#else
  GTEST_SKIP() << "DCHECKs are enabled in this build";
#endif
}

// --- Domain preconditions surface as CheckError, not UB --------------------

TEST(Contracts, PhyTableLookupsThrowOnBadIndex) {
  EXPECT_THROW((void)phy::mcs_entry(-1), CheckError);
  EXPECT_THROW((void)phy::mcs_entry(phy::kMaxMcsIndex + 1), CheckError);
  EXPECT_THROW((void)phy::cqi_entry(-1), CheckError);
  EXPECT_THROW((void)phy::cqi_entry(phy::kMaxCqiIndex + 1), CheckError);
  // The failure message carries the offending operand for diagnosis.
  try {
    (void)phy::mcs_entry(31);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("31"), std::string::npos);
  }
}

TEST(Contracts, TbsRejectsOutOfRangeMcs) {
  phy::TbsParams p;
  p.prb_count = 10;
  p.mcs_index = phy::kMaxMcsIndex + 1;
  EXPECT_THROW((void)phy::transport_block_size(p), CheckError);
}

TEST(Contracts, TraceValidationRejectsCorruptRecords) {
  sim::CcSample cc;
  EXPECT_NO_THROW(sim::validate(cc));
  cc.cqi = 16;
  EXPECT_THROW(sim::validate(cc), CheckError);
  cc.cqi = 5;
  cc.mcs = 31;
  EXPECT_THROW(sim::validate(cc), CheckError);
  cc.mcs = 20;
  cc.bler = 1.5;
  EXPECT_THROW(sim::validate(cc), CheckError);
  cc.bler = 0.1;
  cc.rb = -3;
  EXPECT_THROW(sim::validate(cc), CheckError);
  cc.rb = 100;
  EXPECT_NO_THROW(sim::validate(cc));

  sim::TraceSample s;
  s.ccs.assign(2, sim::CcSample{});
  EXPECT_NO_THROW(sim::validate(s, 2));
  EXPECT_THROW(sim::validate(s, 4), CheckError);  // slot count drift
  s.ccs[0].active = s.ccs[0].is_pcell = true;
  s.ccs[0].bandwidth_mhz = 20;
  s.ccs[0].layers = 1;
  s.ccs[1] = s.ccs[0];  // two PCells: impossible
  EXPECT_THROW(sim::validate(s, 2), CheckError);
}

}  // namespace
