// Cross-module integration tests: the full paper pipeline — simulate →
// window → train → predict → drive applications — on small instances.
#include <gtest/gtest.h>

#include "apps/abr.hpp"
#include "apps/vivo.hpp"
#include "common/stats.hpp"
#include "core/prism5g.hpp"
#include "eval/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;

predictors::TrainConfig tiny_config() { return test::tiny_train_config(); }

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto gen = test::tiny_generation(3, 20.0, 40.0, 6);
    traces_ = new std::vector<sim::Trace>(eval::generate_traces(
        {ran::OperatorId::kOpZ, sim::Mobility::kDriving}, eval::TimeScale::kShort, gen));
    traces::DatasetSpec spec;
    spec.stride = 6;
    ds_ = new traces::Dataset(traces::Dataset::from_traces(*traces_, spec));
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete traces_;
    ds_ = nullptr;
    traces_ = nullptr;
  }
  static std::vector<sim::Trace>* traces_;
  static traces::Dataset* ds_;
};

std::vector<sim::Trace>* IntegrationTest::traces_ = nullptr;
traces::Dataset* IntegrationTest::ds_ = nullptr;

TEST_F(IntegrationTest, TraceStatisticsMatchPaperAnchors) {
  // OpZ urban driving: hundreds of Mbps average, >1 Gbps peaks, heavy
  // CC churn (paper §3, Fig. 7).
  double peak = 0.0;
  common::RunningStats means;
  for (const auto& trace : *traces_) {
    const auto agg = trace.aggregate_series();
    peak = std::max(peak, common::max_value(agg));
    means.add(common::mean(agg));
  }
  EXPECT_GT(means.mean(), 250.0);
  EXPECT_GT(peak, 1000.0);
  EXPECT_LT(peak, 3000.0);
}

TEST_F(IntegrationTest, TrainedModelBeatsUntrainedHeuristics) {
  common::Rng rng(3);
  const auto split = ds_->random_split(0.5, 0.2, rng);

  core::Prism5G prism(tiny_config());
  prism.fit(*ds_, split.train, split.val);
  const double prism_rmse = predictors::evaluate_rmse(prism, split.test);

  predictors::ProphetLitePredictor prophet;
  prophet.fit(*ds_, split.train, split.val);
  const double prophet_rmse = predictors::evaluate_rmse(prophet, split.test);

  EXPECT_LT(prism_rmse, prophet_rmse);
}

TEST_F(IntegrationTest, ModelEstimatorDrivesVivo) {
  common::Rng rng(4);
  const auto split = ds_->random_split(0.5, 0.2, rng);
  auto prism = std::make_shared<core::Prism5G>(tiny_config());
  prism->fit(*ds_, split.train, split.val);

  traces::DatasetSpec spec;  // history/horizon 10
  apps::ModelEstimator estimator(prism, spec, ds_->cc_slots(), ds_->tput_scale_mbps());
  apps::IdealEstimator ideal;
  apps::VivoConfig config;

  const auto& trace = traces_->front();
  const auto r_model = apps::run_vivo(trace, estimator, config);
  const auto r_ideal = apps::run_vivo(trace, ideal, config);
  EXPECT_GT(r_model.frames, 100u);
  // The trained model stays within a sane band of the oracle.
  EXPECT_GT(r_model.avg_quality, 0.4 * r_ideal.avg_quality);
}

TEST_F(IntegrationTest, ModelEstimatorDrivesAbr) {
  common::Rng rng(5);
  const auto split = ds_->random_split(0.5, 0.2, rng);
  auto prism = std::make_shared<core::Prism5G>(tiny_config());
  prism->fit(*ds_, split.train, split.val);

  traces::DatasetSpec spec;
  apps::ModelEstimator estimator(prism, spec, ds_->cc_slots(), ds_->tput_scale_mbps());
  apps::AbrConfig config;
  config.total_chunks = 10;
  const auto result = apps::run_mpc_abr(traces_->front(), estimator, config);
  EXPECT_EQ(result.chunks, 10u);
  EXPECT_GT(result.avg_bitrate_mbps, 1.0);
}

TEST_F(IntegrationTest, ColdStartEstimatorFallsBack) {
  common::Rng rng(6);
  const auto split = ds_->random_split(0.5, 0.2, rng);
  auto prism = std::make_shared<core::Prism5G>(tiny_config());
  prism->fit(*ds_, split.train, split.val);
  traces::DatasetSpec spec;
  apps::ModelEstimator estimator(prism, spec, ds_->cc_slots(), ds_->tput_scale_mbps());
  // now < history → history-mean fallback, never throws.
  const auto series = estimator.predict_mbps(traces_->front(), 3, 10);
  EXPECT_EQ(series.size(), 10u);
  for (double v : series) EXPECT_GE(v, 0.0);
}

TEST_F(IntegrationTest, MultimodalThroughputDistribution) {
  // Fig. 2 of the paper: CA makes the throughput distribution
  // multimodal because different CC counts occupy different throughput
  // regimes. Verify the mechanism: conditional means separated by far
  // more than the conditional spread.
  std::vector<double> few_cc, many_cc;
  for (const auto& trace : *traces_) {
    for (const auto& s : trace.samples) {
      if (s.active_cc_count() <= 1)
        few_cc.push_back(s.aggregate_tput_mbps);
      else if (s.active_cc_count() >= 3)
        many_cc.push_back(s.aggregate_tput_mbps);
    }
  }
  ASSERT_GT(many_cc.size(), 50u);
  if (few_cc.size() > 50) {
    EXPECT_GT(common::mean(many_cc), 2.0 * common::mean(few_cc));
  } else {
    // The drive stayed in CA coverage: distribution must still be wide.
    EXPECT_GT(common::stddev(many_cc), 0.3 * common::mean(many_cc));
  }
}

}  // namespace
