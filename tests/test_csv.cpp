// Unit tests for CSV parsing/serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace {

using namespace ca5g::common;

TEST(Csv, ParseSimpleDocument) {
  const auto doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(Csv, ParseHandlesCrlfAndBlankLines) {
  const auto doc = parse_csv("x,y\r\n\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(Csv, ParseRejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), CheckError);
}

TEST(Csv, RoundTrip) {
  CsvDocument doc;
  doc.header = {"col1", "col2"};
  doc.rows = {{"1.5", "x"}, {"-2", "y"}};
  const auto text = to_csv(doc);
  const auto parsed = parse_csv(text);
  EXPECT_EQ(parsed.header, doc.header);
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(Csv, ColumnLookup) {
  CsvDocument doc;
  doc.header = {"alpha", "beta"};
  EXPECT_EQ(doc.column("beta"), 1u);
  EXPECT_THROW((void)doc.column("gamma"), CheckError);
}

TEST(Csv, FileRoundTrip) {
  CsvDocument doc;
  doc.header = {"v"};
  doc.rows = {{"42"}};
  const auto path = std::filesystem::temp_directory_path() / "ca5g_test_csv.csv";
  save_csv(doc, path.string());
  const auto loaded = load_csv(path.string());
  EXPECT_EQ(loaded.rows[0][0], "42");
  std::filesystem::remove(path);
}

TEST(Csv, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/definitely/missing.csv"), CheckError);
}

}  // namespace
