// Unit tests for the statistical baselines (harmonic mean, Prophet-lite)
// and the ridge solver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "predictors/naive.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;

TEST(RidgeSolve, ExactOnWellPosedSystem) {
  // y = 2 + 3x, no regularization → exact recovery.
  std::vector<std::vector<double>> a;
  std::vector<double> y;
  for (double x = 0.0; x < 10.0; x += 1.0) {
    a.push_back({1.0, x});
    y.push_back(2.0 + 3.0 * x);
  }
  const auto coef = ridge_solve(a, y, 0.0);
  ASSERT_EQ(coef.size(), 2u);
  EXPECT_NEAR(coef[0], 2.0, 1e-9);
  EXPECT_NEAR(coef[1], 3.0, 1e-9);
}

TEST(RidgeSolve, RegularizationShrinksCoefficients) {
  std::vector<std::vector<double>> a;
  std::vector<double> y;
  for (double x = 0.0; x < 10.0; x += 1.0) {
    a.push_back({x});
    y.push_back(5.0 * x);
  }
  const auto strong = ridge_solve(a, y, 1000.0);
  const auto weak = ridge_solve(a, y, 0.0);
  EXPECT_LT(std::abs(strong[0]), std::abs(weak[0]));
}

TEST(RidgeSolve, RejectsBadInput) {
  EXPECT_THROW(ridge_solve({}, {}, 0.1), common::CheckError);
  EXPECT_THROW(ridge_solve({{1.0}}, {1.0, 2.0}, 0.1), common::CheckError);
}

TEST(HarmonicMean, ConstantHistoryPredictsConstant) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  HarmonicMeanPredictor hm;
  hm.fit(ds, {}, {});
  traces::Window w = ds.windows().front();
  for (auto& x : w.agg_history) x = 0.4;
  const auto pred = hm.predict(w);
  ASSERT_EQ(pred.size(), ds.horizon());
  for (double p : pred) EXPECT_NEAR(p, 0.4, 1e-9);
}

TEST(HarmonicMean, DominatedBySmallValues) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  HarmonicMeanPredictor hm;
  hm.fit(ds, {}, {});
  traces::Window w = ds.windows().front();
  for (auto& x : w.agg_history) x = 1.0;
  w.agg_history.back() = 0.01;
  const auto pred = hm.predict(w);
  // Harmonic mean of {1×9, 0.01} ≈ 0.092 — far below the arithmetic mean.
  EXPECT_LT(pred.front(), 0.2);
}

TEST(ProphetLite, ExtendsLinearTrend) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  ProphetLitePredictor prophet({0, 1e-6});  // pure trend, no seasonality
  prophet.fit(ds, {}, {});
  traces::Window w = ds.windows().front();
  for (std::size_t t = 0; t < w.agg_history.size(); ++t)
    w.agg_history[t] = 0.1 + 0.02 * static_cast<double>(t);
  const auto pred = prophet.predict(w);
  // Continuation of the line: next value ≈ 0.1 + 0.02·10 = 0.30.
  EXPECT_NEAR(pred.front(), 0.30, 0.02);
  EXPECT_GT(pred.back(), pred.front());
}

TEST(ProphetLite, OvershootsAtDrop) {
  // The paper's Z1 failure mode: history trends up, future drops —
  // Prophet extrapolates the trend and overestimates.
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  ProphetLitePredictor prophet;
  prophet.fit(ds, {}, {});
  traces::Window w = ds.windows().front();
  for (std::size_t t = 0; t < w.agg_history.size(); ++t)
    w.agg_history[t] = 0.3 + 0.05 * static_cast<double>(t);
  const auto pred = prophet.predict(w);
  EXPECT_GT(pred.back(), 0.6);  // keeps climbing ignorant of any drop
}

TEST(ProphetLite, PredictionsClampedToValidRange) {
  const auto ds = ca5g::test::synthetic_dataset(1, 100);
  ProphetLitePredictor prophet;
  prophet.fit(ds, {}, {});
  traces::Window w = ds.windows().front();
  for (std::size_t t = 0; t < w.agg_history.size(); ++t)
    w.agg_history[t] = 0.9 - 0.15 * static_cast<double>(t);  // steep dive
  for (double p : prophet.predict(w)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.5);
  }
}

TEST(Evaluate, RmseOverTestSet) {
  const auto ds = ca5g::test::synthetic_dataset(1, 200);
  common::Rng rng(1);
  const auto split = ds.random_split(0.5, 0.2, rng);
  HarmonicMeanPredictor hm;
  hm.fit(ds, split.train, split.val);
  const double rmse = evaluate_rmse(hm, split.test);
  EXPECT_GT(rmse, 0.0);
  EXPECT_LT(rmse, 1.0);
  const double mae = evaluate_mae(hm, split.test);
  EXPECT_LE(mae, rmse + 1e-12);
}

TEST(TrainConfig, EnvOverrides) {
  setenv("CA5G_EPOCHS", "7", 1);
  const auto config = train_config_from_env();
  EXPECT_EQ(config.epochs, 7u);
  unsetenv("CA5G_EPOCHS");
}

}  // namespace
