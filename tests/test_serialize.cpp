// Tests for parameter serialization and model save/load round trips.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/check.hpp"
#include "core/prism5g.hpp"
#include "nn/serialize.hpp"
#include "predictors/deep.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using nn::Tensor;

TEST(Serialize, BlobRoundTrip) {
  common::Rng rng(1);
  std::vector<Tensor> params{Tensor::randn(rng, 3, 4, 1.0f),
                             Tensor::randn(rng, 1, 7, 1.0f)};
  const auto blob = nn::serialize_parameters(params);

  std::vector<Tensor> fresh{Tensor(3, 4, true), Tensor(1, 7, true)};
  nn::deserialize_parameters(blob, fresh);
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_EQ(fresh[i].values(), params[i].values());
}

TEST(Serialize, DetectsCorruption) {
  common::Rng rng(2);
  std::vector<Tensor> params{Tensor::randn(rng, 2, 2, 1.0f)};
  auto blob = nn::serialize_parameters(params);

  // Wrong magic.
  auto bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  std::vector<Tensor> target{Tensor(2, 2, true)};
  EXPECT_THROW(nn::deserialize_parameters(bad_magic, target), common::CheckError);

  // Truncated payload.
  auto truncated = blob;
  truncated.resize(truncated.size() - 4);
  EXPECT_THROW(nn::deserialize_parameters(truncated, target), common::CheckError);

  // Shape mismatch.
  std::vector<Tensor> wrong_shape{Tensor(4, 1, true)};
  EXPECT_THROW(nn::deserialize_parameters(blob, wrong_shape), common::CheckError);

  // Count mismatch.
  std::vector<Tensor> wrong_count{Tensor(2, 2, true), Tensor(2, 2, true)};
  EXPECT_THROW(nn::deserialize_parameters(blob, wrong_count), common::CheckError);
}

TEST(Serialize, FileRoundTripPreservesPredictions) {
  const auto ds = ca5g::test::synthetic_dataset(1, 200);
  common::Rng rng(3);
  const auto split = ds.random_split(0.6, 0.15, rng);

  predictors::TrainConfig config;
  config.epochs = 6;
  config.hidden = 12;
  config.layers = 1;

  predictors::LstmPredictor trained(config);
  trained.fit(ds, split.train, split.val);
  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_model_test.bin").string();
  trained.save(path);

  predictors::LstmPredictor restored(config);
  restored.load(ds, path);
  for (std::size_t i = 0; i < std::min<std::size_t>(split.test.size(), 10); ++i) {
    const auto a = trained.predict(*split.test[i]);
    const auto b = restored.predict(*split.test[i]);
    for (std::size_t h = 0; h < a.size(); ++h) EXPECT_FLOAT_EQ(a[h], b[h]);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, PrismSaveLoad) {
  const auto ds = ca5g::test::synthetic_dataset(1, 200);
  common::Rng rng(4);
  const auto split = ds.random_split(0.6, 0.15, rng);
  predictors::TrainConfig config;
  config.epochs = 4;
  config.hidden = 12;
  config.layers = 1;

  core::Prism5G trained(config);
  trained.fit(ds, split.train, split.val);
  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_prism_test.bin").string();
  trained.save(path);

  core::Prism5G restored(config);
  restored.load(ds, path);
  const auto a = trained.predict(*split.test.front());
  const auto b = restored.predict(*split.test.front());
  for (std::size_t h = 0; h < a.size(); ++h) EXPECT_FLOAT_EQ(a[h], b[h]);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadMissingFileThrows) {
  std::vector<Tensor> params{Tensor(1, 1, true)};
  EXPECT_THROW(nn::load_parameters(params, "/nonexistent/model.bin"),
               common::CheckError);
}

}  // namespace
