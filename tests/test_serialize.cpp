// Tests for parameter serialization and model save/load round trips.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "core/prism5g.hpp"
#include "nn/serialize.hpp"
#include "predictors/deep.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using nn::Tensor;

TEST(Serialize, BlobRoundTrip) {
  common::Rng rng(1);
  std::vector<Tensor> params{Tensor::randn(rng, 3, 4, 1.0f),
                             Tensor::randn(rng, 1, 7, 1.0f)};
  const auto blob = nn::serialize_parameters(params);

  std::vector<Tensor> fresh{Tensor(3, 4, true), Tensor(1, 7, true)};
  nn::deserialize_parameters(blob, fresh);
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_EQ(fresh[i].values(), params[i].values());
}

TEST(Serialize, DetectsCorruption) {
  common::Rng rng(2);
  std::vector<Tensor> params{Tensor::randn(rng, 2, 2, 1.0f)};
  auto blob = nn::serialize_parameters(params);

  // Wrong magic.
  auto bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  std::vector<Tensor> target{Tensor(2, 2, true)};
  EXPECT_THROW(nn::deserialize_parameters(bad_magic, target), common::CheckError);

  // Truncated payload.
  auto truncated = blob;
  truncated.resize(truncated.size() - 4);
  EXPECT_THROW(nn::deserialize_parameters(truncated, target), common::CheckError);

  // Shape mismatch.
  std::vector<Tensor> wrong_shape{Tensor(4, 1, true)};
  EXPECT_THROW(nn::deserialize_parameters(blob, wrong_shape), common::CheckError);

  // Count mismatch.
  std::vector<Tensor> wrong_count{Tensor(2, 2, true), Tensor(2, 2, true)};
  EXPECT_THROW(nn::deserialize_parameters(blob, wrong_count), common::CheckError);
}

TEST(Serialize, RejectsFormatVersionMismatchWithExpectedAndFound) {
  common::Rng rng(5);
  std::vector<Tensor> params{Tensor::randn(rng, 2, 3, 1.0f)};
  auto blob = nn::serialize_parameters(params);

  // The version word sits right after the 4-byte magic; forge a future one.
  const std::uint32_t future = nn::kSerializeFormatVersion + 7;
  std::memcpy(blob.data() + 4, &future, sizeof(future));

  std::vector<Tensor> target{Tensor(2, 3, true)};
  try {
    nn::deserialize_parameters(blob, target);
    FAIL() << "version mismatch must throw";
  } catch (const common::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected v" + std::to_string(nn::kSerializeFormatVersion)),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("found v" + std::to_string(future)), std::string::npos) << msg;
  }
}

TEST(Serialize, DiagnosesLegacyV1Blob) {
  // A v1 blob started with the old magic and went straight to the tensor
  // count — no version word. The loader must name it legacy, not report
  // a garbage version.
  std::vector<std::uint8_t> legacy;
  const std::uint32_t old_magic = 0xCA5610A0;
  legacy.resize(sizeof(old_magic));
  std::memcpy(legacy.data(), &old_magic, sizeof(old_magic));

  std::vector<Tensor> target{Tensor(1, 1, true)};
  try {
    nn::deserialize_parameters(legacy, target);
    FAIL() << "legacy v1 blob must throw";
  } catch (const common::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("legacy parameter blob (format v1)"),
              std::string::npos)
        << e.what();
  }
}

TEST(Serialize, LoadErrorNamesTheFile) {
  common::Rng rng(6);
  std::vector<Tensor> params{Tensor::randn(rng, 2, 2, 1.0f)};
  auto blob = nn::serialize_parameters(params);
  const std::uint32_t future = nn::kSerializeFormatVersion + 1;
  std::memcpy(blob.data() + 4, &future, sizeof(future));

  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_stale_version.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }

  std::vector<Tensor> target{Tensor(2, 2, true)};
  try {
    nn::load_parameters(target, path);
    FAIL() << "loading a future-version file must throw";
  } catch (const common::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("version mismatch"), std::string::npos) << msg;
  }
  std::filesystem::remove(path);
}

TEST(Serialize, FileRoundTripPreservesPredictions) {
  const auto ds = ca5g::test::synthetic_dataset(1, 200);
  common::Rng rng(3);
  const auto split = ds.random_split(0.6, 0.15, rng);

  predictors::TrainConfig config;
  config.epochs = 6;
  config.hidden = 12;
  config.layers = 1;

  predictors::LstmPredictor trained(config);
  trained.fit(ds, split.train, split.val);
  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_model_test.bin").string();
  trained.save(path);

  predictors::LstmPredictor restored(config);
  restored.load(ds, path);
  for (std::size_t i = 0; i < std::min<std::size_t>(split.test.size(), 10); ++i) {
    const auto a = trained.predict(*split.test[i]);
    const auto b = restored.predict(*split.test[i]);
    for (std::size_t h = 0; h < a.size(); ++h) EXPECT_FLOAT_EQ(a[h], b[h]);
  }
  std::filesystem::remove(path);
}

TEST(Serialize, PrismSaveLoad) {
  const auto ds = ca5g::test::synthetic_dataset(1, 200);
  common::Rng rng(4);
  const auto split = ds.random_split(0.6, 0.15, rng);
  predictors::TrainConfig config;
  config.epochs = 4;
  config.hidden = 12;
  config.layers = 1;

  core::Prism5G trained(config);
  trained.fit(ds, split.train, split.val);
  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_prism_test.bin").string();
  trained.save(path);

  core::Prism5G restored(config);
  restored.load(ds, path);
  const auto a = trained.predict(*split.test.front());
  const auto b = restored.predict(*split.test.front());
  for (std::size_t h = 0; h < a.size(); ++h) EXPECT_FLOAT_EQ(a[h], b[h]);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadMissingFileThrows) {
  std::vector<Tensor> params{Tensor(1, 1, true)};
  EXPECT_THROW(nn::load_parameters(params, "/nonexistent/model.bin"),
               common::CheckError);
}

}  // namespace
