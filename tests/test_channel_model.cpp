// Unit tests for the stochastic link channel and link-budget evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "radio/channel_model.hpp"

namespace {

using namespace ca5g::radio;
using ca5g::common::Rng;

TEST(LinkChannel, ShadowingIsStationary) {
  LinkChannel link(Rng(1), {});
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    link.advance(1.0, 0.01);
    samples.push_back(link.shadow_db());
  }
  EXPECT_NEAR(ca5g::common::mean(samples), 0.0, 0.8);
  EXPECT_NEAR(ca5g::common::stddev(samples), 6.0, 1.2);
}

TEST(LinkChannel, ShadowingCorrelationDecaysWithDistance) {
  // Correlation between successive samples should be higher for small
  // moves than for large moves (Gudmundson model).
  auto lag1_corr = [](double step_m) {
    LinkChannel link(Rng(2), {});
    std::vector<double> a, b;
    double prev = link.shadow_db();
    for (int i = 0; i < 8000; ++i) {
      link.advance(step_m, 0.01);
      a.push_back(prev);
      b.push_back(link.shadow_db());
      prev = link.shadow_db();
    }
    return ca5g::common::pearson(a, b);
  };
  EXPECT_GT(lag1_corr(1.0), 0.9);
  EXPECT_LT(lag1_corr(200.0), 0.3);
}

TEST(LinkChannel, StationaryUeStillSeesFading) {
  LinkChannel link(Rng(3), {});
  std::vector<double> fading;
  for (int i = 0; i < 5000; ++i) {
    link.advance(0.0, 0.01);
    fading.push_back(link.fading_db());
  }
  EXPECT_GT(ca5g::common::stddev(fading), 0.5);
}

TEST(LinkChannel, CorrelateWithPullsTowardsAnchor) {
  LinkChannel anchor(Rng(4), {});
  LinkChannel a(Rng(5), {});
  LinkChannel b(Rng(6), {});
  a.correlate_with(anchor, 1.0);
  EXPECT_DOUBLE_EQ(a.shadow_db(), anchor.shadow_db());
  const double before = b.shadow_db();
  b.correlate_with(anchor, 0.0);
  EXPECT_DOUBLE_EQ(b.shadow_db(), before);
  EXPECT_THROW(b.correlate_with(anchor, 1.5), ca5g::common::CheckError);
}

TEST(LinkBudget, RsrpFollowsLinkBudget) {
  LinkBudgetInputs in;
  in.tx_power_dbm = 28.0;
  in.freq_mhz = 2500.0;
  in.dist_m = 200.0;
  in.stochastic_loss_db = 0.0;
  const auto m = compute_link(in);
  const double expected =
      28.0 - path_loss_db(2500.0, 200.0, Environment::kUrbanMacro);
  EXPECT_NEAR(m.rsrp_dbm, expected, 1e-9);
}

TEST(LinkBudget, IndoorAddsPenetrationLoss) {
  LinkBudgetInputs outdoor;
  outdoor.dist_m = 150.0;
  LinkBudgetInputs indoor = outdoor;
  indoor.ue_indoor = true;
  const double delta =
      compute_link(outdoor).rsrp_dbm - compute_link(indoor).rsrp_dbm;
  EXPECT_NEAR(delta, o2i_penetration_db(outdoor.freq_mhz), 1e-9);
}

TEST(LinkBudget, SinrDecreasesWithLoad) {
  LinkBudgetInputs in;
  in.dist_m = 400.0;
  in.interference_load = 0.0;
  const double quiet = compute_link(in).sinr_db;
  in.interference_load = 1.0;
  const double busy = compute_link(in).sinr_db;
  EXPECT_GT(quiet, busy);
  EXPECT_GT(quiet - busy, 3.0);
}

TEST(LinkBudget, SinrAndRsrqClamped) {
  LinkBudgetInputs in;
  in.dist_m = 30000.0;  // extremely far
  const auto weak = compute_link(in);
  EXPECT_GE(weak.sinr_db, -15.0);
  EXPECT_GE(weak.rsrq_db, -19.5);
  in.dist_m = 10.0;
  in.tx_power_dbm = 60.0;
  const auto strong = compute_link(in);
  EXPECT_LE(strong.sinr_db, 35.0);
  EXPECT_LE(strong.rsrq_db, -5.0);
}

TEST(LinkBudget, RsrqTracksSinr) {
  LinkBudgetInputs in;
  in.dist_m = 200.0;
  const auto good = compute_link(in);
  in.dist_m = 1500.0;
  const auto bad = compute_link(in);
  EXPECT_GT(good.rsrq_db, bad.rsrq_db);
}

}  // namespace
