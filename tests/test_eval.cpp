// Tests for the evaluation pipeline (dataset generation, model zoo).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "eval/pipeline.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::eval;

GenerationConfig tiny_gen() { return test::tiny_generation(); }

TEST(Pipeline, SixSubDatasetsInTableOrder) {
  const auto all = all_sub_datasets();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].label(), "OpX (Walking)");
  EXPECT_EQ(all[5].label(), "OpZ (Driving)");
}

TEST(Pipeline, TimeScaleNames) {
  EXPECT_EQ(time_scale_name(TimeScale::kShort), "Short(10ms)");
  EXPECT_EQ(time_scale_name(TimeScale::kLong), "Long(1s)");
}

TEST(Pipeline, ShortScaleTraces) {
  const auto traces_vec =
      generate_traces({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                      TimeScale::kShort, tiny_gen());
  ASSERT_EQ(traces_vec.size(), 2u);
  EXPECT_DOUBLE_EQ(traces_vec.front().step_s, 0.01);
  EXPECT_EQ(traces_vec.front().samples.size(), 800u);
}

TEST(Pipeline, LongScaleTracesAreResampledTo1s) {
  const auto traces_vec =
      generate_traces({ran::OperatorId::kOpZ, sim::Mobility::kWalking},
                      TimeScale::kLong, tiny_gen());
  EXPECT_DOUBLE_EQ(traces_vec.front().step_s, 1.0);
  EXPECT_EQ(traces_vec.front().samples.size(), 40u);
}

TEST(Pipeline, MlDatasetHasWindows) {
  const auto ds = make_ml_dataset({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                                  TimeScale::kShort, tiny_gen());
  EXPECT_GT(ds.windows().size(), 50u);
  EXPECT_EQ(ds.history(), 10u);
  EXPECT_EQ(ds.horizon(), 10u);
}

TEST(Pipeline, TracesDifferAcrossSeedsWithinDataset) {
  const auto traces_vec =
      generate_traces({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                      TimeScale::kShort, tiny_gen());
  EXPECT_NE(traces_vec[0].samples[500].aggregate_tput_mbps,
            traces_vec[1].samples[500].aggregate_tput_mbps);
}

TEST(Pipeline, ModelZooConstructsEveryName) {
  for (const char* name :
       {"Prophet", "HarmonicMean", "LSTM", "TCN", "Lumos5G", "GBDT", "RF",
        "Prism5G", "Prism5G-nostate", "Prism5G-nofusion"}) {
    const auto model = make_predictor(name);
    ASSERT_NE(model, nullptr) << name;
  }
  EXPECT_THROW((void)make_predictor("DoesNotExist"), common::CheckError);
}

TEST(Pipeline, AblationNamesPropagate) {
  EXPECT_EQ(make_predictor("Prism5G-nostate")->name(), "Prism5G(no-state)");
  EXPECT_EQ(make_predictor("Prism5G-nofusion")->name(), "Prism5G(no-fusion)");
}

TEST(Pipeline, TrainAndEvaluateSmoke) {
  const auto ds = make_ml_dataset({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                                  TimeScale::kShort, tiny_gen());
  common::Rng rng(5);
  const auto split = ds.random_split(0.5, 0.2, rng);
  auto prophet = make_predictor("Prophet");
  const double rmse = train_and_evaluate(*prophet, ds, split);
  EXPECT_GT(rmse, 0.0);
  EXPECT_LT(rmse, 1.0);
}

TEST(Pipeline, EvaluateModelsKeepsNameOrderAtAnyThreadCount) {
  const auto ds = make_ml_dataset({ran::OperatorId::kOpZ, sim::Mobility::kDriving},
                                  TimeScale::kShort, tiny_gen());
  common::Rng rng(5);
  const auto split = ds.random_split(0.5, 0.2, rng);
  const std::vector<std::string> names = {"Prophet", "HarmonicMean"};

  const auto serial = evaluate_models(names, ds, split, /*threads=*/1);
  const auto pooled = evaluate_models(names, ds, split, /*threads=*/2);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_EQ(serial[0].name, "Prophet");
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].name, pooled[i].name);
    EXPECT_DOUBLE_EQ(serial[i].rmse, pooled[i].rmse);
    EXPECT_GT(serial[i].rmse, 0.0);
  }
}

}  // namespace
