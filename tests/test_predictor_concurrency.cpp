// Concurrent inference safety: the serving path calls predict() /
// predict_many() on one shared fitted predictor from several worker
// threads at once, so inference must be a pure read of the trained
// state. These tests hammer a shared instance from 4 threads and check
// every result against a single-threaded reference — run them under
// -DPRISM5G_SANITIZE=thread and TSan will flag any data race in the
// tensor graph, tree ensembles, or predictor internals.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "predictors/deep.hpp"
#include "predictors/naive.hpp"
#include "predictors/trees.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;

constexpr std::size_t kThreads = 4;
constexpr std::size_t kRounds = 8;

/// Runs `model.predict` over every test window from kThreads threads
/// concurrently (kRounds passes each) and requires bit-identical
/// agreement with a single-threaded reference pass.
void expect_concurrent_predictions_match(const Predictor& model,
                                         const traces::Dataset::Split& split) {
  ASSERT_FALSE(split.test.empty());
  std::vector<std::vector<double>> reference;
  reference.reserve(split.test.size());
  for (const auto* w : split.test) reference.push_back(model.predict(*w));

  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        // Stagger start positions so threads touch different windows at
        // the same instant more often than not.
        for (std::size_t i = 0; i < split.test.size(); ++i) {
          const std::size_t j = (i + t * split.test.size() / kThreads) % split.test.size();
          if (model.predict(*split.test[j]) != reference[j]) {
            failures[t] = "thread " + std::to_string(t) + " diverged on window " +
                          std::to_string(j);
            return;
          }
        }
        // Batched entry point shares the same state; exercise it too.
        const auto many = model.predict_many(split.test);
        for (std::size_t j = 0; j < many.size(); ++j) {
          if (many[j] != reference[j]) {
            failures[t] = "thread " + std::to_string(t) +
                          " predict_many diverged on window " + std::to_string(j);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
}

TEST(PredictorConcurrency, HarmonicMeanSharedInstance) {
  const auto ds = test::synthetic_dataset(2, 260);
  common::Rng rng(11);
  const auto split = ds.random_split(0.5, 0.2, rng);
  HarmonicMeanPredictor model;
  model.fit(ds, split.train, split.val);
  expect_concurrent_predictions_match(model, split);
}

TEST(PredictorConcurrency, GbdtSharedInstance) {
  const auto ds = test::synthetic_dataset(2, 260);
  common::Rng rng(12);
  const auto split = ds.random_split(0.5, 0.2, rng);
  GbdtPredictor::Config config;
  config.num_trees = 8;
  GbdtPredictor model(config);
  model.fit(ds, split.train, split.val);
  expect_concurrent_predictions_match(model, split);
}

TEST(PredictorConcurrency, LstmSharedInstance) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(13);
  const auto split = ds.random_split(0.5, 0.2, rng);
  TrainConfig config;
  config.epochs = 2;
  config.hidden = 8;
  config.layers = 1;
  config.batch_size = 32;
  LstmPredictor model(config);
  model.fit(ds, split.train, split.val);
  expect_concurrent_predictions_match(model, split);
}

}  // namespace
