// Shared test fixtures: a fast, fully synthetic trace with a learnable
// structure (periodic per-CC throughput plus CA on/off square wave), the
// canned urban-drive scenario the determinism/integration suites pin
// their seeds to, downsized generation/training configs, and a small
// pre-fitted predictor for serving tests — so each suite doesn't grow
// its own slightly-different copy of this setup.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "eval/pipeline.hpp"
#include "predictors/naive.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "traces/dataset.hpp"

namespace ca5g::test {

/// Trace where cc0 carries a sinusoid and cc1 toggles with a square
/// wave (a caricature of SCell add/remove); all PHY features are filled
/// consistently so feature-based models can exploit them.
inline sim::Trace synthetic_trace(std::size_t samples = 400, double phase = 0.0) {
  sim::Trace trace;
  trace.op = ran::OperatorId::kOpZ;
  trace.mobility = "synthetic";
  trace.step_s = 0.01;
  trace.cc_slots = 4;
  for (std::size_t i = 0; i < samples; ++i) {
    sim::TraceSample s;
    s.time_s = static_cast<double>(i) * trace.step_s;
    s.ccs.assign(4, sim::CcSample{});

    const double t = static_cast<double>(i) + phase;
    sim::CcSample& cc0 = s.ccs[0];
    cc0.active = true;
    cc0.is_pcell = true;
    cc0.band = phy::BandId::kN41;
    cc0.bandwidth_mhz = 100;
    cc0.rsrp_dbm = -85.0 + 10.0 * std::sin(t / 40.0);
    cc0.rsrq_db = -10.0;
    cc0.sinr_db = 20.0 + 8.0 * std::sin(t / 40.0);
    cc0.cqi = 12;
    cc0.rb = 200;
    cc0.layers = 4;
    cc0.mcs = 22;
    cc0.tput_mbps = 500.0 + 280.0 * std::sin(t / 40.0);

    const bool cc1_on = (static_cast<std::size_t>(t / 60.0) % 2) == 0;
    if (cc1_on) {
      sim::CcSample& cc1 = s.ccs[1];
      cc1.active = true;
      cc1.band = phy::BandId::kN25;
      cc1.bandwidth_mhz = 20;
      cc1.rsrp_dbm = -95.0;
      cc1.rsrq_db = -12.0;
      cc1.sinr_db = 12.0;
      cc1.cqi = 9;
      cc1.rb = 95;
      cc1.layers = 1;
      cc1.mcs = 16;
      cc1.tput_mbps = 150.0;
      // Mark the toggle step as an RRC event.
      const bool prev_on = (static_cast<std::size_t>((t - 1.0) / 60.0) % 2) == 0;
      if (!prev_on && i > 0)
        s.events.push_back({s.time_s, ran::RrcEventType::kSCellAdd, 1});
    }
    s.aggregate_tput_mbps = 0.0;
    for (const auto& cc : s.ccs) s.aggregate_tput_mbps += cc.tput_mbps;
    trace.samples.push_back(std::move(s));
  }
  return trace;
}

inline traces::Dataset synthetic_dataset(std::size_t traces_count = 2,
                                         std::size_t samples = 400) {
  std::vector<sim::Trace> list;
  for (std::size_t i = 0; i < traces_count; ++i)
    list.push_back(synthetic_trace(samples, 17.0 * static_cast<double>(i)));
  traces::DatasetSpec spec;
  spec.stride = 3;
  return traces::Dataset::from_traces(list, spec);
}

/// The canned full-simulation scenario: OpZ urban driving at 10 ms
/// steps. This is the fixture the golden-hash determinism tests pin, so
/// changing any default here requires the TESTING.md hash-update
/// procedure.
inline sim::ScenarioConfig urban_drive_scenario(std::uint64_t seed = 2024,
                                                double duration_s = 5.0) {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.env = radio::Environment::kUrbanMacro;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = duration_s;
  config.step_s = 0.01;
  config.seed = seed;
  return config;
}

/// Downsized dataset generation for pipeline tests (seconds, not the
/// minutes the real Table 4 sizes take).
inline eval::GenerationConfig tiny_generation(std::size_t traces = 2,
                                              double short_s = 8.0,
                                              double long_s = 40.0,
                                              std::size_t stride = 10) {
  eval::GenerationConfig gen;
  gen.traces = traces;
  gen.short_trace_duration_s = short_s;
  gen.long_trace_duration_s = long_s;
  gen.short_stride = stride;
  return gen;
}

/// Downsized deep-model training config: large enough to beat the naive
/// baselines on the synthetic datasets, small enough for unit tests.
inline predictors::TrainConfig tiny_train_config() {
  predictors::TrainConfig config;
  config.epochs = 16;
  config.hidden = 24;
  config.layers = 1;
  config.batch_size = 32;
  return config;
}

/// A small predictor already fitted on `ds` — what serving tests need to
/// exercise the registry/server path without caring about model quality.
inline std::shared_ptr<predictors::Predictor> fitted_small_predictor(
    const traces::Dataset& ds, std::uint64_t seed = 3) {
  auto model = std::make_shared<predictors::HarmonicMeanPredictor>();
  common::Rng rng(seed);
  const auto split = ds.random_split(0.5, 0.2, rng);
  model->fit(ds, split.train, split.val);
  return model;
}

}  // namespace ca5g::test
