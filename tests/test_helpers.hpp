// Shared helpers for predictor tests: a fast, fully synthetic trace with
// a learnable structure (periodic per-CC throughput plus CA on/off
// square wave), avoiding full RAN simulation in unit tests.
#pragma once

#include <cmath>
#include <vector>

#include "sim/trace.hpp"
#include "traces/dataset.hpp"

namespace ca5g::test {

/// Trace where cc0 carries a sinusoid and cc1 toggles with a square
/// wave (a caricature of SCell add/remove); all PHY features are filled
/// consistently so feature-based models can exploit them.
inline sim::Trace synthetic_trace(std::size_t samples = 400, double phase = 0.0) {
  sim::Trace trace;
  trace.op = ran::OperatorId::kOpZ;
  trace.mobility = "synthetic";
  trace.step_s = 0.01;
  trace.cc_slots = 4;
  for (std::size_t i = 0; i < samples; ++i) {
    sim::TraceSample s;
    s.time_s = static_cast<double>(i) * trace.step_s;
    s.ccs.assign(4, sim::CcSample{});

    const double t = static_cast<double>(i) + phase;
    sim::CcSample& cc0 = s.ccs[0];
    cc0.active = true;
    cc0.is_pcell = true;
    cc0.band = phy::BandId::kN41;
    cc0.bandwidth_mhz = 100;
    cc0.rsrp_dbm = -85.0 + 10.0 * std::sin(t / 40.0);
    cc0.rsrq_db = -10.0;
    cc0.sinr_db = 20.0 + 8.0 * std::sin(t / 40.0);
    cc0.cqi = 12;
    cc0.rb = 200;
    cc0.layers = 4;
    cc0.mcs = 22;
    cc0.tput_mbps = 500.0 + 280.0 * std::sin(t / 40.0);

    const bool cc1_on = (static_cast<std::size_t>(t / 60.0) % 2) == 0;
    if (cc1_on) {
      sim::CcSample& cc1 = s.ccs[1];
      cc1.active = true;
      cc1.band = phy::BandId::kN25;
      cc1.bandwidth_mhz = 20;
      cc1.rsrp_dbm = -95.0;
      cc1.rsrq_db = -12.0;
      cc1.sinr_db = 12.0;
      cc1.cqi = 9;
      cc1.rb = 95;
      cc1.layers = 1;
      cc1.mcs = 16;
      cc1.tput_mbps = 150.0;
      // Mark the toggle step as an RRC event.
      const bool prev_on = (static_cast<std::size_t>((t - 1.0) / 60.0) % 2) == 0;
      if (!prev_on && i > 0)
        s.events.push_back({s.time_s, ran::RrcEventType::kSCellAdd, 1});
    }
    s.aggregate_tput_mbps = 0.0;
    for (const auto& cc : s.ccs) s.aggregate_tput_mbps += cc.tput_mbps;
    trace.samples.push_back(std::move(s));
  }
  return trace;
}

inline traces::Dataset synthetic_dataset(std::size_t traces_count = 2,
                                         std::size_t samples = 400) {
  std::vector<sim::Trace> list;
  for (std::size_t i = 0; i < traces_count; ++i)
    list.push_back(synthetic_trace(samples, 17.0 * static_cast<double>(i)));
  traces::DatasetSpec spec;
  spec.stride = 3;
  return traces::Dataset::from_traces(list, spec);
}

}  // namespace ca5g::test
