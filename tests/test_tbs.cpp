// Unit + property tests for TS 38.214 TBS determination (paper Eq. 1 /
// Fig. 9).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "phy/band.hpp"
#include "phy/mcs.hpp"
#include "phy/tbs.hpp"

namespace {

using namespace ca5g::phy;

TbsParams base_params() {
  TbsParams p;
  p.prb_count = 10;
  p.symbols = 14;
  p.dmrs_re_per_prb = 12;
  p.mcs_index = 10;
  p.mimo_layers = 2;
  return p;
}

TEST(Tbs, ResourceElementsCapAt156) {
  TbsParams p = base_params();
  p.dmrs_re_per_prb = 0;  // 12*14 = 168 raw, must cap at 156
  EXPECT_EQ(resource_elements_per_prb(p), 156);
  p.dmrs_re_per_prb = 12;  // 168-12 = 156 exactly
  EXPECT_EQ(resource_elements_per_prb(p), 156);
  p.dmrs_re_per_prb = 24;
  EXPECT_EQ(resource_elements_per_prb(p), 144);
}

TEST(Tbs, ZeroAllocationYieldsZero) {
  TbsParams p = base_params();
  p.prb_count = 0;
  EXPECT_EQ(transport_block_size(p), 0);
}

TEST(Tbs, SmallTbsQuantizesToTableEntry) {
  TbsParams p = base_params();
  p.prb_count = 1;
  p.mcs_index = 0;  // QPSK, low rate → tiny N_info
  p.mimo_layers = 1;
  const auto tbs = transport_block_size(p);
  EXPECT_GE(tbs, 24);
  EXPECT_LE(tbs, 3824);
  EXPECT_EQ(tbs % 8, 0);
}

TEST(Tbs, LargeTbsIsByteAlignedMinus24) {
  TbsParams p = base_params();
  p.prb_count = 273;  // 100 MHz @ 30 kHz
  p.mcs_index = 27;
  p.mimo_layers = 4;
  const auto tbs = transport_block_size(p);
  EXPECT_GT(tbs, 3824);
  // Large TBS formula yields 8·C·ceil(...) − 24.
  EXPECT_EQ((tbs + 24) % 8, 0);
  // Sanity: quantization stays near N_info.
  EXPECT_NEAR(static_cast<double>(tbs), n_info(p), 0.03 * n_info(p));
}

TEST(Tbs, InvalidParamsThrow) {
  TbsParams p = base_params();
  p.symbols = 0;
  EXPECT_THROW((void)transport_block_size(p), ca5g::common::CheckError);
  p = base_params();
  p.mimo_layers = 9;
  EXPECT_THROW((void)transport_block_size(p), ca5g::common::CheckError);
  p = base_params();
  p.prb_count = -1;
  EXPECT_THROW((void)transport_block_size(p), ca5g::common::CheckError);
}

TEST(Tbs, ThroughputScalesWithNumerologyAndDuplex) {
  TbsParams p = base_params();
  const double fdd15 = slot_throughput_bps(p, 15, Duplex::kFdd);
  const double fdd30 = slot_throughput_bps(p, 30, Duplex::kFdd);
  const double tdd30 = slot_throughput_bps(p, 30, Duplex::kTdd);
  EXPECT_NEAR(fdd30, 2.0 * fdd15, 1e-6);  // twice the slots per second
  EXPECT_LT(tdd30, fdd30);                 // TDD pays the duty cycle
  EXPECT_NEAR(tdd30 / fdd30, downlink_duty(Duplex::kTdd), 1e-9);
}

TEST(Tbs, Fig9Shape_TbsGrowsWithSymbolsAndMcs) {
  // Fig. 9 of the paper: TBS grows with both symbol allocation and MCS.
  TbsParams p = base_params();
  p.prb_count = 100;
  std::int64_t prev = 0;
  for (int symbols = 2; symbols <= 14; symbols += 2) {
    p.symbols = symbols;
    const auto tbs = transport_block_size(p);
    EXPECT_GE(tbs, prev);
    prev = tbs;
  }
}

// Property: TBS is monotone in each of MCS, PRBs, layers.
class TbsMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(TbsMonotonicity, MonotoneInMcs) {
  TbsParams p = base_params();
  p.prb_count = 20 + GetParam() * 25;
  std::int64_t prev = -1;
  for (int mcs = 0; mcs <= kMaxMcsIndex; ++mcs) {
    p.mcs_index = mcs;
    const auto tbs = transport_block_size(p);
    EXPECT_GE(tbs, prev);
    prev = tbs;
  }
}

TEST_P(TbsMonotonicity, MonotoneInPrbs) {
  TbsParams p = base_params();
  p.mcs_index = 5 + GetParam() * 2;
  std::int64_t prev = -1;
  for (int prb = 1; prb <= 273; prb += 17) {
    p.prb_count = prb;
    const auto tbs = transport_block_size(p);
    EXPECT_GE(tbs, prev);
    prev = tbs;
  }
}

TEST_P(TbsMonotonicity, MonotoneInLayers) {
  TbsParams p = base_params();
  p.prb_count = 50 + GetParam() * 20;
  std::int64_t prev = -1;
  for (int layers = 1; layers <= 8; ++layers) {
    p.mimo_layers = layers;
    const auto tbs = transport_block_size(p);
    EXPECT_GT(tbs, prev);
    prev = tbs;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TbsMonotonicity, ::testing::Range(0, 6));

}  // namespace
