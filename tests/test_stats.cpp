// Unit + property tests for descriptive statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace ca5g::common;

TEST(Stats, MeanBasics) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, StddevKnownValues) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 0.001);  // sample std (n-1)
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MinMax) {
  std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW((void)percentile(std::vector<double>{}, 50), CheckError);
  std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1), CheckError);
  EXPECT_THROW((void)percentile(xs, 101), CheckError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, c), 0.0);
}

TEST(Stats, PearsonSizeMismatchThrows) {
  std::vector<double> a{1, 2};
  std::vector<double> b{1, 2, 3};
  EXPECT_THROW((void)pearson(a, b), CheckError);
}

TEST(Stats, RmseAndMae) {
  std::vector<double> pred{1.0, 2.0, 3.0};
  std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(pred, truth), 0.0);
  std::vector<double> off{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(off, truth), 1.0);
  EXPECT_DOUBLE_EQ(mae(off, truth), 1.0);
}

TEST(Stats, HistogramCountsAndClamping) {
  std::vector<double> xs{0.5, 1.5, 2.5, -10.0, 99.0};
  const auto h = histogram(xs, 0.0, 3.0, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[0], 2u);  // 0.5 and clamped -10
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[2], 2u);  // 2.5 and clamped 99
}

TEST(Stats, CountModesUnimodal) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  EXPECT_EQ(count_modes(xs, 30), 1u);
}

TEST(Stats, CountModesBimodal) {
  // Two well-separated normal clusters — the CA signature in Fig. 2.
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(12.0, 1.0));
  EXPECT_EQ(count_modes(xs, 40), 2u);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 9.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

// Property sweep: percentile is monotone in p and bounded by min/max.
class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const int n = 50 + GetParam() * 13;
  for (int i = 0; i < n; ++i) xs.push_back(rng.normal(5.0, 20.0));
  double prev = percentile(xs, 0.0);
  EXPECT_DOUBLE_EQ(prev, min_value(xs));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, max_value(xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Range(1, 9));

// Property sweep: RMSE ≥ MAE always (Cauchy–Schwarz).
class ErrorMetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(ErrorMetricProperty, RmseAtLeastMae) {
  Rng rng(static_cast<std::uint64_t>(GetParam() + 100));
  std::vector<double> pred, truth;
  for (int i = 0; i < 200; ++i) {
    pred.push_back(rng.normal(0.0, 3.0));
    truth.push_back(rng.normal(0.0, 3.0));
  }
  EXPECT_GE(rmse(pred, truth) + 1e-12, mae(pred, truth));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorMetricProperty, ::testing::Range(1, 9));

}  // namespace
