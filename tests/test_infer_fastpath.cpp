// The compiled inference fast path must be invisible: every DeepPredictor
// plan has to reproduce the autograd forward bit-for-bit (operator== on
// the predicted doubles, no tolerance), allocate nothing on the heap in
// steady state, build zero autograd Nodes, and stay race-free when many
// threads run a shared model. The autograd graph is the reference oracle
// throughout — these tests diff the two paths directly.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/prism5g.hpp"
#include "nn/infer.hpp"
#include "nn/layers.hpp"
#include "nn/tensor.hpp"
#include "predictors/deep.hpp"
#include "predictors/predictor.hpp"
#include "test_helpers.hpp"

namespace {

using namespace ca5g;
using namespace ca5g::predictors;
namespace infer = ca5g::nn::infer;

// Small enough to fit in a unit test, big enough to cover layer
// stacking (layers = 2) and predict_many chunking (batch_size = 8 with
// a larger test set).
TrainConfig fast_config(std::size_t layers = 2) {
  TrainConfig config;
  config.epochs = 2;
  config.hidden = 8;
  config.layers = layers;
  config.batch_size = 8;
  config.patience = 2;
  return config;
}

/// Random row-major values with a sprinkling of exact zeros, so the
/// matmul kernels' `x == 0 → skip` rule is actually exercised.
std::vector<float> random_values(common::Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = (i % 7 == 3) ? 0.0f : static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

/// Predictions from both paths on the same fitted model must agree
/// exactly — predict() per window and the chunked predict_many().
void expect_fast_matches_graph(DeepPredictor& model,
                               const traces::Dataset::Split& split) {
  ASSERT_TRUE(model.fast_path_active()) << model.name() << " compiled no plan";
  ASSERT_FALSE(split.test.empty());

  std::vector<std::vector<double>> fast_single;
  for (const auto* w : split.test) fast_single.push_back(model.predict(*w));
  const auto fast_many = model.predict_many(split.test);

  model.set_fast_path(false);
  ASSERT_FALSE(model.fast_path_active());
  std::vector<std::vector<double>> graph_single;
  for (const auto* w : split.test) graph_single.push_back(model.predict(*w));
  const auto graph_many = model.predict_many(split.test);
  model.set_fast_path(true);

  ASSERT_EQ(fast_many.size(), split.test.size());
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(fast_single[i], graph_single[i])
        << model.name() << " predict() diverged on window " << i;
    EXPECT_EQ(fast_many[i], graph_many[i])
        << model.name() << " predict_many() diverged on window " << i;
  }
}

// --- Arena -------------------------------------------------------------------

TEST(InferArena, ReusesBlocksAcrossResets) {
  infer::Arena arena;
  EXPECT_EQ(arena.capacity_bytes(), 0u);

  float* a = arena.alloc(100);
  float* b = arena.alloc(200);
  EXPECT_NE(a, b);
  const std::size_t cap = arena.capacity_bytes();
  EXPECT_GE(cap, 300u * sizeof(float));
  EXPECT_GE(arena.high_water_bytes(), 300u * sizeof(float));

  // Identical allocation sequences after reset() land on the same
  // addresses without growing the arena — the zero-steady-state-heap
  // property every plan run relies on.
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    EXPECT_EQ(arena.alloc(100), a);
    EXPECT_EQ(arena.alloc(200), b);
    EXPECT_EQ(arena.capacity_bytes(), cap);
  }
}

TEST(InferArena, GrowsGeometricallyForOversizedRequests) {
  infer::Arena arena;
  // Larger than the minimum block: must still come back usable.
  float* big = arena.alloc(1u << 16);
  big[0] = 1.0f;
  big[(1u << 16) - 1] = 2.0f;
  EXPECT_GE(arena.capacity_bytes(), (1u << 16) * sizeof(float));

  // A small follow-up allocation must not disturb the big buffer.
  float* small = arena.alloc(8);
  small[0] = 3.0f;
  EXPECT_EQ(big[0], 1.0f);
  EXPECT_EQ(big[(1u << 16) - 1], 2.0f);
}

// --- Kernel bit-identity against the autograd ops ----------------------------

TEST(InferKernels, MatmulXwMatchesGraphMatmulPlusBias) {
  common::Rng rng(7);
  // Odd row count exercises both the fused four-row block and the
  // single-row remainder; the zeros in random_values() hit the guarded
  // per-row fallback inside the block.
  const std::size_t rows = 7, in = 13, out = 9;
  const auto xv = random_values(rng, rows * in);
  const auto wv = random_values(rng, in * out);
  const auto bv = random_values(rng, out);

  const auto x = nn::Tensor::from(xv, rows, in);
  const auto w = nn::Tensor::from(wv, in, out);
  const auto bias = nn::Tensor::from(bv, 1, out);
  const auto ref = nn::matmul(x, w) + bias;

  std::vector<float> y(rows * out);
  infer::matmul_xw(xv.data(), wv.data(), bv.data(), y.data(), rows, in, out);
  EXPECT_EQ(y, ref.values());

  // Without bias the kernel must match the bare matmul.
  const auto ref_nobias = nn::matmul(x, w);
  infer::matmul_xw(xv.data(), wv.data(), nullptr, y.data(), rows, in, out);
  EXPECT_EQ(y, ref_nobias.values());
}

TEST(InferKernels, NaiveMatmulMatchesGraphKernel) {
  common::Rng rng(8);
  const std::size_t m = 4, k = 11, n = 6;
  const auto av = random_values(rng, m * k);
  const auto bv = random_values(rng, k * n);
  const auto ref =
      nn::matmul(nn::Tensor::from(av, m, k), nn::Tensor::from(bv, k, n));

  std::vector<float> c(m * n, 0.0f);
  infer::matmul_ab_naive(av.data(), bv.data(), c.data(), m, k, n);
  EXPECT_EQ(c, ref.values());
}

TEST(InferKernels, ActivationsMatchGraphOps) {
  common::Rng rng(9);
  const std::size_t rows = 3, cols = 17;
  const auto xv = random_values(rng, rows * cols);
  const auto x = nn::Tensor::from(xv, rows, cols);

  auto buf = xv;
  infer::tanh_inplace(buf.data(), buf.size());
  EXPECT_EQ(buf, nn::tanh_op(x).values());

  buf = xv;
  infer::sigmoid_inplace(buf.data(), buf.size());
  EXPECT_EQ(buf, nn::sigmoid(x).values());

  buf = xv;
  infer::relu_inplace(buf.data(), buf.size());
  EXPECT_EQ(buf, nn::relu(x).values());
}

TEST(InferKernels, ShapeOpsMatchGraphOps) {
  common::Rng rng(10);
  const std::size_t rows = 4, cols = 12;
  const auto av = random_values(rng, rows * cols);
  const auto bv = random_values(rng, rows * cols);
  const auto colv = random_values(rng, rows);
  const auto a = nn::Tensor::from(av, rows, cols);
  const auto b = nn::Tensor::from(bv, rows, cols);
  const auto col = nn::Tensor::from(colv, rows, 1);

  std::vector<float> y(rows * cols);
  infer::softmax_rows(av.data(), y.data(), rows, cols);
  EXPECT_EQ(y, nn::softmax_rows(a).values());

  std::vector<float> dot(rows);
  infer::rowwise_dot(av.data(), bv.data(), dot.data(), rows, cols);
  EXPECT_EQ(dot, nn::rowwise_dot(a, b).values());

  infer::mul_col_broadcast(av.data(), colv.data(), y.data(), rows, cols);
  EXPECT_EQ(y, nn::mul_col_broadcast(a, col).values());

  const std::size_t start = 3, len = 5;
  std::vector<float> sl(rows * len);
  infer::slice_cols(av.data(), rows, cols, start, len, sl.data());
  EXPECT_EQ(sl, nn::slice_cols(a, start, len).values());

  const float* parts[] = {av.data(), bv.data()};
  const std::size_t widths[] = {cols, cols};
  std::vector<float> cat(rows * 2 * cols);
  infer::concat_cols(parts, widths, 2, rows, cat.data());
  const nn::Tensor part_tensors[] = {a, b};
  EXPECT_EQ(cat, nn::concat_cols(part_tensors).values());
}

// --- Plan vs graph: every DeepPredictor subclass -----------------------------

TEST(InferFastPath, LstmPlanMatchesGraph) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(21);
  const auto split = ds.random_split(0.5, 0.2, rng);
  LstmPredictor model(fast_config(2));
  model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(model, split);
}

TEST(InferFastPath, TcnPlanMatchesGraph) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(22);
  const auto split = ds.random_split(0.5, 0.2, rng);
  TcnPredictor model(fast_config(2));
  model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(model, split);
}

TEST(InferFastPath, Lumos5gPlanMatchesGraph) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(23);
  const auto split = ds.random_split(0.5, 0.2, rng);
  Lumos5gPredictor model(fast_config(1));
  model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(model, split);
}

TEST(InferFastPath, Prism5gPlanMatchesGraph) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(24);
  const auto split = ds.random_split(0.5, 0.2, rng);
  core::Prism5G model(fast_config(1));
  model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(model, split);
}

TEST(InferFastPath, Prism5gAblationsMatchGraph) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(25);
  const auto split = ds.random_split(0.5, 0.2, rng);

  core::Prism5gConfig nostate;
  nostate.use_state = false;
  core::Prism5G no_state_model(fast_config(1), nostate);
  no_state_model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(no_state_model, split);

  core::Prism5gConfig nofusion;
  nofusion.use_fusion = false;
  core::Prism5G no_fusion_model(fast_config(1), nofusion);
  no_fusion_model.fit(ds, split.train, split.val);
  expect_fast_matches_graph(no_fusion_model, split);
}

TEST(InferFastPath, TransformerPrism5gKeepsGraphPath) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(26);
  const auto split = ds.random_split(0.5, 0.2, rng);

  core::Prism5gConfig config;
  config.encoder = core::EncoderKind::kTransformer;
  TrainConfig train = fast_config(1);
  train.epochs = 1;
  core::Prism5G model(train, config);
  model.fit(ds, split.train, split.val);

  // No plan for the transformer variant — but prediction still works
  // through the autograd fallback.
  EXPECT_FALSE(model.fast_path_active());
  const auto pred = model.predict(*split.test.front());
  EXPECT_EQ(pred.size(), split.test.front()->target.size());
}

// --- Plans survive save()/load() ---------------------------------------------

TEST(InferFastPath, LoadedModelRecompilesPlan) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(27);
  const auto split = ds.random_split(0.5, 0.2, rng);
  LstmPredictor trained(fast_config(2));
  trained.fit(ds, split.train, split.val);

  const auto path =
      (std::filesystem::temp_directory_path() / "ca5g_infer_fastpath.bin").string();
  trained.save(path);
  LstmPredictor restored(fast_config(2));
  restored.load(ds, path);
  std::filesystem::remove(path);

  // load() must recompile the plan from the restored weights...
  ASSERT_TRUE(restored.fast_path_active());
  // ...and the restored plan must match both the trained model and its
  // own graph path exactly.
  for (const auto* w : split.test)
    EXPECT_EQ(restored.predict(*w), trained.predict(*w));
  expect_fast_matches_graph(restored, split);
}

// --- Zero steady-state allocations -------------------------------------------

TEST(InferFastPath, ArenaStopsGrowingAfterFirstRun) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(28);
  const auto split = ds.random_split(0.5, 0.2, rng);
  LstmPredictor model(fast_config(2));
  model.fit(ds, split.train, split.val);
  ASSERT_TRUE(model.fast_path_active());

  // First pass sizes this thread's arena; afterwards the identical
  // allocation sequence must never grow it again.
  (void)model.predict_many(split.test);
  const std::size_t cap = infer::thread_arena().capacity_bytes();
  EXPECT_GT(cap, 0u);
  for (int round = 0; round < 5; ++round) {
    (void)model.predict_many(split.test);
    for (const auto* w : split.test) (void)model.predict(*w);
    EXPECT_EQ(infer::thread_arena().capacity_bytes(), cap)
        << "arena grew on steady-state round " << round;
  }
}

TEST(InferFastPath, PlanBuildsNoAutogradNodes) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(29);
  const auto split = ds.random_split(0.5, 0.2, rng);
  core::Prism5G model(fast_config(1));
  model.fit(ds, split.train, split.val);
  ASSERT_TRUE(model.fast_path_active());

  // The compiled path must never touch the autograd heap: zero Node
  // constructions across single and batched inference, and across the
  // eval entry point (evaluate_rmse drives predict_many).
  const std::uint64_t before = nn::debug_node_allocations();
  (void)model.predict_many(split.test);
  for (const auto* w : split.test) (void)model.predict(*w);
  (void)predictors::evaluate_rmse(model, split.test);
  EXPECT_EQ(nn::debug_node_allocations(), before);

  // Sanity-check the hook itself: the graph path does allocate Nodes.
  model.set_fast_path(false);
  (void)model.predict(*split.test.front());
  EXPECT_GT(nn::debug_node_allocations(), before);
  model.set_fast_path(true);
}

// --- Concurrency: shared plan, per-thread arenas -----------------------------

TEST(InferFastPath, ConcurrentPlanRunsAreBitIdentical) {
  const auto ds = test::synthetic_dataset(2, 200);
  common::Rng rng(30);
  const auto split = ds.random_split(0.5, 0.2, rng);
  LstmPredictor model(fast_config(2));
  model.fit(ds, split.train, split.val);
  ASSERT_TRUE(model.fast_path_active());

  std::vector<std::vector<double>> reference;
  for (const auto* w : split.test) reference.push_back(model.predict(*w));

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 8;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < split.test.size(); ++i) {
          const std::size_t j =
              (i + t * split.test.size() / kThreads) % split.test.size();
          if (model.predict(*split.test[j]) != reference[j]) {
            failures[t] = "thread " + std::to_string(t) +
                          " diverged on window " + std::to_string(j);
            return;
          }
        }
        const auto many = model.predict_many(split.test);
        for (std::size_t j = 0; j < many.size(); ++j) {
          if (many[j] != reference[j]) {
            failures[t] = "thread " + std::to_string(t) +
                          " predict_many diverged on window " + std::to_string(j);
            return;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
}

}  // namespace
