// Unit tests for the CA manager (RRC state machine): PCell selection,
// SCell add/remove with TTT, handover hysteresis, capability caps, and
// the low-band-PCell preference.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "ran/ca_manager.hpp"

namespace {

using namespace ca5g::ran;
using ca5g::phy::BandId;
using ca5g::ue::ModemModel;
using ca5g::ue::ue_capability;

/// Hand-built deployment: one site with 4 NR carriers (n41×2, n25, n71)
/// plus a second site with a single n41.
Deployment tiny_deployment() {
  Deployment dep;
  dep.op = OperatorId::kOpZ;
  dep.sites.push_back({{0, 0}, {}});
  dep.sites.push_back({{1000, 0}, {}});
  auto add = [&](std::size_t site, BandId band, int bw, int scs, int chan) {
    Carrier c;
    c.id = static_cast<CarrierId>(dep.carriers.size());
    c.band = band;
    c.bandwidth_mhz = bw;
    c.scs_khz = scs;
    c.pci = 100 + static_cast<int>(c.id);
    c.channel_index = chan;
    c.site = site;
    dep.sites[site].carriers.push_back(c.id);
    dep.carriers.push_back(c);
    return c.id;
  };
  add(0, BandId::kN41, 100, 30, 0);  // id 0
  add(0, BandId::kN41, 40, 30, 1);   // id 1
  add(0, BandId::kN25, 20, 15, 0);   // id 2
  add(0, BandId::kN71, 20, 15, 0);   // id 3
  add(1, BandId::kN41, 100, 30, 2);  // id 4
  return dep;
}

CaPolicy fast_policy() {
  CaPolicy policy;
  policy.time_to_trigger_s = 0.2;
  return policy;
}

std::vector<double> rsrp(std::initializer_list<double> values) {
  return std::vector<double>(values);
}

TEST(CaManager, InitialAttachPicksStrongest) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  const auto events = ca.update(rsrp({-80, -85, -90, -95, -120}), 0.0);
  ASSERT_EQ(ca.pcell(), CarrierId{0});
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, RrcEventType::kPCellChange);
}

TEST(CaManager, ScellAddRequiresTimeToTrigger) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  auto meas = rsrp({-80, -85, -90, -95, -130});
  (void)ca.update(meas, 0.0);
  EXPECT_EQ(ca.cc_count(), 1u);  // pending, not yet added
  (void)ca.update(meas, 0.1);
  EXPECT_EQ(ca.cc_count(), 1u);
  const auto events = ca.update(meas, 0.3);  // TTT (0.2 s) elapsed
  EXPECT_EQ(ca.cc_count(), 4u);
  std::size_t adds = 0;
  for (const auto& e : events)
    if (e.type == RrcEventType::kSCellAdd) ++adds;
  EXPECT_EQ(adds, 3u);
}

TEST(CaManager, CapabilityCapsCcCount) {
  const auto dep = tiny_deployment();
  // X60 supports only 2 NR FR1 CCs.
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX60), fast_policy());
  auto meas = rsrp({-80, -85, -90, -95, -130});
  for (double t = 0.0; t < 2.0; t += 0.1) (void)ca.update(meas, t);
  EXPECT_EQ(ca.cc_count(), 2u);
}

TEST(CaManager, NoSaCaMeansSingleCc) {
  const auto dep = tiny_deployment();
  // X50 (Galaxy S10) has no SA-CA support (paper Fig. 29).
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX50), fast_policy());
  auto meas = rsrp({-80, -85, -90, -95, -130});
  for (double t = 0.0; t < 2.0; t += 0.1) (void)ca.update(meas, t);
  EXPECT_EQ(ca.cc_count(), 1u);
}

TEST(CaManager, ScellRemovedAfterFade) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  auto strong = rsrp({-80, -85, -90, -95, -130});
  for (double t = 0.0; t < 1.0; t += 0.1) (void)ca.update(strong, t);
  ASSERT_EQ(ca.cc_count(), 4u);
  // The 40 MHz n41 SCell (id 1) fades below the removal threshold.
  auto faded = rsrp({-80, -110, -90, -95, -130});
  (void)ca.update(faded, 1.0);
  EXPECT_EQ(ca.cc_count(), 4u);  // TTT pending
  const auto events = ca.update(faded, 1.3);
  EXPECT_EQ(ca.cc_count(), 3u);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, RrcEventType::kSCellRemove);
  EXPECT_EQ(events.front().carrier, CarrierId{1});
}

TEST(CaManager, HandoverNeedsHysteresisAndTtt) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  (void)ca.update(rsrp({-80, -130, -130, -130, -90}), 0.0);
  ASSERT_EQ(ca.pcell(), CarrierId{0});
  // Candidate only 1 dB better: below hysteresis → no handover ever.
  auto slightly_better = rsrp({-80, -130, -130, -130, -79});
  for (double t = 0.1; t < 2.0; t += 0.1) (void)ca.update(slightly_better, t);
  EXPECT_EQ(ca.pcell(), CarrierId{0});
  // 6 dB better: handover after TTT.
  auto much_better = rsrp({-80, -130, -130, -130, -74});
  (void)ca.update(much_better, 2.0);
  EXPECT_EQ(ca.pcell(), CarrierId{0});
  (void)ca.update(much_better, 2.3);
  EXPECT_EQ(ca.pcell(), CarrierId{4});
}

TEST(CaManager, HandoverDropsScells) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  auto strong = rsrp({-80, -85, -90, -95, -130});
  for (double t = 0.0; t < 1.0; t += 0.1) (void)ca.update(strong, t);
  ASSERT_EQ(ca.cc_count(), 4u);
  auto neighbor_strong = rsrp({-100, -105, -110, -112, -70});
  std::vector<RrcEvent> all_events;
  for (double t = 1.0; t < 2.0; t += 0.1) {
    auto e = ca.update(neighbor_strong, t);
    all_events.insert(all_events.end(), e.begin(), e.end());
  }
  EXPECT_EQ(ca.pcell(), CarrierId{4});
  std::size_t removals = 0;
  for (const auto& e : all_events)
    if (e.type == RrcEventType::kSCellRemove) ++removals;
  EXPECT_EQ(removals, 3u);
}

TEST(CaManager, CoSitedConstraintBlocksRemoteScells) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  // Strong PCell at site 0; remote n41 (site 1) also strong — but not
  // co-sited, so never aggregated.
  auto meas = rsrp({-80, -120, -120, -120, -82});
  for (double t = 0.0; t < 2.0; t += 0.1) (void)ca.update(meas, t);
  EXPECT_EQ(ca.cc_count(), 1u);
}

TEST(CaManager, LowBandPreferenceSelectsN71Pcell) {
  const auto dep = tiny_deployment();
  CaPolicy policy = fast_policy();
  policy.prefer_lowband_pcell = true;
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), policy);
  // Indoor-like condition: the mid-band carriers fall below the
  // capacity-layer floor; the weaker-but-viable n71 (id 3) anchors.
  (void)ca.update(rsrp({-103, -130, -130, -95, -130}), 0.0);
  EXPECT_EQ(ca.pcell(), CarrierId{3});
}

TEST(CaManager, CapacityLayerPriorityBeatsStrongerLowBand) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  // n71 is 15 dB stronger, but the viable n41 capacity layer anchors.
  (void)ca.update(rsrp({-95, -130, -130, -80, -130}), 0.0);
  EXPECT_EQ(ca.pcell(), CarrierId{0});
}

TEST(CaManager, WiderCarrierPreferredAsPcell) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  // The 40 MHz n41 (id 1) is 2 dB stronger, but the 100 MHz n41 (id 0)
  // wins PCell thanks to the bandwidth bonus.
  (void)ca.update(rsrp({-84, -82, -130, -130, -130}), 0.0);
  EXPECT_EQ(ca.pcell(), CarrierId{0});
}

TEST(CaManager, OutOfCoverageClearsEverything) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  auto strong = rsrp({-80, -85, -90, -95, -130});
  for (double t = 0.0; t < 1.0; t += 0.1) (void)ca.update(strong, t);
  ASSERT_EQ(ca.cc_count(), 4u);
  const auto events = ca.update(rsrp({-130, -130, -130, -130, -130}), 1.0);
  EXPECT_EQ(ca.cc_count(), 0u);
  bool saw_rat_change = false;
  for (const auto& e : events)
    if (e.type == RrcEventType::kRatChange) saw_rat_change = true;
  EXPECT_TRUE(saw_rat_change);
}

TEST(CaManager, MeasurementSizeMismatchThrows) {
  const auto dep = tiny_deployment();
  CaManager ca(dep, ca5g::phy::Rat::kNr, ue_capability(ModemModel::kX70), fast_policy());
  EXPECT_THROW((void)ca.update(rsrp({-80.0, -90.0}), 0.0), ca5g::common::CheckError);
}

TEST(CaManager, EventNames) {
  EXPECT_EQ(rrc_event_name(RrcEventType::kSCellAdd), "scell_add");
  EXPECT_EQ(rrc_event_name(RrcEventType::kPCellChange), "pcell_change");
}

}  // namespace
