// Unit + gradient tests for neural network layers.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/check.hpp"
#include "nn/layers.hpp"

namespace {

using namespace ca5g::nn;
using ca5g::common::Rng;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer(rng, 3, 2);
  const auto x = Tensor::zeros(4, 3);
  const auto y = layer.forward(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), 2u);
  // Zero input → bias only, and bias starts at zero.
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(y.at(r, c), 0.0f);
  EXPECT_THROW(layer.forward(Tensor::zeros(4, 5)), ca5g::common::CheckError);
}

TEST(Linear, ParameterCount) {
  Rng rng(2);
  Linear layer(rng, 3, 2);
  EXPECT_EQ(layer.parameter_count(), 3u * 2u + 2u);
}

TEST(Mlp, ForwardAndParams) {
  Rng rng(3);
  Mlp mlp(rng, {4, 8, 2});
  const auto y = mlp.forward(Tensor::zeros(5, 4));
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(mlp.parameters().size(), 4u);  // two layers × (W, b)
  EXPECT_THROW(Mlp(rng, {4}), ca5g::common::CheckError);
}

TEST(LstmCell, StateShapesAndGateSanity) {
  Rng rng(4);
  LstmCell cell(rng, 3, 5);
  auto state = cell.zero_state(2);
  EXPECT_EQ(state.h.rows(), 2u);
  EXPECT_EQ(state.h.cols(), 5u);
  const auto x = Tensor::constant(2, 3, 0.5f);
  const auto next = cell.step(x, state);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 5; ++c) {
      // h = o · tanh(c) is bounded in (-1, 1).
      EXPECT_GT(next.h.at(r, c), -1.0f);
      EXPECT_LT(next.h.at(r, c), 1.0f);
    }
}

TEST(LstmCell, ZeroInputZeroStateGivesNearZeroOutput) {
  Rng rng(5);
  LstmCell cell(rng, 2, 3);
  const auto next = cell.step(Tensor::zeros(1, 2), cell.zero_state(1));
  // g = tanh(0) = 0 → c = 0 → h = 0 (exactly, given zero bias on g).
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(next.h.at(0, c), 0.0f, 1e-6);
}

TEST(Lstm, SequenceProcessing) {
  Rng rng(6);
  Lstm lstm(rng, 3, 4, 2);
  std::vector<Tensor> seq;
  for (int t = 0; t < 5; ++t) seq.push_back(Tensor::constant(2, 3, 0.1f * t));
  const auto outputs = lstm.forward(seq);
  EXPECT_EQ(outputs.size(), 5u);
  EXPECT_EQ(outputs.back().cols(), 4u);
  const auto last = lstm.last_hidden(seq);
  EXPECT_FLOAT_EQ(last.at(0, 0), outputs.back().at(0, 0));
  EXPECT_EQ(lstm.hidden_size(), 4u);
  EXPECT_EQ(lstm.parameters().size(), 6u);  // 2 layers × 3 tensors
}

TEST(Lstm, StateDependsOnHistory) {
  Rng rng(7);
  Lstm lstm(rng, 2, 4, 1);
  std::vector<Tensor> seq_a{Tensor::constant(1, 2, 1.0f), Tensor::constant(1, 2, 0.0f)};
  std::vector<Tensor> seq_b{Tensor::constant(1, 2, -1.0f), Tensor::constant(1, 2, 0.0f)};
  const auto ha = lstm.last_hidden(seq_a);
  const auto hb = lstm.last_hidden(seq_b);
  double diff = 0.0;
  for (std::size_t c = 0; c < 4; ++c) diff += std::abs(ha.at(0, c) - hb.at(0, c));
  EXPECT_GT(diff, 1e-4);  // memory of the first step persists
}

TEST(Lstm, FinalStatesAndStepWithStates) {
  Rng rng(8);
  Lstm lstm(rng, 2, 4, 2);
  std::vector<Tensor> seq{Tensor::constant(3, 2, 0.3f), Tensor::constant(3, 2, -0.2f)};
  auto states = lstm.final_states(seq);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0].h.rows(), 3u);
  // Continuing from final states must equal processing the longer sequence.
  const auto x3 = Tensor::constant(3, 2, 0.7f);
  const auto continued = lstm.step_with_states(x3, states);
  std::vector<Tensor> full{seq[0], seq[1], x3};
  const auto direct = lstm.last_hidden(full);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_NEAR(continued.at(0, c), direct.at(0, c), 1e-6);
}

TEST(Embedding, LookupMatchesTableRows) {
  Rng rng(9);
  Embedding emb(rng, 6, 3);
  const std::vector<std::size_t> ids{2, 5, 2};
  const auto out = emb.forward(ids);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 3u);
  // Row 0 and row 2 use the same id → identical embeddings.
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(out.at(0, c), out.at(2, c));
  const std::vector<std::size_t> bad{7};
  EXPECT_THROW(emb.forward(bad), ca5g::common::CheckError);
}

TEST(CausalConv1d, CausalityHolds) {
  Rng rng(10);
  CausalConv1d conv(rng, 2, 3, 3, 1);
  std::vector<Tensor> seq;
  for (int t = 0; t < 6; ++t) seq.push_back(Tensor::constant(1, 2, 0.0f));
  const auto base = conv.forward(seq);
  // Perturb the last step: earlier outputs must not change.
  seq.back() = Tensor::constant(1, 2, 5.0f);
  const auto perturbed = conv.forward(seq);
  for (std::size_t t = 0; t + 1 < seq.size(); ++t)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_FLOAT_EQ(base[t].at(0, c), perturbed[t].at(0, c));
  // The final output must change.
  double diff = 0.0;
  for (std::size_t c = 0; c < 3; ++c)
    diff += std::abs(base[5].at(0, c) - perturbed[5].at(0, c));
  EXPECT_GT(diff, 1e-4);
}

TEST(CausalConv1d, DilationExtendsReach) {
  Rng rng(11);
  CausalConv1d conv(rng, 1, 1, 2, 3);  // taps at t and t−3
  std::vector<Tensor> seq;
  for (int t = 0; t < 8; ++t) seq.push_back(Tensor::constant(1, 1, 0.0f));
  const auto base = conv.forward(seq);
  seq[2] = Tensor::constant(1, 1, 1.0f);
  const auto perturbed = conv.forward(seq);
  // Influence lands at exactly t=2 and t=5.
  for (std::size_t t = 0; t < 8; ++t) {
    const double delta = std::abs(base[t].at(0, 0) - perturbed[t].at(0, 0));
    if (t == 2 || t == 5)
      EXPECT_GT(delta, 1e-5) << "t=" << t;
    else
      EXPECT_NEAR(delta, 0.0, 1e-7) << "t=" << t;
  }
}

TEST(Layers, GradientsFlowThroughLstm) {
  // End-to-end autograd sanity: loss gradient reaches every parameter.
  Rng rng(12);
  Lstm lstm(rng, 2, 3, 1);
  std::vector<Tensor> seq{Tensor::constant(2, 2, 0.4f), Tensor::constant(2, 2, -0.1f)};
  auto loss = mse_loss(lstm.last_hidden(seq), Tensor::constant(2, 3, 0.5f));
  loss.backward();
  for (auto& p : lstm.parameters()) {
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
  }
}

}  // namespace
