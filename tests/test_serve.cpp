// Tests for the serving subsystem: bounded queue semantics, streaming
// session windows (must match batch build_window feature-for-feature),
// the model registry's hot-swap, and the PredictionServer's edge cases —
// warm-up rejection, queue-full shedding, hot-swap mid-stream, and a
// batch deadline firing with a partial batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "predictors/naive.hpp"
#include "serve/bounded_queue.hpp"
#include "serve/loadgen.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "test_helpers.hpp"
#include "traces/dataset.hpp"

namespace {

using namespace ca5g;
using namespace std::chrono_literals;

// --- Test predictors ---------------------------------------------------------

/// Predicts a constant horizon; lets tests fingerprint which model served.
class ConstPredictor final : public predictors::Predictor {
 public:
  explicit ConstPredictor(double value, std::size_t horizon = 10)
      : value_(value), horizon_(horizon) {}
  [[nodiscard]] std::string name() const override { return "Const"; }
  void fit(const traces::Dataset&, std::span<const traces::Window* const>,
           std::span<const traces::Window* const>) override {}
  [[nodiscard]] std::vector<double> predict(const traces::Window&) const override {
    return std::vector<double>(horizon_, value_);
  }

 private:
  double value_;
  std::size_t horizon_;
};

/// Echoes the newest normalized aggregate throughput of the window: lets
/// tests assert end-to-end that the served window tracked the stream.
class EchoPredictor final : public predictors::Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "Echo"; }
  void fit(const traces::Dataset&, std::span<const traces::Window* const>,
           std::span<const traces::Window* const>) override {}
  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const override {
    return {w.agg_history.back()};
  }
};

/// Sleeps per batch so tests can wedge the queue and force shedding.
class SlowPredictor final : public predictors::Predictor {
 public:
  explicit SlowPredictor(std::chrono::milliseconds delay) : delay_(delay) {}
  [[nodiscard]] std::string name() const override { return "Slow"; }
  void fit(const traces::Dataset&, std::span<const traces::Window* const>,
           std::span<const traces::Window* const>) override {}
  [[nodiscard]] std::vector<double> predict(const traces::Window&) const override {
    std::this_thread::sleep_for(delay_);
    return {0.0};
  }
  [[nodiscard]] std::vector<std::vector<double>> predict_many(
      std::span<const traces::Window* const> windows) const override {
    std::this_thread::sleep_for(delay_);
    return std::vector<std::vector<double>>(windows.size(), std::vector<double>{0.0});
  }

 private:
  std::chrono::milliseconds delay_;
};

/// Thread-safe completion sink.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<serve::Prediction> preds;

  serve::PredictionServer::CompletionFn fn() {
    return [this](const serve::Prediction& p) {
      {
        std::lock_guard<std::mutex> lock(mu);
        preds.push_back(p);
      }
      cv.notify_all();
    };
  }

  /// Blocks until `n` completions arrived (or 5 s passed); returns count.
  std::size_t wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, 5s, [&] { return preds.size() >= n; });
    return preds.size();
  }

  std::vector<serve::Prediction> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return preds;
  }
};

serve::ServerConfig small_config() {
  serve::ServerConfig config;
  config.workers = 2;
  config.max_batch = 8;
  config.batch_deadline = std::chrono::microseconds(500);
  config.queue_capacity = 64;
  config.history = 10;
  config.cc_slots = 4;
  config.tput_scale_mbps = 1000.0;
  return config;
}

// --- BoundedQueue ------------------------------------------------------------

TEST(BoundedQueue, FifoAndCapacity) {
  serve::BoundedQueue<int> q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full: admission control sheds
  EXPECT_EQ(q.size(), 3u);

  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::microseconds(100)), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(BoundedQueue, CloseDrainsThenSignalsShutdown) {
  serve::BoundedQueue<int> q(8);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4, std::chrono::microseconds(100)), 1u);
  EXPECT_EQ(q.pop_batch(out, 4, std::chrono::microseconds(100)), 0u);  // drained
}

TEST(BoundedQueue, PopBatchHonorsDeadlineWithPartialBatch) {
  serve::BoundedQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  std::vector<int> out;
  const auto start = std::chrono::steady_clock::now();
  // Asks for 8, only 1 available: must return after ~deadline, not hang.
  EXPECT_EQ(q.pop_batch(out, 8, std::chrono::milliseconds(5)), 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);
}

// --- UeSession / SessionTable ------------------------------------------------

TEST(UeSession, StreamingWindowMatchesBatchBuildWindow) {
  const auto trace = test::synthetic_trace(40);
  const double scale = 900.0;
  traces::DatasetSpec spec;  // history 10, horizon 10

  serve::UeSession session(spec.history, trace.cc_slots, scale);
  for (std::size_t i = 0; i < 25; ++i) session.push(trace.samples[i]);
  ASSERT_TRUE(session.warm());

  traces::Window streamed;
  session.snapshot(streamed);
  // After 25 pushes the window covers samples [15, 25).
  const auto batch = traces::build_window(trace.samples, 15, spec, trace.cc_slots,
                                          scale, /*allow_short_target=*/true);
  EXPECT_EQ(streamed.cc_feat, batch.cc_feat);
  EXPECT_EQ(streamed.mask, batch.mask);
  EXPECT_EQ(streamed.global, batch.global);
  EXPECT_EQ(streamed.agg_history, batch.agg_history);
  EXPECT_TRUE(streamed.target.empty());
}

TEST(SessionTable, WarmupEraseAndCounts) {
  const auto trace = test::synthetic_trace(30);
  serve::SessionTable table(4, 10, trace.cc_slots, 900.0);
  for (std::size_t i = 0; i < 9; ++i) {
    const auto r = table.push(77, trace.samples[i]);
    EXPECT_FALSE(r.warm);
  }
  EXPECT_TRUE(table.push(77, trace.samples[9]).warm);
  EXPECT_EQ(table.session_count(), 1u);

  traces::Window w;
  EXPECT_TRUE(table.snapshot(77, w));
  EXPECT_FALSE(table.snapshot(78, w));  // unknown UE
  EXPECT_TRUE(table.erase(77));
  EXPECT_FALSE(table.erase(77));
  EXPECT_FALSE(table.snapshot(77, w));
  EXPECT_EQ(table.session_count(), 0u);
}

// --- ModelRegistry -----------------------------------------------------------

TEST(ModelRegistry, InstallSelectAndHotSwapVersions) {
  serve::ModelRegistry registry;
  EXPECT_EQ(registry.current().model, nullptr);

  const auto v1 = registry.install("a", std::make_shared<ConstPredictor>(0.1));
  const auto v2 = registry.install("b", std::make_shared<ConstPredictor>(0.2));
  EXPECT_LT(v1, v2);
  EXPECT_EQ(registry.current().name, "a");  // first install becomes current

  EXPECT_TRUE(registry.select("b"));
  EXPECT_EQ(registry.current().name, "b");
  EXPECT_EQ(registry.current().version, v2);
  EXPECT_FALSE(registry.select("nope"));

  // Replacing the selected entry hot-swaps what current() pins.
  const auto v3 = registry.install("b", std::make_shared<ConstPredictor>(0.3));
  EXPECT_GT(v3, v2);
  EXPECT_EQ(registry.current().version, v3);
  EXPECT_EQ(registry.names().size(), 2u);
}

// --- PredictionServer edge cases --------------------------------------------

TEST(PredictionServer, WarmupRejectionUntilWindowFull) {
  const auto trace = test::synthetic_trace(30);
  serve::ModelRegistry registry;
  registry.install("const", std::make_shared<ConstPredictor>(0.5));
  Collector sink;
  serve::PredictionServer server(small_config(), registry, sink.fn());

  for (std::size_t i = 0; i < 9; ++i)
    EXPECT_EQ(server.submit(1, trace.samples[i]), serve::Admit::kWarmingUp);
  EXPECT_EQ(server.submit(1, trace.samples[9]), serve::Admit::kQueued);
  server.drain();
  ASSERT_EQ(sink.wait_for(1), 1u);
  const auto preds = sink.snapshot();
  EXPECT_TRUE(preds[0].ok);
  EXPECT_EQ(preds[0].seq, 10u);
  EXPECT_EQ(preds[0].horizon, std::vector<double>(10, 0.5));
}

TEST(PredictionServer, ServedWindowTracksTheStream) {
  const auto trace = test::synthetic_trace(60);
  const double scale = 1200.0;
  serve::ModelRegistry registry;
  registry.install("echo", std::make_shared<EchoPredictor>());
  auto config = small_config();
  config.tput_scale_mbps = scale;
  Collector sink;
  serve::PredictionServer server(config, registry, sink.fn());

  // Windows are snapshotted at dispatch, so drain between submits to pin
  // each batch's view of the stream: the completion for sample i must
  // echo sample i's normalized throughput as the newest window entry.
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (server.submit(5, trace.samples[i]) != serve::Admit::kQueued) continue;
    ++admitted;
    server.drain();
    ASSERT_EQ(sink.wait_for(admitted), admitted);
    const auto p = sink.snapshot().back();
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.seq, i + 1);
    ASSERT_EQ(p.horizon.size(), 1u);
    EXPECT_DOUBLE_EQ(p.horizon[0], trace.samples[i].aggregate_tput_mbps / scale);
  }
  EXPECT_EQ(admitted, 31u);  // samples 10..40 of a warm session
}

TEST(PredictionServer, QueueFullSheds) {
  const auto trace = test::synthetic_trace(400);
  serve::ModelRegistry registry;
  registry.install("slow", std::make_shared<SlowPredictor>(20ms));
  auto config = small_config();
  config.workers = 1;
  config.max_batch = 1;
  config.queue_capacity = 2;
  config.batch_deadline = std::chrono::microseconds(100);
  Collector sink;
  serve::PredictionServer server(config, registry, sink.fn());

  std::size_t shed = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto admit = server.submit(9, trace.samples[i % trace.samples.size()]);
    if (admit == serve::Admit::kShed) ++shed;
  }
  EXPECT_GT(shed, 0u) << "a wedged 2-slot queue must shed a 200-request burst";
  server.drain();  // the admitted remainder still completes
}

TEST(PredictionServer, HotSwapMidStream) {
  const auto trace = test::synthetic_trace(200);
  serve::ModelRegistry registry;
  const auto v_old = registry.install("prod", std::make_shared<ConstPredictor>(0.25));
  Collector sink;
  serve::PredictionServer server(small_config(), registry, sink.fn());

  std::size_t admitted = 0;
  for (std::size_t i = 0; i < 50; ++i)
    if (server.submit(3, trace.samples[i]) == serve::Admit::kQueued) ++admitted;
  server.drain();

  // Swap under the same name while the server keeps streaming.
  const auto v_new = registry.install("prod", std::make_shared<ConstPredictor>(0.75));
  ASSERT_GT(v_new, v_old);
  for (std::size_t i = 50; i < 100; ++i)
    if (server.submit(3, trace.samples[i]) == serve::Admit::kQueued) ++admitted;
  server.drain();
  ASSERT_EQ(sink.wait_for(admitted), admitted);

  const auto preds = sink.snapshot();
  bool saw_old = false, saw_new = false;
  for (const auto& p : preds) {
    ASSERT_TRUE(p.ok);
    if (p.model_version == v_old) {
      saw_old = true;
      EXPECT_EQ(p.horizon[0], 0.25);
    } else {
      EXPECT_EQ(p.model_version, v_new);
      saw_new = true;
      EXPECT_EQ(p.horizon[0], 0.75);
    }
  }
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
  // Completions delivered after the swap must come from the new model.
  EXPECT_EQ(preds.back().model_version, v_new);
}

TEST(PredictionServer, BatchDeadlineFiresPartialBatch) {
  const auto trace = test::synthetic_trace(30);
  serve::ModelRegistry registry;
  registry.install("const", std::make_shared<ConstPredictor>(0.5));
  auto config = small_config();
  config.workers = 1;
  config.max_batch = 64;  // far more than the traffic we offer
  config.batch_deadline = std::chrono::milliseconds(2);
  Collector sink;
  serve::PredictionServer server(config, registry, sink.fn());

  // Warm three UEs, then offer exactly one request each and go silent:
  // only the deadline can dispatch this 3-request batch.
  for (std::size_t i = 0; i < 9; ++i)
    for (serve::UeId ue = 1; ue <= 3; ++ue) server.submit(ue, trace.samples[i]);
  for (serve::UeId ue = 1; ue <= 3; ++ue)
    EXPECT_EQ(server.submit(ue, trace.samples[9]), serve::Admit::kQueued);

  EXPECT_EQ(sink.wait_for(3), 3u);
  for (const auto& p : sink.snapshot()) EXPECT_TRUE(p.ok);
}

TEST(PredictionServer, SubmitAfterStopIsClosed) {
  const auto trace = test::synthetic_trace(15);
  serve::ModelRegistry registry;
  registry.install("const", std::make_shared<ConstPredictor>(0.5));
  Collector sink;
  serve::PredictionServer server(small_config(), registry, sink.fn());
  server.stop();
  EXPECT_EQ(server.submit(1, trace.samples[0]), serve::Admit::kClosed);
}

// --- LoadGen -----------------------------------------------------------------

TEST(LoadGen, ClosedLoopReplayCompletesWithoutErrors) {
  const auto trace = test::synthetic_trace(300);
  traces::DatasetSpec spec;
  const auto ds = traces::Dataset::from_traces({trace}, spec);

  serve::ModelRegistry registry;
  registry.install("hm", test::fitted_small_predictor(ds));

  serve::ServerConfig server_config = small_config();
  server_config.tput_scale_mbps = ds.tput_scale_mbps();

  serve::LoadGenConfig gen_config;
  gen_config.ues = 4;
  gen_config.speed = 1000.0;
  gen_config.closed_loop = true;
  gen_config.max_in_flight = 32;
  gen_config.duration_s = 0.0;  // one full deterministic pass
  gen_config.expected_horizon = ds.horizon();

  serve::LoadGen gen(gen_config);
  serve::PredictionServer server(server_config, registry, gen.completion());
  const auto report = gen.run(server, trace);

  EXPECT_EQ(report.offered, trace.samples.size() * gen_config.ues);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.warmup, 9u * gen_config.ues);
  EXPECT_EQ(report.completed + report.shed, report.offered - report.warmup);
  EXPECT_GT(report.completed, 0u);
  EXPECT_GT(report.p99_latency_ns, 0.0);
}

}  // namespace
