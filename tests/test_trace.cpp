// Unit tests for trace containers, resampling, and CSV round-tripping.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "sim/trace_io.hpp"

namespace {

using namespace ca5g;

sim::Trace make_trace() {
  sim::ScenarioConfig config;
  config.op = ran::OperatorId::kOpZ;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 10.0;
  config.step_s = 0.01;
  config.seed = 77;
  return sim::run_scenario(config);
}

TEST(Trace, SeriesAccessors) {
  const auto trace = make_trace();
  EXPECT_EQ(trace.aggregate_series().size(), trace.samples.size());
  EXPECT_EQ(trace.cc_series(0).size(), trace.samples.size());
  EXPECT_EQ(trace.cc_count_series().size(), trace.samples.size());
  EXPECT_THROW(trace.cc_series(99), common::CheckError);
}

TEST(Trace, ResampleAverages) {
  const auto trace = make_trace();
  const auto coarse = trace.resampled(0.1);
  EXPECT_EQ(coarse.samples.size(), trace.samples.size() / 10);
  EXPECT_DOUBLE_EQ(coarse.step_s, 0.1);

  // First coarse sample equals the mean of the first 10 fine samples.
  double expected = 0.0;
  for (std::size_t i = 0; i < 10; ++i) expected += trace.samples[i].aggregate_tput_mbps;
  expected /= 10.0;
  EXPECT_NEAR(coarse.samples.front().aggregate_tput_mbps, expected, 1e-9);
}

TEST(Trace, ResamplePreservesEvents) {
  const auto trace = make_trace();
  std::size_t fine_events = 0;
  for (const auto& s : trace.samples) fine_events += s.events.size();
  const auto coarse = trace.resampled(0.1);
  std::size_t coarse_events = 0;
  for (const auto& s : coarse.samples) coarse_events += s.events.size();
  // Events are unioned into windows; none may be lost (trailing partial
  // window excepted).
  EXPECT_GE(coarse_events + 2, fine_events);
}

TEST(Trace, ResampleMajorityActiveRule) {
  const auto trace = make_trace();
  const auto coarse = trace.resampled(0.05);
  for (const auto& s : coarse.samples)
    for (const auto& cc : s.ccs)
      if (!cc.active) {
        EXPECT_LE(cc.cqi, 15);  // inactive slots stay valid
      }
}

TEST(Trace, ResampleRejectsRefinement) {
  const auto trace = make_trace();
  EXPECT_THROW(trace.resampled(0.001), common::CheckError);
}

TEST(TraceIo, CsvRoundTripPreservesData) {
  const auto trace = make_trace();
  const auto doc = sim::trace_to_csv(trace);
  EXPECT_EQ(doc.rows.size(), trace.samples.size());
  const auto restored = sim::trace_from_csv(doc);
  ASSERT_EQ(restored.samples.size(), trace.samples.size());
  EXPECT_EQ(restored.op, trace.op);
  EXPECT_EQ(restored.mobility, trace.mobility);
  EXPECT_EQ(restored.cc_slots, trace.cc_slots);
  for (std::size_t i = 0; i < trace.samples.size(); i += 31) {
    const auto& a = trace.samples[i];
    const auto& b = restored.samples[i];
    EXPECT_NEAR(a.aggregate_tput_mbps, b.aggregate_tput_mbps, 1e-6);
    EXPECT_EQ(a.active_cc_count(), b.active_cc_count());
    for (std::size_t c = 0; c < a.ccs.size(); ++c) {
      EXPECT_EQ(a.ccs[c].band, b.ccs[c].band);
      EXPECT_NEAR(a.ccs[c].rsrp_dbm, b.ccs[c].rsrp_dbm, 1e-6);
      EXPECT_EQ(a.ccs[c].layers, b.ccs[c].layers);
    }
  }
}

TEST(TraceIo, EmptyTraceRejected) {
  common::CsvDocument doc;
  doc.header = {"time_s"};
  EXPECT_THROW(sim::trace_from_csv(doc), common::CheckError);
}

TEST(TraceIo, MalformedRowsSkippedNotFatal) {
  const auto trace = make_trace();
  auto doc = sim::trace_to_csv(trace);
  doc.rows[3][0] = "not-a-number";   // corrupt time_s of one row
  doc.rows[7].resize(2);             // truncate another mid-row
  const auto restored = sim::trace_from_csv(doc);
  EXPECT_EQ(restored.samples.size(), trace.samples.size() - 2);
}

TEST(TraceIo, AllRowsMalformedReportsFirstLine) {
  const auto trace = make_trace();
  auto doc = sim::trace_to_csv(trace);
  for (auto& row : doc.rows) row[0] = "garbage";
  try {
    static_cast<void>(sim::trace_from_csv(doc));
    FAIL() << "expected CheckError";
  } catch (const common::CheckError& e) {
    // Header is file line 1, so the first data row is line 2.
    EXPECT_NE(std::string(e.what()).find("first at line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, MalformedMetadataRowReported) {
  const auto trace = make_trace();
  auto doc = sim::trace_to_csv(trace);
  doc.rows[0][doc.column("cc_slots")] = "many";
  try {
    static_cast<void>(sim::trace_from_csv(doc));
    FAIL() << "expected CheckError";
  } catch (const common::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("metadata row is malformed at line 2"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
