// Unit tests for ML dataset construction: windowing, normalization,
// splits, and the streaming window builder.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "traces/dataset.hpp"

namespace {

using namespace ca5g;

std::vector<sim::Trace> make_traces(std::size_t n = 3, double duration = 8.0) {
  std::vector<sim::Trace> out;
  for (std::size_t i = 0; i < n; ++i) {
    sim::ScenarioConfig config;
    config.op = ran::OperatorId::kOpZ;
    config.mobility = sim::Mobility::kDriving;
    config.duration_s = duration;
    config.step_s = 0.01;
    config.seed = 100 + i;
    out.push_back(sim::run_scenario(config));
  }
  return out;
}

TEST(Dataset, WindowCountsMatchSpec) {
  const auto traces_vec = make_traces(2, 5.0);  // 500 samples each
  traces::DatasetSpec spec;
  spec.history = 10;
  spec.horizon = 10;
  spec.stride = 5;
  const auto ds = traces::Dataset::from_traces(traces_vec, spec);
  // Per trace: floor((500 - 20) / 5) + 1 = 97.
  EXPECT_EQ(ds.windows().size(), 2u * 97u);
  EXPECT_EQ(ds.history(), 10u);
  EXPECT_EQ(ds.horizon(), 10u);
  EXPECT_EQ(ds.cc_slots(), 4u);
}

TEST(Dataset, WindowShapes) {
  const auto ds = traces::Dataset::from_traces(make_traces(1, 5.0), {});
  const auto& w = ds.windows().front();
  EXPECT_EQ(w.cc_feat.size(), 10u);
  EXPECT_EQ(w.cc_feat[0].size(), 4u);
  EXPECT_EQ(w.cc_feat[0][0].size(), traces::kCcFeatureDim);
  EXPECT_EQ(w.mask.size(), 10u);
  EXPECT_EQ(w.global.size(), 10u);
  EXPECT_EQ(w.agg_history.size(), 10u);
  EXPECT_EQ(w.target.size(), 10u);
  EXPECT_EQ(w.cc_target.size(), 10u);
  EXPECT_EQ(w.cc_target[0].size(), 4u);
}

TEST(Dataset, FeaturesAreNormalized) {
  const auto ds = traces::Dataset::from_traces(make_traces(2, 5.0), {});
  for (const auto& w : ds.windows()) {
    for (const auto& step : w.cc_feat)
      for (const auto& cc : step)
        for (double f : cc) {
          EXPECT_GE(f, -1e-9);
          EXPECT_LE(f, 1.5);
        }
    for (double t : w.target) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0 + 1e-9);
    }
  }
}

TEST(Dataset, MaskMatchesActiveFeature) {
  const auto ds = traces::Dataset::from_traces(make_traces(1, 5.0), {});
  for (const auto& w : ds.windows())
    for (std::size_t t = 0; t < w.mask.size(); ++t)
      for (std::size_t c = 0; c < w.mask[t].size(); ++c)
        EXPECT_DOUBLE_EQ(w.mask[t][c], w.cc_feat[t][c][traces::kFeatActive]);
}

TEST(Dataset, CcTargetsSumToAggregateTarget) {
  const auto ds = traces::Dataset::from_traces(make_traces(1, 5.0), {});
  for (const auto& w : ds.windows())
    for (std::size_t h = 0; h < w.target.size(); ++h) {
      double sum = 0.0;
      for (double v : w.cc_target[h]) sum += v;
      // Aggregate includes multiplexing inefficiency: sum ≥ aggregate.
      EXPECT_GE(sum + 1e-9, w.target[h]);
      EXPECT_LE(w.target[h], sum + 1e-9);
      EXPECT_GT(sum, w.target[h] * 0.9);
    }
}

TEST(Dataset, FlattenStepDimension) {
  const auto ds = traces::Dataset::from_traces(make_traces(1, 5.0), {});
  const auto flat = traces::Dataset::flatten_step(ds.windows().front(), 0);
  EXPECT_EQ(flat.size(), ds.flat_dim());
  EXPECT_EQ(ds.flat_dim(), 4 * traces::kCcFeatureDim + traces::kGlobalFeatureDim + 1);
}

TEST(Dataset, RandomSplitFractionsAndDisjointness) {
  const auto ds = traces::Dataset::from_traces(make_traces(3, 6.0), {});
  common::Rng rng(1);
  const auto split = ds.random_split(0.5, 0.2, rng);
  const auto total = ds.windows().size();
  EXPECT_NEAR(static_cast<double>(split.train.size()) / total, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(split.val.size()) / total, 0.2, 0.02);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), total);
  std::set<const traces::Window*> seen;
  for (const auto* w : split.train) EXPECT_TRUE(seen.insert(w).second);
  for (const auto* w : split.val) EXPECT_TRUE(seen.insert(w).second);
  for (const auto* w : split.test) EXPECT_TRUE(seen.insert(w).second);
}

TEST(Dataset, TraceSplitKeepsTracesApart) {
  const auto ds = traces::Dataset::from_traces(make_traces(4, 5.0), {});
  common::Rng rng(2);
  const auto split = ds.trace_split(0.5, 0.2, rng);
  std::set<std::size_t> train_traces, test_traces;
  for (const auto* w : split.train) train_traces.insert(w->trace_id);
  for (const auto* w : split.val) train_traces.insert(w->trace_id);
  for (const auto* w : split.test) test_traces.insert(w->trace_id);
  for (auto id : test_traces) EXPECT_FALSE(train_traces.count(id));
}

TEST(Dataset, BadSplitFractionsThrow) {
  const auto ds = traces::Dataset::from_traces(make_traces(1, 5.0), {});
  common::Rng rng(3);
  EXPECT_THROW((void)ds.random_split(0.8, 0.3, rng), common::CheckError);
  EXPECT_THROW((void)ds.random_split(0.0, 0.2, rng), common::CheckError);
}

TEST(Dataset, BuildWindowStreaming) {
  const auto traces_vec = make_traces(1, 5.0);
  const auto& samples = traces_vec.front().samples;
  traces::DatasetSpec spec;
  // Mid-trace window with full targets.
  const auto w = traces::build_window(samples, 100, spec, 4, 1000.0);
  EXPECT_EQ(w.target.size(), 10u);
  // Window at the very end: allow_short_target truncates.
  const auto tail =
      traces::build_window(samples, samples.size() - 12, spec, 4, 1000.0, true);
  EXPECT_EQ(tail.agg_history.size(), 10u);
  EXPECT_EQ(tail.target.size(), 2u);
  // Without allow_short_target the same call is rejected.
  EXPECT_THROW(
      (void)traces::build_window(samples, samples.size() - 12, spec, 4, 1000.0),
      common::CheckError);
}

TEST(Dataset, EmptyInputsRejected) {
  EXPECT_THROW((void)traces::Dataset::from_traces({}, {}), common::CheckError);
  const auto traces_vec = make_traces(1, 5.0);
  traces::DatasetSpec bad;
  bad.history = 0;
  EXPECT_THROW((void)traces::Dataset::from_traces(traces_vec, bad), common::CheckError);
}

}  // namespace
