#include "phy/numerology.hpp"

#include <utility>

#include "common/check.hpp"

namespace ca5g::phy {

int slots_per_subframe(int scs_khz) {
  switch (scs_khz) {
    case 15: return 1;
    case 30: return 2;
    case 60: return 4;
    case 120: return 8;
    default: CA5G_CHECK_MSG(false, "unsupported SCS: " << scs_khz << " kHz");
  }
  return 0;  // unreachable
}

double slot_duration_s(int scs_khz) { return 1e-3 / slots_per_subframe(scs_khz); }

int max_resource_blocks(Rat rat, int bandwidth_mhz, int scs_khz) {
  CA5G_CHECK_MSG(bandwidth_mhz > 0, "bandwidth must be positive");
  if (rat == Rat::kLte) {
    CA5G_CHECK_MSG(scs_khz == 15, "LTE uses fixed 15 kHz SCS");
    CA5G_CHECK_MSG(bandwidth_mhz <= 20, "LTE channel bandwidth capped at 20 MHz");
    // 1.4 MHz → 6 RB is the only deviation from the 5 RB/MHz rule; the
    // bands in this study all use ≥ 5 MHz channels.
    return bandwidth_mhz * 5;
  }
  // NR FR1/FR2 transmission-bandwidth configuration N_RB.
  struct Entry { int bw; int scs; int rb; };
  static constexpr Entry kTable[] = {
      // FR1, 15 kHz SCS (TS 38.101-1 Table 5.3.2-1)
      {5, 15, 25},   {10, 15, 52},  {15, 15, 79},  {20, 15, 106},
      {25, 15, 133}, {30, 15, 160}, {40, 15, 216}, {50, 15, 270},
      // FR1, 30 kHz SCS
      {5, 30, 11},   {10, 30, 24},  {15, 30, 38},  {20, 30, 51},
      {25, 30, 65},  {30, 30, 78},  {40, 30, 106}, {50, 30, 133},
      {60, 30, 162}, {70, 30, 189}, {80, 30, 217}, {90, 30, 245},
      {100, 30, 273},
      // FR1, 60 kHz SCS
      {20, 60, 24},  {40, 60, 51},  {60, 60, 79},  {80, 60, 107},
      {100, 60, 135},
      // FR2, 120 kHz SCS (TS 38.101-2 Table 5.3.2-1)
      {50, 120, 32}, {100, 120, 66}, {200, 120, 132}, {400, 120, 264},
  };
  for (const auto& e : kTable)
    if (e.bw == bandwidth_mhz && e.scs == scs_khz) return e.rb;
  CA5G_CHECK_MSG(false, "no NR RB entry for " << bandwidth_mhz << " MHz @ " << scs_khz
                                              << " kHz SCS");
  return 0;  // unreachable
}

}  // namespace ca5g::phy
