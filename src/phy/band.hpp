// 3GPP band catalogue for the 4G/5G channels observed in the paper
// (Table 2 and Table 6): 4G bands are prefixed "b", 5G NR bands "n".
// Each entry records duplex mode, carrier frequency, band range class,
// and the channel bandwidths / subcarrier spacings the band supports.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace ca5g::phy {

/// Radio access technology of a band.
enum class Rat : std::uint8_t { kLte, kNr };

/// Duplexing scheme. TDD shares one channel between DL and UL in time;
/// FDD dedicates a paired channel to each direction.
enum class Duplex : std::uint8_t { kFdd, kTdd };

/// Coarse spectrum class: low (<1 GHz), mid (1–7 GHz), high (mmWave).
enum class BandRange : std::uint8_t { kLow, kMid, kHigh };

/// All bands modelled in this reproduction (from paper Table 6).
enum class BandId : std::uint8_t {
  // 4G LTE bands.
  kB2, kB4, kB5, kB12, kB13, kB14, kB25, kB29, kB30, kB41, kB46, kB48, kB66, kB71,
  // 5G NR bands.
  kN5, kN25, kN41, kN66, kN71, kN77, kN260, kN261,
};

inline constexpr std::size_t kBandCount = 22;

/// Static description of one band.
struct BandInfo {
  BandId id;
  std::string_view name;            ///< e.g. "n41"
  Rat rat;
  Duplex duplex;
  double center_freq_mhz;           ///< representative carrier frequency
  BandRange range;
  std::span<const int> bandwidths_mhz;  ///< channel bandwidths supported
  std::span<const int> scs_khz;         ///< subcarrier spacings supported
};

/// Catalogue lookup. Data is immutable and static; references stay valid.
[[nodiscard]] const BandInfo& band_info(BandId id);

/// Band by name ("b66", "n77"); throws CheckError for unknown names.
[[nodiscard]] BandId band_from_name(std::string_view name);

/// All catalogued bands, in enum order.
[[nodiscard]] std::span<const BandInfo> all_bands();

/// True for 5G NR bands.
[[nodiscard]] inline bool is_nr(BandId id) { return band_info(id).rat == Rat::kNr; }

/// True for FR2 (mmWave) bands.
[[nodiscard]] inline bool is_mmwave(BandId id) {
  return band_info(id).range == BandRange::kHigh;
}

/// Fraction of slots carrying downlink data. FDD uses a dedicated DL
/// channel (1.0); TDD patterns like DDDSU give roughly 0.74 DL share.
[[nodiscard]] double downlink_duty(Duplex duplex) noexcept;

}  // namespace ca5g::phy
