#include "phy/tbs.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "phy/mcs.hpp"
#include "phy/numerology.hpp"

namespace ca5g::phy {
namespace {

// TS 38.214 Table 5.1.3.2-1: TBS values for N_info ≤ 3824.
constexpr std::array<int, 93> kSmallTbsTable{
    24,   32,   40,   48,   56,   64,   72,   80,   88,   96,   104,  112,  120,
    128,  136,  144,  152,  160,  168,  176,  184,  192,  208,  224,  240,  256,
    272,  288,  304,  320,  336,  352,  368,  384,  408,  432,  456,  480,  504,
    528,  552,  576,  608,  640,  672,  704,  736,  768,  808,  848,  888,  928,
    984,  1032, 1064, 1128, 1160, 1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480,
    1544, 1608, 1672, 1736, 1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408,
    2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496, 3624,
    3752, 3824};

void validate(const TbsParams& p) {
  CA5G_CHECK_GE(p.prb_count, 0);
  CA5G_CHECK_IN_RANGE(p.symbols, 1, kSymbolsPerSlot);
  CA5G_CHECK_IN_RANGE(p.mimo_layers, 1, 8);
  CA5G_CHECK_IN_RANGE(p.mcs_index, 0, kMaxMcsIndex);
  CA5G_CHECK_GE(p.dmrs_re_per_prb, 0);
  CA5G_CHECK_GE(p.overhead_re, 0);
}

}  // namespace

int resource_elements_per_prb(const TbsParams& p) {
  validate(p);
  const int raw = kSubcarriersPerRb * p.symbols - p.dmrs_re_per_prb - p.overhead_re;
  // Spec caps usable REs per PRB at 156 to bound the TBS.
  return std::clamp(raw, 0, 156);
}

int total_resource_elements(const TbsParams& p) {
  return resource_elements_per_prb(p) * p.prb_count;
}

double n_info(const TbsParams& p) {
  const auto& mcs = mcs_entry(p.mcs_index);
  return static_cast<double>(total_resource_elements(p)) * mcs.code_rate *
         mcs.modulation_order * p.mimo_layers;
}

std::int64_t transport_block_size(const TbsParams& p) {
  CA5G_METRIC_COUNTER(tbs_lookups, "phy.tbs_lookups_total");
  tbs_lookups.inc();
  const double info = n_info(p);
  if (info <= 0.0) return 0;

  if (info <= 3824.0) {
    // Step 3: quantize and pick the smallest table entry ≥ N'_info.
    const int n = std::max(3, static_cast<int>(std::floor(std::log2(info))) - 6);
    const double scale = std::exp2(n);
    const auto quantized =
        std::max<std::int64_t>(24, static_cast<std::int64_t>(scale * std::floor(info / scale)));
    for (int tbs : kSmallTbsTable)
      if (tbs >= quantized) return tbs;
    return kSmallTbsTable.back();
  }

  // Step 4: large TBS via LDPC segmentation rules.
  const auto& mcs = mcs_entry(p.mcs_index);
  const int n = static_cast<int>(std::floor(std::log2(info - 24.0))) - 5;
  const double scale = std::exp2(n);
  const auto n_info_prime = std::max<std::int64_t>(
      3840, static_cast<std::int64_t>(scale * std::llround((info - 24.0) / scale)));
  std::int64_t tbs = 0;
  if (mcs.code_rate <= 0.25) {
    const auto c = (n_info_prime + 24 + 3816 - 1) / 3816;
    tbs = 8 * c * ((n_info_prime + 24 + 8 * c - 1) / (8 * c)) - 24;
  } else if (n_info_prime > 8424) {
    const auto c = (n_info_prime + 24 + 8424 - 1) / 8424;
    tbs = 8 * c * ((n_info_prime + 24 + 8 * c - 1) / (8 * c)) - 24;
  } else {
    tbs = 8 * ((n_info_prime + 24 + 7) / 8) - 24;
  }
  // TS 38.214 postconditions: large TBS are positive, byte-aligned after
  // the 24-bit CRC, and the quantizer never shrinks below N'_info.
  CA5G_DCHECK_GT(tbs, 0);
  CA5G_DCHECK_EQ((tbs + 24) % 8, 0);
  CA5G_DCHECK_GE(tbs, n_info_prime);
  return tbs;
}

std::span<const int> small_tbs_table() noexcept { return kSmallTbsTable; }

double slot_throughput_bps(const TbsParams& p, int scs_khz, Duplex duplex) {
  const double slots_per_second = 1000.0 * slots_per_subframe(scs_khz);
  return static_cast<double>(transport_block_size(p)) * slots_per_second *
         downlink_duty(duplex);
}

}  // namespace ca5g::phy
