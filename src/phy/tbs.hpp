// Transport block size (TBS) determination per TS 38.214 §5.1.3.2 —
// the paper's Eq. (1): TBS = Quantizer(N_re · R · Qm · v).
//
// This is the heart of the PHY throughput model: given the frequency-
// domain allocation (#PRB), time-domain allocation (#symbols), MCS, and
// MIMO layer count, it yields the number of information bits a slot
// carries, from which per-CC throughput follows.
#pragma once

#include <cstdint>
#include <span>

#include "phy/band.hpp"

namespace ca5g::phy {

/// Inputs to the TBS computation for one slot.
struct TbsParams {
  int prb_count = 0;        ///< allocated physical resource blocks
  int symbols = 14;         ///< OFDM symbols allocated in the slot (1..14)
  int dmrs_re_per_prb = 12; ///< REs consumed by DMRS per PRB (type 1, 1 symbol)
  int overhead_re = 0;      ///< N_oh^PRB: CSI-RS/CORESET overhead per PRB
  int mcs_index = 0;        ///< MCS table-2 index (0..27)
  int mimo_layers = 1;      ///< v: spatial layers (1..8)
};

/// Resource elements available for the shared channel per PRB
/// (capped at 156 per the spec).
[[nodiscard]] int resource_elements_per_prb(const TbsParams& p);

/// Total REs for the allocation: RE/PRB × #PRB.
[[nodiscard]] int total_resource_elements(const TbsParams& p);

/// Transport block size in bits (the full spec quantizer, including the
/// small-TBS table below 3824 bits and the LDPC segmentation rules above).
[[nodiscard]] std::int64_t transport_block_size(const TbsParams& p);

/// Convenience: raw (unquantized) information bits N_info = N_re·R·Qm·v.
[[nodiscard]] double n_info(const TbsParams& p);

/// Peak PHY-layer throughput in bits per second for a carrier that
/// schedules this allocation every slot: TBS × slots/s × DL duty.
[[nodiscard]] double slot_throughput_bps(const TbsParams& p, int scs_khz, Duplex duplex);

/// The TS 38.214 Table 5.1.3.2-1 small-TBS quantization table (93 entries,
/// 24..3824 bits), exposed read-only so the domain lint can cross-check it.
[[nodiscard]] std::span<const int> small_tbs_table() noexcept;

}  // namespace ca5g::phy
