// Modulation-and-coding-scheme (MCS) and channel-quality-indicator (CQI)
// tables from TS 38.214, plus the SINR↔CQI link-quality mapping used by
// the simulator's link adaptation.
//
// MCS indices follow Table 5.1.3.1-2 (256QAM), CQI indices Table
// 5.2.2.1-3 (256QAM). The paper's features (Table 12) expose CQI, MCS,
// and BLER per component carrier; these tables close the loop between
// channel SINR and achievable per-slot transport block size.
#pragma once

#include <cstdint>

namespace ca5g::phy {

inline constexpr int kMaxMcsIndex = 27;
inline constexpr int kMaxCqiIndex = 15;

/// One MCS row: modulation order (bits/symbol) and code rate.
struct McsEntry {
  int index;
  int modulation_order;  ///< Qm: 2=QPSK, 4=16QAM, 6=64QAM, 8=256QAM
  double code_rate;      ///< R, information bits per coded bit (≤ 0.926)
  /// Spectral efficiency in information bits per resource element.
  [[nodiscard]] double efficiency() const noexcept { return modulation_order * code_rate; }
};

/// One CQI row: what the UE reports it can sustain at ≤10% BLER.
struct CqiEntry {
  int index;
  int modulation_order;
  double code_rate;
  double efficiency;
  double min_sinr_db;  ///< SINR threshold at which this CQI is reported
};

/// MCS table lookup (TS 38.214 Table 5.1.3.1-2); index in [0, 27].
[[nodiscard]] const McsEntry& mcs_entry(int mcs_index);

/// CQI table lookup (TS 38.214 Table 5.2.2.1-3); index in [1, 15].
[[nodiscard]] const CqiEntry& cqi_entry(int cqi_index);

/// CQI reported for a measured SINR (highest CQI whose threshold is met;
/// 0 = out of range / no transmission possible).
[[nodiscard]] int cqi_from_sinr(double sinr_db) noexcept;

/// Link adaptation: highest MCS whose spectral efficiency does not exceed
/// the efficiency the reported CQI promises. CQI 0 maps to MCS 0.
[[nodiscard]] int mcs_from_cqi(int cqi_index);

/// Residual block error rate at the operating point: near the 10% BLER
/// design target when the scheduler matches MCS to CQI, rising when the
/// chosen MCS outruns the channel (delta_efficiency > 0).
[[nodiscard]] double bler_estimate(double sinr_db, int mcs_index);

}  // namespace ca5g::phy
