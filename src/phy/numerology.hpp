// 5G NR numerology (TS 38.211) and resource-block capacity tables
// (TS 38.101-1/-2). Numerology µ fixes the subcarrier spacing, slot
// duration, and — together with the channel bandwidth — the number of
// resource blocks a carrier can configure.
#pragma once

#include "phy/band.hpp"

namespace ca5g::phy {

inline constexpr int kSubcarriersPerRb = 12;
inline constexpr int kSymbolsPerSlot = 14;

/// Number of slots per 1 ms subframe for a subcarrier spacing:
/// 15 kHz → 1, 30 kHz → 2, 60 kHz → 4, 120 kHz → 8.
[[nodiscard]] int slots_per_subframe(int scs_khz);

/// Slot duration in seconds (1 ms / slots_per_subframe).
[[nodiscard]] double slot_duration_s(int scs_khz);

/// Maximum number of resource blocks for a (bandwidth, SCS) pair.
/// NR values follow TS 38.101-1 Table 5.3.2-1 (FR1) and TS 38.101-2
/// Table 5.3.2-1 (FR2); LTE uses the classic 5 RB/MHz rule (20 MHz→100).
[[nodiscard]] int max_resource_blocks(Rat rat, int bandwidth_mhz, int scs_khz);

/// Total subcarriers = RB * 12, convenience for efficiency computations.
[[nodiscard]] inline int max_subcarriers(Rat rat, int bandwidth_mhz, int scs_khz) {
  return max_resource_blocks(rat, bandwidth_mhz, scs_khz) * kSubcarriersPerRb;
}

}  // namespace ca5g::phy
