#include "phy/mcs.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace ca5g::phy {
namespace {

// TS 38.214 Table 5.1.3.1-2 (MCS index table 2, 256QAM). Code rates are
// the spec's R×1024 values divided by 1024.
constexpr std::array<McsEntry, kMaxMcsIndex + 1> kMcsTable{{
    {0, 2, 120.0 / 1024}, {1, 2, 193.0 / 1024},  {2, 2, 308.0 / 1024},
    {3, 2, 449.0 / 1024}, {4, 2, 602.0 / 1024},  {5, 4, 378.0 / 1024},
    {6, 4, 434.0 / 1024}, {7, 4, 490.0 / 1024},  {8, 4, 553.0 / 1024},
    {9, 4, 616.0 / 1024}, {10, 4, 658.0 / 1024}, {11, 6, 466.0 / 1024},
    {12, 6, 517.0 / 1024}, {13, 6, 567.0 / 1024}, {14, 6, 616.0 / 1024},
    {15, 6, 666.0 / 1024}, {16, 6, 719.0 / 1024}, {17, 6, 772.0 / 1024},
    {18, 6, 822.0 / 1024}, {19, 6, 873.0 / 1024}, {20, 8, 682.5 / 1024},
    {21, 8, 711.0 / 1024}, {22, 8, 754.0 / 1024}, {23, 8, 797.0 / 1024},
    {24, 8, 841.0 / 1024}, {25, 8, 885.0 / 1024}, {26, 8, 916.5 / 1024},
    {27, 8, 948.0 / 1024},
}};

// TS 38.214 Table 5.2.2.1-3 (CQI table 2, 256QAM) with SINR thresholds
// from the usual AWGN link-level mapping (≈2 dB per CQI step).
constexpr std::array<CqiEntry, kMaxCqiIndex + 1> kCqiTable{{
    {0, 0, 0.0, 0.0, -1e9},  // out of range
    {1, 2, 78.0 / 1024, 0.1523, -6.7},
    {2, 2, 193.0 / 1024, 0.3770, -4.7},
    {3, 2, 449.0 / 1024, 0.8770, -2.3},
    {4, 4, 378.0 / 1024, 1.4766, 0.2},
    {5, 4, 490.0 / 1024, 1.9141, 2.4},
    {6, 4, 616.0 / 1024, 2.4063, 4.3},
    {7, 6, 466.0 / 1024, 2.7305, 5.9},
    {8, 6, 567.0 / 1024, 3.3223, 8.1},
    {9, 6, 666.0 / 1024, 3.9023, 10.3},
    {10, 6, 772.0 / 1024, 4.5234, 11.7},
    {11, 6, 873.0 / 1024, 5.1152, 14.1},
    {12, 8, 711.0 / 1024, 5.5547, 16.3},
    {13, 8, 797.0 / 1024, 6.2266, 18.7},
    {14, 8, 885.0 / 1024, 6.9141, 21.0},
    {15, 8, 948.0 / 1024, 7.4063, 22.7},
}};

}  // namespace

const McsEntry& mcs_entry(int mcs_index) {
  CA5G_CHECK_IN_RANGE(mcs_index, 0, kMaxMcsIndex);
  return kMcsTable[static_cast<std::size_t>(mcs_index)];
}

const CqiEntry& cqi_entry(int cqi_index) {
  CA5G_CHECK_IN_RANGE(cqi_index, 0, kMaxCqiIndex);
  return kCqiTable[static_cast<std::size_t>(cqi_index)];
}

int cqi_from_sinr(double sinr_db) noexcept {
  CA5G_METRIC_COUNTER(cqi_lookups, "phy.cqi_lookups_total");
  cqi_lookups.inc();
  int best = 0;
  for (int i = 1; i <= kMaxCqiIndex; ++i)
    if (sinr_db >= kCqiTable[static_cast<std::size_t>(i)].min_sinr_db) best = i;
  return best;
}

int mcs_from_cqi(int cqi_index) {
  CA5G_METRIC_COUNTER(mcs_lookups, "phy.mcs_lookups_total");
  mcs_lookups.inc();
  const auto& cqi = cqi_entry(cqi_index);
  if (cqi.index == 0) return 0;
  int best = 0;
  for (int i = 0; i <= kMaxMcsIndex; ++i) {
    if (kMcsTable[static_cast<std::size_t>(i)].efficiency() <= cqi.efficiency + 1e-9) best = i;
  }
  // Link adaptation must never hand the scheduler an MCS the table cannot
  // back. MCS 0 is the floor: CQI 1 promises less than the lowest MCS rate,
  // in which case the link runs MCS 0 at elevated BLER rather than nothing.
  CA5G_DCHECK_IN_RANGE(best, 0, kMaxMcsIndex);
  CA5G_DCHECK(best == 0 || mcs_entry(best).efficiency() <= cqi.efficiency + 1e-9);
  return best;
}

double bler_estimate(double sinr_db, int mcs_index) {
  // Logistic waterfall: BLER ≈ 10% at the SINR where the MCS efficiency
  // equals the channel's CQI efficiency; each extra dB of margin roughly
  // halves the error rate, each dB of deficit sharply raises it.
  const auto& mcs = mcs_entry(mcs_index);
  // SINR needed for this MCS: interpolate within the CQI thresholds.
  double needed_db = kCqiTable[kMaxCqiIndex].min_sinr_db;
  for (int i = 1; i <= kMaxCqiIndex; ++i) {
    if (kCqiTable[static_cast<std::size_t>(i)].efficiency >= mcs.efficiency()) {
      needed_db = kCqiTable[static_cast<std::size_t>(i)].min_sinr_db;
      break;
    }
  }
  const double margin = sinr_db - needed_db;
  const double bler = 0.1 * std::exp2(-margin);
  return std::clamp(bler, 0.0, 1.0);
}

}  // namespace ca5g::phy
