#include "phy/band.hpp"

#include <array>

#include "common/check.hpp"

namespace ca5g::phy {
namespace {

// Channel bandwidth sets (MHz) observed per band in paper Table 6.
constexpr std::array<int, 4> kBw5_20{5, 10, 15, 20};
constexpr std::array<int, 3> kBw10_20{10, 15, 20};
constexpr std::array<int, 1> kBw10{10};
constexpr std::array<int, 2> kBw5_10{5, 10};
constexpr std::array<int, 1> kBw5{5};
constexpr std::array<int, 1> kBw20{20};
constexpr std::array<int, 2> kBw10_20only{10, 20};
constexpr std::array<int, 4> kBwN41{20, 40, 60, 100};
constexpr std::array<int, 2> kBwN71{15, 20};
constexpr std::array<int, 3> kBwN77{40, 60, 100};
constexpr std::array<int, 1> kBw100{100};

constexpr std::array<int, 1> kScsLte{15};
constexpr std::array<int, 2> kScsFr1{15, 30};
constexpr std::array<int, 1> kScsFr2{120};

const std::array<BandInfo, kBandCount> kBands{{
    // -- 4G LTE (paper Table 6) -------------------------------------------
    {BandId::kB2, "b2", Rat::kLte, Duplex::kFdd, 1900.0, BandRange::kMid, kBw5_20, kScsLte},
    {BandId::kB4, "b4", Rat::kLte, Duplex::kFdd, 1700.0, BandRange::kMid, kBw10_20, kScsLte},
    {BandId::kB5, "b5", Rat::kLte, Duplex::kFdd, 850.0, BandRange::kLow, kBw10, kScsLte},
    {BandId::kB12, "b12", Rat::kLte, Duplex::kFdd, 700.0, BandRange::kLow, kBw5_10, kScsLte},
    {BandId::kB13, "b13", Rat::kLte, Duplex::kFdd, 700.0, BandRange::kLow, kBw10, kScsLte},
    {BandId::kB14, "b14", Rat::kLte, Duplex::kFdd, 700.0, BandRange::kLow, kBw10, kScsLte},
    {BandId::kB25, "b25", Rat::kLte, Duplex::kFdd, 1900.0, BandRange::kMid, kBw5, kScsLte},
    {BandId::kB29, "b29", Rat::kLte, Duplex::kFdd, 700.0, BandRange::kLow, kBw5, kScsLte},
    {BandId::kB30, "b30", Rat::kLte, Duplex::kFdd, 2300.0, BandRange::kMid, kBw5_10, kScsLte},
    {BandId::kB41, "b41", Rat::kLte, Duplex::kTdd, 2500.0, BandRange::kMid, kBw20, kScsLte},
    {BandId::kB46, "b46", Rat::kLte, Duplex::kTdd, 5200.0, BandRange::kMid, kBw20, kScsLte},
    {BandId::kB48, "b48", Rat::kLte, Duplex::kTdd, 3600.0, BandRange::kMid, kBw10_20only, kScsLte},
    {BandId::kB66, "b66", Rat::kLte, Duplex::kFdd, 2100.0, BandRange::kMid, kBw5_20, kScsLte},
    {BandId::kB71, "b71", Rat::kLte, Duplex::kFdd, 600.0, BandRange::kLow, kBw5, kScsLte},
    // -- 5G NR (paper Table 6) --------------------------------------------
    {BandId::kN5, "n5", Rat::kNr, Duplex::kFdd, 850.0, BandRange::kLow, kBw10, kScsFr1},
    {BandId::kN25, "n25", Rat::kNr, Duplex::kFdd, 1900.0, BandRange::kMid, kBw20, kScsFr1},
    {BandId::kN41, "n41", Rat::kNr, Duplex::kTdd, 2500.0, BandRange::kMid, kBwN41, kScsFr1},
    {BandId::kN66, "n66", Rat::kNr, Duplex::kFdd, 2100.0, BandRange::kMid, kBw5_10, kScsFr1},
    {BandId::kN71, "n71", Rat::kNr, Duplex::kFdd, 600.0, BandRange::kLow, kBwN71, kScsFr1},
    {BandId::kN77, "n77", Rat::kNr, Duplex::kTdd, 3700.0, BandRange::kMid, kBwN77, kScsFr1},
    {BandId::kN260, "n260", Rat::kNr, Duplex::kTdd, 39000.0, BandRange::kHigh, kBw100, kScsFr2},
    {BandId::kN261, "n261", Rat::kNr, Duplex::kTdd, 28000.0, BandRange::kHigh, kBw100, kScsFr2},
}};

}  // namespace

const BandInfo& band_info(BandId id) {
  const auto idx = static_cast<std::size_t>(id);
  CA5G_CHECK_MSG(idx < kBands.size(), "unknown band id: " << idx);
  return kBands[idx];
}

BandId band_from_name(std::string_view name) {
  for (const auto& band : kBands)
    if (band.name == name) return band.id;
  CA5G_CHECK_MSG(false, "unknown band name: " << name);
  return BandId::kB2;  // unreachable
}

std::span<const BandInfo> all_bands() { return kBands; }

double downlink_duty(Duplex duplex) noexcept {
  // TDD split modelled on the common DDDSU slot pattern: 3 full DL slots,
  // one mostly-DL special slot, one UL slot → ≈ 0.74 of symbols for DL.
  return duplex == Duplex::kFdd ? 1.0 : 0.74;
}

}  // namespace ca5g::phy
