// Explainability (paper §5.1: Prism5G's per-CC design exists partly for
// "explainability"): permutation feature importance for any fitted
// predictor. A feature's importance is the RMSE increase when that
// feature is shuffled across test windows — model-agnostic, so the
// CA-aware and history-only models can be compared on the same footing.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "predictors/predictor.hpp"

namespace ca5g::eval {

/// Importance of one per-CC feature (aggregated across CC slots).
struct FeatureImportance {
  std::string feature;
  double baseline_rmse = 0.0;
  double permuted_rmse = 0.0;
  /// Relative RMSE increase (%) when the feature is destroyed.
  [[nodiscard]] double increase_pct() const {
    return baseline_rmse > 0.0
               ? 100.0 * (permuted_rmse - baseline_rmse) / baseline_rmse
               : 0.0;
  }
};

/// Human-readable names of the per-CC features, indexed like
/// traces::CcFeature.
[[nodiscard]] const std::vector<std::string>& cc_feature_names();

/// Permutation importance of every per-CC feature: for each feature,
/// shuffle its values across the test windows (jointly over all time
/// steps and CC slots) and measure the RMSE increase. `rounds` permuted
/// evaluations are averaged per feature.
[[nodiscard]] std::vector<FeatureImportance> permutation_importance(
    const predictors::Predictor& model,
    std::span<const traces::Window* const> test, common::Rng& rng,
    std::size_t rounds = 1);

/// Importance of the aggregate-throughput history (the non-per-CC input
/// the baselines rely on), same protocol.
[[nodiscard]] FeatureImportance history_importance(
    const predictors::Predictor& model,
    std::span<const traces::Window* const> test, common::Rng& rng,
    std::size_t rounds = 1);

}  // namespace ca5g::eval
