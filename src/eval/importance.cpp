#include "eval/importance.hpp"

#include "common/check.hpp"

namespace ca5g::eval {
namespace {

/// Evaluate RMSE over (possibly modified) copies of the test windows.
double rmse_over(const predictors::Predictor& model,
                 const std::vector<traces::Window>& windows) {
  std::vector<const traces::Window*> ptrs;
  ptrs.reserve(windows.size());
  for (const auto& w : windows) ptrs.push_back(&w);
  return predictors::evaluate_rmse(model, ptrs);
}

}  // namespace

const std::vector<std::string>& cc_feature_names() {
  static const std::vector<std::string> kNames{
      "active",   "pcell", "band",   "bandwidth", "ssRSRP", "ssRSRQ", "SINR",
      "CQI",      "BLER",  "#RB",    "#Layers",   "MCS",    "HisTput(cc)"};
  return kNames;
}

std::vector<FeatureImportance> permutation_importance(
    const predictors::Predictor& model,
    std::span<const traces::Window* const> test, common::Rng& rng,
    std::size_t rounds) {
  CA5G_CHECK_MSG(!test.empty(), "importance on empty test set");
  CA5G_CHECK_MSG(rounds >= 1, "need at least one permutation round");

  std::vector<traces::Window> base;
  base.reserve(test.size());
  for (const auto* w : test) base.push_back(*w);
  const double baseline = rmse_over(model, base);

  std::vector<FeatureImportance> result;
  for (std::size_t feature = 0; feature < traces::kCcFeatureDim; ++feature) {
    double permuted_total = 0.0;
    for (std::size_t round = 0; round < rounds; ++round) {
      std::vector<traces::Window> shuffled = base;
      // Permute the feature's source window per target window; keep the
      // temporal/per-CC structure of the donor intact.
      std::vector<std::size_t> donor(base.size());
      for (std::size_t i = 0; i < donor.size(); ++i) donor[i] = i;
      rng.shuffle(donor);
      for (std::size_t i = 0; i < shuffled.size(); ++i) {
        const auto& src = base[donor[i]];
        for (std::size_t t = 0; t < shuffled[i].cc_feat.size(); ++t)
          for (std::size_t c = 0; c < shuffled[i].cc_feat[t].size(); ++c)
            shuffled[i].cc_feat[t][c][feature] = src.cc_feat[t][c][feature];
      }
      permuted_total += rmse_over(model, shuffled);
    }
    FeatureImportance fi;
    fi.feature = cc_feature_names()[feature];
    fi.baseline_rmse = baseline;
    fi.permuted_rmse = permuted_total / static_cast<double>(rounds);
    result.push_back(std::move(fi));
  }
  return result;
}

FeatureImportance history_importance(const predictors::Predictor& model,
                                     std::span<const traces::Window* const> test,
                                     common::Rng& rng, std::size_t rounds) {
  CA5G_CHECK_MSG(!test.empty(), "importance on empty test set");
  std::vector<traces::Window> base;
  base.reserve(test.size());
  for (const auto* w : test) base.push_back(*w);

  FeatureImportance fi;
  fi.feature = "HisTput(aggregate)";
  fi.baseline_rmse = rmse_over(model, base);
  double permuted_total = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<traces::Window> shuffled = base;
    std::vector<std::size_t> donor(base.size());
    for (std::size_t i = 0; i < donor.size(); ++i) donor[i] = i;
    rng.shuffle(donor);
    for (std::size_t i = 0; i < shuffled.size(); ++i)
      shuffled[i].agg_history = base[donor[i]].agg_history;
    permuted_total += rmse_over(model, shuffled);
  }
  fi.permuted_rmse = permuted_total / static_cast<double>(rounds);
  return fi;
}

}  // namespace ca5g::eval
