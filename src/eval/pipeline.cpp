#include "eval/pipeline.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::eval {

std::string time_scale_name(TimeScale scale) {
  return scale == TimeScale::kShort ? "Short(10ms)" : "Long(1s)";
}

std::string SubDatasetId::label() const {
  return ran::operator_name(op) + " (" +
         (mobility == sim::Mobility::kWalking ? "Walking" : "Driving") + ")";
}

std::vector<SubDatasetId> all_sub_datasets() {
  using ran::OperatorId;
  return {
      {OperatorId::kOpX, sim::Mobility::kWalking},
      {OperatorId::kOpX, sim::Mobility::kDriving},
      {OperatorId::kOpY, sim::Mobility::kWalking},
      {OperatorId::kOpY, sim::Mobility::kDriving},
      {OperatorId::kOpZ, sim::Mobility::kWalking},
      {OperatorId::kOpZ, sim::Mobility::kDriving},
  };
}

GenerationConfig GenerationConfig::from_env() {
  GenerationConfig config;
  if (const char* fast = std::getenv("CA5G_FAST"); fast && fast[0] == '1') {
    config.traces = 3;
    config.short_trace_duration_s = 25.0;
    config.long_trace_duration_s = 150.0;
    config.short_stride = 20;
  }
  return config;
}

std::vector<sim::Trace> generate_traces(const SubDatasetId& id, TimeScale scale,
                                        const GenerationConfig& config) {
  CA5G_METRIC_COUNTER(traces_generated, "eval.traces_generated_total");
  std::vector<sim::Trace> out(config.traces);
  // Each trace's seed is a pure function of its index, so the concurrent
  // simulations below are independent and out[i] is the same at any
  // thread count.
  common::parallel_for(config.threads, config.traces, [&](std::size_t i) {
    traces_generated.inc();
    sim::ScenarioConfig scenario;
    scenario.op = id.op;
    scenario.mobility = id.mobility;
    scenario.env = id.mobility == sim::Mobility::kWalking
                       ? radio::Environment::kUrbanMacro
                       : radio::Environment::kUrbanMacro;
    scenario.seed = config.seed + 131 * i + 7 * static_cast<std::size_t>(id.op) +
                    1009 * static_cast<std::size_t>(id.mobility);
    if (scale == TimeScale::kShort) {
      scenario.step_s = 0.01;
      scenario.duration_s = config.short_trace_duration_s;
      out[i] = sim::run_scenario(scenario);
    } else {
      // Simulate at 100 ms and average to 1 s: slot-level fading detail
      // is irrelevant at this horizon and the simulation is 10× cheaper.
      scenario.step_s = 0.1;
      scenario.duration_s = config.long_trace_duration_s;
      out[i] = sim::run_scenario(scenario).resampled(1.0);
    }
  });
  return out;
}

traces::Dataset make_ml_dataset(const SubDatasetId& id, TimeScale scale,
                                const GenerationConfig& config) {
  const auto traces_vec = generate_traces(id, scale, config);
  traces::DatasetSpec spec;
  spec.history = 10;
  spec.horizon = 10;
  spec.stride = scale == TimeScale::kShort ? config.short_stride : 1;
  return traces::Dataset::from_traces(traces_vec, spec, config.threads);
}

std::unique_ptr<predictors::Predictor> make_predictor(const std::string& name) {
  if (name == "Prophet") return std::make_unique<predictors::ProphetLitePredictor>();
  if (name == "HarmonicMean") return std::make_unique<predictors::HarmonicMeanPredictor>();
  if (name == "LSTM") return std::make_unique<predictors::LstmPredictor>();
  if (name == "TCN") return std::make_unique<predictors::TcnPredictor>();
  if (name == "Lumos5G") return std::make_unique<predictors::Lumos5gPredictor>();
  if (name == "GBDT") return std::make_unique<predictors::GbdtPredictor>();
  if (name == "RF") return std::make_unique<predictors::RandomForestPredictor>();
  if (name == "Prism5G") return std::make_unique<core::Prism5G>();
  if (name == "Prism5G-nostate") {
    core::Prism5gConfig config;
    config.use_state = false;
    return std::make_unique<core::Prism5G>(predictors::train_config_from_env(), config);
  }
  if (name == "Prism5G-nofusion") {
    core::Prism5gConfig config;
    config.use_fusion = false;
    return std::make_unique<core::Prism5G>(predictors::train_config_from_env(), config);
  }
  CA5G_CHECK_MSG(false, "unknown predictor name: " << name);
  return nullptr;  // unreachable
}

double train_and_evaluate(predictors::Predictor& model, const traces::Dataset& ds,
                          const traces::Dataset::Split& split) {
  CA5G_METRIC_HISTOGRAM(train_ns, "eval.train_ns");
  {
    CA5G_SCOPED_TIMER(train_ns);
    model.fit(ds, split.train, split.val);
  }
  return predictors::evaluate_rmse(model, split.test);
}

std::vector<ModelScore> evaluate_models(const std::vector<std::string>& names,
                                        const traces::Dataset& ds,
                                        const traces::Dataset::Split& split,
                                        std::size_t threads) {
  CA5G_METRIC_COUNTER(models_evaluated, "eval.models_evaluated_total");
  std::vector<ModelScore> scores(names.size());
  // Every model instance is private to its task; the shared Dataset/Split
  // are read-only. Scores land in `names` order whatever the schedule.
  common::parallel_for(threads, names.size(), [&](std::size_t i) {
    auto model = make_predictor(names[i]);
    scores[i].name = model->name();
    scores[i].rmse = train_and_evaluate(*model, ds, split);
    models_evaluated.inc();
  });
  return scores;
}

}  // namespace ca5g::eval
