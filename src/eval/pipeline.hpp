// Evaluation pipeline (paper §6.1): generates the six ML sub-datasets
// (3 operators × {walking, driving}, Table 11) at the two time scales
// (10 ms with 100 ms horizon; 1 s with 10 s horizon), provides the model
// zoo, and runs train/evaluate rounds used by the Table 4 / 13 / 14
// benches.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/prism5g.hpp"
#include "predictors/deep.hpp"
#include "predictors/naive.hpp"
#include "predictors/trees.hpp"
#include "sim/engine.hpp"
#include "traces/dataset.hpp"

namespace ca5g::eval {

/// Time-scale of a sub-dataset (paper Table 4 columns).
enum class TimeScale : std::uint8_t {
  kShort,  ///< 10 ms samples, 100 ms prediction horizon
  kLong,   ///< 1 s samples, 10 s prediction horizon
};

[[nodiscard]] std::string time_scale_name(TimeScale scale);

/// One of the six sub-dataset identities.
struct SubDatasetId {
  ran::OperatorId op = ran::OperatorId::kOpZ;
  sim::Mobility mobility = sim::Mobility::kDriving;

  [[nodiscard]] std::string label() const;
};

/// All six sub-datasets in Table 4 row order.
[[nodiscard]] std::vector<SubDatasetId> all_sub_datasets();

/// Generation knobs. `size_factor` scales trace count/length (CA5G_FAST
/// sets 0.35 via from_env()). `threads` parallelizes per-trace simulation
/// and window featurization on the shared pool; per-trace seeds are fixed
/// functions of the trace index, so any thread count produces the same
/// bytes (1 = serial, 0 = common::default_thread_count).
struct GenerationConfig {
  std::size_t traces = 6;
  double short_trace_duration_s = 50.0;  ///< at 10 ms steps
  double long_trace_duration_s = 400.0;  ///< resampled to 1 s
  std::size_t short_stride = 12;         ///< window stride at 10 ms
  std::uint64_t seed = 2024;
  std::size_t threads = 1;

  [[nodiscard]] static GenerationConfig from_env();
};

/// Simulate the traces of one sub-dataset at a time scale (config.threads
/// simulations run concurrently).
[[nodiscard]] std::vector<sim::Trace> generate_traces(const SubDatasetId& id,
                                                      TimeScale scale,
                                                      const GenerationConfig& config);

/// Simulate + window one sub-dataset into an ML dataset.
[[nodiscard]] traces::Dataset make_ml_dataset(const SubDatasetId& id, TimeScale scale,
                                              const GenerationConfig& config);

/// Model zoo: construct a predictor by its Table 4 column name
/// ("Prophet", "LSTM", "TCN", "Lumos5G", "Prism5G", "GBDT", "RF",
/// "HarmonicMean", "Prism5G-nostate", "Prism5G-nofusion").
[[nodiscard]] std::unique_ptr<predictors::Predictor> make_predictor(
    const std::string& name);

/// Fit on the split's train/val and return test RMSE (normalized units).
[[nodiscard]] double train_and_evaluate(predictors::Predictor& model,
                                        const traces::Dataset& ds,
                                        const traces::Dataset::Split& split);

/// One Table 4 cell: a model-zoo column name and its test RMSE.
struct ModelScore {
  std::string name;
  double rmse = 0.0;
};

/// Train + evaluate several model-zoo entries concurrently (each model is
/// an independent task on the shared pool; its training RNG comes from
/// its own TrainConfig seed, so scores match the serial run exactly).
/// Results are in `names` order. threads: 0 = auto, 1 = serial.
[[nodiscard]] std::vector<ModelScore> evaluate_models(
    const std::vector<std::string>& names, const traces::Dataset& ds,
    const traces::Dataset::Split& split, std::size_t threads = 1);

}  // namespace ca5g::eval
