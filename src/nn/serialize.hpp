// Parameter serialization: save/load the trainable tensors of a model
// to a small binary format (magic + format version + per-tensor dims +
// float32 payload). Enables train-once / deploy-many workflows for the
// predictors; the serving layer's ModelRegistry loads deep models
// through these on hot-swap.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace ca5g::nn {

/// Current parameter-blob format version, written right after the magic.
/// Bump on any layout change; loaders reject other versions with a clear
/// expected-vs-found error instead of reading garbage weights.
inline constexpr std::uint32_t kSerializeFormatVersion = 2;

/// Serialize parameter tensors to a binary blob.
[[nodiscard]] std::vector<std::uint8_t> serialize_parameters(
    const std::vector<Tensor>& params);

/// Load a blob into existing parameter tensors (shapes must match).
void deserialize_parameters(const std::vector<std::uint8_t>& blob,
                            std::vector<Tensor>& params);

/// File convenience wrappers; throw CheckError on I/O or format errors.
void save_parameters(const std::vector<Tensor>& params, const std::string& path);
void load_parameters(std::vector<Tensor>& params, const std::string& path);

}  // namespace ca5g::nn
