// Parameter serialization: save/load the trainable tensors of a model
// to a small binary format (magic + per-tensor dims + float32 payload).
// Enables train-once / deploy-many workflows for the predictors.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace ca5g::nn {

/// Serialize parameter tensors to a binary blob.
[[nodiscard]] std::vector<std::uint8_t> serialize_parameters(
    const std::vector<Tensor>& params);

/// Load a blob into existing parameter tensors (shapes must match).
void deserialize_parameters(const std::vector<std::uint8_t>& blob,
                            std::vector<Tensor>& params);

/// File convenience wrappers; throw CheckError on I/O or format errors.
void save_parameters(const std::vector<Tensor>& params, const std::string& path);
void load_parameters(std::vector<Tensor>& params, const std::string& path);

}  // namespace ca5g::nn
