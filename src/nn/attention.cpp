#include "nn/attention.hpp"

#include <cmath>

#include "common/check.hpp"

namespace ca5g::nn {

SelfAttentionEncoder::SelfAttentionEncoder(common::Rng& rng, std::size_t input_size,
                                           std::size_t model_size, std::size_t max_len)
    : model_(model_size),
      scale_(1.0f / std::sqrt(static_cast<float>(model_size))),
      input_proj_(rng, input_size, model_size),
      wq_(rng, model_size, model_size),
      wk_(rng, model_size, model_size),
      wv_(rng, model_size, model_size),
      wo_(rng, model_size, model_size),
      ffn1_(rng, model_size, 2 * model_size),
      ffn2_(rng, 2 * model_size, model_size) {
  CA5G_CHECK_MSG(model_size > 0 && max_len > 0, "bad attention geometry");
  // Fixed sinusoidal positional encodings (Vaswani et al.).
  positional_.assign(max_len, std::vector<float>(model_size, 0.0f));
  for (std::size_t pos = 0; pos < max_len; ++pos) {
    for (std::size_t d = 0; d < model_size; ++d) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(d / 2) / static_cast<double>(model_size));
      positional_[pos][d] =
          static_cast<float>(d % 2 == 0 ? std::sin(angle) : std::cos(angle));
    }
  }
}

std::vector<Tensor> SelfAttentionEncoder::forward(std::span<const Tensor> sequence) const {
  CA5G_CHECK_MSG(!sequence.empty(), "attention over empty sequence");
  CA5G_CHECK_MSG(sequence.size() <= positional_.size(),
                 "sequence longer than positional table");
  const std::size_t t_len = sequence.size();

  // Project inputs and add positional encodings.
  std::vector<Tensor> h;
  h.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    Tensor pos(1, model_);
    for (std::size_t d = 0; d < model_; ++d) pos.set(0, d, positional_[t][d]);
    h.push_back(input_proj_.forward(sequence[t]) + pos);  // row broadcast
  }

  // Queries / keys / values per step.
  std::vector<Tensor> q, k, v;
  for (std::size_t t = 0; t < t_len; ++t) {
    q.push_back(wq_.forward(h[t]));
    k.push_back(wk_.forward(h[t]));
    v.push_back(wv_.forward(h[t]));
  }

  // Causal attention: step t attends to steps 0..t.
  std::vector<Tensor> outputs;
  outputs.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    std::vector<Tensor> score_cols;
    score_cols.reserve(t + 1);
    for (std::size_t s = 0; s <= t; ++s)
      score_cols.push_back(scale(rowwise_dot(q[t], k[s]), scale_));
    const Tensor weights = softmax_rows(concat_cols(score_cols));  // batch × (t+1)
    Tensor context;
    for (std::size_t s = 0; s <= t; ++s) {
      const Tensor term = mul_col_broadcast(v[s], slice_cols(weights, s, 1));
      context = context.defined() ? context + term : term;
    }
    // Residual + position-wise FFN (pre-norm omitted for simplicity).
    const Tensor attended = h[t] + wo_.forward(context);
    outputs.push_back(attended + ffn2_.forward(relu(ffn1_.forward(attended))));
  }
  return outputs;
}

Tensor SelfAttentionEncoder::last_hidden(std::span<const Tensor> sequence) const {
  return forward(sequence).back();
}

std::vector<Tensor> SelfAttentionEncoder::parameters() {
  std::vector<Tensor> params;
  for (Linear* layer : {&input_proj_, &wq_, &wk_, &wv_, &wo_, &ffn1_, &ffn2_})
    for (auto& p : layer->parameters()) params.push_back(p);
  return params;
}

}  // namespace ca5g::nn
