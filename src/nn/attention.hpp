// Single-head self-attention sequence encoder — the "transformer"
// building block the paper's future-work section proposes swapping into
// Prism5G in place of the LSTM. Operates on the same sequence
// representation as Lstm (a vector of T (batch × features) tensors) so
// the two are drop-in interchangeable inside the Prism5G encoder.
#pragma once

#include <memory>

#include "nn/layers.hpp"

namespace ca5g::nn {

/// One pre-activation self-attention block + position-wise FFN.
/// Positional information is injected via fixed sinusoidal encodings
/// added to the input projection.
class SelfAttentionEncoder final : public Module {
 public:
  SelfAttentionEncoder(common::Rng& rng, std::size_t input_size, std::size_t model_size,
                       std::size_t max_len = 64);

  /// Encode a sequence; returns per-step representations (batch × model).
  [[nodiscard]] std::vector<Tensor> forward(std::span<const Tensor> sequence) const;

  /// Final-step representation (attention over the whole sequence).
  [[nodiscard]] Tensor last_hidden(std::span<const Tensor> sequence) const;

  [[nodiscard]] std::vector<Tensor> parameters() override;
  [[nodiscard]] std::size_t model_size() const noexcept { return model_; }

 private:
  std::size_t model_;
  float scale_;
  Linear input_proj_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  Linear ffn1_;
  Linear ffn2_;
  std::vector<std::vector<float>> positional_;  ///< [max_len][model]
};

}  // namespace ca5g::nn
