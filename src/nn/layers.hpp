// Neural network layers built on the autograd Tensor: Linear, MLP,
// LSTM (cell and multi-layer sequence module), Embedding, and a causal
// dilated Conv1d for the TCN baseline. All layers expose their parameters
// for the optimizer and support seeded initialization.
#pragma once

#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace ca5g::nn {

/// Base class for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameter tensors (shared storage with the module).
  [[nodiscard]] virtual std::vector<Tensor> parameters() = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t parameter_count();
};

/// Fully connected layer: y = x·W + b, with x as (batch × in).
class Linear final : public Module {
 public:
  Linear(common::Rng& rng, std::size_t in_features, std::size_t out_features);

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::vector<Tensor> parameters() override;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  /// Read-only weight views for the inference fast path's plan compiler
  /// (nn/infer.hpp), which snapshots them into a packed layout.
  [[nodiscard]] const Tensor& weight() const noexcept { return weight_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;  ///< in × out
  Tensor bias_;    ///< 1 × out
};

/// Multi-layer perceptron with ReLU activations between layers.
class Mlp final : public Module {
 public:
  /// dims = {in, hidden..., out}; at least {in, out}.
  Mlp(common::Rng& rng, const std::vector<std::size_t>& dims);

  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::vector<Tensor> parameters() override;

  [[nodiscard]] const std::vector<Linear>& layers() const noexcept { return layers_; }

 private:
  std::vector<Linear> layers_;
};

/// One LSTM cell. Gate layout along columns: [i, f, g, o].
class LstmCell final : public Module {
 public:
  LstmCell(common::Rng& rng, std::size_t input_size, std::size_t hidden_size);

  struct State {
    Tensor h;  ///< batch × hidden
    Tensor c;  ///< batch × hidden
  };

  /// Zero state for a batch size.
  [[nodiscard]] State zero_state(std::size_t batch) const;

  /// One time step.
  [[nodiscard]] State step(const Tensor& x, const State& state) const;

  [[nodiscard]] std::vector<Tensor> parameters() override;
  [[nodiscard]] std::size_t hidden_size() const noexcept { return hidden_; }
  [[nodiscard]] std::size_t input_size() const noexcept { return input_; }

  [[nodiscard]] const Tensor& w_ih() const noexcept { return w_ih_; }
  [[nodiscard]] const Tensor& w_hh() const noexcept { return w_hh_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }

 private:
  std::size_t input_;
  std::size_t hidden_;
  Tensor w_ih_;  ///< input × 4·hidden
  Tensor w_hh_;  ///< hidden × 4·hidden
  Tensor bias_;  ///< 1 × 4·hidden
};

/// Stacked LSTM over a sequence of (batch × features) tensors.
class Lstm final : public Module {
 public:
  Lstm(common::Rng& rng, std::size_t input_size, std::size_t hidden_size,
       std::size_t num_layers);

  /// Process a sequence; returns the top layer's hidden state per step.
  [[nodiscard]] std::vector<Tensor> forward(std::span<const Tensor> sequence) const;

  /// Process a sequence and return the final (h, c) state of every layer
  /// — used to initialize Seq2Seq decoders (Lumos5G baseline).
  [[nodiscard]] std::vector<LstmCell::State> final_states(
      std::span<const Tensor> sequence) const;

  /// Run one step given explicit per-layer states (decoder unrolling).
  [[nodiscard]] Tensor step_with_states(const Tensor& x,
                                        std::vector<LstmCell::State>& states) const;

  /// Final top-layer hidden state only.
  [[nodiscard]] Tensor last_hidden(std::span<const Tensor> sequence) const;

  [[nodiscard]] std::vector<Tensor> parameters() override;
  [[nodiscard]] std::size_t hidden_size() const noexcept;

  [[nodiscard]] const std::vector<LstmCell>& cells() const noexcept { return cells_; }

 private:
  std::vector<LstmCell> cells_;
};

/// Embedding: integer ids → dense rows of a learned table.
class Embedding final : public Module {
 public:
  Embedding(common::Rng& rng, std::size_t num_embeddings, std::size_t dim);

  /// Lookup a batch of ids → (batch × dim). Implemented as one-hot·table
  /// so gradients flow into the table rows.
  [[nodiscard]] Tensor forward(std::span<const std::size_t> ids) const;

  [[nodiscard]] std::vector<Tensor> parameters() override;
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  std::size_t num_;
  std::size_t dim_;
  Tensor table_;  ///< num × dim
};

/// Causal dilated 1-D convolution over a sequence of (batch × channels)
/// tensors: y_t = b + Σ_k x_{t−k·dilation}·W_k (zero padded at t<0).
class CausalConv1d final : public Module {
 public:
  CausalConv1d(common::Rng& rng, std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t dilation);

  [[nodiscard]] std::vector<Tensor> forward(std::span<const Tensor> sequence) const;
  [[nodiscard]] std::vector<Tensor> parameters() override;

  [[nodiscard]] std::size_t kernel_size() const noexcept { return kernel_; }
  [[nodiscard]] std::size_t dilation() const noexcept { return dilation_; }
  [[nodiscard]] const std::vector<Tensor>& taps() const noexcept { return taps_; }
  [[nodiscard]] const Tensor& bias() const noexcept { return bias_; }

 private:
  std::size_t kernel_;
  std::size_t dilation_;
  std::vector<Tensor> taps_;  ///< kernel_size of (in × out)
  Tensor bias_;               ///< 1 × out
};

}  // namespace ca5g::nn
