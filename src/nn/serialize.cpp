#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace ca5g::nn {
namespace {

constexpr std::uint32_t kMagic = 0xCA5610A0;

template <typename T>
void append(std::vector<std::uint8_t>& out, const T& value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  CA5G_CHECK_MSG(offset + sizeof(T) <= in.size(), "truncated parameter blob");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_parameters(const std::vector<Tensor>& params) {
  std::vector<std::uint8_t> out;
  append(out, kMagic);
  append(out, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    CA5G_CHECK_MSG(p.defined(), "cannot serialize an undefined tensor");
    append(out, static_cast<std::uint32_t>(p.rows()));
    append(out, static_cast<std::uint32_t>(p.cols()));
    const auto& values = p.values();
    const std::size_t offset = out.size();
    out.resize(offset + values.size() * sizeof(float));
    std::memcpy(out.data() + offset, values.data(), values.size() * sizeof(float));
  }
  return out;
}

void deserialize_parameters(const std::vector<std::uint8_t>& blob,
                            std::vector<Tensor>& params) {
  std::size_t offset = 0;
  CA5G_CHECK_MSG(read<std::uint32_t>(blob, offset) == kMagic,
                 "bad parameter blob magic");
  const auto count = read<std::uint32_t>(blob, offset);
  CA5G_CHECK_MSG(count == params.size(),
                 "parameter count mismatch: blob has " << count << ", model has "
                                                       << params.size());
  for (auto& p : params) {
    const auto rows = read<std::uint32_t>(blob, offset);
    const auto cols = read<std::uint32_t>(blob, offset);
    CA5G_CHECK_MSG(rows == p.rows() && cols == p.cols(),
                   "parameter shape mismatch: blob " << rows << "x" << cols << ", model "
                                                     << p.rows() << "x" << p.cols());
    auto& values = p.values();
    CA5G_CHECK_MSG(offset + values.size() * sizeof(float) <= blob.size(),
                   "truncated parameter payload");
    std::memcpy(values.data(), blob.data() + offset, values.size() * sizeof(float));
    offset += values.size() * sizeof(float);
  }
  CA5G_CHECK_MSG(offset == blob.size(), "trailing bytes in parameter blob");
}

void save_parameters(const std::vector<Tensor>& params, const std::string& path) {
  const auto blob = serialize_parameters(params);
  std::ofstream out(path, std::ios::binary);
  CA5G_CHECK_MSG(out.good(), "cannot open for write: " << path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  CA5G_CHECK_MSG(out.good(), "write failed: " << path);
}

void load_parameters(std::vector<Tensor>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CA5G_CHECK_MSG(in.good(), "cannot open for read: " << path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(size));
  CA5G_CHECK_MSG(in.good(), "read failed: " << path);
  deserialize_parameters(blob, params);
}

}  // namespace ca5g::nn
