#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"

namespace ca5g::nn {
namespace {

// v1 blobs carried only this magic and no version word; v2 uses a new
// magic so a legacy file is diagnosed as such rather than misreading its
// tensor count as a version number.
constexpr std::uint32_t kMagicV1 = 0xCA5610A0;
constexpr std::uint32_t kMagic = 0xCA5610A2;

template <typename T>
void append(std::vector<std::uint8_t>& out, const T& value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  CA5G_CHECK_MSG(offset + sizeof(T) <= in.size(), "truncated parameter blob");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_parameters(const std::vector<Tensor>& params) {
  std::vector<std::uint8_t> out;
  append(out, kMagic);
  append(out, kSerializeFormatVersion);
  append(out, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    CA5G_CHECK_MSG(p.defined(), "cannot serialize an undefined tensor");
    append(out, static_cast<std::uint32_t>(p.rows()));
    append(out, static_cast<std::uint32_t>(p.cols()));
    const auto& values = p.values();
    const std::size_t offset = out.size();
    out.resize(offset + values.size() * sizeof(float));
    std::memcpy(out.data() + offset, values.data(), values.size() * sizeof(float));
  }
  return out;
}

void deserialize_parameters(const std::vector<std::uint8_t>& blob,
                            std::vector<Tensor>& params) {
  std::size_t offset = 0;
  const auto magic = read<std::uint32_t>(blob, offset);
  CA5G_CHECK_MSG(magic != kMagicV1,
                 "unversioned legacy parameter blob (format v1); re-save the "
                 "model with this build to upgrade it to format v"
                     << kSerializeFormatVersion);
  CA5G_CHECK_MSG(magic == kMagic, "bad parameter blob magic");
  const auto version = read<std::uint32_t>(blob, offset);
  CA5G_CHECK_MSG(version == kSerializeFormatVersion,
                 "parameter blob format version mismatch: expected v"
                     << kSerializeFormatVersion << ", found v" << version);
  const auto count = read<std::uint32_t>(blob, offset);
  CA5G_CHECK_MSG(count == params.size(),
                 "parameter count mismatch: blob has " << count << ", model has "
                                                       << params.size());
  for (auto& p : params) {
    const auto rows = read<std::uint32_t>(blob, offset);
    const auto cols = read<std::uint32_t>(blob, offset);
    CA5G_CHECK_MSG(rows == p.rows() && cols == p.cols(),
                   "parameter shape mismatch: blob " << rows << "x" << cols << ", model "
                                                     << p.rows() << "x" << p.cols());
    auto& values = p.values();
    CA5G_CHECK_MSG(offset + values.size() * sizeof(float) <= blob.size(),
                   "truncated parameter payload");
    std::memcpy(values.data(), blob.data() + offset, values.size() * sizeof(float));
    offset += values.size() * sizeof(float);
  }
  CA5G_CHECK_MSG(offset == blob.size(), "trailing bytes in parameter blob");
}

void save_parameters(const std::vector<Tensor>& params, const std::string& path) {
  const auto blob = serialize_parameters(params);
  std::ofstream out(path, std::ios::binary);
  CA5G_CHECK_MSG(out.good(), "cannot open for write: " << path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  CA5G_CHECK_MSG(out.good(), "write failed: " << path);
}

void load_parameters(std::vector<Tensor>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CA5G_CHECK_MSG(in.good(), "cannot open for read: " << path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(size));
  CA5G_CHECK_MSG(in.good(), "read failed: " << path);
  try {
    deserialize_parameters(blob, params);
  } catch (const common::CheckError& e) {
    // Re-raise with the offending file named: a version/magic mismatch on
    // load should point at the artifact, not just the blob internals.
    CA5G_CHECK_MSG(false, "while loading " << path << ": " << e.what());
  }
}

}  // namespace ca5g::nn
