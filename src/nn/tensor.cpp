#include "nn/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_set>

#include "common/contracts.hpp"

namespace ca5g::nn {
namespace {

/// Lifetime node-construction count backing debug_node_allocations().
std::atomic<std::uint64_t> g_node_allocations{0};

}  // namespace

std::uint64_t debug_node_allocations() noexcept {
  return g_node_allocations.load(std::memory_order_relaxed);
}

namespace detail {

/// Graph node: storage, gradient, and the local backward rule.
struct Node {
  std::vector<float> values;
  std::vector<float> grad;
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Accumulates this node's grad into its parents' grads.
  std::function<void(Node&)> backward_fn;

  Node(std::size_t r, std::size_t c, bool rg)
      : values(r * c, 0.0f), rows(r), cols(c), requires_grad(rg) {
    if (rg) grad.assign(r * c, 0.0f);
    g_node_allocations.fetch_add(1, std::memory_order_relaxed);
  }

  void ensure_grad() {
    if (grad.size() != values.size()) grad.assign(values.size(), 0.0f);
  }
};

}  // namespace detail

using detail::Node;

namespace {

std::shared_ptr<Node> make_result(std::size_t rows, std::size_t cols,
                                  std::vector<std::shared_ptr<Node>> parents) {
  bool rg = false;
  for (const auto& p : parents) rg = rg || p->requires_grad;
  auto node = std::make_shared<Node>(rows, cols, rg);
  node->parents = std::move(parents);
  if (rg) node->ensure_grad();
  return node;
}

void check_defined(const Tensor& t, const char* what) {
  CA5G_CHECK_MSG(t.defined(), "undefined tensor passed to " << what);
}

/// Cache-friendly (i,k,j) matmul kernel: C += A·B.
void matmul_kernel(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      if (aval == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

/// C += Aᵀ·B where A is (m×k) interpreted transposed → (k×m)·(m×n).
void matmul_at_b(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = arow[kk];
      if (aval == 0.0f) continue;
      float* crow = c + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

/// C += A·Bᵀ where B is (n×k): (m×k)·(k×n).
void matmul_a_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                 std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace

Tensor::Tensor(std::size_t rows, std::size_t cols, bool requires_grad)
    : node_(std::make_shared<Node>(rows, cols, requires_grad)) {}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) { return Tensor(rows, cols, false); }

Tensor Tensor::constant(std::size_t rows, std::size_t cols, float value) {
  Tensor t(rows, cols, false);
  std::fill(t.values().begin(), t.values().end(), value);
  return t;
}

Tensor Tensor::from(std::vector<float> values, std::size_t rows, std::size_t cols) {
  CA5G_CHECK_MSG(values.size() == rows * cols, "from(): size mismatch");
  Tensor t(rows, cols, false);
  t.values() = std::move(values);
  return t;
}

Tensor Tensor::randn(common::Rng& rng, std::size_t rows, std::size_t cols, float stddev,
                     bool requires_grad) {
  Tensor t(rows, cols, requires_grad);
  for (auto& v : t.values()) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

std::size_t Tensor::rows() const {
  check_defined(*this, "rows()");
  return node_->rows;
}

std::size_t Tensor::cols() const {
  check_defined(*this, "cols()");
  return node_->cols;
}

float Tensor::at(std::size_t r, std::size_t c) const {
  check_defined(*this, "at()");
  CA5G_CHECK_MSG(r < node_->rows && c < node_->cols, "index out of range");
  return node_->values[r * node_->cols + c];
}

void Tensor::set(std::size_t r, std::size_t c, float value) {
  check_defined(*this, "set()");
  CA5G_CHECK_MSG(r < node_->rows && c < node_->cols, "index out of range");
  node_->values[r * node_->cols + c] = value;
}

std::vector<float>& Tensor::values() {
  check_defined(*this, "values()");
  return node_->values;
}

const std::vector<float>& Tensor::values() const {
  check_defined(*this, "values()");
  return node_->values;
}

std::vector<float>& Tensor::grad() {
  check_defined(*this, "grad()");
  node_->ensure_grad();
  return node_->grad;
}

const std::vector<float>& Tensor::grad() const {
  check_defined(*this, "grad()");
  // No lazy allocation here: a const accessor mutating the node is a
  // data race once trained models are shared across serving threads.
  // Gradients exist by construction on requires_grad nodes and after
  // zero_grad(); anything else is a caller bug.
  CA5G_CHECK_MSG(node_->grad.size() == node_->values.size(),
                 "grad() const before the gradient buffer exists; use "
                 "zero_grad() or a requires_grad tensor");
  return node_->grad;
}

bool Tensor::requires_grad() const {
  check_defined(*this, "requires_grad()");
  return node_->requires_grad;
}

void Tensor::zero_grad() {
  check_defined(*this, "zero_grad()");
  node_->ensure_grad();
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::backward() {
  check_defined(*this, "backward()");
  CA5G_CHECK_MSG(node_->rows == 1 && node_->cols == 1,
                 "backward() must start from a scalar");

  // Topological order via iterative DFS over parents.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_parent] = stack.back();
    if (next_parent < node->parents.size()) {
      Node* parent = node->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad) {
      // Shape/stride agreement: a node whose storage was resized behind the
      // graph's back (e.g. via values()) would silently corrupt gradients.
      CA5G_DCHECK_EQ_MSG(node->values.size(), node->rows * node->cols,
                         "tensor storage diverged from its rows x cols shape");
      CA5G_DCHECK_EQ_MSG(node->grad.size(), node->values.size(),
                         "gradient buffer diverged from value buffer");
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::detach() const {
  check_defined(*this, "detach()");
  Tensor t(node_->rows, node_->cols, false);
  t.values() = node_->values;
  return t;
}

// ---- Ops ------------------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_defined(a, "matmul");
  check_defined(b, "matmul");
  CA5G_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch: " << a.rows() << "x"
                                                                 << a.cols() << " · "
                                                                 << b.rows() << "x"
                                                                 << b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = make_result(m, n, {a.node(), b.node()});
  matmul_kernel(a.values().data(), b.values().data(), out->values.data(), m, k, n);
  if (out->requires_grad) {
    out->backward_fn = [m, k, n](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      CA5G_DCHECK_EQ_MSG(pa.rows * pa.cols, m * k, "matmul lhs reshaped after forward");
      CA5G_DCHECK_EQ_MSG(pb.rows * pb.cols, k * n, "matmul rhs reshaped after forward");
      if (pa.requires_grad) {
        pa.ensure_grad();
        // dA = dC · Bᵀ
        matmul_a_bt(self.grad.data(), pb.values.data(), pa.grad.data(), m, n, k);
      }
      if (pb.requires_grad) {
        pb.ensure_grad();
        // dB = Aᵀ · dC
        matmul_at_b(pa.values.data(), self.grad.data(), pb.grad.data(), m, k, n);
      }
    };
  }
  return Tensor(out);
}

Tensor operator+(const Tensor& a, const Tensor& b) {
  check_defined(a, "operator+");
  check_defined(b, "operator+");
  const bool broadcast = b.rows() == 1 && a.rows() != 1 && a.cols() == b.cols();
  CA5G_CHECK_MSG(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()),
                 "operator+ shape mismatch");
  auto out = make_result(a.rows(), a.cols(), {a.node(), b.node()});
  const float* av = a.values().data();
  const float* bv = b.values().data();
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < out->values.size(); ++i)
    out->values[i] = av[i] + (broadcast ? bv[i % n] : bv[i]);
  if (out->requires_grad) {
    out->backward_fn = [broadcast, n](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      if (pa.requires_grad) {
        pa.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) pa.grad[i] += self.grad[i];
      }
      if (pb.requires_grad) {
        pb.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          pb.grad[broadcast ? i % n : i] += self.grad[i];
      }
    };
  }
  return Tensor(out);
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  check_defined(a, "operator-");
  check_defined(b, "operator-");
  CA5G_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "operator- shape mismatch");
  auto out = make_result(a.rows(), a.cols(), {a.node(), b.node()});
  const float* av = a.values().data();
  const float* bv = b.values().data();
  for (std::size_t i = 0; i < out->values.size(); ++i)
    out->values[i] = av[i] - bv[i];
  if (out->requires_grad) {
    out->backward_fn = [](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      if (pa.requires_grad) {
        pa.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) pa.grad[i] += self.grad[i];
      }
      if (pb.requires_grad) {
        pb.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i) pb.grad[i] -= self.grad[i];
      }
    };
  }
  return Tensor(out);
}

Tensor operator*(const Tensor& a, const Tensor& b) {
  check_defined(a, "operator*");
  check_defined(b, "operator*");
  const bool broadcast = b.rows() == 1 && a.rows() != 1 && a.cols() == b.cols();
  CA5G_CHECK_MSG(broadcast || (a.rows() == b.rows() && a.cols() == b.cols()),
                 "operator* shape mismatch");
  auto out = make_result(a.rows(), a.cols(), {a.node(), b.node()});
  const float* av = a.values().data();
  const float* bv = b.values().data();
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < out->values.size(); ++i)
    out->values[i] = av[i] * (broadcast ? bv[i % n] : bv[i]);
  if (out->requires_grad) {
    out->backward_fn = [broadcast, n](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      if (pa.requires_grad) {
        pa.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          pa.grad[i] += self.grad[i] * (broadcast ? pb.values[i % n] : pb.values[i]);
      }
      if (pb.requires_grad) {
        pb.ensure_grad();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
          pb.grad[broadcast ? i % n : i] += self.grad[i] * pa.values[i];
      }
    };
  }
  return Tensor(out);
}

Tensor scale(const Tensor& a, float factor) {
  check_defined(a, "scale");
  auto out = make_result(a.rows(), a.cols(), {a.node()});
  const float* av = a.values().data();
  for (std::size_t i = 0; i < out->values.size(); ++i) out->values[i] = av[i] * factor;
  if (out->requires_grad) {
    out->backward_fn = [factor](Node& self) {
      Node& pa = *self.parents[0];
      pa.ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i) pa.grad[i] += self.grad[i] * factor;
    };
  }
  return Tensor(out);
}

namespace {

template <typename Fwd, typename Dfn>
Tensor unary_op(const Tensor& a, Fwd fwd, Dfn dfn, const char* name) {
  check_defined(a, name);
  auto out = make_result(a.rows(), a.cols(), {a.node()});
  const float* av = a.values().data();
  for (std::size_t i = 0; i < out->values.size(); ++i) out->values[i] = fwd(av[i]);
  if (out->requires_grad) {
    out->backward_fn = [dfn](Node& self) {
      Node& pa = *self.parents[0];
      pa.ensure_grad();
      for (std::size_t i = 0; i < self.grad.size(); ++i)
        pa.grad[i] += self.grad[i] * dfn(pa.values[i], self.values[i]);
    };
  }
  return Tensor(out);
}

}  // namespace

Tensor tanh_op(const Tensor& a) {
  return unary_op(
      a, [](float x) { return std::tanh(x); },
      [](float /*x*/, float y) { return 1.0f - y * y; }, "tanh");
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float /*x*/, float y) { return y * (1.0f - y); }, "sigmoid");
}

Tensor relu(const Tensor& a) {
  return unary_op(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float /*y*/) { return x > 0.0f ? 1.0f : 0.0f; }, "relu");
}

Tensor concat_cols(std::span<const Tensor> parts) {
  CA5G_CHECK_MSG(!parts.empty(), "concat_cols of nothing");
  const std::size_t rows = parts.front().rows();
  std::size_t total_cols = 0;
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& p : parts) {
    check_defined(p, "concat_cols");
    CA5G_CHECK_MSG(p.rows() == rows, "concat_cols row mismatch");
    total_cols += p.cols();
    parents.push_back(p.node());
  }
  auto out = make_result(rows, total_cols, std::move(parents));
  std::size_t offset = 0;
  for (const auto& p : parts) {
    const float* pv = p.values().data();
    const std::size_t pc = p.cols();
    for (std::size_t r = 0; r < rows; ++r)
      std::copy(pv + r * pc, pv + (r + 1) * pc,
                out->values.begin() + static_cast<std::ptrdiff_t>(r * total_cols + offset));
    offset += pc;
  }
  if (out->requires_grad) {
    out->backward_fn = [rows, total_cols](Node& self) {
      std::size_t grad_offset = 0;
      for (auto& parent : self.parents) {
        const std::size_t pc = parent->cols;
        if (parent->requires_grad) {
          parent->ensure_grad();
          for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < pc; ++c)
              parent->grad[r * pc + c] += self.grad[r * total_cols + grad_offset + c];
        }
        grad_offset += pc;
      }
    };
  }
  return Tensor(out);
}

Tensor slice_cols(const Tensor& a, std::size_t start, std::size_t len) {
  check_defined(a, "slice_cols");
  CA5G_CHECK_MSG(start + len <= a.cols(), "slice_cols out of range");
  const std::size_t rows = a.rows();
  const std::size_t src_cols = a.cols();
  auto out = make_result(rows, len, {a.node()});
  const float* av = a.values().data();
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < len; ++c)
      out->values[r * len + c] = av[r * src_cols + start + c];
  if (out->requires_grad) {
    out->backward_fn = [rows, len, src_cols, start](Node& self) {
      Node& pa = *self.parents[0];
      pa.ensure_grad();
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < len; ++c)
          pa.grad[r * src_cols + start + c] += self.grad[r * len + c];
    };
  }
  return Tensor(out);
}

Tensor sum_all(const Tensor& a) {
  check_defined(a, "sum_all");
  auto out = make_result(1, 1, {a.node()});
  float acc = 0.0f;
  for (float v : a.values()) acc += v;
  out->values[0] = acc;
  if (out->requires_grad) {
    out->backward_fn = [](Node& self) {
      Node& pa = *self.parents[0];
      pa.ensure_grad();
      for (auto& g : pa.grad) g += self.grad[0];
    };
  }
  return Tensor(out);
}

Tensor mean_all(const Tensor& a) {
  check_defined(a, "mean_all");
  return scale(sum_all(a), 1.0f / static_cast<float>(a.size()));
}

Tensor softmax_rows(const Tensor& a) {
  check_defined(a, "softmax_rows");
  const std::size_t rows = a.rows(), cols = a.cols();
  auto out = make_result(rows, cols, {a.node()});
  const float* av = a.values().data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* arow = av + r * cols;
    float maxv = arow[0];
    for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, arow[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float e = std::exp(arow[c] - maxv);
      out->values[r * cols + c] = e;
      denom += e;
    }
    for (std::size_t c = 0; c < cols; ++c) out->values[r * cols + c] /= denom;
  }
  if (out->requires_grad) {
    out->backward_fn = [rows, cols](Node& self) {
      Node& pa = *self.parents[0];
      pa.ensure_grad();
      // dL/dx_j = y_j (dL/dy_j − Σ_k dL/dy_k y_k), per row.
      for (std::size_t r = 0; r < rows; ++r) {
        float dot = 0.0f;
        for (std::size_t c = 0; c < cols; ++c)
          dot += self.grad[r * cols + c] * self.values[r * cols + c];
        for (std::size_t c = 0; c < cols; ++c)
          pa.grad[r * cols + c] +=
              self.values[r * cols + c] * (self.grad[r * cols + c] - dot);
      }
    };
  }
  return Tensor(out);
}

Tensor rowwise_dot(const Tensor& a, const Tensor& b) {
  check_defined(a, "rowwise_dot");
  check_defined(b, "rowwise_dot");
  CA5G_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                 "rowwise_dot shape mismatch");
  const std::size_t rows = a.rows(), cols = a.cols();
  auto out = make_result(rows, 1, {a.node(), b.node()});
  const float* av = a.values().data();
  const float* bv = b.values().data();
  for (std::size_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      acc += av[r * cols + c] * bv[r * cols + c];
    out->values[r] = acc;
  }
  if (out->requires_grad) {
    out->backward_fn = [rows, cols](Node& self) {
      Node& pa = *self.parents[0];
      Node& pb = *self.parents[1];
      if (pa.requires_grad) {
        pa.ensure_grad();
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < cols; ++c)
            pa.grad[r * cols + c] += self.grad[r] * pb.values[r * cols + c];
      }
      if (pb.requires_grad) {
        pb.ensure_grad();
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < cols; ++c)
            pb.grad[r * cols + c] += self.grad[r] * pa.values[r * cols + c];
      }
    };
  }
  return Tensor(out);
}

Tensor mul_col_broadcast(const Tensor& a, const Tensor& col) {
  check_defined(a, "mul_col_broadcast");
  check_defined(col, "mul_col_broadcast");
  CA5G_CHECK_MSG(col.cols() == 1 && col.rows() == a.rows(),
                 "mul_col_broadcast needs a (rows x 1) column");
  const std::size_t rows = a.rows(), cols = a.cols();
  auto out = make_result(rows, cols, {a.node(), col.node()});
  const float* av = a.values().data();
  const float* colv = col.values().data();
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out->values[r * cols + c] = av[r * cols + c] * colv[r];
  if (out->requires_grad) {
    out->backward_fn = [rows, cols](Node& self) {
      Node& pa = *self.parents[0];
      Node& pcol = *self.parents[1];
      if (pa.requires_grad) {
        pa.ensure_grad();
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t c = 0; c < cols; ++c)
            pa.grad[r * cols + c] += self.grad[r * cols + c] * pcol.values[r];
      }
      if (pcol.requires_grad) {
        pcol.ensure_grad();
        for (std::size_t r = 0; r < rows; ++r) {
          float acc = 0.0f;
          for (std::size_t c = 0; c < cols; ++c)
            acc += self.grad[r * cols + c] * pa.values[r * cols + c];
          pcol.grad[r] += acc;
        }
      }
    };
  }
  return Tensor(out);
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  check_defined(pred, "mse_loss");
  check_defined(target, "mse_loss");
  CA5G_CHECK_MSG(pred.rows() == target.rows() && pred.cols() == target.cols(),
                 "mse_loss shape mismatch");
  const Tensor diff = pred - target;
  return mean_all(diff * diff);
}

}  // namespace ca5g::nn
