#include "nn/layers.hpp"

#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::nn {
namespace {

/// Xavier/Glorot-style init scale for a fan-in/fan-out pair.
float xavier_std(std::size_t fan_in, std::size_t fan_out) {
  return std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
}

}  // namespace

std::size_t Module::parameter_count() {
  std::size_t total = 0;
  for (const auto& p : parameters()) total += p.size();
  return total;
}

// ---- Linear ----------------------------------------------------------------

Linear::Linear(common::Rng& rng, std::size_t in_features, std::size_t out_features)
    : in_(in_features), out_(out_features),
      weight_(Tensor::randn(rng, in_features, out_features,
                            xavier_std(in_features, out_features))),
      bias_(Tensor(1, out_features, true)) {
  CA5G_CHECK_MSG(in_features > 0 && out_features > 0, "Linear with empty dimension");
}

Tensor Linear::forward(const Tensor& x) const {
  CA5G_METRIC_HISTOGRAM(forward_ns, "nn.linear_forward_ns");
  CA5G_SCOPED_TIMER(forward_ns);
  CA5G_CHECK_MSG(x.cols() == in_, "Linear input width " << x.cols() << " != " << in_);
  return matmul(x, weight_) + bias_;
}

std::vector<Tensor> Linear::parameters() { return {weight_, bias_}; }

// ---- MLP -------------------------------------------------------------------

Mlp::Mlp(common::Rng& rng, const std::vector<std::size_t>& dims) {
  CA5G_CHECK_MSG(dims.size() >= 2, "MLP needs at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) layers_.emplace_back(rng, dims[i], dims[i + 1]);
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].forward(h);
    if (i + 1 < layers_.size()) h = relu(h);
  }
  return h;
}

std::vector<Tensor> Mlp::parameters() {
  std::vector<Tensor> params;
  for (auto& layer : layers_)
    for (auto& p : layer.parameters()) params.push_back(p);
  return params;
}

// ---- LSTM cell --------------------------------------------------------------

LstmCell::LstmCell(common::Rng& rng, std::size_t input_size, std::size_t hidden_size)
    : input_(input_size), hidden_(hidden_size),
      w_ih_(Tensor::randn(rng, input_size, 4 * hidden_size,
                          xavier_std(input_size, hidden_size))),
      w_hh_(Tensor::randn(rng, hidden_size, 4 * hidden_size,
                          xavier_std(hidden_size, hidden_size))),
      bias_(Tensor(1, 4 * hidden_size, true)) {
  CA5G_CHECK_MSG(input_size > 0 && hidden_size > 0, "LstmCell with empty dimension");
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (std::size_t c = hidden_; c < 2 * hidden_; ++c) bias_.set(0, c, 1.0f);
}

LstmCell::State LstmCell::zero_state(std::size_t batch) const {
  return {Tensor::zeros(batch, hidden_), Tensor::zeros(batch, hidden_)};
}

LstmCell::State LstmCell::step(const Tensor& x, const State& state) const {
  CA5G_METRIC_HISTOGRAM(step_ns, "nn.lstm_cell_step_ns");
  CA5G_SCOPED_TIMER(step_ns);
  CA5G_CHECK_MSG(x.cols() == input_, "LstmCell input width mismatch");
  const Tensor gates = matmul(x, w_ih_) + (matmul(state.h, w_hh_) + bias_);
  const Tensor i = sigmoid(slice_cols(gates, 0, hidden_));
  const Tensor f = sigmoid(slice_cols(gates, hidden_, hidden_));
  const Tensor g = tanh_op(slice_cols(gates, 2 * hidden_, hidden_));
  const Tensor o = sigmoid(slice_cols(gates, 3 * hidden_, hidden_));
  State next;
  next.c = f * state.c + i * g;
  next.h = o * tanh_op(next.c);
  return next;
}

std::vector<Tensor> LstmCell::parameters() { return {w_ih_, w_hh_, bias_}; }

// ---- Stacked LSTM -----------------------------------------------------------

Lstm::Lstm(common::Rng& rng, std::size_t input_size, std::size_t hidden_size,
           std::size_t num_layers) {
  CA5G_CHECK_MSG(num_layers >= 1, "LSTM needs at least one layer");
  for (std::size_t i = 0; i < num_layers; ++i)
    cells_.emplace_back(rng, i == 0 ? input_size : hidden_size, hidden_size);
}

std::vector<Tensor> Lstm::forward(std::span<const Tensor> sequence) const {
  CA5G_CHECK_MSG(!sequence.empty(), "LSTM forward on empty sequence");
  const std::size_t batch = sequence.front().rows();

  std::vector<LstmCell::State> states;
  states.reserve(cells_.size());
  for (const auto& cell : cells_) states.push_back(cell.zero_state(batch));

  std::vector<Tensor> outputs;
  outputs.reserve(sequence.size());
  for (const Tensor& x : sequence) {
    Tensor input = x;
    for (std::size_t layer = 0; layer < cells_.size(); ++layer) {
      states[layer] = cells_[layer].step(input, states[layer]);
      input = states[layer].h;
    }
    outputs.push_back(input);
  }
  return outputs;
}

Tensor Lstm::last_hidden(std::span<const Tensor> sequence) const {
  return forward(sequence).back();
}

std::vector<LstmCell::State> Lstm::final_states(std::span<const Tensor> sequence) const {
  CA5G_CHECK_MSG(!sequence.empty(), "LSTM final_states on empty sequence");
  const std::size_t batch = sequence.front().rows();
  std::vector<LstmCell::State> states;
  states.reserve(cells_.size());
  for (const auto& cell : cells_) states.push_back(cell.zero_state(batch));
  for (const Tensor& x : sequence) {
    Tensor input = x;
    for (std::size_t layer = 0; layer < cells_.size(); ++layer) {
      states[layer] = cells_[layer].step(input, states[layer]);
      input = states[layer].h;
    }
  }
  return states;
}

Tensor Lstm::step_with_states(const Tensor& x, std::vector<LstmCell::State>& states) const {
  CA5G_CHECK_MSG(states.size() == cells_.size(), "state/layer count mismatch");
  Tensor input = x;
  for (std::size_t layer = 0; layer < cells_.size(); ++layer) {
    states[layer] = cells_[layer].step(input, states[layer]);
    input = states[layer].h;
  }
  return input;
}

std::vector<Tensor> Lstm::parameters() {
  std::vector<Tensor> params;
  for (auto& cell : cells_)
    for (auto& p : cell.parameters()) params.push_back(p);
  return params;
}

std::size_t Lstm::hidden_size() const noexcept { return cells_.front().hidden_size(); }

// ---- Embedding ---------------------------------------------------------------

Embedding::Embedding(common::Rng& rng, std::size_t num_embeddings, std::size_t dim)
    : num_(num_embeddings), dim_(dim),
      table_(Tensor::randn(rng, num_embeddings, dim, 0.1f)) {
  CA5G_CHECK_MSG(num_embeddings > 0 && dim > 0, "Embedding with empty dimension");
}

Tensor Embedding::forward(std::span<const std::size_t> ids) const {
  CA5G_CHECK_MSG(!ids.empty(), "Embedding lookup of nothing");
  Tensor onehot = Tensor::zeros(ids.size(), num_);
  for (std::size_t r = 0; r < ids.size(); ++r) {
    CA5G_CHECK_MSG(ids[r] < num_, "embedding id out of range: " << ids[r]);
    onehot.set(r, ids[r], 1.0f);
  }
  return matmul(onehot, table_);
}

std::vector<Tensor> Embedding::parameters() { return {table_}; }

// ---- Causal Conv1d ------------------------------------------------------------

CausalConv1d::CausalConv1d(common::Rng& rng, std::size_t in_channels,
                           std::size_t out_channels, std::size_t kernel_size,
                           std::size_t dilation)
    : kernel_(kernel_size), dilation_(dilation), bias_(Tensor(1, out_channels, true)) {
  CA5G_CHECK_MSG(kernel_size >= 1 && dilation >= 1, "bad conv geometry");
  for (std::size_t k = 0; k < kernel_size; ++k)
    taps_.push_back(Tensor::randn(rng, in_channels, out_channels,
                                  xavier_std(in_channels * kernel_size, out_channels)));
}

std::vector<Tensor> CausalConv1d::forward(std::span<const Tensor> sequence) const {
  CA5G_METRIC_HISTOGRAM(forward_ns, "nn.conv1d_forward_ns");
  CA5G_SCOPED_TIMER(forward_ns);
  CA5G_CHECK_MSG(!sequence.empty(), "conv forward on empty sequence");
  std::vector<Tensor> outputs;
  outputs.reserve(sequence.size());
  for (std::size_t t = 0; t < sequence.size(); ++t) {
    Tensor acc;
    for (std::size_t k = 0; k < kernel_; ++k) {
      const std::ptrdiff_t src =
          static_cast<std::ptrdiff_t>(t) - static_cast<std::ptrdiff_t>(k * dilation_);
      if (src < 0) continue;  // causal zero padding
      const Tensor term = matmul(sequence[static_cast<std::size_t>(src)], taps_[k]);
      acc = acc.defined() ? acc + term : term;
    }
    if (!acc.defined())
      acc = Tensor::zeros(sequence[t].rows(), bias_.cols());
    outputs.push_back(acc + bias_);
  }
  return outputs;
}

std::vector<Tensor> CausalConv1d::parameters() {
  std::vector<Tensor> params = taps_;
  params.push_back(bias_);
  return params;
}

}  // namespace ca5g::nn
