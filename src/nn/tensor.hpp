// A small reverse-mode automatic-differentiation engine over 2-D float
// tensors (rows × cols). Prism5G's fusion architecture — weight-shared
// per-CC encoders, mask embedding, fusion module, per-CC heads joined by
// a sum — is a dynamic graph; building gradients automatically keeps the
// model code declarative and correct.
//
// Tensors have shared-pointer value semantics (copies alias the same
// storage, like torch). The graph is built eagerly by the ops below and
// freed when the last Tensor referencing a node is destroyed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace ca5g::nn {

namespace detail {
struct Node;
}  // namespace detail

/// Total autograd graph nodes constructed since process start (every
/// Tensor and every op result is exactly one). A relaxed atomic, always
/// on — it is one uncontended increment per node, noise next to the
/// node's own heap allocations. The inference fast path (nn/infer.hpp)
/// must leave this flat: tests assert a zero delta across fast-path
/// predictions to prove serving builds no graphs.
[[nodiscard]] std::uint64_t debug_node_allocations() noexcept;

/// 2-D tensor with optional gradient tracking.
class Tensor {
 public:
  /// Undefined tensor (use defined() to test).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  Tensor(std::size_t rows, std::size_t cols, bool requires_grad = false);

  [[nodiscard]] static Tensor zeros(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Tensor constant(std::size_t rows, std::size_t cols, float value);
  /// Tensor from row-major data.
  [[nodiscard]] static Tensor from(std::vector<float> values, std::size_t rows,
                                   std::size_t cols);
  /// Gaussian-initialized parameter tensor.
  [[nodiscard]] static Tensor randn(common::Rng& rng, std::size_t rows, std::size_t cols,
                                    float stddev, bool requires_grad = true);

  [[nodiscard]] bool defined() const noexcept { return node_ != nullptr; }
  [[nodiscard]] std::size_t rows() const;
  [[nodiscard]] std::size_t cols() const;
  [[nodiscard]] std::size_t size() const { return rows() * cols(); }

  [[nodiscard]] float at(std::size_t r, std::size_t c) const;
  /// Mutable access — only sensible on leaf tensors before use in a graph.
  void set(std::size_t r, std::size_t c, float value);

  [[nodiscard]] std::vector<float>& values();
  [[nodiscard]] const std::vector<float>& values() const;
  [[nodiscard]] std::vector<float>& grad();
  /// Read-only gradient access. The buffer must already exist — it is
  /// allocated when a requires_grad node is built or by zero_grad() —
  /// because a const accessor that lazily allocates would mutate shared
  /// state under concurrent readers (e.g. a served model).
  [[nodiscard]] const std::vector<float>& grad() const;

  [[nodiscard]] bool requires_grad() const;
  void zero_grad();

  /// Backpropagate from this scalar (1×1) tensor through the graph.
  void backward();

  /// Detached copy: same values, no graph history, no gradient tracking.
  [[nodiscard]] Tensor detach() const;

  /// Internal node accessor for op implementations.
  [[nodiscard]] const std::shared_ptr<detail::Node>& node() const noexcept { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

// ---- Operations (all differentiable) -------------------------------------

/// Matrix product: (m×k)·(k×n) → m×n.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise sum; `b` may also be a 1×n row vector broadcast over rows.
[[nodiscard]] Tensor operator+(const Tensor& a, const Tensor& b);

/// Elementwise difference (same-shape only).
[[nodiscard]] Tensor operator-(const Tensor& a, const Tensor& b);

/// Hadamard product; `b` may be a 1×n row broadcast.
[[nodiscard]] Tensor operator*(const Tensor& a, const Tensor& b);

/// Multiply by a compile-time constant scalar.
[[nodiscard]] Tensor scale(const Tensor& a, float factor);

[[nodiscard]] Tensor tanh_op(const Tensor& a);
[[nodiscard]] Tensor sigmoid(const Tensor& a);
[[nodiscard]] Tensor relu(const Tensor& a);

/// Horizontal concatenation (equal row counts).
[[nodiscard]] Tensor concat_cols(std::span<const Tensor> parts);

/// Column slice [start, start+len).
[[nodiscard]] Tensor slice_cols(const Tensor& a, std::size_t start, std::size_t len);

/// Sum of all elements → 1×1.
[[nodiscard]] Tensor sum_all(const Tensor& a);

/// Mean of all elements → 1×1.
[[nodiscard]] Tensor mean_all(const Tensor& a);

/// Mean squared error between prediction and a constant target → 1×1.
[[nodiscard]] Tensor mse_loss(const Tensor& pred, const Tensor& target);

/// Row-wise softmax: each row sums to 1.
[[nodiscard]] Tensor softmax_rows(const Tensor& a);

/// Row-wise dot product of equally-shaped tensors → (rows × 1).
[[nodiscard]] Tensor rowwise_dot(const Tensor& a, const Tensor& b);

/// Multiply each row of `a` by the matching scalar of a (rows × 1)
/// column vector.
[[nodiscard]] Tensor mul_col_broadcast(const Tensor& a, const Tensor& col);

}  // namespace ca5g::nn
