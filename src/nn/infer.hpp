// Graph-free inference fast path. The autograd Tensor builds a
// reverse-mode graph on every op — one shared_ptr<Node> plus heap
// vectors per matmul/add/activation — which is pure tax when nothing
// will ever call backward(). Serving (src/serve) and evaluation
// (src/eval) run the same forward thousands of times per second, so
// this header provides:
//
//   * Arena — a chunked bump allocator for forward scratch. Blocks are
//     never freed by reset(), so after the first forward a plan runs
//     with zero steady-state heap allocations (pointers into the arena
//     stay valid until reset()). One arena per thread via
//     thread_arena().
//   * Kernels — raw float entry points mirroring the autograd ops
//     (matmul, bias-add, tanh/sigmoid/relu, concat, slice, softmax,
//     rowwise-dot, col-broadcast) that write into caller buffers and
//     never construct detail::Node. Each is BIT-IDENTICAL to its
//     Tensor counterpart: same accumulation order, same zero-skip in
//     the matmul inner loop, same activation formulas — tests diff the
//     two paths with operator== on floats, not a tolerance.
//   * Packed modules — PackedLinear/PackedMlp/PackedLstm/PackedConv1d
//     snapshot a layer's weights once at plan-compile time into flat
//     contiguous buffers for the row-blocked matmul_xw kernel. Plans
//     are immutable after construction and safe to run concurrently
//     from many threads.
//
// The autograd path remains the reference oracle: a compiled plan must
// reproduce forward_batch(..., training=false) bit-for-bit, and
// bench_infer_fastpath + tests/test_infer_fastpath.cpp enforce it.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace ca5g::nn::infer {

// --- Arena -------------------------------------------------------------------

/// Chunked bump allocator for forward-pass scratch. alloc() hands out
/// float buffers from fixed blocks (geometric growth when a run needs
/// more); reset() rewinds the cursor without freeing, so a steady-state
/// forward touches the heap zero times. Pointers returned since the
/// last reset() stay valid — blocks are never reused within a run.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A buffer of `count` floats (uninitialized). Valid until reset().
  [[nodiscard]] float* alloc(std::size_t count);

  /// Rewind to empty, keeping every block for reuse.
  void reset() noexcept;

  /// Total bytes owned across all blocks. Stable across runs once the
  /// first forward has sized the arena — tests assert exactly that.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept;

  /// Largest bytes handed out between two resets so far.
  [[nodiscard]] std::size_t high_water_bytes() const noexcept {
    return high_water_floats_ * sizeof(float);
  }

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    std::size_t capacity = 0;  ///< floats
    std::size_t used = 0;      ///< floats
  };

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;            ///< block currently being filled
  std::size_t run_floats_ = 0;        ///< floats handed out since reset()
  std::size_t high_water_floats_ = 0;
};

/// The calling thread's arena (function-local thread_local). Serve
/// workers and eval threads each get their own scratch for free; plans
/// are immutable, so concurrent runs on a shared model never race.
[[nodiscard]] Arena& thread_arena();

// --- Kernels -----------------------------------------------------------------
//
// All kernels are bit-identical to the autograd ops they shadow; see
// the per-kernel notes for the accumulation-order contract.

/// y = x·W (+ bias broadcast when non-null) with W row-major (in × out),
/// the autograd Linear's layout. Bit-identity with the graph pins each
/// output element to the graph kernel's ascending-k accumulation with
/// its `x[k] == 0 → skip` rule, so the dot itself cannot be SIMD-
/// reassociated; speed comes from the orthogonal directions instead —
/// the inner j loop vectorizes across independent output columns, and
/// rows are register-blocked in fours so each streamed weight row is
/// reused 4x (with a per-row guarded fallback whenever any of the four
/// x values is zero, preserving the skip semantics exactly). The bias
/// lands after the full dot, exactly like `matmul(x, W) + bias`.
void matmul_xw(const float* x, const float* w, const float* bias, float* y,
               std::size_t rows, std::size_t in, std::size_t out);

/// C += A·B with A (m×k), B (k×n) — a clone of the autograd (i,k,j)
/// matmul kernel (zero-skip included). Exposed as the naive baseline
/// for bench_micro_runtime's blocked-vs-naive comparison. `c` must be
/// zeroed (or hold the accumulation seed) by the caller.
void matmul_ab_naive(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n);

/// y[i] = y[i] + x[i] — one pairwise fold step, matching `acc + term`.
void add_inplace(float* y, const float* x, std::size_t n);

/// y[r][c] = y[r][c] + bias[c] — the `+ bias` row broadcast.
void add_row_bias_inplace(float* y, const float* bias, std::size_t rows,
                          std::size_t cols);

void tanh_inplace(float* x, std::size_t n);
void sigmoid_inplace(float* x, std::size_t n);
void relu_inplace(float* x, std::size_t n);

/// Copy column block [start, start+len) of x (rows × src_cols) into y
/// (rows × len) — the slice_cols forward.
void slice_cols(const float* x, std::size_t rows, std::size_t src_cols,
                std::size_t start, std::size_t len, float* y);

/// Concatenate `count` parts (each rows × widths[p]) along columns into
/// y (rows × Σ widths) — the concat_cols forward.
void concat_cols(const float* const* parts, const std::size_t* widths,
                 std::size_t count, std::size_t rows, float* y);

/// Row-wise softmax of x (rows × cols) into y, in the graph's exact
/// order: row max, exp(x − max) accumulating the denominator, divide.
void softmax_rows(const float* x, float* y, std::size_t rows, std::size_t cols);

/// y[r] = Σ_c a[r][c]·b[r][c], c ascending — the rowwise_dot forward.
void rowwise_dot(const float* a, const float* b, float* y, std::size_t rows,
                 std::size_t cols);

/// y[r][c] = a[r][c] · col[r] — the mul_col_broadcast forward.
void mul_col_broadcast(const float* a, const float* col, float* y,
                       std::size_t rows, std::size_t cols);

// --- Packed modules ----------------------------------------------------------

/// A Linear captured for inference: weights copied once into a flat
/// (in × out) buffer for the row-blocked matmul_xw kernel. Snapshots,
/// not views — the plan stays valid (if stale) while a new fit()
/// mutates the module, and callers recompile via
/// DeepPredictor::rebuild_plan() afterwards.
struct PackedLinear {
  std::size_t in = 0;
  std::size_t out = 0;
  std::vector<float> w;     ///< in × out (the Linear's own layout)
  std::vector<float> bias;  ///< out

  PackedLinear() = default;
  PackedLinear(const Tensor& weight, const Tensor& bias_row);
  explicit PackedLinear(const Linear& src);

  /// y = x·W + bias into caller buffer y (rows × out).
  void forward(const float* x, std::size_t rows, float* y) const;
};

/// An Mlp captured for inference: ReLU between layers, none after the
/// last — exactly Mlp::forward.
struct PackedMlp {
  std::vector<PackedLinear> layers;

  PackedMlp() = default;
  explicit PackedMlp(const Mlp& src);

  [[nodiscard]] std::size_t out_features() const { return layers.back().out; }

  /// Returns an arena buffer (rows × out_features()).
  [[nodiscard]] const float* forward(Arena& arena, const float* x,
                                     std::size_t rows) const;
};

/// A stacked LSTM captured for inference. State lives in one flat arena
/// buffer laid out [layer0 h | layer0 c | layer1 h | layer1 c | ...],
/// each segment rows × hidden, updated in place step by step.
struct PackedLstm {
  struct Cell {
    std::size_t in = 0;
    std::size_t hidden = 0;
    std::vector<float> w_ih;  ///< in × 4·hidden
    std::vector<float> w_hh;  ///< hidden × 4·hidden
    std::vector<float> bias;  ///< 4·hidden

    /// One LSTM step: reads x (rows × in), updates h and c (rows ×
    /// hidden) in place. xg/hg are rows × 4·hidden scratch. Reproduces
    /// LstmCell::step bit-for-bit: gates = x·Wih + (h·Whh + bias),
    /// gate order [i, f, g, o], c' = f·c + i·g, h' = o·tanh(c').
    void step(const float* x, float* h, float* c, std::size_t rows, float* xg,
              float* hg) const;
  };

  std::vector<Cell> cells;

  PackedLstm() = default;
  explicit PackedLstm(const Lstm& src);

  [[nodiscard]] std::size_t hidden() const { return cells.front().hidden; }
  [[nodiscard]] std::size_t layers() const { return cells.size(); }
  [[nodiscard]] std::size_t state_floats(std::size_t rows) const {
    return cells.size() * 2 * rows * hidden();
  }

  /// Zeroed state buffer (the graph's zero_state) from the arena.
  [[nodiscard]] float* alloc_states(Arena& arena, std::size_t rows) const;
  /// Zero an existing state buffer (re-run the same allocation).
  void zero_states(float* states, std::size_t rows) const;

  /// One stacked step over all layers; x is rows × cells[0].in. Returns
  /// the top layer's h (a pointer into `states`). xg/hg are rows ×
  /// 4·hidden scratch shared across layers.
  const float* step(const float* x, float* states, std::size_t rows, float* xg,
                    float* hg) const;

  /// Top layer's hidden segment of a state buffer.
  [[nodiscard]] const float* top_hidden(const float* states,
                                        std::size_t rows) const {
    return states + (cells.size() - 1) * 2 * rows * hidden();
  }
};

/// A CausalConv1d captured for inference.
struct PackedConv1d {
  std::size_t in = 0;
  std::size_t out = 0;
  std::size_t kernel = 0;
  std::size_t dilation = 0;
  std::vector<std::vector<float>> tap_w;  ///< kernel of (in × out)
  std::vector<float> bias;                ///< out

  PackedConv1d() = default;
  explicit PackedConv1d(const CausalConv1d& src);

  /// One output step t over a flat sequence buffer seq (t_len × rows ×
  /// in, step-major): y (rows × out) = Σ_k seq[t − k·dilation]·Wk +
  /// bias, folding terms pairwise in k order like the graph.
  /// `tmp` is rows × out scratch.
  void forward_step(const float* seq, std::size_t t, std::size_t t_len,
                    std::size_t rows, float* y, float* tmp) const;
};

// --- Metrics -----------------------------------------------------------------

/// Metric names the fast path records (registered lazily at the predict
/// call sites in src/predictors/deep.cpp; the prism5g_lint naming rule
/// validates this list).
inline constexpr const char* kInferMetricNames[] = {
    "infer.plan_runs_total",   ///< compiled-plan forward batches
    "infer.graph_runs_total",  ///< autograd fallback forward batches
    "infer.arena_bytes",       ///< thread arena high-water mark
    "infer.window_ns",         ///< plan wall time per window
};

}  // namespace ca5g::nn::infer
