#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::nn {

Adam::Adam(std::vector<Tensor> parameters) : Adam(std::move(parameters), Config{}) {}

Adam::Adam(std::vector<Tensor> parameters, Config config)
    : params_(std::move(parameters)), config_(config) {
  CA5G_CHECK_MSG(!params_.empty(), "Adam with no parameters");
  for (const auto& p : params_) {
    CA5G_CHECK_MSG(p.requires_grad(), "Adam parameter does not require grad");
    m_.emplace_back(p.size(), 0.0f);
    v_.emplace_back(p.size(), 0.0f);
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void Adam::step() {
  CA5G_METRIC_HISTOGRAM(step_ns, "nn.optimizer_step_ns");
  CA5G_SCOPED_TIMER(step_ns);
  ++t_;

  if (config_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (auto& p : params_)
      for (float g : p.grad()) sq += static_cast<double>(g) * g;
    const double norm = std::sqrt(sq);
    if (norm > config_.clip_norm) {
      const auto factor = static_cast<float>(config_.clip_norm / norm);
      for (auto& p : params_)
        for (float& g : p.grad()) g *= factor;
    }
  }

  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& values = params_[i].values();
    const auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < values.size(); ++j) {
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * grad[j];
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * grad[j] * grad[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      values[j] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
    }
  }
}

void MinMaxScaler::fit(const std::vector<std::vector<double>>& rows) {
  CA5G_CHECK_MSG(!rows.empty(), "MinMaxScaler::fit with no rows");
  const std::size_t cols = rows.front().size();
  mins_.assign(cols, rows.front().front());
  maxs_.assign(cols, rows.front().front());
  for (std::size_t c = 0; c < cols; ++c) {
    mins_[c] = maxs_[c] = rows.front()[c];
  }
  for (const auto& row : rows) {
    CA5G_CHECK_MSG(row.size() == cols, "MinMaxScaler row width mismatch");
    for (std::size_t c = 0; c < cols; ++c) {
      mins_[c] = std::min(mins_[c], row[c]);
      maxs_[c] = std::max(maxs_[c], row[c]);
    }
  }
}

void MinMaxScaler::fit_series(std::span<const double> series) {
  CA5G_CHECK_MSG(!series.empty(), "MinMaxScaler::fit_series with no data");
  mins_.assign(1, series.front());
  maxs_.assign(1, series.front());
  for (double x : series) {
    mins_[0] = std::min(mins_[0], x);
    maxs_[0] = std::max(maxs_[0], x);
  }
}

double MinMaxScaler::transform(double x, std::size_t column) const {
  CA5G_CHECK_MSG(column < mins_.size(), "scaler column out of range");
  const double range = maxs_[column] - mins_[column];
  if (range <= 0.0) return 0.0;
  return (x - mins_[column]) / range;
}

double MinMaxScaler::inverse(double y, std::size_t column) const {
  CA5G_CHECK_MSG(column < mins_.size(), "scaler column out of range");
  return mins_[column] + y * (maxs_[column] - mins_[column]);
}

std::vector<double> MinMaxScaler::transform_row(const std::vector<double>& row) const {
  CA5G_CHECK_MSG(row.size() == mins_.size(), "scaler row width mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) out[c] = transform(row[c], c);
  return out;
}

}  // namespace ca5g::nn
