#include "nn/infer.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace ca5g::nn::infer {

// --- Arena -------------------------------------------------------------------

float* Arena::alloc(std::size_t count) {
  CA5G_DCHECK_MSG(count > 0, "arena alloc of zero floats");
  // The cursor only moves forward within a run: a block skipped because
  // it couldn't fit one allocation is not revisited for smaller ones.
  // That keeps every returned pointer stable and makes the placement —
  // and therefore capacity_bytes() — deterministic across identical
  // runs, which the zero-steady-state-growth test pins.
  while (cursor_ < blocks_.size() &&
         blocks_[cursor_].capacity - blocks_[cursor_].used < count)
    ++cursor_;
  if (cursor_ == blocks_.size()) {
    constexpr std::size_t kMinBlockFloats = std::size_t{1} << 14;  // 64 KiB
    std::size_t cap =
        blocks_.empty() ? kMinBlockFloats : blocks_.back().capacity * 2;
    cap = std::max(cap, count);
    Block block;
    block.data = std::make_unique<float[]>(cap);
    block.capacity = cap;
    blocks_.push_back(std::move(block));
  }
  Block& block = blocks_[cursor_];
  float* ptr = block.data.get() + block.used;
  block.used += count;
  run_floats_ += count;
  high_water_floats_ = std::max(high_water_floats_, run_floats_);
  return ptr;
}

void Arena::reset() noexcept {
  for (auto& block : blocks_) block.used = 0;
  cursor_ = 0;
  run_floats_ = 0;
}

std::size_t Arena::capacity_bytes() const noexcept {
  std::size_t floats = 0;
  for (const auto& block : blocks_) floats += block.capacity;
  return floats * sizeof(float);
}

Arena& thread_arena() {
  thread_local Arena arena;
  return arena;
}

// --- Kernels -----------------------------------------------------------------

void matmul_xw(const float* x, const float* w, const float* bias, float* y,
               std::size_t rows, std::size_t in, std::size_t out) {
  // Bit-identity pins each output element to the graph kernel's
  // ascending-k accumulation (with the `x[k] == 0 → skip` rule), so the
  // dot product itself cannot be reassociated for SIMD. Parallelism
  // comes from the two independent directions instead: the inner j loop
  // vectorizes across output columns (exactly like the graph kernel),
  // and rows are blocked in fours so one streamed weight row feeds four
  // accumulator rows. The fused four-row loop only runs when all four x
  // values are nonzero; any zero drops to per-row guarded loops, which
  // produce the same float additions in the same order.
  constexpr std::size_t kRowBlock = 4;
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    const float* x0 = x + (r + 0) * in;
    const float* x1 = x + (r + 1) * in;
    const float* x2 = x + (r + 2) * in;
    const float* x3 = x + (r + 3) * in;
    float* y0 = y + (r + 0) * out;
    float* y1 = y + (r + 1) * out;
    float* y2 = y + (r + 2) * out;
    float* y3 = y + (r + 3) * out;
    std::fill(y0, y0 + out, 0.0f);
    std::fill(y1, y1 + out, 0.0f);
    std::fill(y2, y2 + out, 0.0f);
    std::fill(y3, y3 + out, 0.0f);
    for (std::size_t k = 0; k < in; ++k) {
      const float* wrow = w + k * out;
      const float a0 = x0[k], a1 = x1[k], a2 = x2[k], a3 = x3[k];
      if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
        for (std::size_t j = 0; j < out; ++j) {
          const float wv = wrow[j];
          y0[j] += a0 * wv;
          y1[j] += a1 * wv;
          y2[j] += a2 * wv;
          y3[j] += a3 * wv;
        }
      } else {
        if (a0 != 0.0f)
          for (std::size_t j = 0; j < out; ++j) y0[j] += a0 * wrow[j];
        if (a1 != 0.0f)
          for (std::size_t j = 0; j < out; ++j) y1[j] += a1 * wrow[j];
        if (a2 != 0.0f)
          for (std::size_t j = 0; j < out; ++j) y2[j] += a2 * wrow[j];
        if (a3 != 0.0f)
          for (std::size_t j = 0; j < out; ++j) y3[j] += a3 * wrow[j];
      }
    }
    if (bias) {
      for (std::size_t j = 0; j < out; ++j) y0[j] = y0[j] + bias[j];
      for (std::size_t j = 0; j < out; ++j) y1[j] = y1[j] + bias[j];
      for (std::size_t j = 0; j < out; ++j) y2[j] = y2[j] + bias[j];
      for (std::size_t j = 0; j < out; ++j) y3[j] = y3[j] + bias[j];
    }
  }
  // Remainder rows (and the whole B=1 serving path): accumulate a
  // fixed-width column chunk in a local array the compiler keeps in
  // registers, so the k loop never round-trips partial sums through the
  // output buffer. Per output element the arithmetic is unchanged —
  // ascending k, zero-skip, bias after the full dot.
  constexpr std::size_t kColChunk = 32;
  for (; r < rows; ++r) {
    const float* xrow = x + r * in;
    float* yrow = y + r * out;
    std::size_t j0 = 0;
    for (; j0 + kColChunk <= out; j0 += kColChunk) {
      float acc[kColChunk] = {};
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = xrow[k];
        if (xv == 0.0f) continue;
        const float* wrow = w + k * out + j0;
        for (std::size_t j = 0; j < kColChunk; ++j) acc[j] += xv * wrow[j];
      }
      if (bias)
        for (std::size_t j = 0; j < kColChunk; ++j)
          yrow[j0 + j] = acc[j] + bias[j0 + j];
      else
        for (std::size_t j = 0; j < kColChunk; ++j) yrow[j0 + j] = acc[j];
    }
    if (j0 < out) {
      float acc[kColChunk] = {};
      const std::size_t tail = out - j0;
      for (std::size_t k = 0; k < in; ++k) {
        const float xv = xrow[k];
        if (xv == 0.0f) continue;
        const float* wrow = w + k * out + j0;
        for (std::size_t j = 0; j < tail; ++j) acc[j] += xv * wrow[j];
      }
      if (bias)
        for (std::size_t j = 0; j < tail; ++j) yrow[j0 + j] = acc[j] + bias[j0 + j];
      else
        for (std::size_t j = 0; j < tail; ++j) yrow[j0 + j] = acc[j];
    }
  }
}

void matmul_ab_naive(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = a[i * k + kk];
      if (aval == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

void add_inplace(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] + x[i];
}

void add_row_bias_inplace(float* y, const float* bias, std::size_t rows,
                          std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* yrow = y + r * cols;
    for (std::size_t c = 0; c < cols; ++c) yrow[c] = yrow[c] + bias[c];
  }
}

void tanh_inplace(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void sigmoid_inplace(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void relu_inplace(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void slice_cols(const float* x, std::size_t rows, std::size_t src_cols,
                std::size_t start, std::size_t len, float* y) {
  CA5G_DCHECK_MSG(start + len <= src_cols, "slice_cols out of range");
  for (std::size_t r = 0; r < rows; ++r)
    std::copy(x + r * src_cols + start, x + r * src_cols + start + len,
              y + r * len);
}

void concat_cols(const float* const* parts, const std::size_t* widths,
                 std::size_t count, std::size_t rows, float* y) {
  std::size_t total = 0;
  for (std::size_t p = 0; p < count; ++p) total += widths[p];
  std::size_t offset = 0;
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t w = widths[p];
    for (std::size_t r = 0; r < rows; ++r)
      std::copy(parts[p] + r * w, parts[p] + (r + 1) * w,
                y + r * total + offset);
    offset += w;
  }
}

void softmax_rows(const float* x, float* y, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xrow = x + r * cols;
    float* yrow = y + r * cols;
    float maxv = xrow[0];
    for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, xrow[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float e = std::exp(xrow[c] - maxv);
      yrow[c] = e;
      denom += e;
    }
    for (std::size_t c = 0; c < cols; ++c) yrow[c] /= denom;
  }
}

void rowwise_dot(const float* a, const float* b, float* y, std::size_t rows,
                 std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* arow = a + r * cols;
    const float* brow = b + r * cols;
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += arow[c] * brow[c];
    y[r] = acc;
  }
}

void mul_col_broadcast(const float* a, const float* col, float* y,
                       std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* arow = a + r * cols;
    float* yrow = y + r * cols;
    const float cv = col[r];
    for (std::size_t c = 0; c < cols; ++c) yrow[c] = arow[c] * cv;
  }
}

// --- Packed modules ----------------------------------------------------------

PackedLinear::PackedLinear(const Tensor& weight, const Tensor& bias_row)
    : in(weight.rows()),
      out(weight.cols()),
      w(weight.values()),
      bias(bias_row.values()) {
  CA5G_CHECK_MSG(bias_row.rows() == 1 && bias_row.cols() == out,
                 "packed linear bias shape mismatch");
}

PackedLinear::PackedLinear(const Linear& src)
    : PackedLinear(src.weight(), src.bias()) {}

void PackedLinear::forward(const float* x, std::size_t rows, float* y) const {
  matmul_xw(x, w.data(), bias.data(), y, rows, in, out);
}

PackedMlp::PackedMlp(const Mlp& src) {
  for (const auto& layer : src.layers()) layers.emplace_back(layer);
}

const float* PackedMlp::forward(Arena& arena, const float* x,
                                std::size_t rows) const {
  const float* h = x;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    float* y = arena.alloc(rows * layers[i].out);
    layers[i].forward(h, rows, y);
    if (i + 1 < layers.size()) relu_inplace(y, rows * layers[i].out);
    h = y;
  }
  return h;
}

void PackedLstm::Cell::step(const float* x, float* h, float* c,
                            std::size_t rows, float* xg, float* hg) const {
  const std::size_t g4 = 4 * hidden;
  matmul_xw(x, w_ih.data(), nullptr, xg, rows, in, g4);
  matmul_xw(h, w_hh.data(), nullptr, hg, rows, hidden, g4);
  for (std::size_t r = 0; r < rows; ++r) {
    float* grow = xg + r * g4;
    const float* hrow = hg + r * g4;
    // The graph's exact parenthesization: x·Wih + (h·Whh + bias).
    for (std::size_t j = 0; j < g4; ++j) grow[j] = grow[j] + (hrow[j] + bias[j]);
    sigmoid_inplace(grow, hidden);               // i
    sigmoid_inplace(grow + hidden, hidden);      // f
    tanh_inplace(grow + 2 * hidden, hidden);     // g
    sigmoid_inplace(grow + 3 * hidden, hidden);  // o
    float* hout = h + r * hidden;
    float* cout = c + r * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const float iv = grow[j];
      const float fv = grow[hidden + j];
      const float gv = grow[2 * hidden + j];
      const float ov = grow[3 * hidden + j];
      const float cv = (fv * cout[j]) + (iv * gv);
      cout[j] = cv;
      hout[j] = ov * std::tanh(cv);
    }
  }
}

PackedLstm::PackedLstm(const Lstm& src) {
  for (const auto& cell : src.cells()) {
    Cell packed;
    packed.in = cell.input_size();
    packed.hidden = cell.hidden_size();
    packed.w_ih = cell.w_ih().values();
    packed.w_hh = cell.w_hh().values();
    packed.bias = cell.bias().values();
    cells.push_back(std::move(packed));
  }
}

float* PackedLstm::alloc_states(Arena& arena, std::size_t rows) const {
  float* states = arena.alloc(state_floats(rows));
  zero_states(states, rows);
  return states;
}

void PackedLstm::zero_states(float* states, std::size_t rows) const {
  std::fill(states, states + state_floats(rows), 0.0f);
}

const float* PackedLstm::step(const float* x, float* states, std::size_t rows,
                              float* xg, float* hg) const {
  const std::size_t seg = rows * hidden();
  const float* input = x;
  for (std::size_t l = 0; l < cells.size(); ++l) {
    float* h = states + (2 * l) * seg;
    float* c = states + (2 * l + 1) * seg;
    cells[l].step(input, h, c, rows, xg, hg);
    input = h;
  }
  return input;
}

PackedConv1d::PackedConv1d(const CausalConv1d& src)
    : in(src.taps().front().rows()),
      out(src.taps().front().cols()),
      kernel(src.kernel_size()),
      dilation(src.dilation()),
      bias(src.bias().values()) {
  for (const auto& tap : src.taps()) tap_w.push_back(tap.values());
}

void PackedConv1d::forward_step(const float* seq, std::size_t t,
                                std::size_t t_len, std::size_t rows, float* y,
                                float* tmp) const {
  CA5G_DCHECK_MSG(t < t_len, "conv step out of range");
  bool first = true;
  for (std::size_t k = 0; k < kernel; ++k) {
    const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(t) -
                               static_cast<std::ptrdiff_t>(k * dilation);
    if (src < 0) continue;  // causal zero padding
    const float* xs = seq + static_cast<std::size_t>(src) * rows * in;
    if (first) {
      matmul_xw(xs, tap_w[k].data(), nullptr, y, rows, in, out);
      first = false;
    } else {
      // Fold `acc + term` pairwise like the graph: the term's dot is
      // completed before it joins the accumulator.
      matmul_xw(xs, tap_w[k].data(), nullptr, tmp, rows, in, out);
      add_inplace(y, tmp, rows * out);
    }
  }
  if (first) std::fill(y, y + rows * out, 0.0f);
  add_row_bias_inplace(y, bias.data(), rows, out);
}

}  // namespace ca5g::nn::infer
