// Optimization: Adam (Kingma & Ba, as cited by the paper) with optional
// global-norm gradient clipping, plus the min–max feature scaler the
// paper uses for dataset normalization.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace ca5g::nn {

/// Adam optimizer over a fixed set of parameter tensors.
class Adam {
 public:
  struct Config {
    float lr = 0.01f;       ///< paper: learning rate 0.01
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float clip_norm = 5.0f; ///< global-norm clip; <=0 disables
  };

  Adam(std::vector<Tensor> parameters, Config config);
  explicit Adam(std::vector<Tensor> parameters);

  /// Zero all parameter gradients.
  void zero_grad();

  /// Apply one update from the accumulated gradients.
  void step();

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  Config config_;
  std::int64_t t_ = 0;
};

/// Per-column min–max scaling to [0, 1] (paper §C.1). Degenerate columns
/// (min == max) map to 0.
class MinMaxScaler {
 public:
  /// Fit bounds from rows of feature vectors.
  void fit(const std::vector<std::vector<double>>& rows);

  /// Fit from a single series (one column).
  void fit_series(std::span<const double> series);

  [[nodiscard]] double transform(double x, std::size_t column = 0) const;
  [[nodiscard]] double inverse(double y, std::size_t column = 0) const;
  [[nodiscard]] std::vector<double> transform_row(const std::vector<double>& row) const;

  [[nodiscard]] bool fitted() const noexcept { return !mins_.empty(); }
  [[nodiscard]] std::size_t columns() const noexcept { return mins_.size(); }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace ca5g::nn
