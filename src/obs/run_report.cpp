#include "obs/run_report.hpp"

#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace ca5g::obs {
namespace {

/// Re-indent an already-rendered JSON value so it nests cleanly when
/// embedded at `depth` spaces inside the summary object.
std::string indent_block(const std::string& json, int depth) {
  std::string pad(static_cast<std::size_t>(depth), ' ');
  std::string out;
  out.reserve(json.size() + 64);
  for (std::size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == '\n' && i + 1 < json.size()) out += pad;
  }
  return out;
}

}  // namespace

RunReport::RunReport(std::string run_name) : run_name_(std::move(run_name)) {}

void RunReport::meta(std::string_view key, std::string_view value) {
  const std::lock_guard<std::mutex> lock(mu_);
  meta_strings_.emplace_back(std::string(key), std::string(value));
}

void RunReport::meta(std::string_view key, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  meta_numbers_.emplace_back(std::string(key), value);
}

void RunReport::kpi(std::string_view key, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  kpis_.emplace_back(std::string(key), value);
}

void RunReport::event(std::string_view kind, std::string_view detail) {
  const double t = watch_.elapsed_s();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(RunEvent{events_.size(), t, std::string(kind), std::string(detail)});
}

std::vector<RunEvent> RunReport::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string RunReport::summary_json(const MetricsSnapshot* metrics, int indent) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + pad;
  std::ostringstream os;
  os << "{\n";
  os << pad << "\"run\": \"" << json_escape(run_name_) << "\",\n";
  os << pad << "\"wall_s\": " << json_number(watch_.elapsed_s()) << ",\n";

  os << pad << "\"meta\": {";
  bool first = true;
  for (const auto& kv : meta_strings_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << json_escape(kv.first) << "\": \""
       << json_escape(kv.second) << '"';
    first = false;
  }
  for (const auto& kv : meta_numbers_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << json_escape(kv.first)
       << "\": " << json_number(kv.second);
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"kpis\": {";
  first = true;
  for (const auto& kv : kpis_) {
    os << (first ? "\n" : ",\n") << pad2 << '"' << json_escape(kv.first)
       << "\": " << json_number(kv.second);
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"events_count\": " << events_.size();
  if (metrics != nullptr) {
    os << ",\n" << pad << "\"metrics\": " << indent_block(to_json(*metrics, indent), indent);
  }
  os << "\n}\n";
  return os.str();
}

std::string RunReport::events_jsonl() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& e : events_) {
    os << "{\"seq\": " << e.seq << ", \"t_s\": " << json_number(e.t_s) << ", \"kind\": \""
       << json_escape(e.kind) << "\", \"detail\": \"" << json_escape(e.detail) << "\"}\n";
  }
  return os.str();
}

void RunReport::write_summary(const std::string& path, const MetricsSnapshot* metrics) const {
  std::ofstream out(path);
  CA5G_CHECK_MSG(out.good(), "cannot open run-report summary path: " + path);
  out << summary_json(metrics);
  CA5G_CHECK_MSG(out.good(), "failed writing run-report summary: " + path);
}

void RunReport::write_events(const std::string& path) const {
  std::ofstream out(path);
  CA5G_CHECK_MSG(out.good(), "cannot open run-report events path: " + path);
  out << events_jsonl();
  CA5G_CHECK_MSG(out.good(), "failed writing run-report events: " + path);
}

std::string RunReport::events_path_for(std::string_view summary_path) {
  return std::string(summary_path) + ".events.jsonl";
}

}  // namespace ca5g::obs
