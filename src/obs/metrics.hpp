// Process-wide metrics registry: the observability substrate the paper's
// methodology implies — XCAL exported machine-readable KPIs every 10 ms;
// our simulator, trainer, and predictors export theirs through here.
//
// Three instrument kinds, all lock-free on the fast path (one relaxed
// atomic op per update, no mutex per increment):
//
//   Counter    monotone u64 (events, rows, lookups)        *_total
//   Gauge      last-written double (loss, rates)           unit-suffixed
//   Histogram  fixed log-spaced buckets (ns..s latencies,  *_ns, *_mbps
//              Mbps throughputs) with count/sum/min/max
//
// Registration (name → instrument) takes a mutex once per call site; the
// CA5G_METRIC_* macros below cache the reference in a function-local
// static so steady-state updates never touch it.
//
// Metric names follow `layer.noun_unit` (see docs/OBSERVABILITY.md and
// the prism5g_lint naming rule): lowercase dot-separated segments, the
// last ending in a recognised unit suffix, e.g. `sim.steps_total`,
// `predictor.inference_ns`, `nn.epoch_val_rmse`.
//
// Compile-time switch: building with PRISM5G_OBS_ENABLED=0 (CMake option
// -DPRISM5G_OBS=OFF) swaps the CA5G_METRIC_* / CA5G_SCOPED_TIMER macros
// for constexpr null instruments whose methods are empty — instrumented
// call sites compile to nothing, so perf baselines carry zero
// observability tax (verified by bench_obs_overhead).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef PRISM5G_OBS_ENABLED
#define PRISM5G_OBS_ENABLED 1
#endif

namespace ca5g::obs {

// --- Naming convention -------------------------------------------------------

/// True when `name` follows the `layer.noun_unit` convention: at least two
/// lowercase `[a-z][a-z0-9_]*` segments separated by dots, the final segment
/// ending in a recognised unit suffix (`_total`, `_ns`, `_s`, `_bytes`,
/// `_mbps`, `_ratio`, `_count`, `_db`, `_per_s`, `_rmse`).
[[nodiscard]] bool is_valid_metric_name(std::string_view name);

/// The unit suffixes is_valid_metric_name() accepts, for diagnostics.
[[nodiscard]] const std::vector<std::string>& metric_unit_suffixes();

// --- Instruments -------------------------------------------------------------

/// Monotone event counter. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge. set() is one relaxed store; add() a CAS loop.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram bucket layout: kBucketCount log-spaced buckets spanning
/// [lower, upper), plus one overflow bucket. The default covers 1 ns to
/// 100 s — wide enough for per-step latencies and whole-training walls —
/// and a Mbps-flavoured spec (0.01..1e5) suits throughput distributions.
struct HistogramSpec {
  double lower = 1.0;    ///< first bucket upper bound ≥ lower·ratio
  double upper = 1e11;   ///< values ≥ upper land in the overflow bucket

  [[nodiscard]] static HistogramSpec nanoseconds() { return {1.0, 1e11}; }
  [[nodiscard]] static HistogramSpec mbps() { return {0.01, 1e5}; }
};

/// Fixed-bucket log-spaced histogram. observe() costs two relaxed atomic
/// RMWs plus a log(); count/sum/min/max are tracked for mean and export.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 64;

  explicit Histogram(HistogramSpec spec = {});

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const HistogramSpec& spec() const noexcept { return spec_; }

  /// Inclusive upper bound of bucket `i` (i == kBucketCount → +inf).
  [[nodiscard]] double bucket_upper_bound(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Index of the bucket a value lands in (last index = overflow).
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept;

  void reset() noexcept;

 private:
  HistogramSpec spec_;
  double log_lower_;
  double inv_log_ratio_;
  std::array<std::atomic<std::uint64_t>, kBucketCount + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};

  friend struct HistogramSnapshot;
  friend class MetricsRegistry;
};

// --- Snapshots ---------------------------------------------------------------

/// Point-in-time copy of one histogram; safe to merge/serialize while the
/// live instrument keeps counting.
struct HistogramSnapshot {
  std::string name;
  HistogramSpec spec;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< kBucketCount + 1 (overflow last)

  [[nodiscard]] static HistogramSnapshot from(const std::string& name, const Histogram& h);

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Upper bound of the bucket where the cumulative count reaches q·count
  /// (q in [0,1]); a bucket-resolution quantile estimate.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double bucket_upper_bound(std::size_t i) const;

  /// Element-wise merge; spec layouts must match (CheckError otherwise).
  void merge(const HistogramSnapshot& other);
};

/// Full registry snapshot: isolated from later updates.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Sum counters, overwrite gauges, merge histograms (for sharded runs).
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
  [[nodiscard]] const std::uint64_t* counter(std::string_view name) const;
};

/// Backslash-escape `s` for embedding inside a JSON string literal
/// (quotes, backslashes, control characters; no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Render a double as a JSON number token. JSON has no inf/nan: nan
/// becomes 0, ±inf clamps to ±1e308.
[[nodiscard]] std::string json_number(double v);

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot, int indent = 2);

/// Prometheus text exposition (dots become underscores, TYPE lines emitted).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

// --- Registry ----------------------------------------------------------------

/// Name → instrument map. Thread-safe: registration and snapshot take a
/// mutex; returned references are stable for the registry's lifetime, so
/// hot paths cache them (see CA5G_METRIC_*) and update lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumentation sites.
  [[nodiscard]] static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, HistogramSpec spec = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Zero every instrument (registrations survive). Tests and per-run
  /// CLI exports use this to scope values to one run.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- Null instruments (disabled-build macro targets) -------------------------

/// Zero-size stand-ins the CA5G_METRIC_* macros substitute when
/// PRISM5G_OBS_ENABLED=0: every method is a constexpr no-op, so the
/// instrumented statements vanish entirely from codegen.
struct NullCounter {
  constexpr void inc(std::uint64_t = 1) const noexcept {}
};
struct NullGauge {
  constexpr void set(double) const noexcept {}
  constexpr void add(double) const noexcept {}
};
struct NullHistogram {
  constexpr void observe(double) const noexcept {}
};

}  // namespace ca5g::obs

// --- Instrumentation macros --------------------------------------------------
//
// Usage at a call site (function scope):
//
//   CA5G_METRIC_COUNTER(steps, "sim.steps_total");
//   steps.inc();
//
// Enabled: declares `static obs::Counter& steps = ...` (one registry
// lookup ever, thread-safe static init). Disabled: declares a constexpr
// NullCounter, and steps.inc() compiles away.
#if PRISM5G_OBS_ENABLED

#define CA5G_METRIC_COUNTER(var, name) \
  static ::ca5g::obs::Counter& var = ::ca5g::obs::MetricsRegistry::global().counter(name)
#define CA5G_METRIC_GAUGE(var, name) \
  static ::ca5g::obs::Gauge& var = ::ca5g::obs::MetricsRegistry::global().gauge(name)
#define CA5G_METRIC_HISTOGRAM(var, name)            \
  static ::ca5g::obs::Histogram& var =              \
      ::ca5g::obs::MetricsRegistry::global().histogram(name)
#define CA5G_METRIC_HISTOGRAM_SPEC(var, name, spec) \
  static ::ca5g::obs::Histogram& var =              \
      ::ca5g::obs::MetricsRegistry::global().histogram(name, spec)
/// Statement gate for computed updates (argument expressions included).
#define CA5G_OBS_STMT(...) __VA_ARGS__

#else

#define CA5G_METRIC_COUNTER(var, name) \
  [[maybe_unused]] constexpr ::ca5g::obs::NullCounter var {}
#define CA5G_METRIC_GAUGE(var, name) \
  [[maybe_unused]] constexpr ::ca5g::obs::NullGauge var {}
#define CA5G_METRIC_HISTOGRAM(var, name) \
  [[maybe_unused]] constexpr ::ca5g::obs::NullHistogram var {}
#define CA5G_METRIC_HISTOGRAM_SPEC(var, name, spec) \
  [[maybe_unused]] constexpr ::ca5g::obs::NullHistogram var {}
#define CA5G_OBS_STMT(...)

#endif
