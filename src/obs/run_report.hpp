// Per-run structured telemetry: the machine-readable record of what a
// sim/train/predict run did. Mirrors the paper's artifact discipline —
// every reported number traces back to a logged run with its scenario
// config and RNG seed — so a report carries:
//
//   meta     string/number key-values fixed at startup (scenario name,
//            seed, git-describe, CLI subcommand, ...)
//   events   an append-only timeline (JSONL, one object per line) for
//            phase transitions and notable occurrences
//   kpis     end-of-run scalar results (RMSE, Mbps, wall seconds)
//
// write_summary() emits one JSON object {run, meta, kpis, metrics?}
// optionally embedding a MetricsSnapshot; write_events() emits the
// JSONL timeline. The CLI writes the summary to --report-out=FILE and
// the events next to it as FILE.events.jsonl.
//
// RunReport is mutex-guarded (events may arrive from worker threads) and
// always compiled — unlike counters, a run report is requested per run
// via CLI flags, so there is nothing to strip from hot paths.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::obs {

/// One timeline entry: monotone sequence number, seconds since the
/// report was created, a short kind tag, and free-form detail.
struct RunEvent {
  std::uint64_t seq = 0;
  double t_s = 0.0;
  std::string kind;
  std::string detail;
};

class RunReport {
 public:
  explicit RunReport(std::string run_name);

  /// Startup facts (scenario, seed, config). Number overload keeps
  /// numeric meta queryable as JSON numbers.
  void meta(std::string_view key, std::string_view value);
  void meta(std::string_view key, double value);

  /// End-of-run scalar result.
  void kpi(std::string_view key, double value);

  /// Append a timeline event. Thread-safe.
  void event(std::string_view kind, std::string_view detail = {});

  [[nodiscard]] const std::string& run_name() const noexcept { return run_name_; }
  [[nodiscard]] double elapsed_s() const noexcept { return watch_.elapsed_s(); }
  [[nodiscard]] std::vector<RunEvent> events() const;

  /// The summary JSON object; embeds `metrics` when non-null.
  [[nodiscard]] std::string summary_json(const MetricsSnapshot* metrics = nullptr,
                                         int indent = 2) const;
  /// One JSON object per line, in event order.
  [[nodiscard]] std::string events_jsonl() const;

  /// Write summary/events to `path` (CheckError if the file can't open).
  void write_summary(const std::string& path, const MetricsSnapshot* metrics = nullptr) const;
  void write_events(const std::string& path) const;

  /// The conventional events path for a summary path: `<path>.events.jsonl`.
  [[nodiscard]] static std::string events_path_for(std::string_view summary_path);

 private:
  std::string run_name_;
  StopWatch watch_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::string>> meta_strings_;
  std::vector<std::pair<std::string, double>> meta_numbers_;
  std::vector<std::pair<std::string, double>> kpis_;
  std::vector<RunEvent> events_;
};

}  // namespace ca5g::obs
