// RAII wall-time spans: a ScopedTimer records the nanoseconds between its
// construction and destruction into a Histogram, surviving early returns
// and exceptions alike. The CA5G_SCOPED_TIMER macro pairs with the
// CA5G_METRIC_HISTOGRAM registration macro and obeys the same
// PRISM5G_OBS_ENABLED compile-time switch: disabled builds declare an
// empty NullScopedTimer and the timing code vanishes from codegen.
//
// StopWatch is the always-on sibling for code that needs elapsed time as
// data (steps/s gauges, bench harnesses) rather than as telemetry; it is
// deliberately independent of the obs switch.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace ca5g::obs {

/// Monotonic elapsed-time reader. Unaffected by PRISM5G_OBS_ENABLED:
/// callers that branch on elapsed time (not just export it) rely on it.
class StopWatch {
 public:
  StopWatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Records scope wall-time (ns) into a histogram on destruction.
/// Non-copyable, non-movable: one span per scope, by construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept : hist_(hist) {}
  ~ScopedTimer() { hist_.observe(static_cast<double>(watch_.elapsed_ns())); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer(ScopedTimer&&) = delete;
  ScopedTimer& operator=(ScopedTimer&&) = delete;

 private:
  Histogram& hist_;
  StopWatch watch_;
};

/// Disabled-build stand-in: empty, trivially destructible, no codegen.
/// bench_obs_overhead static_asserts these properties.
struct NullScopedTimer {
  constexpr explicit NullScopedTimer(NullHistogram) noexcept {}
};
static_assert(sizeof(NullScopedTimer) == 1);
static_assert(std::is_trivially_destructible_v<NullScopedTimer>);

}  // namespace ca5g::obs

// CA5G_SCOPED_TIMER(hist): time the enclosing scope into `hist`, where
// `hist` was declared by CA5G_METRIC_HISTOGRAM[_SPEC] above it. The
// variable name is uniqued per line so multiple timers can share a scope.
#define CA5G_OBS_TIMER_CONCAT2(a, b) a##b
#define CA5G_OBS_TIMER_CONCAT(a, b) CA5G_OBS_TIMER_CONCAT2(a, b)

#if PRISM5G_OBS_ENABLED
#define CA5G_SCOPED_TIMER(hist) \
  ::ca5g::obs::ScopedTimer CA5G_OBS_TIMER_CONCAT(ca5g_obs_timer_, __LINE__)(hist)
#else
#define CA5G_SCOPED_TIMER(hist) \
  [[maybe_unused]] constexpr ::ca5g::obs::NullScopedTimer CA5G_OBS_TIMER_CONCAT( \
      ca5g_obs_timer_, __LINE__)(hist)
#endif
