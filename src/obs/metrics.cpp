#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"

namespace ca5g::obs {
namespace {

/// Atomic min/max for doubles via CAS (relaxed: statistics, not ordering).
void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

bool is_segment(std::string_view seg) {
  if (seg.empty()) return false;
  if (seg.front() < 'a' || seg.front() > 'z') return false;
  for (char c : seg) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string prometheus_name(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

}  // namespace

// --- JSON helpers ------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  // JSON has no inf/nan; clamp to null-free sentinels.
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// --- Naming convention -------------------------------------------------------

const std::vector<std::string>& metric_unit_suffixes() {
  static const std::vector<std::string> kSuffixes = {
      "_total", "_ns", "_s", "_bytes", "_mbps", "_ratio", "_count", "_db", "_per_s",
      "_rmse",
  };
  return kSuffixes;
}

bool is_valid_metric_name(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  std::size_t start = 0;
  std::size_t segments = 0;
  std::string_view last;
  while (start <= name.size()) {
    const std::size_t dot = name.find('.', start);
    const std::string_view seg =
        name.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                         : dot - start);
    if (!is_segment(seg)) return false;
    last = seg;
    ++segments;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  if (segments < 2) return false;
  for (const auto& suffix : metric_unit_suffixes()) {
    if (last.size() > suffix.size() &&
        last.substr(last.size() - suffix.size()) == suffix)
      return true;
    // A bare-unit final segment ("sim.wall.s") is not the convention; the
    // unit rides on the noun ("sim.wall_s"), hence the > above.
  }
  return false;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(HistogramSpec spec) : spec_(spec) {
  CA5G_CHECK_MSG(spec_.lower > 0.0, "histogram lower bound must be positive");
  CA5G_CHECK_MSG(spec_.upper > spec_.lower, "histogram upper must exceed lower");
  log_lower_ = std::log(spec_.lower);
  const double log_ratio =
      (std::log(spec_.upper) - log_lower_) / static_cast<double>(kBucketCount);
  inv_log_ratio_ = 1.0 / log_ratio;
}

std::size_t Histogram::bucket_index(double v) const noexcept {
  if (!(v > spec_.lower)) return 0;  // also catches NaN and negatives
  if (v >= spec_.upper) return kBucketCount;
  const auto idx = static_cast<std::size_t>((std::log(v) - log_lower_) * inv_log_ratio_);
  return std::min(idx, kBucketCount - 1);
}

double Histogram::bucket_upper_bound(std::size_t i) const noexcept {
  if (i >= kBucketCount) return std::numeric_limits<double>::infinity();
  return std::exp(log_lower_ + static_cast<double>(i + 1) / inv_log_ratio_);
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (before == 0) {
    // First observation seeds min/max; racing observers correct via CAS.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Snapshots ---------------------------------------------------------------

HistogramSnapshot HistogramSnapshot::from(const std::string& name, const Histogram& h) {
  HistogramSnapshot snap;
  snap.name = name;
  snap.spec = h.spec();
  snap.count = h.count();
  snap.sum = h.sum();
  snap.min = h.min_.load(std::memory_order_relaxed);
  snap.max = h.max_.load(std::memory_order_relaxed);
  snap.buckets.resize(Histogram::kBucketCount + 1);
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) snap.buckets[i] = h.bucket_count(i);
  return snap;
}

double HistogramSnapshot::bucket_upper_bound(std::size_t i) const {
  if (i >= Histogram::kBucketCount) return std::numeric_limits<double>::infinity();
  const double log_lower = std::log(spec.lower);
  const double log_ratio = (std::log(spec.upper) - log_lower) /
                           static_cast<double>(Histogram::kBucketCount);
  return std::exp(log_lower + static_cast<double>(i + 1) * log_ratio);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target && cumulative > 0) {
      if (i >= Histogram::kBucketCount) return max;  // overflow bucket
      return std::min(bucket_upper_bound(i), max);
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  CA5G_CHECK_MSG(buckets.size() == other.buckets.size(),
                 "histogram merge with mismatched bucket counts");
  CA5G_CHECK_NEAR(spec.lower, other.spec.lower, 1e-12);
  CA5G_CHECK_NEAR(spec.upper, other.spec.upper, 1e-3);
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const auto& kv) { return kv.first == name; });
    if (it == counters.end())
      counters.emplace_back(name, value);
    else
      it->second += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto it = std::find_if(gauges.begin(), gauges.end(),
                           [&](const auto& kv) { return kv.first == name; });
    if (it == gauges.end())
      gauges.emplace_back(name, value);
    else
      it->second = value;
  }
  for (const auto& h : other.histograms) {
    auto it = std::find_if(histograms.begin(), histograms.end(),
                           [&](const auto& mine) { return mine.name == h.name; });
    if (it == histograms.end())
      histograms.push_back(h);
    else
      it->merge(h);
  }
}

const HistogramSnapshot* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

const std::uint64_t* MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [key, value] : counters)
    if (key == name) return &value;
  return nullptr;
}

// --- Export ------------------------------------------------------------------

std::string to_json(const MetricsSnapshot& snapshot, int indent) {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  const std::string pad2 = pad + pad;
  const std::string pad3 = pad2 + pad;
  const char* nl = indent > 0 ? "\n" : "";
  std::ostringstream os;
  os << '{' << nl;

  os << pad << "\"counters\": {" << nl;
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << pad2 << '"' << snapshot.counters[i].first << "\": " << snapshot.counters[i].second
       << (i + 1 < snapshot.counters.size() ? "," : "") << nl;
  }
  os << pad << "}," << nl;

  os << pad << "\"gauges\": {" << nl;
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << pad2 << '"' << snapshot.gauges[i].first
       << "\": " << json_number(snapshot.gauges[i].second)
       << (i + 1 < snapshot.gauges.size() ? "," : "") << nl;
  }
  os << pad << "}," << nl;

  os << pad << "\"histograms\": {" << nl;
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    os << pad2 << '"' << h.name << "\": {" << nl;
    os << pad3 << "\"count\": " << h.count << "," << nl;
    os << pad3 << "\"sum\": " << json_number(h.sum) << "," << nl;
    os << pad3 << "\"min\": " << json_number(h.min) << "," << nl;
    os << pad3 << "\"max\": " << json_number(h.max) << "," << nl;
    os << pad3 << "\"mean\": " << json_number(h.mean()) << "," << nl;
    os << pad3 << "\"p50\": " << json_number(h.quantile(0.5)) << "," << nl;
    os << pad3 << "\"p99\": " << json_number(h.quantile(0.99)) << "," << nl;
    // Sparse bucket list: only occupied buckets, as [upper_bound, count].
    os << pad3 << "\"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      const double le = h.bucket_upper_bound(b);
      os << '[' << (std::isinf(le) ? std::string("\"+inf\"") : json_number(le)) << ", "
         << h.buckets[b] << ']';
    }
    os << ']' << nl;
    os << pad2 << '}' << (i + 1 < snapshot.histograms.size() ? "," : "") << nl;
  }
  os << pad << '}' << nl;

  os << '}' << nl;
  return os.str();
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const auto prom = prometheus_name(name);
    os << "# TYPE " << prom << " counter\n" << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n" << prom << ' ' << json_number(value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    const auto prom = prometheus_name(h.name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0 && b + 1 < h.buckets.size()) continue;
      cumulative += h.buckets[b];
      const double le = h.bucket_upper_bound(b);
      os << prom << "_bucket{le=\""
         << (std::isinf(le) ? std::string("+Inf") : json_number(le)) << "\"} "
         << cumulative << '\n';
    }
    os << prom << "_sum " << json_number(h.sum) << '\n';
    os << prom << "_count " << h.count << '\n';
  }
  return os.str();
}

// --- Registry ----------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  CA5G_CHECK_MSG(is_valid_metric_name(name),
                 "metric name violates the layer.noun_unit convention: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  CA5G_CHECK_MSG(is_valid_metric_name(name),
                 "metric name violates the layer.noun_unit convention: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, HistogramSpec spec) {
  CA5G_CHECK_MSG(is_valid_metric_name(name),
                 "metric name violates the layer.noun_unit convention: " << name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(spec)).first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back(HistogramSnapshot::from(name, *h));
  return snap;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& kv : counters_) out.push_back(kv.first);
  for (const auto& kv : gauges_) out.push_back(kv.first);
  for (const auto& kv : histograms_) out.push_back(kv.first);
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace ca5g::obs
