#include "obs/trace_span.hpp"

#include <type_traits>

namespace ca5g::obs {

// ScopedTimer's contract is structural: one span per scope, pinned to it.
// These asserts keep refactors from quietly making it copyable (which
// would double-record) or non-nothrow-constructible (which would make the
// macro unusable in noexcept hot paths).
static_assert(!std::is_copy_constructible_v<ScopedTimer>);
static_assert(!std::is_move_constructible_v<ScopedTimer>);
static_assert(std::is_nothrow_constructible_v<ScopedTimer, Histogram&>);

static_assert(std::is_nothrow_default_constructible_v<StopWatch>);

}  // namespace ca5g::obs
