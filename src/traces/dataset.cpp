#include "traces/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace ca5g::traces {
namespace {

/// Fixed-range normalizations for PHY quantities (known physical ranges,
/// keeps features comparable across datasets).
double norm_rsrp(double dbm) { return std::clamp((dbm + 140.0) / 70.0, 0.0, 1.0); }
double norm_rsrq(double db) { return std::clamp((db + 20.0) / 15.0, 0.0, 1.0); }
double norm_sinr(double db) { return std::clamp((db + 15.0) / 50.0, 0.0, 1.0); }

void cc_features_into(const sim::CcSample& cc, double tput_scale,
                      std::vector<double>& f) {
  f.assign(kCcFeatureDim, 0.0);
  if (!cc.active) return;  // inactive slots are zeroed, as in the paper's mask
  f[kFeatActive] = 1.0;
  f[kFeatPcell] = cc.is_pcell ? 1.0 : 0.0;
  f[kFeatBand] = (static_cast<double>(cc.band) + 1.0) / (phy::kBandCount + 1.0);
  f[kFeatBandwidth] = cc.bandwidth_mhz / 100.0;
  f[kFeatRsrp] = norm_rsrp(cc.rsrp_dbm);
  f[kFeatRsrq] = norm_rsrq(cc.rsrq_db);
  f[kFeatSinr] = norm_sinr(cc.sinr_db);
  f[kFeatCqi] = cc.cqi / 15.0;
  f[kFeatBler] = std::clamp(cc.bler, 0.0, 1.0);
  f[kFeatRb] = cc.rb / 273.0;
  f[kFeatLayers] = cc.layers / 4.0;
  f[kFeatMcs] = cc.mcs / 27.0;
  f[kFeatTput] = cc.tput_mbps / tput_scale;
}

}  // namespace

void featurize_step(const sim::TraceSample& s, std::size_t cc_slots,
                    double tput_scale_mbps, StepFeatures& out) {
  out.cc.resize(cc_slots);
  out.mask.resize(cc_slots);
  for (std::size_t c = 0; c < cc_slots; ++c) {
    const sim::CcSample& cc = c < s.ccs.size() ? s.ccs[c] : sim::CcSample{};
    cc_features_into(cc, tput_scale_mbps, out.cc[c]);
    out.mask[c] = cc.active ? 1.0 : 0.0;
  }
  out.global.assign({s.events.empty() ? 0.0 : 1.0,
                     static_cast<double>(s.active_cc_count()) /
                         static_cast<double>(cc_slots)});
  out.agg = s.aggregate_tput_mbps / tput_scale_mbps;
}

Window build_window(const std::vector<sim::TraceSample>& samples, std::size_t start,
                    const DatasetSpec& spec, std::size_t cc_slots, double tput_scale_mbps,
                    bool allow_short_target) {
  CA5G_CHECK_MSG(start + spec.history <= samples.size(), "window history out of range");
  if (!allow_short_target)
    CA5G_CHECK_MSG(start + spec.history + spec.horizon <= samples.size(),
                   "window target out of range");

  Window w;
  w.cc_feat.reserve(spec.history);
  StepFeatures step;
  for (std::size_t t = 0; t < spec.history; ++t) {
    featurize_step(samples[start + t], cc_slots, tput_scale_mbps, step);
    w.cc_feat.push_back(step.cc);
    w.mask.push_back(step.mask);
    w.global.push_back(step.global);
    w.agg_history.push_back(step.agg);
  }
  const std::size_t horizon_avail =
      std::min(spec.horizon, samples.size() - start - spec.history);
  for (std::size_t h = 0; h < horizon_avail; ++h) {
    const auto& s = samples[start + spec.history + h];
    w.target.push_back(s.aggregate_tput_mbps / tput_scale_mbps);
    std::vector<double> cc_t(cc_slots, 0.0);
    for (std::size_t c = 0; c < cc_slots && c < s.ccs.size(); ++c)
      cc_t[c] = s.ccs[c].tput_mbps / tput_scale_mbps;
    w.cc_target.push_back(std::move(cc_t));
  }
  return w;
}

Dataset Dataset::from_traces(const std::vector<sim::Trace>& traces,
                             const DatasetSpec& spec, std::size_t threads) {
  CA5G_CHECK_MSG(!traces.empty(), "dataset from no traces");
  CA5G_CHECK_MSG(spec.history >= 1 && spec.horizon >= 1 && spec.stride >= 1,
                 "bad dataset spec");

  Dataset ds;
  ds.spec_ = spec;
  ds.cc_slots_ = traces.front().cc_slots;
  ds.trace_count_ = traces.size();

  // Normalization scale: dataset-wide max aggregate throughput (min–max
  // with min = 0, matching the paper's min–max scaler on throughput).
  double max_tput = 1.0;
  for (const auto& trace : traces) {
    CA5G_CHECK_MSG(trace.cc_slots == ds.cc_slots_, "traces disagree on cc_slots");
    for (const auto& s : trace.samples) max_tput = std::max(max_tput, s.aggregate_tput_mbps);
  }
  ds.tput_scale_mbps_ = max_tput;

  // Enumerate every (trace, start) pair first, then featurize. Window i
  // lands in slot i regardless of which pool thread built it, so the
  // parallel dataset is byte-for-byte the serial one.
  struct WindowSite {
    std::size_t trace_id;
    std::size_t start;
  };
  std::vector<WindowSite> sites;
  for (std::size_t trace_id = 0; trace_id < traces.size(); ++trace_id) {
    const auto& samples = traces[trace_id].samples;
    if (samples.size() < spec.history + spec.horizon) continue;
    for (std::size_t start = 0; start + spec.history + spec.horizon <= samples.size();
         start += spec.stride)
      sites.push_back({trace_id, start});
  }
  CA5G_CHECK_MSG(!sites.empty(), "dataset produced no windows");

  ds.windows_.resize(sites.size());
  common::parallel_for(threads, sites.size(), [&](std::size_t i) {
    Window w = build_window(traces[sites[i].trace_id].samples, sites[i].start, spec,
                            ds.cc_slots_, max_tput);
    w.trace_id = sites[i].trace_id;
    ds.windows_[i] = std::move(w);
  });
  return ds;
}

std::vector<double> Dataset::flatten_step(const Window& w, std::size_t t) {
  CA5G_CHECK_MSG(t < w.cc_feat.size(), "flatten_step index out of range");
  std::vector<double> flat;
  flat.reserve(w.cc_feat[t].size() * kCcFeatureDim + kGlobalFeatureDim + 1);
  for (const auto& cc : w.cc_feat[t]) flat.insert(flat.end(), cc.begin(), cc.end());
  flat.insert(flat.end(), w.global[t].begin(), w.global[t].end());
  flat.push_back(w.agg_history[t]);
  return flat;
}

Dataset::Split Dataset::random_split(double train_frac, double val_frac,
                                     common::Rng& rng) const {
  CA5G_CHECK_MSG(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0,
                 "bad split fractions");
  std::vector<std::size_t> idx(windows_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);

  const auto n_train = static_cast<std::size_t>(train_frac * static_cast<double>(idx.size()));
  const auto n_val = static_cast<std::size_t>(val_frac * static_cast<double>(idx.size()));
  Split split;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Window* w = &windows_[idx[i]];
    if (i < n_train)
      split.train.push_back(w);
    else if (i < n_train + n_val)
      split.val.push_back(w);
    else
      split.test.push_back(w);
  }
  CA5G_CHECK_MSG(!split.train.empty() && !split.test.empty(), "degenerate split");
  return split;
}

Dataset::Split Dataset::trace_split(double train_traces_frac, double val_frac,
                                    common::Rng& rng) const {
  CA5G_CHECK_MSG(train_traces_frac > 0.0 && train_traces_frac < 1.0, "bad trace split");
  std::vector<std::size_t> trace_ids(trace_count_);
  for (std::size_t i = 0; i < trace_ids.size(); ++i) trace_ids[i] = i;
  rng.shuffle(trace_ids);
  const auto n_train_traces = std::max<std::size_t>(
      1, static_cast<std::size_t>(train_traces_frac * static_cast<double>(trace_count_)));
  std::vector<bool> is_train_trace(trace_count_, false);
  for (std::size_t i = 0; i < n_train_traces; ++i) is_train_trace[trace_ids[i]] = true;

  Split split;
  for (const auto& w : windows_) {
    if (is_train_trace[w.trace_id]) {
      split.train.push_back(&w);
    } else {
      split.test.push_back(&w);
    }
  }
  // Carve validation windows out of the training traces.
  const auto n_val = static_cast<std::size_t>(val_frac * static_cast<double>(split.train.size()));
  std::vector<std::size_t> idx(split.train.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<const Window*> new_train;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (i < n_val)
      split.val.push_back(split.train[idx[i]]);
    else
      new_train.push_back(split.train[idx[i]]);
  }
  split.train = std::move(new_train);
  CA5G_CHECK_MSG(!split.train.empty() && !split.test.empty(), "degenerate trace split");
  return split;
}

}  // namespace ca5g::traces
