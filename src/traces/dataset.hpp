// ML dataset construction from traces, following the paper's §6.1 setup:
// sliding windows of T=10 history steps and H=10 future steps, min–max
// normalized features, random 0.5/0.2/0.3 train/val/test splits, and the
// trace-level splits used for the generalizability study (Table 14).
//
// Per-CC features follow Table 12: activation mask, PCell flag, band &
// bandwidth encodings, ssRSRP, ssRSRQ, SINR, CQI, BLER, #RB, #Layers,
// MCS, and historical per-CC throughput.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "sim/trace.hpp"

namespace ca5g::traces {

/// Number of normalized features per component carrier per time step.
inline constexpr std::size_t kCcFeatureDim = 13;
/// Global (non-per-CC) features per time step: RRC event flag, CC count.
inline constexpr std::size_t kGlobalFeatureDim = 2;

/// Index meanings inside a CC feature vector.
enum CcFeature : std::size_t {
  kFeatActive = 0,
  kFeatPcell,
  kFeatBand,
  kFeatBandwidth,
  kFeatRsrp,
  kFeatRsrq,
  kFeatSinr,
  kFeatCqi,
  kFeatBler,
  kFeatRb,
  kFeatLayers,
  kFeatMcs,
  kFeatTput,
};

/// One training window: T history steps and H future (target) steps.
struct Window {
  /// [T][C][kCcFeatureDim] normalized per-CC features.
  std::vector<std::vector<std::vector<double>>> cc_feat;
  /// [T][C] binary activation mask (the paper's RRC-derived I).
  std::vector<std::vector<double>> mask;
  /// [T][kGlobalFeatureDim] global features.
  std::vector<std::vector<double>> global;
  /// [T] normalized aggregate throughput history.
  std::vector<double> agg_history;
  /// [H] normalized aggregate throughput targets.
  std::vector<double> target;
  /// [H][C] normalized per-CC throughput targets.
  std::vector<std::vector<double>> cc_target;
  /// Which trace this window came from (for trace-level splits).
  std::size_t trace_id = 0;
};

/// Windowing parameters (paper: input length 10, output length 10).
struct DatasetSpec {
  std::size_t history = 10;
  std::size_t horizon = 10;
  std::size_t stride = 1;
};

/// Normalized features of a single trace step: exactly what one history
/// row of a Window holds. Shared by the batch windowing below and by the
/// serve path's per-UE ring buffers, which featurize each sample once at
/// ingest instead of rebuilding whole windows per request.
struct StepFeatures {
  /// [C][kCcFeatureDim] normalized per-CC features.
  std::vector<std::vector<double>> cc;
  /// [C] binary activation mask.
  std::vector<double> mask;
  /// [kGlobalFeatureDim] global features (RRC event flag, CC count).
  std::vector<double> global;
  /// Normalized aggregate throughput.
  double agg = 0.0;
};

/// Featurize one trace step into `out`, reusing its existing capacity
/// (no allocation once `out` has been through one call with the same
/// `cc_slots`). Normalization matches build_window exactly.
void featurize_step(const sim::TraceSample& s, std::size_t cc_slots,
                    double tput_scale_mbps, StepFeatures& out);

/// Build one window from trace samples starting at `start` (history
/// begins there; targets follow). Used by Dataset and by the QoE apps'
/// streaming predictors. `allow_short_target` permits fewer than
/// `spec.horizon` future samples (targets are truncated).
[[nodiscard]] Window build_window(const std::vector<sim::TraceSample>& samples,
                                  std::size_t start, const DatasetSpec& spec,
                                  std::size_t cc_slots, double tput_scale_mbps,
                                  bool allow_short_target = false);

/// A normalized, windowed dataset plus its de-normalization scale.
class Dataset {
 public:
  /// Build from traces. All traces must share cc_slots. `threads` > 1
  /// featurizes windows on the shared work-stealing pool; every window
  /// is written to its pre-enumerated slot, so the dataset is
  /// bit-identical at any thread count (0 = common::default_thread_count,
  /// 1 = serial).
  [[nodiscard]] static Dataset from_traces(const std::vector<sim::Trace>& traces,
                                           const DatasetSpec& spec,
                                           std::size_t threads = 1);

  [[nodiscard]] const std::vector<Window>& windows() const noexcept { return windows_; }
  [[nodiscard]] std::size_t cc_slots() const noexcept { return cc_slots_; }
  [[nodiscard]] std::size_t history() const noexcept { return spec_.history; }
  [[nodiscard]] std::size_t horizon() const noexcept { return spec_.horizon; }
  /// Mbps value that normalizes to 1.0 (dataset max aggregate tput).
  [[nodiscard]] double tput_scale_mbps() const noexcept { return tput_scale_mbps_; }
  [[nodiscard]] std::size_t trace_count() const noexcept { return trace_count_; }

  /// Flattened per-step feature vector (all CCs + globals + aggregate);
  /// the representation baseline models consume.
  [[nodiscard]] static std::vector<double> flatten_step(const Window& w, std::size_t t);
  [[nodiscard]] std::size_t flat_dim() const noexcept {
    return cc_slots_ * kCcFeatureDim + kGlobalFeatureDim + 1;
  }

  /// View of windows split into train/val/test.
  struct Split {
    std::vector<const Window*> train;
    std::vector<const Window*> val;
    std::vector<const Window*> test;
  };

  /// Random window-level split (paper default: 0.5/0.2/0.3).
  [[nodiscard]] Split random_split(double train_frac, double val_frac,
                                   common::Rng& rng) const;

  /// Trace-level split: whole traces are assigned to train+val or test
  /// (generalizability evaluation, Table 14).
  [[nodiscard]] Split trace_split(double train_traces_frac, double val_frac,
                                  common::Rng& rng) const;

 private:
  DatasetSpec spec_;
  std::size_t cc_slots_ = 4;
  std::size_t trace_count_ = 0;
  double tput_scale_mbps_ = 1.0;
  std::vector<Window> windows_;
};

}  // namespace ca5g::traces
