// Bounded MPMC request queue with batch-or-deadline consumption: the
// backbone of the prediction server's micro-batching dispatch. Producers
// never block — try_push() is the admission-control point and returns
// false when the queue is full, which the server surfaces as load
// shedding. Consumers pop whole batches: pop_batch() blocks until at
// least one item is available, then keeps gathering until either the
// batch is full or the batch deadline (measured from the first pop)
// expires — so a saturated server runs at max batch size while a nearly
// idle one still bounds per-request latency by the deadline.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace ca5g::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    CA5G_CHECK_MSG(capacity_ > 0, "BoundedQueue capacity must be positive");
  }

  /// Non-blocking producer path. False when full or closed (the caller
  /// sheds the request); true once the item is queued.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Gather up to `max` items into `out` (appended). Blocks until at
  /// least one item arrives or the queue is closed; after the first item
  /// keeps collecting until `max` items or `deadline` elapses. Returns
  /// the number of items appended (0 only when closed and drained).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max,
                        std::chrono::microseconds deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return 0;  // closed and drained

    std::size_t popped = 0;
    const auto batch_deadline = std::chrono::steady_clock::now() + deadline;
    for (;;) {
      while (popped < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++popped;
      }
      if (popped >= max || closed_) break;
      if (!not_empty_.wait_until(lock, batch_deadline,
                                 [&] { return closed_ || !items_.empty(); }))
        break;  // deadline fired: dispatch the partial batch
      if (items_.empty()) break;  // woken by close()
    }
    return popped;
  }

  /// Close the queue: producers start failing, consumers drain what is
  /// left and then see pop_batch() return 0.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ca5g::serve
