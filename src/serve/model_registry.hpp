// Named store of fitted predictors with atomic hot-swap. The serving
// workers pin the active model once per micro-batch (a shared_ptr copy
// under a short mutex), so an operator can install a freshly trained
// model — or re-point "current" at another entry — while requests are in
// flight: batches already dispatched finish on the model they pinned,
// later batches pick up the replacement. Every install bumps a
// monotonically increasing version that is echoed in each Prediction, so
// clients can tell which model produced a horizon.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "predictors/predictor.hpp"

namespace ca5g::serve {

class ModelRegistry {
 public:
  /// The pinned view a worker dispatches a batch against.
  struct Entry {
    std::shared_ptr<const predictors::Predictor> model;
    std::uint64_t version = 0;
    std::string name;
  };

  /// Install (or replace) `name`. The first install selects itself as
  /// current; later installs of the currently selected name hot-swap the
  /// serving model in place. Returns the new version.
  std::uint64_t install(const std::string& name,
                        std::shared_ptr<const predictors::Predictor> model);

  /// Point "current" at an installed entry. False if `name` is unknown.
  [[nodiscard]] bool select(const std::string& name);

  /// Pin the current model. Entry.model is null until the first install.
  [[nodiscard]] Entry current() const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::size_t current_index_ = 0;
  bool has_current_ = false;
  std::uint64_t next_version_ = 1;
};

}  // namespace ca5g::serve
