// Per-UE streaming session state: a fixed-capacity ring buffer of
// featurized trace steps. Each incoming sim::TraceSample is normalized
// exactly once at ingest (traces::featurize_step — the same code path the
// batch Dataset windowing uses), so producing a prediction window is a
// copy of pre-normalized doubles instead of a per-request build_window
// rebuild over raw samples. Sessions are grouped into a sharded table so
// ingest threads and batching workers contend on a shard mutex, not a
// global one.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/trace.hpp"
#include "traces/dataset.hpp"

namespace ca5g::serve {

/// Opaque UE identity (an IMSI stand-in).
using UeId = std::uint64_t;

/// One UE's streaming feature window.
class UeSession {
 public:
  /// `history` ring slots of `cc_slots`-carrier features, normalized
  /// against `tput_scale_mbps` (the serving model's training scale).
  UeSession(std::size_t history, std::size_t cc_slots, double tput_scale_mbps);

  /// Ingest one 10 ms sample: featurize into the next ring slot.
  /// Steady-state cost is the featurization only — the ring slots keep
  /// their heap capacity, so no allocation after warm-up.
  void push(const sim::TraceSample& sample);

  /// True once `history` samples have been ingested.
  [[nodiscard]] bool warm() const noexcept { return steps_seen_ >= history_; }
  [[nodiscard]] std::uint64_t steps_seen() const noexcept { return steps_seen_; }

  /// Materialize the current window (oldest → newest ring order) into
  /// `out`, reusing its nested-vector capacity. Requires warm().
  /// The produced history matches traces::build_window over the same
  /// samples feature-for-feature; target fields are left empty (the
  /// horizon is what the server predicts).
  void snapshot(traces::Window& out) const;

 private:
  std::size_t history_;
  std::size_t cc_slots_;
  double tput_scale_mbps_;
  std::uint64_t steps_seen_ = 0;
  std::size_t next_slot_ = 0;               ///< ring index of the next write
  std::vector<traces::StepFeatures> ring_;  ///< `history_` slots
};

/// Sharded UeId → UeSession map. push() and snapshot() lock only the
/// owning shard; distinct UEs on different shards never contend.
class SessionTable {
 public:
  SessionTable(std::size_t shards, std::size_t history, std::size_t cc_slots,
               double tput_scale_mbps);

  /// Ingest a sample for `ue`, creating the session on first contact.
  /// Returns the session's post-push state: (steps_seen, warm).
  struct PushResult {
    std::uint64_t seq = 0;
    bool warm = false;
  };
  PushResult push(UeId ue, const sim::TraceSample& sample);

  /// Snapshot `ue`'s current window into `out`. False when the session
  /// does not exist or is not yet warm.
  [[nodiscard]] bool snapshot(UeId ue, traces::Window& out) const;

  /// Drop a session (UE detached). True when it existed.
  bool erase(UeId ue);

  [[nodiscard]] std::size_t session_count() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<UeId, UeSession> sessions;
  };

  [[nodiscard]] Shard& shard_for(UeId ue) const noexcept {
    return shards_[static_cast<std::size_t>(ue) % shards_.size()];
  }

  std::size_t history_;
  std::size_t cc_slots_;
  double tput_scale_mbps_;
  mutable std::vector<Shard> shards_;
};

}  // namespace ca5g::serve
