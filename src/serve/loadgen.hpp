// Deterministic trace-replay load generator. Replays a recorded (or
// simulated) sim::Trace through a PredictionServer as N concurrent UEs,
// each starting at a seed-derived offset into the trace so their CA
// dynamics decorrelate. Two pacing modes:
//
//   open loop    samples are offered on the trace's own clock scaled by
//                `speed` (1× = real time, 1000× = as fast as 1000 UEs'
//                worth of real time); the server sheds what it cannot
//                absorb — this measures behaviour under a fixed offered
//                load.
//   closed loop  at most `max_in_flight` requests outstanding; the
//                driver waits for completions before offering more —
//                this measures peak sustainable throughput and keeps
//                p99 latency bounded by max_in_flight / throughput.
//
// The submission sequence is a pure function of (trace, config): a
// single driver thread walks UEs round-robin per step, so two runs offer
// identical request streams (completion interleaving naturally varies).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace ca5g::serve {

struct LoadGenConfig {
  std::size_t ues = 8;
  double speed = 100.0;  ///< replay speed multiplier (open loop), 1–1000×
  bool closed_loop = false;
  std::size_t max_in_flight = 256;  ///< closed-loop outstanding cap
  double duration_s = 2.0;  ///< wall-clock budget; 0 = one full trace pass
  std::uint64_t seed = 7;   ///< derives per-UE start offsets
  std::size_t expected_horizon = 0;  ///< horizon length check; 0 = only non-empty
};

/// Aggregate outcome of one replay run.
struct LoadGenReport {
  std::uint64_t offered = 0;     ///< submit() calls
  std::uint64_t admitted = 0;    ///< kQueued
  std::uint64_t completed = 0;   ///< ok predictions delivered
  std::uint64_t warmup = 0;      ///< kWarmingUp
  std::uint64_t shed = 0;        ///< kShed
  std::uint64_t errors = 0;      ///< failed predictions or bad horizons
  double wall_s = 0.0;
  double completed_per_s = 0.0;
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
};

class LoadGen {
 public:
  explicit LoadGen(const LoadGenConfig& config);

  /// The completion callback to construct the PredictionServer with.
  /// Must be wired to the same server later passed to run().
  [[nodiscard]] PredictionServer::CompletionFn completion();

  /// Replay `trace` through `server`. Blocks until the run's budget is
  /// exhausted and every admitted request has completed.
  [[nodiscard]] LoadGenReport run(PredictionServer& server, const sim::Trace& trace);

 private:
  void on_complete(const Prediction& p);

  LoadGenConfig config_;
  std::atomic<std::uint64_t> completed_ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::int64_t> in_flight_{0};
  obs::Histogram latency_hist_{obs::HistogramSpec::nanoseconds()};
  std::mutex mu_;
  std::condition_variable in_flight_cv_;
};

}  // namespace ca5g::serve
