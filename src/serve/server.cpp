#include "serve/server.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::serve {

std::string_view admit_name(Admit a) {
  switch (a) {
    case Admit::kQueued: return "queued";
    case Admit::kWarmingUp: return "warming-up";
    case Admit::kShed: return "shed";
    case Admit::kClosed: return "closed";
  }
  return "unknown";
}

PredictionServer::PredictionServer(const ServerConfig& config, ModelRegistry& registry,
                                   CompletionFn on_complete)
    : config_(config),
      registry_(registry),
      on_complete_(std::move(on_complete)),
      sessions_(config.session_shards, config.history, config.cc_slots,
                config.tput_scale_mbps),
      queue_(config.queue_capacity) {
  CA5G_CHECK_MSG(config_.workers >= 1, "server needs at least one worker");
  CA5G_CHECK_MSG(config_.max_batch >= 1, "server max_batch must be positive");
  CA5G_CHECK_MSG(on_complete_ != nullptr, "server needs a completion callback");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

Admit PredictionServer::submit(UeId ue, const sim::TraceSample& sample) {
  CA5G_METRIC_COUNTER(requests, "serve.requests_total");
  CA5G_METRIC_COUNTER(warmup_rejected, "serve.warmup_rejected_total");
  CA5G_METRIC_COUNTER(shed, "serve.shed_total");
  CA5G_METRIC_GAUGE(queue_depth, "serve.queue_depth_count");

  if (stopped_.load(std::memory_order_acquire)) return Admit::kClosed;

  const auto state = sessions_.push(ue, sample);
  if (!state.warm) {
    warmup_rejected.inc();
    return Admit::kWarmingUp;
  }

  Request req{ue, state.seq, std::chrono::steady_clock::now()};
  if (!queue_.try_push(req)) {
    shed.inc();
    return queue_.closed() ? Admit::kClosed : Admit::kShed;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  requests.inc();
  CA5G_OBS_STMT(queue_depth.set(static_cast<double>(queue_.size()));)
  return Admit::kQueued;
}

void PredictionServer::worker_loop() {
  CA5G_METRIC_COUNTER(completed, "serve.completed_total");
  CA5G_METRIC_COUNTER(errors, "serve.errors_total");
  CA5G_METRIC_COUNTER(batches, "serve.batches_total");
  CA5G_METRIC_HISTOGRAM(batch_size, "serve.batch_size_count");
  CA5G_METRIC_HISTOGRAM(assemble_ns, "serve.batch_assemble_ns");
  CA5G_METRIC_HISTOGRAM(predict_ns, "serve.predict_ns");
  CA5G_METRIC_HISTOGRAM(latency_ns, "serve.request_latency_ns");

  // Dispatch scratch, reused across batches: the nested vectors inside
  // each Window keep their capacity, so steady-state dispatch does not
  // allocate for window assembly.
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  std::vector<traces::Window> windows(config_.max_batch);
  std::vector<const traces::Window*> live;
  std::vector<std::size_t> live_index;

  for (;;) {
    batch.clear();
    if (queue_.pop_batch(batch, config_.max_batch, config_.batch_deadline) == 0)
      break;  // closed and drained

    batches.inc();
    batch_size.observe(static_cast<double>(batch.size()));

    live.clear();
    live_index.clear();
    {
      CA5G_SCOPED_TIMER(assemble_ns);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (sessions_.snapshot(batch[i].ue, windows[i])) {
          live.push_back(&windows[i]);
          live_index.push_back(i);
        }
      }
    }

    const auto entry = registry_.current();
    CA5G_CHECK_MSG(entry.model != nullptr,
                   "prediction dispatch with no model installed in the registry");

    std::vector<std::vector<double>> horizons;
    if (!live.empty()) {
      CA5G_SCOPED_TIMER(predict_ns);
      horizons = entry.model->predict_many(live);
    }

    const auto now = std::chrono::steady_clock::now();
    std::size_t next_live = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Prediction p;
      p.ue = batch[i].ue;
      p.seq = batch[i].seq;
      p.model_version = entry.version;
      p.latency_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - batch[i].submitted)
              .count();
      if (next_live < live_index.size() && live_index[next_live] == i) {
        p.ok = true;
        p.horizon = std::move(horizons[next_live]);
        ++next_live;
        completed.inc();
      } else {
        errors.inc();  // session erased between admission and dispatch
      }
      latency_ns.observe(static_cast<double>(p.latency_ns));
      on_complete_(p);
      completed_.fetch_add(1, std::memory_order_release);
    }
  }
}

void PredictionServer::drain() const {
  while (completed_.load(std::memory_order_acquire) <
         admitted_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::microseconds(100));
}

void PredictionServer::stop() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  std::lock_guard<std::mutex> lock(stop_mu_);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

}  // namespace ca5g::serve
