#include "serve/session.hpp"

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace ca5g::serve {

UeSession::UeSession(std::size_t history, std::size_t cc_slots, double tput_scale_mbps)
    : history_(history), cc_slots_(cc_slots), tput_scale_mbps_(tput_scale_mbps) {
  CA5G_CHECK_MSG(history_ >= 1, "UeSession needs at least one history slot");
  CA5G_CHECK_MSG(cc_slots_ >= 1, "UeSession needs at least one CC slot");
  CA5G_CHECK_MSG(tput_scale_mbps_ > 0.0, "UeSession throughput scale must be positive");
  ring_.resize(history_);
}

void UeSession::push(const sim::TraceSample& sample) {
  traces::featurize_step(sample, cc_slots_, tput_scale_mbps_, ring_[next_slot_]);
  next_slot_ = (next_slot_ + 1) % history_;
  ++steps_seen_;
}

void UeSession::snapshot(traces::Window& out) const {
  CA5G_CHECK_MSG(warm(), "snapshot of a cold session");
  out.cc_feat.resize(history_);
  out.mask.resize(history_);
  out.global.resize(history_);
  out.agg_history.resize(history_);
  out.target.clear();
  out.cc_target.clear();
  // next_slot_ is the oldest entry once the ring is full.
  for (std::size_t t = 0; t < history_; ++t) {
    const auto& step = ring_[(next_slot_ + t) % history_];
    out.cc_feat[t] = step.cc;
    out.mask[t] = step.mask;
    out.global[t] = step.global;
    out.agg_history[t] = step.agg;
  }
}

SessionTable::SessionTable(std::size_t shards, std::size_t history,
                           std::size_t cc_slots, double tput_scale_mbps)
    : history_(history), cc_slots_(cc_slots), tput_scale_mbps_(tput_scale_mbps),
      shards_(shards == 0 ? 1 : shards) {}

SessionTable::PushResult SessionTable::push(UeId ue, const sim::TraceSample& sample) {
  CA5G_METRIC_GAUGE(sessions_gauge, "serve.sessions_count");
  Shard& shard = shard_for(ue);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(ue);
  if (it == shard.sessions.end()) {
    it = shard.sessions.emplace(ue, UeSession(history_, cc_slots_, tput_scale_mbps_))
             .first;
    CA5G_OBS_STMT(sessions_gauge.add(1.0);)
  }
  it->second.push(sample);
  return {it->second.steps_seen(), it->second.warm()};
}

bool SessionTable::snapshot(UeId ue, traces::Window& out) const {
  Shard& shard = shard_for(ue);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.sessions.find(ue);
  if (it == shard.sessions.end() || !it->second.warm()) return false;
  it->second.snapshot(out);
  return true;
}

bool SessionTable::erase(UeId ue) {
  CA5G_METRIC_GAUGE(sessions_gauge, "serve.sessions_count");
  Shard& shard = shard_for(ue);
  std::lock_guard<std::mutex> lock(shard.mu);
  const bool erased = shard.sessions.erase(ue) > 0;
  CA5G_OBS_STMT(if (erased) sessions_gauge.add(-1.0);)
  return erased;
}

std::size_t SessionTable::session_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace ca5g::serve
