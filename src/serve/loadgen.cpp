#include "serve/loadgen.hpp"

#include <limits>
#include <thread>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::serve {

LoadGen::LoadGen(const LoadGenConfig& config) : config_(config) {
  CA5G_CHECK_MSG(config_.ues >= 1, "loadgen needs at least one UE");
  CA5G_CHECK_MSG(config_.speed >= 1.0 && config_.speed <= 1000.0,
                 "loadgen speed must be in [1, 1000]");
  CA5G_CHECK_MSG(!config_.closed_loop || config_.max_in_flight >= 1,
                 "closed-loop loadgen needs max_in_flight >= 1");
}

PredictionServer::CompletionFn LoadGen::completion() {
  return [this](const Prediction& p) { on_complete(p); };
}

void LoadGen::on_complete(const Prediction& p) {
  CA5G_METRIC_COUNTER(loadgen_errors, "serve.loadgen_errors_total");
  const bool horizon_ok =
      !p.horizon.empty() &&
      (config_.expected_horizon == 0 || p.horizon.size() == config_.expected_horizon);
  if (p.ok && horizon_ok) {
    completed_ok_.fetch_add(1, std::memory_order_relaxed);
    latency_hist_.observe(static_cast<double>(p.latency_ns));
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    loadgen_errors.inc();
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (config_.closed_loop) {
    // Pair the notify with the driver's mutex so a decrement landing
    // between its predicate check and its sleep cannot be lost.
    { std::lock_guard<std::mutex> lock(mu_); }
    in_flight_cv_.notify_one();
  }
}

LoadGenReport LoadGen::run(PredictionServer& server, const sim::Trace& trace) {
  CA5G_CHECK_MSG(!trace.samples.empty(), "loadgen replay of an empty trace");
  CA5G_METRIC_COUNTER(offered_counter, "serve.loadgen_offered_total");

  const std::size_t n = trace.samples.size();
  // Seed-derived per-UE start offsets: deterministic, spread across the
  // trace so the UEs' CA dynamics decorrelate.
  common::Rng rng(config_.seed);
  std::vector<std::size_t> offsets(config_.ues);
  for (std::size_t u = 0; u < config_.ues; ++u)
    offsets[u] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));

  LoadGenReport report;
  completed_ok_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  in_flight_.store(0, std::memory_order_relaxed);
  latency_hist_.reset();

  const double step_budget_s = trace.step_s / config_.speed;
  const auto start = std::chrono::steady_clock::now();
  obs::StopWatch watch;

  const std::size_t max_steps = config_.duration_s > 0.0
                                    ? std::numeric_limits<std::size_t>::max()
                                    : n;  // one full pass when untimed
  bool server_closed = false;
  for (std::size_t step = 0; step < max_steps && !server_closed; ++step) {
    for (std::size_t u = 0; u < config_.ues; ++u) {
      if (config_.closed_loop) {
        std::unique_lock<std::mutex> lock(mu_);
        in_flight_cv_.wait(lock, [&] {
          return in_flight_.load(std::memory_order_acquire) <
                 static_cast<std::int64_t>(config_.max_in_flight);
        });
      }
      const auto& sample = trace.samples[(offsets[u] + step) % n];
      ++report.offered;
      offered_counter.inc();
      // Count the request in flight before submitting: the completion can
      // arrive (and decrement) before submit() even returns.
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      const Admit admit = server.submit(static_cast<UeId>(u + 1), sample);
      if (admit == Admit::kQueued) {
        ++report.admitted;
      } else {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        if (admit == Admit::kWarmingUp) ++report.warmup;
        if (admit == Admit::kShed) ++report.shed;
        if (admit == Admit::kClosed) {
          server_closed = true;
          break;
        }
      }
    }
    if (server_closed) break;
    if (config_.duration_s > 0.0 && watch.elapsed_s() >= config_.duration_s) break;
    if (!config_.closed_loop) {
      // Open loop: pace to the trace clock. Sleeping a fixed slice every
      // step would drift under high speed-ups; re-sync to the absolute
      // schedule instead.
      const auto target =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          (static_cast<double>(step) + 1.0) * step_budget_s));
      if (target > std::chrono::steady_clock::now())
        std::this_thread::sleep_until(target);
    }
  }

  server.drain();
  report.wall_s = watch.elapsed_s();
  report.completed = completed_ok_.load(std::memory_order_relaxed);
  report.errors = errors_.load(std::memory_order_relaxed);
  report.completed_per_s =
      report.wall_s > 0.0 ? static_cast<double>(report.completed) / report.wall_s : 0.0;
  const auto snapshot = obs::HistogramSnapshot::from("loadgen.latency_ns", latency_hist_);
  report.p50_latency_ns = snapshot.quantile(0.50);
  report.p99_latency_ns = snapshot.quantile(0.99);
  return report;
}

}  // namespace ca5g::serve
