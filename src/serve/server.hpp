// PredictionServer: the online counterpart of eval/pipeline. Clients
// stream per-10 ms sim::TraceSample updates keyed by UE id; the server
// maintains each UE's feature window incrementally (serve/session),
// admits a prediction request per warm sample into a bounded MPMC queue
// (serve/bounded_queue), and a pool of worker threads drains the queue in
// micro-batches — dispatching when a batch fills or its deadline expires,
// whichever comes first. A whole batch costs one batched
// Predictor::predict_many() call on the model pinned from the
// ModelRegistry, so deep models amortize their forward pass across UEs
// exactly as they do in training. For deep predictors that batched call
// runs the compiled graph-free inference plan (nn/infer): each worker
// thread reuses its own nn::infer::thread_arena() for scratch, so
// steady-state serving builds no autograd nodes and touches the heap
// zero times per batch — progress is visible in the infer.* metrics
// next to the serve.* ones below.
//
// Overload behaviour is shed-not-queue: try_push admission control drops
// requests once the queue is full (counted in serve.shed_total) so
// latency stays bounded by queue_capacity / throughput instead of
// growing without bound.
//
// Exported metrics (all registered lazily on first use; names are the
// contract docs/SERVING.md and prism5g_lint check):
//   serve.requests_total         admitted requests
//   serve.warmup_rejected_total  samples before the UE window was full
//   serve.shed_total             admission-control drops (queue full)
//   serve.completed_total        predictions delivered
//   serve.errors_total           session vanished between admit & dispatch
//   serve.batches_total          micro-batches dispatched
//   serve.model_swaps_total      ModelRegistry installs/hot-swaps
//   serve.queue_depth_count      queue occupancy (gauge)
//   serve.sessions_count         live UE sessions (gauge)
//   serve.batch_size_count       dispatched batch sizes (histogram)
//   serve.batch_assemble_ns      window-snapshot phase per batch
//   serve.predict_ns             predict_many() per batch
//   serve.request_latency_ns     submit → completion per request
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/bounded_queue.hpp"
#include "serve/model_registry.hpp"
#include "serve/session.hpp"

namespace ca5g::serve {

/// Every metric name the serve subsystem registers; prism5g_lint
/// validates each against the layer.noun_unit naming convention.
inline constexpr std::array<std::string_view, 15> kServeMetricNames = {
    "serve.requests_total",      "serve.warmup_rejected_total",
    "serve.shed_total",          "serve.completed_total",
    "serve.errors_total",        "serve.batches_total",
    "serve.model_swaps_total",   "serve.queue_depth_count",
    "serve.sessions_count",      "serve.batch_size_count",
    "serve.batch_assemble_ns",   "serve.predict_ns",
    "serve.request_latency_ns",  "serve.loadgen_offered_total",
    "serve.loadgen_errors_total",
};

/// Outcome of submitting one sample.
enum class Admit : std::uint8_t {
  kQueued,     ///< request admitted; a Prediction will be delivered
  kWarmingUp,  ///< session window not yet full; sample ingested, no request
  kShed,       ///< queue full — request dropped by admission control
  kClosed,     ///< server is stopping
};

[[nodiscard]] std::string_view admit_name(Admit a);

/// One delivered prediction.
struct Prediction {
  UeId ue = 0;
  std::uint64_t seq = 0;  ///< per-UE sample sequence number at submit
  bool ok = false;        ///< false: session vanished before dispatch
  std::uint64_t model_version = 0;
  std::int64_t latency_ns = 0;  ///< submit → completion wall time
  std::vector<double> horizon;  ///< H-step normalized throughput forecast
};

struct ServerConfig {
  std::size_t workers = 4;
  std::size_t max_batch = 32;
  std::chrono::microseconds batch_deadline{1000};
  std::size_t queue_capacity = 4096;
  std::size_t session_shards = 16;
  std::size_t history = 10;   ///< window length (paper: T = 10 steps)
  std::size_t cc_slots = 4;
  double tput_scale_mbps = 1.0;  ///< the serving model's training scale
};

class PredictionServer {
 public:
  /// Completions are delivered from worker threads, possibly several
  /// concurrently — the callback must be thread-safe.
  using CompletionFn = std::function<void(const Prediction&)>;

  PredictionServer(const ServerConfig& config, ModelRegistry& registry,
                   CompletionFn on_complete);
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  /// Ingest one sample for `ue`; admits a prediction request once the
  /// UE's window is warm. Thread-safe.
  Admit submit(UeId ue, const sim::TraceSample& sample);

  /// Block until every admitted request has been dispatched & delivered.
  void drain() const;

  /// Close the queue, drain in-flight work, join the workers. Idempotent
  /// (also runs on destruction). After stop(), submit() returns kClosed.
  void stop();

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t session_count() const { return sessions_.session_count(); }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    UeId ue = 0;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();

  ServerConfig config_;
  ModelRegistry& registry_;
  CompletionFn on_complete_;
  SessionTable sessions_;
  BoundedQueue<Request> queue_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mu_;  ///< serializes concurrent stop() joins
  std::vector<std::thread> workers_;
};

}  // namespace ca5g::serve
