#include "serve/model_registry.hpp"

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace ca5g::serve {

std::uint64_t ModelRegistry::install(const std::string& name,
                                     std::shared_ptr<const predictors::Predictor> model) {
  CA5G_CHECK_MSG(model != nullptr, "ModelRegistry::install with null model");
  CA5G_METRIC_COUNTER(swaps, "serve.model_swaps_total");
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t version = next_version_++;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name != name) continue;
    entries_[i].model = std::move(model);
    entries_[i].version = version;
    swaps.inc();
    return version;
  }
  entries_.push_back(Entry{std::move(model), version, name});
  if (!has_current_) {
    current_index_ = entries_.size() - 1;
    has_current_ = true;
  }
  swaps.inc();
  return version;
}

bool ModelRegistry::select(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name != name) continue;
    current_index_ = i;
    has_current_ = true;
    return true;
  }
  return false;
}

ModelRegistry::Entry ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_current_) return {};
  return entries_[current_index_];
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

}  // namespace ca5g::serve
