// Descriptive statistics used throughout measurement analysis and
// evaluation: mean/std, percentiles, Pearson correlation, histograms,
// and a streaming accumulator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ca5g::common {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 values.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Population variance helper used by tree learners (n denominator).
[[nodiscard]] double variance_population(std::span<const double> xs) noexcept;

[[nodiscard]] double min_value(std::span<const double> xs) noexcept;
[[nodiscard]] double max_value(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient; 0 if either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

/// Root mean squared error between predictions and targets.
[[nodiscard]] double rmse(std::span<const double> pred, std::span<const double> truth);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> pred, std::span<const double> truth);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                                 double hi, std::size_t bins);

/// Count of local maxima ("modes") in a smoothed histogram — used to
/// quantify the multimodality that CA induces in throughput distributions
/// (paper Fig. 2). A bucket is a mode if it exceeds both neighbours and
/// holds at least `min_mass_fraction` of the samples.
[[nodiscard]] std::size_t count_modes(std::span<const double> xs, std::size_t bins,
                                      double min_mass_fraction = 0.02);

/// Streaming mean/std accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ca5g::common
