#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace ca5g::common {
namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream is(line);
  while (std::getline(is, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

std::size_t CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  CA5G_CHECK_MSG(false, "CSV column not found: " << name);
  return 0;  // unreachable
}

CsvDocument parse_csv(const std::string& text, bool allow_ragged) {
  CsvDocument doc;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Editors and spreadsheet exports prepend a UTF-8 BOM; it is not part
    // of the first header name.
    if (first && line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (first) {
      doc.header = std::move(cells);
      first = false;
    } else {
      if (!allow_ragged)
        CA5G_CHECK_MSG(cells.size() == doc.header.size(),
                       "CSV row width " << cells.size() << " != header width "
                                        << doc.header.size());
      doc.rows.push_back(std::move(cells));
    }
  }
  return doc;
}

std::string to_csv(const CsvDocument& doc) {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(doc.header);
  for (const auto& row : doc.rows) emit(row);
  return os.str();
}

CsvDocument load_csv(const std::string& path, bool allow_ragged) {
  std::ifstream in(path);
  CA5G_CHECK_MSG(in.good(), "cannot open CSV file: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), allow_ragged);
}

void save_csv(const CsvDocument& doc, const std::string& path) {
  std::ofstream out(path);
  CA5G_CHECK_MSG(out.good(), "cannot write CSV file: " << path);
  out << to_csv(doc);
  CA5G_CHECK_MSG(out.good(), "write failed for CSV file: " << path);
}

}  // namespace ca5g::common
