#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::common {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double variance_population(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size());
}

double min_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  CA5G_CHECK_MSG(!xs.empty(), "percentile of empty data");
  CA5G_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  CA5G_CHECK_MSG(xs.size() == ys.size(), "pearson size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rmse(std::span<const double> pred, std::span<const double> truth) {
  CA5G_CHECK_MSG(pred.size() == truth.size(), "rmse size mismatch");
  CA5G_CHECK_MSG(!pred.empty(), "rmse of empty data");
  double ss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - truth[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(pred.size()));
}

double mae(std::span<const double> pred, std::span<const double> truth) {
  CA5G_CHECK_MSG(pred.size() == truth.size(), "mae size mismatch");
  CA5G_CHECK_MSG(!pred.empty(), "mae of empty data");
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) s += std::abs(pred[i] - truth[i]);
  return s / static_cast<double>(pred.size());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins) {
  CA5G_CHECK_MSG(bins > 0, "histogram needs at least one bin");
  CA5G_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

std::size_t count_modes(std::span<const double> xs, std::size_t bins,
                        double min_mass_fraction) {
  if (xs.size() < 3) return xs.empty() ? 0 : 1;
  const double lo = min_value(xs);
  const double hi = max_value(xs);
  if (hi <= lo) return 1;
  auto counts = histogram(xs, lo, hi, bins);
  // 3-tap smoothing to suppress sampling noise before peak detection.
  std::vector<double> smooth(counts.size(), 0.0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    double acc = static_cast<double>(counts[i]) * 2.0;
    double weight = 2.0;
    if (i > 0) {
      acc += static_cast<double>(counts[i - 1]);
      weight += 1.0;
    }
    if (i + 1 < counts.size()) {
      acc += static_cast<double>(counts[i + 1]);
      weight += 1.0;
    }
    smooth[i] = acc / weight;
  }
  const double threshold = min_mass_fraction * static_cast<double>(xs.size());
  std::size_t modes = 0;
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    const double left = i > 0 ? smooth[i - 1] : -1.0;
    const double right = i + 1 < smooth.size() ? smooth[i + 1] : -1.0;
    if (smooth[i] > left && smooth[i] >= right && smooth[i] >= threshold) ++modes;
  }
  return modes;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace ca5g::common
