// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng (xoshiro256++ seeded via SplitMix64). This guarantees bit-for-bit
// reproducible traces, datasets, and benchmark tables.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ca5g::common {

/// Deterministic PRNG (xoshiro256++). Cheap to copy; fork() derives
/// independent child streams for per-entity randomness.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xCA5'0042u) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential with given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Index sampled according to non-negative weights (at least one > 0).
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Derive an independent child stream (stable function of state + salt).
  /// Advances this generator; successive forks differ.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  /// Derive the `stream_id`-th decorrelated substream WITHOUT advancing
  /// this generator: a pure function of (current state, stream_id). This
  /// is what parallel fleet sweeps use for per-UE randomness — substream
  /// i is the same no matter how many threads run or in what order units
  /// are picked up, so results are bit-identical at any thread count.
  [[nodiscard]] Rng substream(std::uint64_t stream_id) const noexcept;

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ca5g::common
