// Contract-checking layer used across the library.
//
// CA5G_CHECK validates preconditions and runtime invariants; it throws
// ca5g::common::CheckError so callers can catch and report. Following the
// C++ Core Guidelines (I.6/E.2) we express preconditions as checks and
// signal violations with exceptions rather than aborting — a violated
// contract is a diagnosable error, never undefined behaviour.
//
// Macro families:
//   CA5G_CHECK(cond) / CA5G_CHECK_MSG(cond, msg)
//       Always-on condition checks (hot paths included; keep conditions cheap).
//   CA5G_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
//       Comparison checks that print both operands on failure, e.g.
//       "CA5G_CHECK_LE failed: (mcs <= kMaxMcsIndex) [31 vs 27]".
//   CA5G_CHECK_NEAR(a, b, tol)
//       |a - b| <= tol with operand printing.
//   CA5G_CHECK_BOUNDS(i, size) / CA5G_CHECK_IN_RANGE(v, lo, hi)
//       Index (half-open) and value (closed-interval) range checks.
//   CA5G_DCHECK* variants of all of the above
//       Compiled out when CA5G_ENABLE_DCHECKS is 0 (the default for NDEBUG
//       builds); used for expensive or inner-loop invariants. Sanitizer CI
//       builds force them on (see the root CMakeLists.txt).
//
// The legacy header "common/check.hpp" forwards here; CA5G_CHECK and
// CA5G_CHECK_MSG keep their original spelling and semantics.
#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

// Debug-check toggle: on in debug builds, off in NDEBUG builds unless the
// build system overrides (sanitizer CI defines CA5G_ENABLE_DCHECKS=1).
#if !defined(CA5G_ENABLE_DCHECKS)
#if defined(NDEBUG)
#define CA5G_ENABLE_DCHECKS 0
#else
#define CA5G_ENABLE_DCHECKS 1
#endif
#endif

namespace ca5g::common {

/// Exception thrown when a CA5G_CHECK (or relative) fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "CA5G_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

namespace detail {

/// Render one operand for a failure message. Streams when possible so enums
/// with operator<< and strings print naturally; integral/floating values
/// print at full precision for diagnosis.
template <typename T>
std::string repr(const T& value) {
  std::ostringstream os;
  if constexpr (std::is_floating_point_v<T>) {
    os.precision(17);
    os << value;
  } else if constexpr (std::is_enum_v<T>) {
    os << static_cast<std::underlying_type_t<T>>(value);
  } else {
    os << value;
  }
  return os.str();
}

[[noreturn]] inline void raise_cmp_failure(const char* check_name, const char* a_expr,
                                           const char* op, const char* b_expr,
                                           const std::string& a_val, const std::string& b_val,
                                           const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << check_name << " failed: (" << a_expr << ' ' << op << ' ' << b_expr << ") [" << a_val
     << " vs " << b_val << "] at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

/// Throwing bounds check for container indexing: returns `i` as std::size_t
/// after verifying 0 <= i < size. Usable in constant expressions.
template <typename Index>
constexpr std::size_t checked_index(Index i, std::size_t size,
                                    const char* what = "index") {
  if constexpr (std::is_signed_v<Index>) {
    if (i < 0 || static_cast<std::size_t>(i) >= size)
      throw CheckError(std::string(what) + " out of bounds: " + detail::repr(i) +
                       " not in [0, " + detail::repr(size) + ")");
    return static_cast<std::size_t>(i);
  } else {
    if (static_cast<std::size_t>(i) >= size)
      throw CheckError(std::string(what) + " out of bounds: " + detail::repr(i) +
                       " not in [0, " + detail::repr(size) + ")");
    return static_cast<std::size_t>(i);
  }
}

}  // namespace ca5g::common

/// Validate a runtime condition; throws ca5g::common::CheckError on failure.
#define CA5G_CHECK(cond)                                                            \
  do {                                                                              \
    if (!(cond)) ::ca5g::common::raise_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Validate with an explanatory message (streamed).
#define CA5G_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ca5g_os_;                                         \
      ca5g_os_ << msg;                                                     \
      ::ca5g::common::raise_check_failure(#cond, __FILE__, __LINE__,       \
                                          ca5g_os_.str());                 \
    }                                                                      \
  } while (false)

// Internal: shared body for the operand-printing comparison checks. The
// operands are bound once (no double evaluation) and printed on failure.
#define CA5G_CHECK_CMP_IMPL_(name, a, op, b, msg)                                      \
  do {                                                                                 \
    const auto& ca5g_lhs_ = (a);                                                       \
    const auto& ca5g_rhs_ = (b);                                                       \
    if (!(ca5g_lhs_ op ca5g_rhs_)) {                                                   \
      std::ostringstream ca5g_os_;                                                     \
      ca5g_os_ << msg;                                                                 \
      ::ca5g::common::detail::raise_cmp_failure(                                       \
          name, #a, #op, #b, ::ca5g::common::detail::repr(ca5g_lhs_),                  \
          ::ca5g::common::detail::repr(ca5g_rhs_), __FILE__, __LINE__, ca5g_os_.str()); \
    }                                                                                  \
  } while (false)

/// Comparison checks that print both operand values on failure.
#define CA5G_CHECK_EQ(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_EQ", a, ==, b, "")
#define CA5G_CHECK_NE(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_NE", a, !=, b, "")
#define CA5G_CHECK_LT(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_LT", a, <, b, "")
#define CA5G_CHECK_LE(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_LE", a, <=, b, "")
#define CA5G_CHECK_GT(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_GT", a, >, b, "")
#define CA5G_CHECK_GE(a, b) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_GE", a, >=, b, "")

/// Message-carrying variants.
#define CA5G_CHECK_EQ_MSG(a, b, msg) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_EQ", a, ==, b, msg)
#define CA5G_CHECK_LE_MSG(a, b, msg) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_LE", a, <=, b, msg)
#define CA5G_CHECK_GE_MSG(a, b, msg) CA5G_CHECK_CMP_IMPL_("CA5G_CHECK_GE", a, >=, b, msg)

/// |a − b| <= tol, with operand printing.
#define CA5G_CHECK_NEAR(a, b, tol)                                                     \
  do {                                                                                 \
    const auto ca5g_near_a_ = (a);                                                     \
    const auto ca5g_near_b_ = (b);                                                     \
    const auto ca5g_near_tol_ = (tol);                                                 \
    if (!(std::abs(ca5g_near_a_ - ca5g_near_b_) <= ca5g_near_tol_)) {                  \
      ::ca5g::common::detail::raise_cmp_failure(                                       \
          "CA5G_CHECK_NEAR", #a, "~=", #b, ::ca5g::common::detail::repr(ca5g_near_a_), \
          ::ca5g::common::detail::repr(ca5g_near_b_), __FILE__, __LINE__,              \
          "tolerance " + ::ca5g::common::detail::repr(ca5g_near_tol_));                \
    }                                                                                  \
  } while (false)

/// Half-open index bounds check: 0 <= i < size.
#define CA5G_CHECK_BOUNDS(i, size)                                                      \
  do {                                                                                  \
    (void)::ca5g::common::checked_index((i), static_cast<std::size_t>(size), #i);       \
  } while (false)

/// Closed-interval range check: lo <= v <= hi, printing all three on failure.
#define CA5G_CHECK_IN_RANGE(v, lo, hi)                                                 \
  do {                                                                                 \
    const auto& ca5g_val_ = (v);                                                       \
    const auto& ca5g_lo_ = (lo);                                                       \
    const auto& ca5g_hi_ = (hi);                                                       \
    if (!(ca5g_lo_ <= ca5g_val_ && ca5g_val_ <= ca5g_hi_)) {                           \
      ::ca5g::common::detail::raise_cmp_failure(                                       \
          "CA5G_CHECK_IN_RANGE", #v, "in", "[" #lo ", " #hi "]",                       \
          ::ca5g::common::detail::repr(ca5g_val_),                                     \
          "[" + ::ca5g::common::detail::repr(ca5g_lo_) + ", " +                        \
              ::ca5g::common::detail::repr(ca5g_hi_) + "]",                            \
          __FILE__, __LINE__, "");                                                     \
    }                                                                                  \
  } while (false)

// Debug-only variants: full checks when CA5G_ENABLE_DCHECKS, otherwise the
// condition is type-checked but never evaluated (no side effects, no cost,
// no unused-variable warnings).
#if CA5G_ENABLE_DCHECKS
#define CA5G_DCHECK(cond) CA5G_CHECK(cond)
#define CA5G_DCHECK_MSG(cond, msg) CA5G_CHECK_MSG(cond, msg)
#define CA5G_DCHECK_EQ(a, b) CA5G_CHECK_EQ(a, b)
#define CA5G_DCHECK_NE(a, b) CA5G_CHECK_NE(a, b)
#define CA5G_DCHECK_LT(a, b) CA5G_CHECK_LT(a, b)
#define CA5G_DCHECK_LE(a, b) CA5G_CHECK_LE(a, b)
#define CA5G_DCHECK_GT(a, b) CA5G_CHECK_GT(a, b)
#define CA5G_DCHECK_GE(a, b) CA5G_CHECK_GE(a, b)
#define CA5G_DCHECK_NEAR(a, b, tol) CA5G_CHECK_NEAR(a, b, tol)
#define CA5G_DCHECK_BOUNDS(i, size) CA5G_CHECK_BOUNDS(i, size)
#define CA5G_DCHECK_IN_RANGE(v, lo, hi) CA5G_CHECK_IN_RANGE(v, lo, hi)
#define CA5G_DCHECK_EQ_MSG(a, b, msg) CA5G_CHECK_EQ_MSG(a, b, msg)
#define CA5G_DCHECK_LE_MSG(a, b, msg) CA5G_CHECK_LE_MSG(a, b, msg)
#define CA5G_DCHECK_GE_MSG(a, b, msg) CA5G_CHECK_GE_MSG(a, b, msg)
#else
/// Type-check but never evaluate: the expression sits behind a short-circuit
/// `false &&` inside sizeof, so operands keep their odr-uses suppressed while
/// unused-variable/-parameter warnings stay quiet.
#define CA5G_DCHECK_NOOP_(cond)                          \
  do {                                                   \
    (void)sizeof(static_cast<bool>(false && (cond)));    \
  } while (false)
#define CA5G_DCHECK(cond) CA5G_DCHECK_NOOP_(cond)
#define CA5G_DCHECK_MSG(cond, msg) CA5G_DCHECK_NOOP_(cond)
#define CA5G_DCHECK_EQ(a, b) CA5G_DCHECK_NOOP_((a) == (b))
#define CA5G_DCHECK_NE(a, b) CA5G_DCHECK_NOOP_((a) != (b))
#define CA5G_DCHECK_LT(a, b) CA5G_DCHECK_NOOP_((a) < (b))
#define CA5G_DCHECK_LE(a, b) CA5G_DCHECK_NOOP_((a) <= (b))
#define CA5G_DCHECK_GT(a, b) CA5G_DCHECK_NOOP_((a) > (b))
#define CA5G_DCHECK_GE(a, b) CA5G_DCHECK_NOOP_((a) >= (b))
#define CA5G_DCHECK_NEAR(a, b, tol) CA5G_DCHECK_NOOP_(std::abs((a) - (b)) <= (tol))
#define CA5G_DCHECK_BOUNDS(i, size) CA5G_DCHECK_NOOP_((i) >= 0)
#define CA5G_DCHECK_IN_RANGE(v, lo, hi) CA5G_DCHECK_NOOP_((lo) <= (v) && (v) <= (hi))
#define CA5G_DCHECK_EQ_MSG(a, b, msg) CA5G_DCHECK_NOOP_((a) == (b))
#define CA5G_DCHECK_LE_MSG(a, b, msg) CA5G_DCHECK_NOOP_((a) <= (b))
#define CA5G_DCHECK_GE_MSG(a, b, msg) CA5G_DCHECK_NOOP_((a) >= (b))
#endif
