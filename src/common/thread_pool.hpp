// Shared work-stealing thread pool for the offline pipeline (fleet
// sweeps, window featurization, fold/predictor evaluation).
//
// Design: each worker owns a deque of tasks; submit() distributes
// round-robin, workers pop from the front of their own deque and steal
// from the back of a victim's when theirs runs dry. Parallel users must
// never rely on execution order for results — the parallel_for helper
// assigns each index a fixed output slot, so results are bit-identical
// at any thread count (see docs/TESTING.md and tests/test_determinism).
//
// Exceptions thrown by tasks are captured; the first one re-throws from
// parallel_for / wait_idle on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ca5g::common {

/// Threads to use when a caller passes 0: the CA5G_THREADS environment
/// variable if set (>0), else std::thread::hardware_concurrency.
[[nodiscard]] std::size_t default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 → default_thread_count()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue one task (round-robin across worker deques).
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed; re-throws the first
  /// task exception captured since the last wait.
  void wait_idle();

  /// Tasks a victim worker lost to a thief since construction.
  [[nodiscard]] std::uint64_t steal_count() const noexcept;

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  ///< guards cv_/idle_cv_ waits and state below
  std::condition_variable cv_;      ///< "work may be available"
  std::condition_variable idle_cv_; ///< "pending_ hit zero"
  std::size_t pending_ = 0;         ///< submitted but not yet finished
  std::size_t queued_ = 0;          ///< submitted but not yet dequeued
  std::size_t next_queue_ = 0;      ///< round-robin submit cursor
  std::exception_ptr first_error_;
  std::atomic<std::uint64_t> steals_{0};
  bool stop_ = false;
};

/// Run fn(i) for every i in [0, n) on `pool`, blocking until done.
/// Work is chunked to amortize queue traffic; fn must only write state
/// owned by index i (this is what makes results thread-count-invariant).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: run on a temporary pool of `threads` workers (0 → auto).
/// threads == 1 executes inline on the calling thread, pool-free.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ca5g::common
