// Minimal CSV reading/writing for trace import/export. Fields are
// unquoted (trace data is purely numeric/identifier); a header row names
// the columns.
#pragma once

#include <string>
#include <vector>

namespace ca5g::common {

/// In-memory CSV document: one header row plus string cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for a header name; throws CheckError if missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Parse CSV text (comma separated, '\n' rows, first row is the header).
/// A UTF-8 byte-order mark before the header is skipped. Rows whose cell
/// count differs from the header's throw CheckError unless `allow_ragged`
/// is set, in which case they are kept as-is for the caller's own
/// row-level rejection accounting (see sim::trace_from_csv).
[[nodiscard]] CsvDocument parse_csv(const std::string& text, bool allow_ragged = false);

/// Serialize to CSV text.
[[nodiscard]] std::string to_csv(const CsvDocument& doc);

/// Load/store a CSV file; throws CheckError on I/O failure.
[[nodiscard]] CsvDocument load_csv(const std::string& path, bool allow_ragged = false);
void save_csv(const CsvDocument& doc, const std::string& path);

}  // namespace ca5g::common
