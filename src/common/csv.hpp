// Minimal CSV reading/writing for trace import/export. Fields are
// unquoted (trace data is purely numeric/identifier); a header row names
// the columns.
#pragma once

#include <string>
#include <vector>

namespace ca5g::common {

/// In-memory CSV document: one header row plus string cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for a header name; throws CheckError if missing.
  [[nodiscard]] std::size_t column(const std::string& name) const;
};

/// Parse CSV text (comma separated, '\n' rows, first row is the header).
[[nodiscard]] CsvDocument parse_csv(const std::string& text);

/// Serialize to CSV text.
[[nodiscard]] std::string to_csv(const CsvDocument& doc);

/// Load/store a CSV file; throws CheckError on I/O failure.
[[nodiscard]] CsvDocument load_csv(const std::string& path);
void save_csv(const CsvDocument& doc, const std::string& path);

}  // namespace ca5g::common
