// Error-handling macros used across the library.
//
// CA5G_CHECK validates preconditions and runtime invariants; it throws
// std::invalid_argument / std::logic_error style errors via
// ca5g::common::CheckError so callers can catch and report. Following the
// C++ Core Guidelines (I.6/E.2) we express preconditions as checks and
// signal violations with exceptions rather than aborting.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ca5g::common {

/// Exception thrown when a CA5G_CHECK fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "CA5G_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace ca5g::common

/// Validate a runtime condition; throws ca5g::common::CheckError on failure.
#define CA5G_CHECK(cond)                                                            \
  do {                                                                              \
    if (!(cond)) ::ca5g::common::raise_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Validate with an explanatory message (streamed).
#define CA5G_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream ca5g_os_;                                         \
      ca5g_os_ << msg;                                                     \
      ::ca5g::common::raise_check_failure(#cond, __FILE__, __LINE__,       \
                                          ca5g_os_.str());                 \
    }                                                                      \
  } while (false)
