// Legacy spelling of the contract layer. CA5G_CHECK / CA5G_CHECK_MSG and
// ca5g::common::CheckError now live in contracts.hpp together with the
// operand-printing comparison macros and the debug-only CA5G_DCHECK family;
// include "common/contracts.hpp" directly in new code.
#pragma once

#include "common/contracts.hpp"
