#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ca5g::common {

void TextTable::set_header(std::vector<std::string> header) {
  CA5G_CHECK_MSG(!header.empty(), "table header must not be empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  CA5G_CHECK_MSG(row.size() == header_.size(),
                 "row has " << row.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule_len = 0;
  for (std::size_t w : widths) rule_len += w + 2;
  os << std::string(rule_len, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace ca5g::common
