#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ca5g::common {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 — used only to expand a seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::substream(std::uint64_t stream_id) const noexcept {
  // Collapse the 256-bit state to one word, mix in the stream id, and
  // re-expand through the seed path. SplitMix64's avalanche decorrelates
  // adjacent ids; const-ness (no state advance) makes the mapping
  // order-independent across parallel callers.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  sm += stream_id * 0x9E3779B97F4A7C15ULL;
  return Rng(splitmix64(sm));
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  // Mix current state with salt to derive a decorrelated child stream.
  return Rng(next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL));
}

void Rng::shuffle(std::vector<std::size_t>& v) noexcept {
  if (v.empty()) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
    std::swap(v[i], v[j]);
  }
}

}  // namespace ca5g::common
