// Plain-text table formatting for benchmark harnesses: every bench binary
// prints the rows/series of the paper table or figure it reproduces.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ca5g::common {

/// Column-aligned text table with a title, optionally markdown-style.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row (defines the column count).
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header column count.
  void add_row(std::vector<std::string> row);

  /// Render with padded columns and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Convenience: format a double with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 3);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace ca5g::common
