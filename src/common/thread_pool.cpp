#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/contracts.hpp"

namespace ca5g::common {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("CA5G_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CA5G_CHECK_MSG(task != nullptr, "ThreadPool::submit of an empty task");
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CA5G_CHECK_MSG(!stop_, "ThreadPool::submit after shutdown");
    ++pending_;
    ++queued_;
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  bool stolen = false;
  // Own deque first (front = FIFO for the owner), then steal from the
  // back of each victim in ring order starting after self.
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
    }
  }
  if (!task) {
    for (std::size_t k = 1; k < queues_.size() && !task; ++k) {
      const std::size_t victim = (self + k) % queues_.size();
      std::lock_guard<std::mutex> lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.back());
        queues_[victim]->tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --queued_;
  }

  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    // queued_ (not pending_) gates the wait: pending_ counts tasks still
    // executing on other workers, which this worker cannot help with.
    cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

std::uint64_t ThreadPool::steal_count() const noexcept {
  return steals_.load(std::memory_order_relaxed);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk to ~8 tasks per worker: enough slack for stealing to balance
  // uneven indices without drowning the queues in per-index tasks.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (pool.thread_count() * 8));
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    pool.submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t use = threads == 0 ? default_thread_count() : threads;
  if (use <= 1 || n == 1) {
    // Inline fast path: no pool, but the same index→slot contract.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(use, n));
  parallel_for(pool, n, fn);
}

}  // namespace ca5g::common
