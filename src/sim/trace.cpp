#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "phy/mcs.hpp"

namespace ca5g::sim {

std::size_t TraceSample::active_cc_count() const {
  std::size_t n = 0;
  for (const auto& cc : ccs)
    if (cc.active) ++n;
  return n;
}

std::vector<double> Trace::aggregate_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(s.aggregate_tput_mbps);
  return out;
}

std::vector<double> Trace::cc_series(std::size_t slot) const {
  CA5G_CHECK_MSG(slot < cc_slots, "CC slot out of range: " << slot);
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples)
    out.push_back(slot < s.ccs.size() ? s.ccs[slot].tput_mbps : 0.0);
  return out;
}

std::vector<double> Trace::cc_count_series() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(static_cast<double>(s.active_cc_count()));
  return out;
}

void validate(const CcSample& cc) {
  CA5G_CHECK_IN_RANGE(cc.cqi, 0, phy::kMaxCqiIndex);
  CA5G_CHECK_IN_RANGE(cc.mcs, 0, phy::kMaxMcsIndex);
  CA5G_CHECK_IN_RANGE(cc.layers, 0, 8);
  CA5G_CHECK_IN_RANGE(cc.bler, 0.0, 1.0);
  CA5G_CHECK_GE_MSG(cc.rb, 0, "negative RB grant");
  CA5G_CHECK_GE_MSG(cc.tput_mbps, 0.0, "negative throughput");
  CA5G_CHECK_IN_RANGE(cc.rsrp_dbm, -200.0, 0.0);
  CA5G_CHECK_IN_RANGE(cc.rsrq_db, -45.0, 10.0);
  CA5G_CHECK_IN_RANGE(cc.sinr_db, -100.0, 100.0);
  CA5G_CHECK_IN_RANGE(static_cast<std::size_t>(cc.band), std::size_t{0},
                      phy::kBandCount - 1);
  if (cc.active) {
    CA5G_CHECK_IN_RANGE(cc.bandwidth_mhz, 1, 400);
    CA5G_CHECK_GE_MSG(cc.layers, 1, "an active CC transmits on at least one layer");
  }
}

void validate(const TraceSample& sample, std::size_t cc_slots) {
  CA5G_CHECK_EQ_MSG(sample.ccs.size(), cc_slots, "CC slot count drifted from trace header");
  CA5G_CHECK_IN_RANGE(sample.hour_of_day, 0.0, 24.0);
  CA5G_CHECK_GE_MSG(sample.time_s, 0.0, "negative timestamp");
  CA5G_CHECK_GE_MSG(sample.aggregate_tput_mbps, 0.0, "negative aggregate throughput");
  std::size_t pcells = 0;
  for (const auto& cc : sample.ccs) {
    validate(cc);
    if (cc.active && cc.is_pcell) ++pcells;
  }
  CA5G_CHECK_LE_MSG(pcells, std::size_t{1}, "a UE has at most one PCell per step");
}

void validate(const Trace& trace) {
  CA5G_CHECK_GT(trace.step_s, 0.0);
  CA5G_CHECK_GE(trace.cc_slots, std::size_t{1});
  double prev_time = -1.0;
  for (const auto& s : trace.samples) {
    validate(s, trace.cc_slots);
    CA5G_CHECK_GE_MSG(s.time_s, prev_time, "trace timestamps must be non-decreasing");
    prev_time = s.time_s;
  }
}

Trace Trace::resampled(double new_step_s) const {
  CA5G_CHECK_MSG(new_step_s >= step_s, "resampling must coarsen the trace");
  const auto factor = static_cast<std::size_t>(std::llround(new_step_s / step_s));
  CA5G_CHECK_MSG(factor >= 1, "bad resampling factor");

  Trace out;
  out.op = op;
  out.env = env;
  out.mobility = mobility;
  out.modem = modem;
  out.step_s = new_step_s;
  out.cc_slots = cc_slots;

  for (std::size_t start = 0; start + factor <= samples.size(); start += factor) {
    TraceSample agg = samples[start];  // positions/identities from window start
    agg.aggregate_tput_mbps = 0.0;
    std::vector<double> cc_sums(cc_slots, 0.0);
    std::vector<std::size_t> cc_counts(cc_slots, 0);
    agg.events.clear();
    // Numeric features: average over the window; events: union.
    std::vector<CcSample> averaged(cc_slots);
    for (std::size_t slot = 0; slot < cc_slots; ++slot) averaged[slot] = samples[start].ccs[slot];
    std::vector<double> rsrp(cc_slots, 0), rsrq(cc_slots, 0), sinr(cc_slots, 0),
        cqi(cc_slots, 0), rb(cc_slots, 0), layers(cc_slots, 0), mcs(cc_slots, 0),
        bler(cc_slots, 0);
    for (std::size_t i = start; i < start + factor; ++i) {
      const TraceSample& s = samples[i];
      agg.aggregate_tput_mbps += s.aggregate_tput_mbps;
      for (const auto& e : s.events) agg.events.push_back(e);
      for (std::size_t slot = 0; slot < cc_slots && slot < s.ccs.size(); ++slot) {
        const CcSample& cc = s.ccs[slot];
        cc_sums[slot] += cc.tput_mbps;
        if (cc.active) {
          ++cc_counts[slot];
          rsrp[slot] += cc.rsrp_dbm;
          rsrq[slot] += cc.rsrq_db;
          sinr[slot] += cc.sinr_db;
          cqi[slot] += cc.cqi;
          rb[slot] += cc.rb;
          layers[slot] += cc.layers;
          mcs[slot] += cc.mcs;
          bler[slot] += cc.bler;
          // Identity fields from the last active step in the window.
          averaged[slot].band = cc.band;
          averaged[slot].bandwidth_mhz = cc.bandwidth_mhz;
          averaged[slot].pci = cc.pci;
          averaged[slot].channel_index = cc.channel_index;
          averaged[slot].carrier = cc.carrier;
          averaged[slot].is_pcell = cc.is_pcell;
        }
      }
    }
    agg.aggregate_tput_mbps /= static_cast<double>(factor);
    for (std::size_t slot = 0; slot < cc_slots; ++slot) {
      CcSample& cc = averaged[slot];
      cc.tput_mbps = cc_sums[slot] / static_cast<double>(factor);
      const auto n = cc_counts[slot];
      cc.active = n * 2 >= factor;  // active for the majority of the window
      if (n > 0) {
        const auto dn = static_cast<double>(n);
        cc.rsrp_dbm = rsrp[slot] / dn;
        cc.rsrq_db = rsrq[slot] / dn;
        cc.sinr_db = sinr[slot] / dn;
        cc.cqi = static_cast<int>(std::lround(cqi[slot] / dn));
        cc.rb = static_cast<int>(std::lround(rb[slot] / dn));
        cc.layers = static_cast<int>(std::lround(layers[slot] / dn));
        cc.mcs = static_cast<int>(std::lround(mcs[slot] / dn));
        cc.bler = bler[slot] / dn;
      } else {
        cc = CcSample{};
      }
    }
    agg.ccs = std::move(averaged);
    out.samples.push_back(std::move(agg));
  }
  return out;
}

}  // namespace ca5g::sim
