// Trace data model: what the measurement tool (XCAL in the paper)
// records. One TraceSample per time step, each holding per-CC PHY
// observations following the paper's Table 12 feature schema, the RRC
// events of the step, and the aggregate throughput.
#pragma once

#include <string>
#include <vector>

#include "phy/band.hpp"
#include "radio/propagation.hpp"
#include "ran/deployment.hpp"
#include "ran/rrc.hpp"
#include "ue/capability.hpp"

namespace ca5g::sim {

/// Observation of one component carrier at one time step (Table 12).
struct CcSample {
  bool active = false;
  bool is_pcell = false;
  ran::CarrierId carrier = 0;
  phy::BandId band = phy::BandId::kN41;
  int bandwidth_mhz = 0;
  int pci = 0;
  int channel_index = 0;
  double rsrp_dbm = -140.0;
  double rsrq_db = -20.0;
  double sinr_db = -15.0;
  int cqi = 0;
  int rb = 0;
  int layers = 0;
  int mcs = 0;
  double bler = 0.0;
  double tput_mbps = 0.0;
};

/// One recorded time step.
struct TraceSample {
  double time_s = 0.0;
  double hour_of_day = 0.0;
  radio::Position pos;
  std::vector<ran::RrcEvent> events;  ///< RRC events fired in this step
  std::vector<CcSample> ccs;          ///< fixed-size CC slots (inactive zeroed)
  double aggregate_tput_mbps = 0.0;

  [[nodiscard]] std::size_t active_cc_count() const;
};

/// A full measurement run.
struct Trace {
  ran::OperatorId op = ran::OperatorId::kOpZ;
  radio::Environment env = radio::Environment::kUrbanMacro;
  std::string mobility;  ///< "stationary" / "walking" / "driving"
  ue::ModemModel modem = ue::ModemModel::kX70;
  double step_s = 0.01;
  std::size_t cc_slots = 4;
  std::vector<TraceSample> samples;

  /// Aggregate throughput series in Mbps.
  [[nodiscard]] std::vector<double> aggregate_series() const;
  /// Per-slot throughput series for CC slot `slot`.
  [[nodiscard]] std::vector<double> cc_series(std::size_t slot) const;
  /// Series of active CC counts.
  [[nodiscard]] std::vector<double> cc_count_series() const;

  /// Downsample to a coarser step by averaging (e.g. 10 ms → 1 s).
  [[nodiscard]] Trace resampled(double new_step_s) const;
};

// --- Table 12 schema validation -------------------------------------------
// Every field of a recorded sample has a physical range fixed by 3GPP or by
// the measurement methodology; a value outside it means a corrupted trace
// (bad parse, bad generator) that would silently skew every downstream
// figure and predictor. All three throw common::CheckError on violation.

/// Validate one CC observation (CQI ∈ [0,15], MCS ∈ [0,27], BLER ∈ [0,1], …).
void validate(const CcSample& cc);

/// Validate one time step (per-CC fields, slot count, at most one PCell).
void validate(const TraceSample& sample, std::size_t cc_slots);

/// Validate a full trace (metadata plus every sample; time non-decreasing).
void validate(const Trace& trace);

}  // namespace ca5g::sim
