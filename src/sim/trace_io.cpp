#include "sim/trace_io.hpp"

#include <sstream>
#include <stdexcept>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace ca5g::sim {
namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

common::CsvDocument trace_to_csv(const Trace& trace) {
  CA5G_METRIC_COUNTER(rows_written, "trace_io.rows_written_total");
  rows_written.inc(trace.samples.size());
  common::CsvDocument doc;
  doc.header = {"time_s", "hour", "op", "env", "mobility", "modem", "step_s",
                "cc_slots", "pos_x", "pos_y", "event", "agg_tput_mbps"};
  for (std::size_t slot = 0; slot < trace.cc_slots; ++slot) {
    const std::string p = "cc" + std::to_string(slot) + "_";
    for (const char* field : {"active", "pcell", "band", "chan", "bw", "pci", "rsrp",
                              "rsrq", "sinr", "cqi", "bler", "rb", "layers", "mcs",
                              "tput"})
      doc.header.push_back(p + field);
  }

  for (const auto& s : trace.samples) {
    std::vector<std::string> row = {
        fmt(s.time_s),
        fmt(s.hour_of_day),
        std::to_string(static_cast<int>(trace.op)),
        std::to_string(static_cast<int>(trace.env)),
        trace.mobility,
        std::to_string(static_cast<int>(trace.modem)),
        fmt(trace.step_s),
        std::to_string(trace.cc_slots),
        fmt(s.pos.x),
        fmt(s.pos.y),
        std::to_string(s.events.empty() ? 0 : 1),
        fmt(s.aggregate_tput_mbps),
    };
    for (std::size_t slot = 0; slot < trace.cc_slots; ++slot) {
      const CcSample& cc = slot < s.ccs.size() ? s.ccs[slot] : CcSample{};
      row.push_back(cc.active ? "1" : "0");
      row.push_back(cc.is_pcell ? "1" : "0");
      row.push_back(std::to_string(static_cast<int>(cc.band)));
      row.push_back(std::to_string(cc.channel_index));
      row.push_back(std::to_string(cc.bandwidth_mhz));
      row.push_back(std::to_string(cc.pci));
      row.push_back(fmt(cc.rsrp_dbm));
      row.push_back(fmt(cc.rsrq_db));
      row.push_back(fmt(cc.sinr_db));
      row.push_back(std::to_string(cc.cqi));
      row.push_back(fmt(cc.bler));
      row.push_back(std::to_string(cc.rb));
      row.push_back(std::to_string(cc.layers));
      row.push_back(std::to_string(cc.mcs));
      row.push_back(fmt(cc.tput_mbps));
    }
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

Trace trace_from_csv(const common::CsvDocument& doc, TraceLoadReport* report) {
  CA5G_METRIC_COUNTER(rows_read, "trace_io.rows_read_total");
  CA5G_METRIC_COUNTER(rows_rejected, "trace_io.rows_rejected_total");

  Trace trace;
  CA5G_CHECK_MSG(!doc.rows.empty(), "trace CSV has no data rows");
  rows_read.inc(doc.rows.size());

  const auto& first = doc.rows.front();
  try {
    if (first.size() < doc.header.size()) throw std::out_of_range("short trace CSV row");
    trace.op = static_cast<ran::OperatorId>(std::stoi(first[doc.column("op")]));
    trace.env = static_cast<radio::Environment>(std::stoi(first[doc.column("env")]));
    trace.mobility = first[doc.column("mobility")];
    trace.modem = static_cast<ue::ModemModel>(std::stoi(first[doc.column("modem")]));
    trace.step_s = std::stod(first[doc.column("step_s")]);
    trace.cc_slots = static_cast<std::size_t>(std::stoul(first[doc.column("cc_slots")]));
  } catch (const std::exception& e) {
    rows_rejected.inc();
    CA5G_CHECK_MSG(false, "trace CSV metadata row is malformed at line 2: " << e.what());
  }

  const auto time_col = doc.column("time_s");
  const auto hour_col = doc.column("hour");
  const auto x_col = doc.column("pos_x");
  const auto y_col = doc.column("pos_y");
  const auto event_col = doc.column("event");
  const auto agg_col = doc.column("agg_tput_mbps");

  // Rows that fail to parse are counted and skipped rather than silently
  // aborting the whole load; the first offender's 1-based file line
  // (header is line 1) is reported if nothing survives.
  std::size_t rejected = 0;
  std::size_t first_rejected_line = 0;
  const auto parse_sample = [&](const std::vector<std::string>& row) {
    if (row.size() < doc.header.size()) throw std::out_of_range("short trace CSV row");
    TraceSample s;
    s.time_s = std::stod(row[time_col]);
    s.hour_of_day = std::stod(row[hour_col]);
    s.pos = {std::stod(row[x_col]), std::stod(row[y_col])};
    if (std::stoi(row[event_col]) != 0)
      s.events.push_back({s.time_s, ran::RrcEventType::kSCellAdd, 0});  // flag only
    s.aggregate_tput_mbps = std::stod(row[agg_col]);
    s.ccs.assign(trace.cc_slots, CcSample{});
    for (std::size_t slot = 0; slot < trace.cc_slots; ++slot) {
      const std::string p = "cc" + std::to_string(slot) + "_";
      CcSample& cc = s.ccs[slot];
      cc.active = row[doc.column(p + "active")] == "1";
      cc.is_pcell = row[doc.column(p + "pcell")] == "1";
      cc.band = static_cast<phy::BandId>(std::stoi(row[doc.column(p + "band")]));
      cc.channel_index = std::stoi(row[doc.column(p + "chan")]);
      cc.bandwidth_mhz = std::stoi(row[doc.column(p + "bw")]);
      cc.pci = std::stoi(row[doc.column(p + "pci")]);
      cc.rsrp_dbm = std::stod(row[doc.column(p + "rsrp")]);
      cc.rsrq_db = std::stod(row[doc.column(p + "rsrq")]);
      cc.sinr_db = std::stod(row[doc.column(p + "sinr")]);
      cc.cqi = std::stoi(row[doc.column(p + "cqi")]);
      cc.bler = std::stod(row[doc.column(p + "bler")]);
      cc.rb = std::stoi(row[doc.column(p + "rb")]);
      cc.layers = std::stoi(row[doc.column(p + "layers")]);
      cc.mcs = std::stoi(row[doc.column(p + "mcs")]);
      cc.tput_mbps = std::stod(row[doc.column(p + "tput")]);
    }
    // Parsing is where corruption enters (truncated files, NaN fields,
    // bad enum codes, hand-edited CSVs): reject anything outside the
    // Table 12 field ranges row by row, so one broken row costs one
    // sample, not the whole load.
    validate(s, trace.cc_slots);
    return s;
  };
  std::string first_error;
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    try {
      trace.samples.push_back(parse_sample(doc.rows[r]));
    } catch (const std::exception& e) {
      ++rejected;
      rows_rejected.inc();
      if (first_rejected_line == 0) {
        first_rejected_line = r + 2;
        first_error = "line " + std::to_string(first_rejected_line) + ": " + e.what();
      }
    }
  }
  if (report != nullptr) {
    report->rows_read = doc.rows.size();
    report->rows_rejected = rejected;
    report->first_rejected_line = first_rejected_line;
    report->first_error = first_error;
  }
  CA5G_CHECK_MSG(!trace.samples.empty(),
                 "trace CSV has no parseable data rows: " << rejected
                     << " malformed row(s), first at " << first_error);
  // Per-row validation covered the field ranges; this pass re-checks the
  // cross-row invariants (time non-decreasing, metadata sanity).
  validate(trace);
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  validate(trace);
  common::save_csv(trace_to_csv(trace), path);
}

Trace load_trace(const std::string& path, TraceLoadReport* report) {
  // Ragged rows are admitted at the CSV layer so the row-level skip
  // accounting above (not a whole-file abort) handles truncated files.
  return trace_from_csv(common::load_csv(path, /*allow_ragged=*/true), report);
}

std::uint64_t trace_hash(const Trace& trace) {
  const std::string bytes = common::to_csv(trace_to_csv(trace));
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;  // FNV-1a 64 prime
  }
  return h;
}

}  // namespace ca5g::sim
