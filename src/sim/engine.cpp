#include "sim/engine.hpp"

#include <algorithm>
#include <map>
#include <cmath>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "phy/numerology.hpp"

namespace ca5g::sim {

std::string mobility_name(Mobility m) {
  switch (m) {
    case Mobility::kStationary: return "stationary";
    case Mobility::kWalking: return "walking";
    case Mobility::kDriving: return "driving";
  }
  return "unknown";
}

SimulationEngine::SimulationEngine(const ran::Deployment& dep, ScenarioConfig config)
    : dep_(&dep), config_(std::move(config)), rng_(config_.seed) {
  CA5G_CHECK_MSG(config_.step_s > 0.0, "step must be positive");
  CA5G_CHECK_MSG(config_.duration_s >= config_.step_s, "duration shorter than a step");
  CA5G_CHECK_MSG(config_.cc_slots >= 1, "need at least one CC slot");

  init_mobility();
  init_links();

  auto policy = ran::default_policy(dep.op);
  ca_ = std::make_unique<ran::CaManager>(dep, config_.rat, ue::ue_capability(config_.modem),
                                         policy);
  filtered_rsrp_.assign(dep.carriers.size(), -160.0);
  site_load_noise_.assign(dep.sites.size(), 0.0);
  for (auto& noise : site_load_noise_) noise = rng_.normal(0.0, 0.05);
  activation_.assign(dep.carriers.size(), 1.0);
  // Build co-channel interference groups: carriers on the same band and
  // channel index at different sites interfere with each other.
  {
    std::map<std::pair<int, int>, std::size_t> group_index;
    group_of_.assign(dep.carriers.size(), 0);
    for (const auto& carrier : dep.carriers) {
      const auto key = std::make_pair(static_cast<int>(carrier.band),
                                      carrier.channel_index);
      auto [it, inserted] = group_index.emplace(key, cochannel_groups_.size());
      if (inserted) cochannel_groups_.emplace_back();
      cochannel_groups_[it->second].push_back(carrier.id);
      group_of_[carrier.id] = it->second;
    }
  }
  cc_util_state_.assign(dep.carriers.size(), 0.85);
  for (auto& u : cc_util_state_) u = std::clamp(rng_.normal(0.85, 0.1), 0.4, 1.05);
  mcs_state_.assign(dep.carriers.size(), -1.0);
  congested_.assign(dep.carriers.size(), false);
  for (std::size_t i = 0; i < congested_.size(); ++i) congested_[i] = rng_.bernoulli(0.25);
  util_state_ = 0.88;
}

void SimulationEngine::init_mobility() {
  common::Rng mob_rng = rng_.fork(0x0b17);
  switch (config_.mobility) {
    case Mobility::kStationary: {
      // Hot spot near (but not on top of) a site: ideal channel condition.
      const radio::Position pos =
          config_.stationary_position.value_or(radio::Position{120.0, 40.0});
      mobility_ = std::make_unique<ue::StationaryMobility>(pos);
      break;
    }
    case Mobility::kWalking: {
      const double extent = config_.env == radio::Environment::kIndoor ? 60.0 : 250.0;
      mobility_ = std::make_unique<ue::WalkingMobility>(mob_rng, radio::Position{50, 80},
                                                        extent);
      break;
    }
    case Mobility::kDriving: {
      std::vector<radio::Position> route = config_.route;
      if (route.empty()) {
        // Default: a zig-zag sweep through the deployment area.
        // The sweep starts and ends at the grid edge so a drive traverses
        // strong-CA, sparse, and edge-coverage zones without dead air.
        route = {{-1950, -1700}, {-600, -1200}, {200, -300}, {-300, 600},
                 {700, 900},     {1500, 300},   {1950, 1700}};
      }
      double speed = 13.0;  // m/s ≈ 47 km/h urban
      double stop_rate = 2.0;
      if (config_.env == radio::Environment::kSuburbanMacro) {
        speed = 18.0;
        stop_rate = 0.8;
      } else if (config_.env == radio::Environment::kHighway) {
        speed = 28.0;  // ≈ 100 km/h
        stop_rate = 0.0;
      }
      mobility_ = std::make_unique<ue::DrivingMobility>(mob_rng, std::move(route), speed,
                                                        stop_rate);
      break;
    }
  }
  ue_pos_ = mobility_->position();
}

void SimulationEngine::init_links() {
  links_.clear();
  links_.reserve(dep_->carriers.size());
  radio::ChannelModelParams params;
  if (config_.env == radio::Environment::kIndoor) params.shadow_sigma_db = 7.5;
  for (const auto& carrier : dep_->carriers) {
    (void)carrier;
    links_.emplace_back(rng_.fork(0xC0DE + links_.size()), params);
  }
  // Correlate shadowing of co-sited carriers: intra-band strongly
  // (rho≈0.9), inter-band moderately (rho≈0.45) — drives paper Fig. 13.
  for (const auto& site : dep_->sites) {
    for (std::size_t i = 1; i < site.carriers.size(); ++i) {
      const auto a = site.carriers[i];
      // Prefer a prior same-band carrier at this site (strong intra-band
      // correlation); otherwise anchor to the site's first carrier.
      ran::CarrierId anchor = site.carriers[0];
      bool same_band = dep_->carrier(a).band == dep_->carrier(anchor).band;
      for (std::size_t j = i; j-- > 0;) {
        if (dep_->carrier(site.carriers[j]).band == dep_->carrier(a).band) {
          anchor = site.carriers[j];
          same_band = true;
          break;
        }
      }
      links_[a].correlate_with(links_[anchor], same_band ? 0.9 : 0.45);
    }
  }
}

bool SimulationEngine::carrier_allowed(ran::CarrierId id) const {
  const auto& carrier = dep_->carrier(id);
  if (!config_.band_lock.empty() &&
      std::find(config_.band_lock.begin(), config_.band_lock.end(), carrier.band) ==
          config_.band_lock.end())
    return false;
  if (!config_.carrier_lock.empty() &&
      std::find(config_.carrier_lock.begin(), config_.carrier_lock.end(), id) ==
          config_.carrier_lock.end())
    return false;
  return true;
}

std::vector<radio::LinkMeasurement> SimulationEngine::measure_all() const {
  const double hour = config_.start_hour;

  // Pass 1: received per-RE power of every carrier at the UE.
  std::vector<double> rx_dbm(dep_->carriers.size());
  std::vector<double> rx_mw(dep_->carriers.size());
  for (const auto& carrier : dep_->carriers) {
    const auto& site = dep_->sites[carrier.site];
    const auto& info = phy::band_info(carrier.band);
    double loss = radio::path_loss_db(
                      info.center_freq_mhz * (1.0 + 0.01 * carrier.channel_index),
                      radio::distance_m(ue_pos_, site.pos), config_.env) +
                  links_[carrier.id].total_db();
    if (config_.ue_indoor)
      loss += radio::o2i_penetration_db(info.center_freq_mhz);
    rx_dbm[carrier.id] = carrier.tx_power_dbm - loss;
    rx_mw[carrier.id] = std::pow(10.0, rx_dbm[carrier.id] / 10.0);
  }

  // Pass 2: co-channel interference = sum of the group's other carriers'
  // received powers, scaled by neighbour downlink activity.
  std::vector<double> group_sum_mw(cochannel_groups_.size(), 0.0);
  for (std::size_t g = 0; g < cochannel_groups_.size(); ++g)
    for (auto id : cochannel_groups_[g]) group_sum_mw[g] += rx_mw[id];

  std::vector<radio::LinkMeasurement> meas(dep_->carriers.size());
  for (const auto& carrier : dep_->carriers) {
    const auto& info = phy::band_info(carrier.band);
    const double load = std::clamp(
        dep_->load.load_at_hour(hour) + site_load_noise_[carrier.site], 0.0, 1.0);
    // Effective interference: neighbour activity scales with load, and
    // antenna downtilt/sectorization discriminates against most
    // interferers (≈ -6 dB on average).
    const double activity = 0.25 * (0.2 + 0.6 * load);
    const double interference_mw =
        (group_sum_mw[group_of_[carrier.id]] - rx_mw[carrier.id]) * activity;

    radio::LinkBudgetInputs in;
    in.tx_power_dbm = carrier.tx_power_dbm;
    in.freq_mhz = info.center_freq_mhz * (1.0 + 0.01 * carrier.channel_index);
    in.dist_m = 10.0;  // unused: we inject the precomputed budget below
    in.env = config_.env;
    in.scs_khz = carrier.scs_khz;
    in.interference_load = load;
    // Re-express the precomputed receive power via stochastic loss so
    // compute_link() reproduces rx_dbm exactly.
    in.stochastic_loss_db =
        carrier.tx_power_dbm - rx_dbm[carrier.id] -
        radio::path_loss_db(in.freq_mhz, in.dist_m, in.env);
    if (interference_mw > 0.0)
      in.explicit_interference_dbm = 10.0 * std::log10(interference_mw);
    meas[carrier.id] = radio::compute_link(in);
  }
  return meas;
}

void SimulationEngine::record_step(double now_s,
                                   const std::vector<radio::LinkMeasurement>& current,
                                   const std::vector<radio::LinkMeasurement>& delayed,
                                   std::vector<ran::RrcEvent> events, Trace& trace) {
  CA5G_METRIC_HISTOGRAM(record_step_ns, "sim.record_step_ns");
  CA5G_SCOPED_TIMER(record_step_ns);
  TraceSample sample;
  sample.time_s = now_s;
  sample.hour_of_day = std::fmod(config_.start_hour + now_s / 3600.0, 24.0);
  sample.pos = ue_pos_;
  sample.events = std::move(events);
  sample.ccs.assign(config_.cc_slots, CcSample{});

  const auto& active = ca_->active_set();
  const auto capability = ue::ue_capability(config_.modem);
  const double load = std::clamp(
      dep_->load.load_at_hour(sample.hour_of_day), 0.0, 1.0);

  // Aggregate bandwidth of the current combination (for throttling).
  int aggregate_bw = 0;
  for (auto id : active) aggregate_bw += dep_->carrier(id).bandwidth_mhz;

  // Common per-step utilization: burstiness correlated across all CCs
  // (TDD pattern alignment, transport/backhaul, flow control). This is a
  // large share of the variance the paper measures at 10 ms granularity
  // and it does NOT average out across carriers. The process is AR(1)
  // (coherence ≈ 0.7 s) plus a white component and rare deep outages.
  {
    const double rho = std::exp(-config_.step_s / 0.7);
    util_state_ = rho * util_state_ + (1.0 - rho) * 0.88 +
                  std::sqrt(1.0 - rho * rho) * rng_.normal(0.0, 0.12);
    util_state_ = std::clamp(util_state_, 0.3, 1.05);
  }
  double common_util = std::clamp(util_state_ + rng_.normal(0.0, 0.05), 0.2, 1.1);
  if (rng_.bernoulli(0.03)) common_util *= rng_.uniform(0.15, 0.5);

  // Per-carrier congestion regime: competing heavy flows arrive at and
  // leave individual cells (semi-Markov, dwell ≈ 6 s congested / 14 s
  // free). A congested carrier loses a large share of its RBs — visible
  // in that CC's #RB feature (the paper's Tables 9-10 show exactly this
  // load→#RB→throughput pathway) but confounded in the aggregate.
  for (std::size_t i = 0; i < congested_.size(); ++i) {
    const double leave_rate = congested_[i] ? 1.0 / 6.0 : 1.0 / 14.0;
    if (rng_.bernoulli(leave_rate * config_.step_s)) congested_[i] = !congested_[i];
  }

  // Per-carrier persistent utilization (per-CC scheduling share, HARQ
  // health, cross-traffic on that cell): AR(1) whose coherence time and
  // volatility depend on the band class — FDD low band is the stable
  // coverage layer, TDD mid band carries bursty contention, mmWave
  // churns fastest. The processes move INDEPENDENTLY per carrier and
  // with DIFFERENT dynamics, so the aggregate history confounds them;
  // only per-CC histories (Prism5G's view) separate which carrier is
  // rising or falling and how quickly it will revert.
  for (std::size_t id = 0; id < cc_util_state_.size(); ++id) {
    const auto& info = phy::band_info(dep_->carriers[id].band);
    double tau = 0.8, sigma = 0.14;  // TDD mid band default
    if (info.range == phy::BandRange::kHigh) {
      tau = 0.3;
      sigma = 0.18;
    } else if (info.duplex == phy::Duplex::kFdd) {
      tau = info.range == phy::BandRange::kLow ? 4.0 : 2.5;
      sigma = info.range == phy::BandRange::kLow ? 0.08 : 0.10;
    }
    const double rho = std::exp(-config_.step_s / tau);
    double& u = cc_util_state_[id];
    u = rho * u + (1.0 - rho) * 0.85 +
        std::sqrt(1.0 - rho * rho) * rng_.normal(0.0, sigma);
    u = std::clamp(u, 0.25, 1.1);
  }

  double total_mbps = 0.0;
  for (std::size_t slot = 0; slot < active.size() && slot < config_.cc_slots; ++slot) {
    const auto id = active[slot];
    const auto& carrier = dep_->carrier(id);
    ran::CaContext ctx;
    ctx.active_ccs = static_cast<int>(active.size());
    ctx.aggregate_bw_mhz = aggregate_bw;
    ctx.is_pcell = (slot == 0);
    // Outer-loop link adaptation: use the lagged MCS (time constant
    // ≈ 0.3 s) and converge it toward the instantaneous target.
    if (mcs_state_[id] >= 0.0)
      ctx.mcs_override = static_cast<int>(std::lround(mcs_state_[id]));

    const double site_load = std::clamp(
        load + site_load_noise_[carrier.site] + (congested_[id] ? 0.55 : 0.0), 0.0,
        1.0);
    // Grants follow the DELAYED channel state (CSI pipeline); the trace
    // records the CURRENT measurements below, so measured link quality
    // leads throughput by the reporting delay.
    auto alloc =
        scheduler_.allocate(carrier, delayed[id], ctx, capability, site_load, rng_);
    const double mcs_ramp = 1.0 - std::exp(-config_.step_s / 0.3);
    mcs_state_[id] = mcs_state_[id] < 0.0
                         ? static_cast<double>(alloc.target_mcs)
                         : mcs_state_[id] +
                               (alloc.target_mcs - mcs_state_[id]) * mcs_ramp;
    // Newly activated carriers ramp up over ≈0.4 s (CSI acquisition,
    // scheduler warm-up). The RRC event is thus a LEADING indicator of
    // the throughput change — the paper's Z2 transition behaviour.
    alloc.tput_bps *= common_util * activation_[id] * cc_util_state_[id];

    CcSample& cc = sample.ccs[slot];
    cc.active = true;
    cc.is_pcell = ctx.is_pcell;
    cc.carrier = id;
    cc.band = carrier.band;
    cc.bandwidth_mhz = carrier.bandwidth_mhz;
    cc.pci = carrier.pci;
    cc.channel_index = carrier.channel_index;
    cc.rsrp_dbm = current[id].rsrp_dbm;
    cc.rsrq_db = current[id].rsrq_db;
    cc.sinr_db = current[id].sinr_db;
    cc.cqi = alloc.cqi;
    cc.rb = alloc.rb;
    cc.layers = alloc.layers;
    cc.mcs = alloc.mcs;
    cc.bler = alloc.bler;
    cc.tput_mbps = alloc.tput_bps / 1e6;
    total_mbps += cc.tput_mbps;
  }

  // MAC multiplexing inefficiency grows mildly with CC count: the
  // aggregate is less than the sum of stand-alone capacities (Fig. 6).
  if (sample.active_cc_count() > 1)
    total_mbps *= 1.0 - 0.02 * static_cast<double>(sample.active_cc_count() - 1);
  sample.aggregate_tput_mbps = total_mbps;
  trace.samples.push_back(std::move(sample));
}

Trace SimulationEngine::run() {
  CA5G_METRIC_COUNTER(steps_total, "sim.steps_total");
  CA5G_METRIC_COUNTER(rrc_evaluations, "sim.rrc_evaluations_total");
  CA5G_METRIC_COUNTER(rrc_events, "sim.rrc_events_total");
  CA5G_METRIC_HISTOGRAM(step_ns, "sim.step_ns");
  CA5G_METRIC_GAUGE(steps_per_s, "sim.steps_per_s");
  obs::StopWatch run_watch;

  Trace trace;
  trace.op = dep_->op;
  trace.env = config_.env;
  trace.mobility = mobility_name(config_.mobility);
  trace.modem = config_.modem;
  trace.step_s = config_.step_s;
  trace.cc_slots = config_.cc_slots;

  const auto steps = static_cast<std::size_t>(std::llround(config_.duration_s / config_.step_s));
  const auto rrc_every =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::llround(config_.rrc_interval_s / config_.step_s)));

  for (std::size_t step = 0; step < steps; ++step) {
    CA5G_SCOPED_TIMER(step_ns);
    steps_total.inc();
    const double now_s = static_cast<double>(step) * config_.step_s;

    // Advance mobility and channel processes.
    const radio::Position before = ue_pos_;
    ue_pos_ = mobility_->step(config_.step_s);
    const double moved = radio::distance_m(before, ue_pos_);
    for (auto& link : links_) link.advance(moved, config_.step_s);

    const auto meas = measure_all();
    // CSI delay pipeline (≈80 ms at fine steps, one step when coarser).
    const auto delay_steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(0.08 / config_.step_s)));
    meas_history_.push_back(meas);
    if (meas_history_.size() > delay_steps + 1) meas_history_.pop_front();
    const auto& delayed = meas_history_.front();

    // L3 filtering of RSRP for RRC decisions (reduces ping-pong).
    for (const auto& carrier : dep_->carriers) {
      const double raw =
          carrier_allowed(carrier.id) ? meas[carrier.id].rsrp_dbm : -160.0;
      filtered_rsrp_[carrier.id] = 0.7 * filtered_rsrp_[carrier.id] + 0.3 * raw;
    }

    std::vector<ran::RrcEvent> events;
    if (step % rrc_every == 0) {
      rrc_evaluations.inc();
      events = ca_->update(filtered_rsrp_, now_s);
      rrc_events.inc(events.size());
    }

    // Activation ramps: newly added carriers start at 20% of their rate;
    // a PCell change briefly interrupts service on the new PCell.
    for (const auto& event : events) {
      if (event.type == ran::RrcEventType::kSCellAdd)
        activation_[event.carrier] = 0.2;
      else if (event.type == ran::RrcEventType::kPCellChange)
        activation_[event.carrier] = 0.35;
    }
    const double ramp = 1.0 - std::exp(-config_.step_s / 0.4);
    for (auto& a : activation_) a += (1.0 - a) * ramp;

    record_step(now_s, meas, delayed, std::move(events), trace);
  }
  steps_per_s.set(static_cast<double>(steps) / std::max(run_watch.elapsed_s(), 1e-9));
  return trace;
}

Trace run_scenario(const ScenarioConfig& config, const ran::DeploymentParams& dep_params) {
  ran::DeploymentParams params = dep_params;
  if (params.seed == 1) params.seed = config.seed * 977 + 13;
  const auto dep = ran::make_deployment(config.op, config.env, params);
  SimulationEngine engine(dep, config);
  return engine.run();
}

}  // namespace ca5g::sim
