#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/trace_io.hpp"

namespace ca5g::sim {

ScenarioConfig SweepUnit::scenario(const SweepSpec& spec) const {
  ScenarioConfig config;
  config.op = op;
  config.mobility = mobility;
  config.env = spec.env;
  config.ue_indoor = spec.env == radio::Environment::kIndoor;
  config.duration_s = spec.duration_s;
  config.step_s = spec.step_s;
  config.seed = seed;
  return config;
}

std::string SweepUnit::label() const {
  return ran::operator_name(op) + "/" + mobility_name(mobility) + "/ue" +
         std::to_string(ue);
}

std::vector<SweepUnit> enumerate_units(const SweepSpec& spec) {
  CA5G_CHECK_MSG(!spec.ops.empty() && !spec.mobilities.empty() && spec.ues_per_cell > 0,
                 "empty sweep spec");
  const common::Rng root(spec.seed);
  std::vector<SweepUnit> units;
  units.reserve(spec.ops.size() * spec.mobilities.size() * spec.ues_per_cell);
  std::size_t index = 0;
  for (const auto op : spec.ops) {
    for (const auto mobility : spec.mobilities) {
      for (std::size_t ue = 0; ue < spec.ues_per_cell; ++ue) {
        SweepUnit unit;
        unit.index = index;
        unit.op = op;
        unit.mobility = mobility;
        unit.ue = ue;
        // Substream derivation is a pure function of (spec.seed, index):
        // no shared RNG state crosses units, so parallel execution order
        // cannot perturb any unit's randomness.
        unit.seed = root.substream(index).next_u64();
        units.push_back(unit);
        ++index;
      }
    }
  }
  return units;
}

SweepResult run_sweep(const SweepSpec& spec) {
  CA5G_METRIC_COUNTER(units_total, "sweep.units_total");
  CA5G_METRIC_HISTOGRAM(unit_ns, "sweep.unit_ns");
  CA5G_METRIC_HISTOGRAM(wall_ns, "sweep.wall_ns");
  CA5G_METRIC_GAUGE(pool_workers, "pool.workers_count");
  CA5G_METRIC_COUNTER(pool_tasks, "pool.tasks_total");
  CA5G_METRIC_COUNTER(pool_steals, "pool.steals_total");

  const auto units = enumerate_units(spec);
  SweepResult result;
  result.units.resize(units.size());
  if (spec.keep_traces) result.traces.resize(units.size());

  const std::size_t threads =
      spec.threads == 0 ? common::default_thread_count() : spec.threads;
  result.threads_used = threads;
  CA5G_OBS_STMT(pool_workers.set(static_cast<double>(threads));)

  const auto run_unit = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    Trace trace = run_scenario(units[i].scenario(spec));

    SweepUnitResult& out = result.units[i];  // slot i is exclusively ours
    out.unit = units[i];
    out.trace_hash = trace_hash(trace);
    out.samples = trace.samples.size();
    const auto agg = trace.aggregate_series();
    out.mean_tput_mbps = common::mean(agg);
    out.peak_tput_mbps = common::max_value(agg);
    out.mean_cc_count = common::mean(trace.cc_count_series());
    if (spec.keep_traces) result.traces[i] = std::move(trace);

    units_total.inc();
    pool_tasks.inc();
    CA5G_OBS_STMT(unit_ns.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));)
  };

  const auto sweep_t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    for (std::size_t i = 0; i < units.size(); ++i) run_unit(i);
  } else {
    common::ThreadPool pool(std::min(threads, units.size()));
    common::parallel_for(pool, units.size(), run_unit);
    result.pool_steals = pool.steal_count();
    pool_steals.inc(result.pool_steals);
  }
  const auto wall = std::chrono::steady_clock::now() - sweep_t0;
  result.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall).count();
  CA5G_OBS_STMT(wall_ns.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count()));)

  // Order-fixed FNV-style combine: unit order is the enumeration order,
  // never the completion order, so the fleet hash is thread-invariant.
  std::uint64_t fleet = 0xCBF29CE484222325ULL;
  for (const auto& u : result.units) {
    fleet ^= u.trace_hash;
    fleet *= 0x100000001B3ULL;
  }
  result.fleet_hash = fleet;
  return result;
}

}  // namespace ca5g::sim
