// Fleet-scale sweep driver: runs N independent (operator, mobility, UE,
// seed) simulations concurrently on the shared work-stealing pool
// (common/thread_pool) — the reproduction's stand-in for the paper's
// 9-phone × 3-operator × 790 km campaign, scaled to thousands of UEs.
//
// Determinism contract: unit i's scenario seed is derived from the sweep
// seed via Rng::substream(i), a pure function of (seed, i); each unit
// writes only its own result slot. Consequently the per-unit trace
// hashes — and the combined fleet hash — are bit-identical for any
// --threads value (enforced by tests/test_determinism.cpp and CI's TSan
// `parallel` stage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace ca5g::sim {

/// What to sweep: the cross product ops × mobilities × ues_per_cell.
struct SweepSpec {
  std::vector<ran::OperatorId> ops = {ran::OperatorId::kOpX, ran::OperatorId::kOpY,
                                      ran::OperatorId::kOpZ};
  std::vector<Mobility> mobilities = {Mobility::kWalking, Mobility::kDriving};
  std::size_t ues_per_cell = 4;   ///< UEs simulated per (op, mobility) cell
  double duration_s = 10.0;
  double step_s = 0.01;
  radio::Environment env = radio::Environment::kUrbanMacro;
  std::uint64_t seed = 2024;
  std::size_t threads = 0;        ///< 0 = common::default_thread_count()
  bool keep_traces = false;       ///< retain full traces in SweepResult
};

/// One unit of work: a fully specified scenario plus its identity.
struct SweepUnit {
  std::size_t index = 0;          ///< position in enumeration order
  ran::OperatorId op = ran::OperatorId::kOpZ;
  Mobility mobility = Mobility::kDriving;
  std::size_t ue = 0;             ///< UE ordinal within its (op, mobility) cell
  std::uint64_t seed = 0;         ///< derived scenario seed (substream of spec.seed)

  [[nodiscard]] ScenarioConfig scenario(const SweepSpec& spec) const;
  [[nodiscard]] std::string label() const;
};

/// Per-unit outcome: the trace fingerprint plus headline statistics.
struct SweepUnitResult {
  SweepUnit unit;
  std::uint64_t trace_hash = 0;
  std::size_t samples = 0;
  double mean_tput_mbps = 0.0;
  double peak_tput_mbps = 0.0;
  double mean_cc_count = 0.0;
};

struct SweepResult {
  std::vector<SweepUnitResult> units;  ///< in enumeration order
  std::uint64_t fleet_hash = 0;        ///< order-fixed combine of unit hashes
  double wall_s = 0.0;
  std::size_t threads_used = 0;
  std::uint64_t pool_steals = 0;
  std::vector<Trace> traces;           ///< unit-indexed, when spec.keep_traces
};

/// Deterministic enumeration: for op in ops, mobility in mobilities,
/// ue in [0, ues_per_cell), with seeds from Rng(spec.seed).substream(i).
[[nodiscard]] std::vector<SweepUnit> enumerate_units(const SweepSpec& spec);

/// Run every unit (threads from spec; 1 = serial). Exports sweep.* and
/// pool.* metrics through the obs registry.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

}  // namespace ca5g::sim
