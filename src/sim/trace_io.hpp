// CSV serialization of traces in the paper's Table 12 field layout:
// per-CC blocks of (band, rsrp, rsrq, sinr, cqi, bler, rb, layers, mcs,
// tput, active, pcell, event) plus timestamp and aggregate throughput.
// Round-trips through parse so datasets can be archived and re-loaded.
//
// Loading is defensive: malformed rows (truncated, non-numeric, NaN, or
// out of the Table 12 field ranges) are skipped and counted in
// `trace_io.rows_rejected_total`, with the first offender's file line and
// error preserved in the optional TraceLoadReport.
#pragma once

#include <cstdint>
#include <string>

#include "common/csv.hpp"
#include "sim/trace.hpp"

namespace ca5g::sim {

/// Row-level accounting of one trace load (see trace_from_csv).
struct TraceLoadReport {
  std::size_t rows_read = 0;           ///< data rows seen
  std::size_t rows_rejected = 0;       ///< malformed rows skipped
  std::size_t first_rejected_line = 0; ///< 1-based file line (header = 1); 0 = none
  std::string first_error;             ///< what() of the first rejected row
};

/// Serialize a trace to an in-memory CSV document.
[[nodiscard]] common::CsvDocument trace_to_csv(const Trace& trace);

/// Parse a trace back from CSV (metadata columns restore op/env/etc.).
/// Malformed rows are skipped (counted in `report` when given); a load
/// where no row survives throws common::CheckError naming the first
/// offending line.
[[nodiscard]] Trace trace_from_csv(const common::CsvDocument& doc,
                                   TraceLoadReport* report = nullptr);

/// File convenience wrappers.
void save_trace(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace(const std::string& path,
                               TraceLoadReport* report = nullptr);

/// FNV-1a 64-bit hash over the canonical CSV serialization of the trace:
/// a byte-stable fingerprint used by the determinism harness to prove a
/// fixed-seed scenario reproduces bit-identically across runs and thread
/// counts (tests/test_determinism.cpp, docs/TESTING.md).
[[nodiscard]] std::uint64_t trace_hash(const Trace& trace);

}  // namespace ca5g::sim
