// CSV serialization of traces in the paper's Table 12 field layout:
// per-CC blocks of (band, rsrp, rsrq, sinr, cqi, bler, rb, layers, mcs,
// tput, active, pcell, event) plus timestamp and aggregate throughput.
// Round-trips through parse so datasets can be archived and re-loaded.
#pragma once

#include <string>

#include "common/csv.hpp"
#include "sim/trace.hpp"

namespace ca5g::sim {

/// Serialize a trace to an in-memory CSV document.
[[nodiscard]] common::CsvDocument trace_to_csv(const Trace& trace);

/// Parse a trace back from CSV (metadata columns restore op/env/etc.).
[[nodiscard]] Trace trace_from_csv(const common::CsvDocument& doc);

/// File convenience wrappers.
void save_trace(const Trace& trace, const std::string& path);
[[nodiscard]] Trace load_trace(const std::string& path);

}  // namespace ca5g::sim
