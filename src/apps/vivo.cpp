#include "apps/vivo.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::apps {

double VivoResult::quality_drop_pct(const VivoResult& ideal) const {
  if (ideal.avg_quality <= 0.0) return 0.0;
  return 100.0 * (ideal.avg_quality - avg_quality) / ideal.avg_quality;
}

double VivoResult::stall_increase_pct(const VivoResult& ideal) const {
  // Stall ratios are measured against each run's session time, so the
  // comparison stays meaningful when the ideal run never stalls.
  if (session_time_s <= 0.0 || ideal.session_time_s <= 0.0) return 0.0;
  const double ratio = stall_time_s / session_time_s;
  const double ideal_ratio = ideal.stall_time_s / ideal.session_time_s;
  return 100.0 * (ratio - ideal_ratio);
}

VivoResult run_vivo(const sim::Trace& trace, const ThroughputEstimator& estimator,
                    const VivoConfig& config) {
  CA5G_CHECK_MSG(!trace.samples.empty(), "ViVo on empty trace");
  CA5G_CHECK_MSG(config.quality_levels >= 1, "need at least one quality level");

  const auto steps_per_frame = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(config.frame_interval_s / trace.step_s)));

  // Linear quality ladder: level L (1-based) streams at L/levels of max.
  auto level_bitrate = [&](std::size_t level) {
    return config.max_bitrate_mbps * static_cast<double>(level) /
           static_cast<double>(config.quality_levels);
  };

  VivoResult result;
  double quality_sum = 0.0;
  double bitrate_sum = 0.0;

  for (std::size_t start = 0; start + steps_per_frame < trace.samples.size();
       start += steps_per_frame) {
    // 1. Estimate bandwidth for the upcoming delivery window.
    const double est_mbps =
        estimator.estimate_mbps(trace, start, config.predict_horizon);

    // 2. Pick the highest level that fits within the deadline at the
    //    estimated bandwidth (ViVo's density adaptation).
    std::size_t level = 1;
    for (std::size_t l = config.quality_levels; l >= 1; --l) {
      const double frame_mbit = level_bitrate(l) * config.frame_interval_s;
      if (frame_mbit <= config.safety * est_mbps * config.deadline_s) {
        level = l;
        break;
      }
      if (l == 1) level = 1;
    }

    // 3. Deliver the frame over the *actual* channel; clock the overrun.
    const double frame_mbit = level_bitrate(level) * config.frame_interval_s;
    double delivered = 0.0;
    double elapsed = 0.0;
    std::size_t idx = start;
    while (delivered < frame_mbit && idx < trace.samples.size()) {
      const double rate = std::max(trace.samples[idx].aggregate_tput_mbps, 1e-3);
      const double need_s = (frame_mbit - delivered) / rate;
      if (need_s <= trace.step_s) {
        elapsed += need_s;
        delivered = frame_mbit;
      } else {
        delivered += rate * trace.step_s;
        elapsed += trace.step_s;
        ++idx;
      }
    }
    if (delivered < frame_mbit) break;  // trace exhausted mid-frame

    ++result.frames;
    quality_sum += static_cast<double>(level);
    bitrate_sum += level_bitrate(level);
    if (elapsed > config.deadline_s) {
      result.stall_time_s += elapsed - config.deadline_s;
      ++result.stalled_frames;
    }
  }

  CA5G_CHECK_MSG(result.frames > 0, "trace too short for a single ViVo frame");
  result.session_time_s =
      static_cast<double>(result.frames) * config.frame_interval_s;
  result.avg_quality = quality_sum / static_cast<double>(result.frames);
  result.avg_quality_mbps = bitrate_sum / static_cast<double>(result.frames);
  return result;
}

}  // namespace ca5g::apps
