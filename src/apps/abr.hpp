// UHD video-on-demand streaming with MPC [50] adaptive bitrate control
// (paper §7). Chunks are prefetched into a client buffer; MPC plans the
// next few chunks' quality levels by maximizing a QoE objective
// (bitrate utility − rebuffering − smoothness penalty) under a
// throughput forecast. The paper's 16K ladder is the default:
// [1.5, 2.5, 40.71, 152.66, 280, 585] Mbps for 360p…16K.
#pragma once

#include <memory>

#include "apps/estimator.hpp"

namespace ca5g::apps {

/// ABR session parameters.
struct AbrConfig {
  std::vector<double> bitrates_mbps{1.5, 2.5, 40.71, 152.66, 280.0, 585.0};
  double chunk_duration_s = 2.0;
  double buffer_capacity_s = 30.0;
  std::size_t lookahead_chunks = 4;   ///< MPC planning horizon
  double rebuffer_penalty = 600.0;    ///< λ: Mbps-equiv. per stall second (≈ top bitrate, as in MPC)
  double smoothness_penalty = 0.5;    ///< μ: penalty per Mbps level change
  std::size_t total_chunks = 60;      ///< video length = chunks × duration
  double startup_buffer_s = 4.0;      ///< playback starts after this much video
};

/// Session QoE outcome (paper Figs. 20–21).
struct AbrResult {
  double avg_bitrate_mbps = 0.0;
  double stall_time_s = 0.0;
  std::size_t quality_switches = 0;
  std::size_t chunks = 0;
};

/// Run one MPC streaming session over a trace with a pluggable
/// throughput forecaster (the paper swaps MPC's harmonic-mean default
/// for Prism5G / LSTM / Prophet).
[[nodiscard]] AbrResult run_mpc_abr(const sim::Trace& trace,
                                    const ThroughputEstimator& estimator,
                                    const AbrConfig& config);

}  // namespace ca5g::apps
