// ViVo [16] — visibility-aware volumetric (XR) streaming simulator
// (paper §3.3 / §7). Every frame interval the app picks a quality level
// (point-cloud density ⇒ bitrate) for the 3D frame that must arrive
// within the 150 ms delivery deadline, guided by a bandwidth estimate.
// QoE = (average quality level, stall time), compared against the
// "ideal" variant that knows the actual future throughput.
#pragma once

#include <memory>

#include "apps/estimator.hpp"

namespace ca5g::apps {

/// ViVo application parameters.
struct VivoConfig {
  double frame_interval_s = 0.1;   ///< decision cadence (paper: 10s of ms)
  double deadline_s = 0.15;        ///< delivery deadline per 3D frame
  double max_bitrate_mbps = 750.0; ///< top quality level ("scaled-up" ViVo)
  std::size_t quality_levels = 6;  ///< linear ladder up to max_bitrate
  double safety = 0.9;             ///< fraction of estimate ViVo dares use
  std::size_t predict_horizon = 10;///< estimator horizon in trace steps
};

/// Session QoE outcome.
struct VivoResult {
  double avg_quality = 0.0;       ///< mean chosen level in [1, quality_levels]
  double avg_quality_mbps = 0.0;  ///< mean chosen bitrate
  double stall_time_s = 0.0;      ///< cumulative deadline overrun
  double session_time_s = 0.0;    ///< total streamed time
  std::size_t frames = 0;
  std::size_t stalled_frames = 0;

  /// Relative QoE degradation vs. a baseline run (paper Fig. 8/19:
  /// "ViVo − ViVo(ideal)"): positive = worse.
  [[nodiscard]] double quality_drop_pct(const VivoResult& ideal) const;
  /// Stall-ratio increase in percentage points of session time.
  [[nodiscard]] double stall_increase_pct(const VivoResult& ideal) const;
};

/// Run one ViVo session over a recorded trace with a pluggable
/// bandwidth estimator.
[[nodiscard]] VivoResult run_vivo(const sim::Trace& trace,
                                  const ThroughputEstimator& estimator,
                                  const VivoConfig& config);

}  // namespace ca5g::apps
