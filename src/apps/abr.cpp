#include "apps/abr.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::apps {
namespace {

/// Forward-simulate one candidate plan and score its QoE (MPC's inner
/// objective): Σ bitrate − λ·rebuffer − μ·|level changes|.
double score_plan(const std::vector<std::size_t>& plan, const AbrConfig& config,
                  const std::vector<double>& forecast_mbps, double buffer_s,
                  double prev_bitrate) {
  double score = 0.0;
  double buffer = buffer_s;
  double last = prev_bitrate;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const double bitrate = config.bitrates_mbps[plan[i]];
    const double chunk_mbit = bitrate * config.chunk_duration_s;
    const double bw = std::max(
        forecast_mbps[std::min(i, forecast_mbps.size() - 1)], 1e-3);
    const double download_s = chunk_mbit / bw;
    double rebuffer = 0.0;
    if (download_s > buffer) {
      rebuffer = download_s - buffer;
      buffer = 0.0;
    } else {
      buffer -= download_s;
    }
    buffer = std::min(buffer + config.chunk_duration_s, config.buffer_capacity_s);
    score += bitrate - config.rebuffer_penalty * rebuffer -
             config.smoothness_penalty * std::abs(bitrate - last);
    last = bitrate;
  }
  return score;
}

/// Exhaustive MPC search over the lookahead (ladder^lookahead plans).
std::size_t mpc_decide(const AbrConfig& config, const std::vector<double>& forecast_mbps,
                       double buffer_s, double prev_bitrate) {
  const std::size_t levels = config.bitrates_mbps.size();
  const std::size_t depth = std::max<std::size_t>(1, config.lookahead_chunks);
  std::size_t combos = 1;
  for (std::size_t i = 0; i < depth; ++i) combos *= levels;

  double best_score = -1e18;
  std::size_t best_first = 0;
  std::vector<std::size_t> plan(depth, 0);
  for (std::size_t code = 0; code < combos; ++code) {
    std::size_t rem = code;
    for (std::size_t i = 0; i < depth; ++i) {
      plan[i] = rem % levels;
      rem /= levels;
    }
    const double s = score_plan(plan, config, forecast_mbps, buffer_s, prev_bitrate);
    if (s > best_score) {
      best_score = s;
      best_first = plan[0];
    }
  }
  return best_first;
}

}  // namespace

AbrResult run_mpc_abr(const sim::Trace& trace, const ThroughputEstimator& estimator,
                      const AbrConfig& config) {
  CA5G_CHECK_MSG(!trace.samples.empty(), "ABR on empty trace");
  CA5G_CHECK_MSG(!config.bitrates_mbps.empty(), "empty bitrate ladder");

  const double step = trace.step_s;
  const auto horizon_steps = static_cast<std::size_t>(std::llround(
      config.lookahead_chunks * config.chunk_duration_s / step));

  AbrResult result;
  double buffer_s = 0.0;
  double bitrate_sum = 0.0;
  double prev_bitrate = config.bitrates_mbps.front();
  bool playing = false;
  double now_s = 0.0;

  auto trace_index = [&](double t) {
    // Long sessions loop the trace, as the paper's emulation replays
    // collected traces over full video lengths.
    const auto idx = static_cast<std::size_t>(t / step);
    return idx % trace.samples.size();
  };

  for (std::size_t chunk = 0; chunk < config.total_chunks; ++chunk) {
    const std::size_t now_idx = trace_index(now_s);
    // MPC forecast: per-chunk bandwidth over the lookahead.
    const auto forecast_fine = estimator.predict_mbps(trace, now_idx, horizon_steps);
    std::vector<double> forecast_chunks;
    const auto per_chunk = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(config.chunk_duration_s / step)));
    for (std::size_t c = 0; c < config.lookahead_chunks; ++c) {
      double acc = 0.0;
      std::size_t n = 0;
      for (std::size_t i = c * per_chunk;
           i < (c + 1) * per_chunk && i < forecast_fine.size(); ++i) {
        acc += forecast_fine[i];
        ++n;
      }
      forecast_chunks.push_back(n > 0 ? acc / static_cast<double>(n)
                                      : forecast_fine.back());
    }

    const std::size_t level = mpc_decide(config, forecast_chunks, buffer_s, prev_bitrate);
    const double bitrate = config.bitrates_mbps[level];
    const double chunk_mbit = bitrate * config.chunk_duration_s;

    // Download against the actual channel.
    double delivered = 0.0;
    while (delivered < chunk_mbit) {
      const double rate =
          std::max(trace.samples[trace_index(now_s)].aggregate_tput_mbps, 1e-3);
      const double slice = std::min(step, (chunk_mbit - delivered) / rate);
      delivered += rate * slice;
      // Playback drains the buffer while downloading.
      if (playing) {
        if (buffer_s >= slice) {
          buffer_s -= slice;
        } else {
          result.stall_time_s += slice - buffer_s;
          buffer_s = 0.0;
        }
      }
      now_s += slice;
    }
    buffer_s = std::min(buffer_s + config.chunk_duration_s, config.buffer_capacity_s);
    if (!playing && buffer_s >= config.startup_buffer_s) playing = true;

    if (chunk > 0 && std::abs(bitrate - prev_bitrate) > 1e-9) ++result.quality_switches;
    bitrate_sum += bitrate;
    prev_bitrate = bitrate;
    ++result.chunks;
  }

  result.avg_bitrate_mbps = bitrate_sum / static_cast<double>(result.chunks);
  return result;
}

}  // namespace ca5g::apps
