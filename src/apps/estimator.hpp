// Streaming throughput estimators that applications plug in (paper §7):
// the history-based estimator standard ViVo/MPC use, the oracle "ideal"
// estimator, and an adapter that drives any predictors::Predictor
// (Prism5G, LSTM, Prophet, …) over a live trace.
#pragma once

#include <memory>

#include "predictors/predictor.hpp"
#include "sim/trace.hpp"

namespace ca5g::apps {

/// Estimates future throughput (Mbps) at a point in a trace.
class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Predicted throughput for the next `horizon` trace steps starting at
  /// sample index `now` (exclusive of `now` itself).
  [[nodiscard]] virtual std::vector<double> predict_mbps(const sim::Trace& trace,
                                                         std::size_t now,
                                                         std::size_t horizon) const = 0;

  /// Scalar bandwidth estimate: mean of the horizon prediction.
  [[nodiscard]] double estimate_mbps(const sim::Trace& trace, std::size_t now,
                                     std::size_t horizon) const;
};

/// Mean of the last `window` observed samples (ViVo's built-in scheme
/// and a common ABR default).
class HistoryMeanEstimator final : public ThroughputEstimator {
 public:
  explicit HistoryMeanEstimator(std::size_t window = 10) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "History"; }
  [[nodiscard]] std::vector<double> predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const override;

 private:
  std::size_t window_;
};

/// Harmonic mean of the last `window` samples (MPC's default predictor).
class HarmonicMeanEstimator final : public ThroughputEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window = 5) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "HarmonicMean"; }
  [[nodiscard]] std::vector<double> predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const override;

 private:
  std::size_t window_;
};

/// Oracle: returns the actual future throughput (the paper's "ideal").
class IdealEstimator final : public ThroughputEstimator {
 public:
  [[nodiscard]] std::string name() const override { return "Ideal"; }
  [[nodiscard]] std::vector<double> predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const override;
};

/// Adapter driving a fitted predictors::Predictor over a live trace:
/// builds the normalized window ending at `now`, predicts, denormalizes.
class ModelEstimator final : public ThroughputEstimator {
 public:
  /// `model` must already be fitted; `spec`/`tput_scale` must match the
  /// dataset it was trained on. The model is shared, not owned.
  ModelEstimator(std::shared_ptr<const predictors::Predictor> model,
                 traces::DatasetSpec spec, std::size_t cc_slots, double tput_scale_mbps);

  [[nodiscard]] std::string name() const override { return model_->name(); }
  [[nodiscard]] std::vector<double> predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const override;

 private:
  std::shared_ptr<const predictors::Predictor> model_;
  traces::DatasetSpec spec_;
  std::size_t cc_slots_;
  double tput_scale_mbps_;
};

}  // namespace ca5g::apps
