#include "apps/estimator.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::apps {
namespace {

/// Mean of samples [now-window, now); falls back to the first samples
/// when the trace has not warmed up yet.
double recent_mean(const sim::Trace& trace, std::size_t now, std::size_t window) {
  CA5G_CHECK_MSG(!trace.samples.empty(), "empty trace");
  const std::size_t end = std::min(now, trace.samples.size());
  const std::size_t begin = end > window ? end - window : 0;
  if (end == begin) return trace.samples.front().aggregate_tput_mbps;
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) acc += trace.samples[i].aggregate_tput_mbps;
  return acc / static_cast<double>(end - begin);
}

}  // namespace

double ThroughputEstimator::estimate_mbps(const sim::Trace& trace, std::size_t now,
                                          std::size_t horizon) const {
  const auto series = predict_mbps(trace, now, horizon);
  CA5G_CHECK_MSG(!series.empty(), "estimator returned empty series");
  double acc = 0.0;
  for (double v : series) acc += v;
  return acc / static_cast<double>(series.size());
}

std::vector<double> HistoryMeanEstimator::predict_mbps(const sim::Trace& trace,
                                                       std::size_t now,
                                                       std::size_t horizon) const {
  return std::vector<double>(std::max<std::size_t>(horizon, 1),
                             recent_mean(trace, now, window_));
}

std::vector<double> HarmonicMeanEstimator::predict_mbps(const sim::Trace& trace,
                                                        std::size_t now,
                                                        std::size_t horizon) const {
  const std::size_t end = std::min(now, trace.samples.size());
  const std::size_t begin = end > window_ ? end - window_ : 0;
  if (end == begin)
    return std::vector<double>(std::max<std::size_t>(horizon, 1),
                               trace.samples.front().aggregate_tput_mbps);
  double denom = 0.0;
  for (std::size_t i = begin; i < end; ++i)
    denom += 1.0 / std::max(trace.samples[i].aggregate_tput_mbps, 1e-3);
  const double hm = static_cast<double>(end - begin) / denom;
  return std::vector<double>(std::max<std::size_t>(horizon, 1), hm);
}

std::vector<double> IdealEstimator::predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const {
  std::vector<double> out;
  out.reserve(std::max<std::size_t>(horizon, 1));
  for (std::size_t h = 0; h < std::max<std::size_t>(horizon, 1); ++h) {
    const std::size_t idx = std::min(now + h, trace.samples.size() - 1);
    out.push_back(trace.samples[idx].aggregate_tput_mbps);
  }
  return out;
}

ModelEstimator::ModelEstimator(std::shared_ptr<const predictors::Predictor> model,
                               traces::DatasetSpec spec, std::size_t cc_slots,
                               double tput_scale_mbps)
    : model_(std::move(model)), spec_(spec), cc_slots_(cc_slots),
      tput_scale_mbps_(tput_scale_mbps) {
  CA5G_CHECK_MSG(model_ != nullptr, "ModelEstimator without a model");
  CA5G_CHECK_MSG(tput_scale_mbps_ > 0.0, "bad throughput scale");
}

std::vector<double> ModelEstimator::predict_mbps(const sim::Trace& trace, std::size_t now,
                                                 std::size_t horizon) const {
  const std::size_t want = std::max<std::size_t>(horizon, 1);
  if (now < spec_.history) {
    // Cold start: no full history window yet — fall back to recent mean.
    return std::vector<double>(want, recent_mean(trace, now, spec_.history));
  }
  const auto window = traces::build_window(trace.samples, now - spec_.history, spec_,
                                           cc_slots_, tput_scale_mbps_,
                                           /*allow_short_target=*/true);
  CA5G_METRIC_HISTOGRAM(inference_ns, "predictor.inference_ns");
  CA5G_METRIC_COUNTER(samples, "predictor.samples_total");
  samples.inc();
  const auto normalized = [&] {
    CA5G_SCOPED_TIMER(inference_ns);
    return model_->predict(window);
  }();
  std::vector<double> out;
  out.reserve(want);
  for (std::size_t h = 0; h < want; ++h) {
    const double norm =
        normalized.empty() ? 0.0 : normalized[std::min(h, normalized.size() - 1)];
    out.push_back(std::max(0.0, norm * tput_scale_mbps_));
  }
  return out;
}

}  // namespace ca5g::apps
