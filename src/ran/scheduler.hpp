// Per-component-carrier MAC scheduler and link adaptation.
//
// Converts a carrier's link measurement into the UE's slot-level grant:
// resource blocks (vs. cell load and CA-state throttling, paper Fig. 15),
// MIMO layers (rank adaptation including the CA power-split penalty that
// drops n25 from 3 layers to 1 in the paper's Fig. 14), MCS from CQI,
// BLER, and the resulting goodput.
#pragma once

#include "common/rng.hpp"
#include "phy/tbs.hpp"
#include "radio/channel_model.hpp"
#include "ran/deployment.hpp"
#include "ue/capability.hpp"

namespace ca5g::ran {

/// State of the CA combination relevant to per-CC scheduling decisions.
struct CaContext {
  int active_ccs = 1;            ///< CCs currently aggregated (incl. this one)
  int aggregate_bw_mhz = 0;      ///< total aggregated bandwidth
  bool is_pcell = true;
  bool is_fdd_supplement = false;///< FDD CC aggregated beside TDD CCs
  /// Outer-loop link adaptation: the MCS actually transmitted (trails
  /// the CQI-implied target; see CcAllocation::target_mcs). -1 = use
  /// the instantaneous target directly.
  int mcs_override = -1;
};

/// The slot-level grant and link-adaptation outcome for one CC.
struct CcAllocation {
  int cqi = 0;
  int mcs = 0;        ///< MCS actually used this interval
  int target_mcs = 0; ///< CQI-implied MCS the outer loop converges toward
  int layers = 1;
  int rb = 0;
  double bler = 0.0;
  double tput_bps = 0.0;  ///< goodput after BLER
};

/// Scheduler tuning parameters (calibrated in DESIGN.md §4.2).
struct SchedulerParams {
  /// Extra SINR loss per additional CC for FDD carriers sharing the
  /// site's power budget (drives the Fig. 14 MIMO-layer drop).
  double fdd_power_split_db_per_cc = 1.5;
  /// Same for TDD carriers (milder; separate panels/power amplifiers).
  double tdd_power_split_db_per_cc = 0.5;
  /// Aggregate bandwidth beyond which busy cells throttle SCell RBs.
  double throttle_bw_threshold_mhz = 120.0;
  /// Strength of the SCell RB throttle (fraction lost per 100 MHz excess
  /// at full load; paper Fig. 15).
  double throttle_strength = 0.55;
  /// Mean fraction of RBs granted to our UE at zero competing load.
  double max_rb_fraction = 0.92;
  /// RB grant jitter (std-dev, fraction of max).
  double rb_jitter = 0.06;
  /// Per-interval link utilization: real 5G throughput at 10 ms
  /// granularity is bursty (TDD patterns, HARQ, queue contention), so
  /// each scheduling interval realizes only a noisy fraction of the
  /// nominal rate. Mean/sigma of that fraction:
  double utilization_mean = 0.92;
  double utilization_sigma = 0.10;
  /// Probability of a deep scheduling outage in an interval (preemption
  /// by other traffic / HARQ stalls) and the residual rate during it.
  double outage_probability = 0.03;
  double outage_depth = 0.25;
};

/// Stateless per-slot scheduling decision.
class Scheduler {
 public:
  explicit Scheduler(SchedulerParams params = {}) : params_(params) {}

  /// Allocate one CC for one scheduling interval.
  /// `load` is the cell's competing-traffic fraction in [0,1].
  [[nodiscard]] CcAllocation allocate(const Carrier& carrier,
                                      const radio::LinkMeasurement& link,
                                      const CaContext& ca,
                                      const ue::UeCapability& capability, double load,
                                      common::Rng& rng) const;

  [[nodiscard]] const SchedulerParams& params() const noexcept { return params_; }

  /// Rank (MIMO layers) selected for an effective SINR, before caps.
  [[nodiscard]] static int rank_from_sinr(double sinr_db) noexcept;

 private:
  SchedulerParams params_;
};

}  // namespace ca5g::ran
