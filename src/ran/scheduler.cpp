#include "ran/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"
#include "phy/mcs.hpp"
#include "phy/numerology.hpp"

namespace ca5g::ran {

int Scheduler::rank_from_sinr(double sinr_db) noexcept {
  if (sinr_db >= 21.0) return 4;
  if (sinr_db >= 14.0) return 3;
  if (sinr_db >= 6.0) return 2;
  return 1;
}

CcAllocation Scheduler::allocate(const Carrier& carrier, const radio::LinkMeasurement& link,
                                 const CaContext& ca, const ue::UeCapability& capability,
                                 double load, common::Rng& rng) const {
  CA5G_CHECK_GE_MSG(ca.active_ccs, 1, "a scheduled CC is always part of the active set");
  CA5G_CHECK_GE_MSG(ca.aggregate_bw_mhz, 0, "aggregate bandwidth cannot be negative");
  CA5G_CHECK_GE_MSG(capability.max_mimo_layers, 1, "UE must support at least one layer");
  load = std::clamp(load, 0.0, 1.0);
  const auto& info = phy::band_info(carrier.band);
  CA5G_DCHECK_GE_MSG(ca.aggregate_bw_mhz, ca.is_pcell || ca.active_ccs == 1
                                              ? 0
                                              : carrier.bandwidth_mhz,
                     "aggregate bandwidth must cover this SCell's own channel");

  // --- Effective SINR: CA splits the site's transmit resources. The
  // penalty applies to the additional CCs; FDD supplemental carriers
  // (low-power re-farmed spectrum) suffer the most (paper Fig. 14).
  double sinr_eff = link.sinr_db;
  if (ca.active_ccs > 1) {
    const double per_cc = info.duplex == phy::Duplex::kFdd
                              ? params_.fdd_power_split_db_per_cc
                              : params_.tdd_power_split_db_per_cc;
    sinr_eff -= per_cc * static_cast<double>(ca.active_ccs - 1);
  }

  CA5G_METRIC_COUNTER(grants, "ran.grants_total");
  CA5G_METRIC_COUNTER(no_grants, "ran.no_grant_total");
  CA5G_METRIC_COUNTER(rb_granted, "ran.rb_granted_total");
  CA5G_METRIC_COUNTER(scell_throttled, "ran.scell_throttled_total");

  CcAllocation alloc;
  alloc.cqi = phy::cqi_from_sinr(sinr_eff);
  if (alloc.cqi == 0) {
    no_grants.inc();
    return alloc;  // out of range: no grant
  }

  // --- Rank adaptation, capped by UE and band capability.
  int max_layers = capability.max_mimo_layers;
  if (phy::is_mmwave(carrier.band)) max_layers = std::min(max_layers, 2);
  if (info.duplex == phy::Duplex::kFdd) {
    // FDD radios in this study are 2T2R (low band) / 4T4R-but-3-layer
    // (re-farmed mid band) panels.
    max_layers = std::min(max_layers, info.range == phy::BandRange::kLow ? 2 : 3);
    // Under CA the base station re-balances transmit power away from the
    // supplemental FDD carriers; their usable rank collapses — the
    // paper's Fig. 14 shows n25 falling from 3 layers to 1 inside a
    // 3CC combination at identical RSRP/CQI.
    if (ca.active_ccs >= 3)
      max_layers = 1;
    else if (ca.active_ccs == 2)
      max_layers = std::min(max_layers, 2);
  }
  alloc.layers = std::min(rank_from_sinr(sinr_eff), max_layers);

  // --- MCS: the outer loop converges toward the CQI-implied target;
  // the engine supplies the lagged value via ca.mcs_override. A stale,
  // too-high MCS raises BLER until adaptation catches up — per-CC BLER
  // is therefore a leading indicator of that CC's throughput dips.
  int target = phy::mcs_from_cqi(alloc.cqi);
  target += static_cast<int>(rng.uniform_int(-1, 1));
  alloc.target_mcs = std::clamp(target, 0, phy::kMaxMcsIndex);
  alloc.mcs = ca.mcs_override >= 0 ? std::clamp(ca.mcs_override, 0, phy::kMaxMcsIndex)
                                   : alloc.target_mcs;
  alloc.bler = phy::bler_estimate(sinr_eff, alloc.mcs);

  // --- RB grant: full-buffer UE shares the carrier with `load` worth of
  // competing traffic (paper Tables 9–10: #RB shrinks at rush hour).
  const int max_rb = phy::max_resource_blocks(info.rat, carrier.bandwidth_mhz,
                                              carrier.scs_khz);
  double rb_fraction = params_.max_rb_fraction * (1.0 - 0.55 * load);

  // --- SCell throttling in busy cells once the aggregate bandwidth is
  // large (paper Fig. 15: the 40 MHz n41 SCell in a 240 MHz combo gets
  // starved while the same SCell in a 140 MHz combo does not). This is
  // an FR1 re-farming artefact; dedicated mmWave carriers are exempt.
  if (!phy::is_mmwave(carrier.band) && !ca.is_pcell &&
      ca.aggregate_bw_mhz > params_.throttle_bw_threshold_mhz) {
    const double excess_100mhz =
        (ca.aggregate_bw_mhz - params_.throttle_bw_threshold_mhz) / 100.0;
    rb_fraction *= std::max(0.15, 1.0 - params_.throttle_strength * load * excess_100mhz -
                                      0.25 * excess_100mhz);
    scell_throttled.inc();
  }

  rb_fraction = std::clamp(rb_fraction + rng.normal(0.0, params_.rb_jitter), 0.05, 1.0);
  alloc.rb = std::max(1, static_cast<int>(std::lround(rb_fraction * max_rb)));
  // The grant can never exceed what the carrier's channel bandwidth
  // physically carries (TS 38.101 RB capacity for this bandwidth/SCS).
  CA5G_DCHECK_LE_MSG(alloc.rb, max_rb, "RB grant exceeds carrier capacity");
  CA5G_DCHECK_IN_RANGE(alloc.layers, 1, capability.max_mimo_layers);
  CA5G_DCHECK_IN_RANGE(alloc.mcs, 0, phy::kMaxMcsIndex);

  // --- Slot throughput from the TBS machinery (paper Eq. 1).
  phy::TbsParams tbs;
  tbs.prb_count = alloc.rb;
  tbs.symbols = 13;  // one symbol of control overhead
  tbs.mcs_index = alloc.mcs;
  tbs.mimo_layers = alloc.layers;
  const double raw_bps = phy::slot_throughput_bps(tbs, carrier.scs_khz, info.duplex);

  // Per-interval utilization burstiness (see SchedulerParams). This is
  // what makes 10 ms-granularity throughput traces as noisy as the
  // paper's measurements (std/mean ≈ 0.45 both with and without CA).
  double utilization = std::clamp(
      rng.normal(params_.utilization_mean, params_.utilization_sigma), 0.15, 1.0);
  if (rng.bernoulli(params_.outage_probability))
    utilization *= params_.outage_depth * rng.uniform(0.3, 1.2);

  alloc.tput_bps = raw_bps * (1.0 - alloc.bler) * utilization;
  grants.inc();
  rb_granted.inc(static_cast<std::uint64_t>(alloc.rb));
  return alloc;
}

}  // namespace ca5g::ran
