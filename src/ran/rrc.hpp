// RRC signaling events surfaced by the CA manager. The paper's Prism5G
// consumes exactly these events ("Signaling: Radio Resource Control CA
// Events", Table 3) to build the binary activation mask.
#pragma once

#include <string>
#include <vector>

#include "ran/deployment.hpp"

namespace ca5g::ran {

/// Types of CA-related RRC signaling events.
enum class RrcEventType : std::uint8_t {
  kPCellChange,   ///< handover / PCell reselection
  kSCellAdd,      ///< secondary cell activated
  kSCellRemove,   ///< secondary cell deactivated
  kRatChange,     ///< technology fallback/upgrade (e.g. 5G → 4G)
};

[[nodiscard]] std::string rrc_event_name(RrcEventType type);

/// One logged signaling event.
struct RrcEvent {
  double time_s = 0.0;
  RrcEventType type = RrcEventType::kSCellAdd;
  CarrierId carrier = 0;
};

using RrcEventLog = std::vector<RrcEvent>;

}  // namespace ca5g::ran
