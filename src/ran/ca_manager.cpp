#include "ran/ca_manager.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "obs/metrics.hpp"

namespace ca5g::ran {

std::string rrc_event_name(RrcEventType type) {
  switch (type) {
    case RrcEventType::kPCellChange: return "pcell_change";
    case RrcEventType::kSCellAdd: return "scell_add";
    case RrcEventType::kSCellRemove: return "scell_remove";
    case RrcEventType::kRatChange: return "rat_change";
  }
  return "unknown";
}

CaPolicy default_policy(OperatorId op) {
  CaPolicy policy;
  // OpZ extends coverage by anchoring on FDD low-band (paper Fig. 28).
  policy.prefer_lowband_pcell = (op == OperatorId::kOpZ);
  return policy;
}

CaManager::CaManager(const Deployment& dep, phy::Rat rat,
                     const ue::UeCapability& capability, CaPolicy policy)
    : dep_(&dep), rat_(rat), capability_(capability), policy_(policy) {
  eligible_ = dep.carriers_of_rat(rat);
  CA5G_CHECK_MSG(!eligible_.empty(), "deployment has no carriers for the requested RAT");
}

int CaManager::max_ccs_for(CarrierId candidate) const {
  if (rat_ == phy::Rat::kLte) return capability_.max_lte_ccs;
  if (phy::is_mmwave(dep_->carrier(candidate).band)) return capability_.max_nr_fr2_ccs;
  // FR1 SA CA requires modem support; without it the UE stays at 1 CC.
  return capability_.supports_sa_ca ? capability_.max_nr_fr1_ccs : 1;
}

double CaManager::pcell_preference_bonus(CarrierId id) const {
  const auto& carrier = dep_->carrier(id);
  const auto& info = phy::band_info(carrier.band);
  // Wider carriers make better anchors: bias PCell selection toward the
  // 100 MHz channel over a co-sited 20/40 MHz one (up to +5 dB).
  double bonus = std::min(5.0, carrier.bandwidth_mhz / 20.0);
  // OpZ-style coverage anchoring: a viable low-band FDD carrier wins
  // PCell against a somewhat stronger mid-band TDD one (paper Fig. 28).
  if (policy_.prefer_lowband_pcell && info.range == phy::BandRange::kLow &&
      info.duplex == phy::Duplex::kFdd)
    bonus += 6.0;
  return bonus;
}

std::optional<CarrierId> CaManager::best_pcell(const std::vector<double>& rsrp) const {
  // Pass 1: capacity layers (mid/high band) above the priority floor.
  std::optional<CarrierId> best;
  double best_score = -1e18;
  for (CarrierId id : eligible_) {
    const auto& info = phy::band_info(dep_->carrier(id).band);
    if (info.range == phy::BandRange::kLow) continue;
    if (rsrp[id] < policy_.capacity_layer_min_rsrp_dbm) continue;
    const double score = rsrp[id] + pcell_preference_bonus(id);
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  if (best) return best;
  // Pass 2: anyone above the coverage floor (low band typically wins).
  best_score = policy_.pcell_min_rsrp_dbm;
  for (CarrierId id : eligible_) {
    const double score = rsrp[id] + pcell_preference_bonus(id);
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  return best;
}

void CaManager::rebuild_scells(const std::vector<double>& rsrp, double now_s,
                               std::vector<RrcEvent>& events) {
  CA5G_CHECK(!active_.empty());
  const CarrierId pcell = active_.front();
  const int max_ccs = max_ccs_for(pcell);

  // --- SCell removal: RSRP below the release threshold for a full TTT.
  for (std::size_t i = 1; i < active_.size();) {
    const CarrierId id = active_[i];
    if (rsrp[id] < policy_.scell_remove_rsrp_dbm) {
      auto pending = std::find_if(pending_removes_.begin(), pending_removes_.end(),
                                  [&](const Pending& p) { return p.carrier == id; });
      if (pending == pending_removes_.end()) {
        pending_removes_.push_back({id, now_s});
        ++i;
      } else if (now_s - pending->since_s >= policy_.time_to_trigger_s) {
        pending_removes_.erase(pending);
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
        events.push_back({now_s, RrcEventType::kSCellRemove, id});
      } else {
        ++i;
      }
    } else {
      // Condition cleared: drop any pending removal.
      std::erase_if(pending_removes_, [&](const Pending& p) { return p.carrier == id; });
      ++i;
    }
  }

  // --- SCell addition: co-sited candidates above the add threshold.
  const std::size_t pcell_site = dep_->carrier(pcell).site;
  for (CarrierId id : eligible_) {
    if (std::find(active_.begin(), active_.end(), id) != active_.end()) continue;
    if (static_cast<int>(active_.size()) >= max_ccs) break;
    if (policy_.require_co_sited_scells && dep_->carrier(id).site != pcell_site) continue;
    // mmWave and FR1 are not mixed in one CA combination in our data.
    if (phy::is_mmwave(dep_->carrier(id).band) != phy::is_mmwave(dep_->carrier(pcell).band))
      continue;
    if (rsrp[id] >= policy_.scell_add_rsrp_dbm) {
      auto pending = std::find_if(pending_adds_.begin(), pending_adds_.end(),
                                  [&](const Pending& p) { return p.carrier == id; });
      if (pending == pending_adds_.end()) {
        pending_adds_.push_back({id, now_s});
      } else if (now_s - pending->since_s >= policy_.time_to_trigger_s) {
        pending_adds_.erase(pending);
        active_.push_back(id);
        events.push_back({now_s, RrcEventType::kSCellAdd, id});
      }
    } else {
      std::erase_if(pending_adds_, [&](const Pending& p) { return p.carrier == id; });
    }
  }
}

std::vector<RrcEvent> CaManager::update(const std::vector<double>& rsrp_dbm, double now_s) {
  CA5G_CHECK_EQ_MSG(rsrp_dbm.size(), dep_->carriers.size(),
                    "one RSRP measurement per deployment carrier");
  std::vector<RrcEvent> events;

  const auto candidate = best_pcell(rsrp_dbm);
  if (!candidate) {
    // Out of coverage: drop everything.
    if (!active_.empty()) {
      for (std::size_t i = 1; i < active_.size(); ++i)
        events.push_back({now_s, RrcEventType::kSCellRemove, active_[i]});
      events.push_back({now_s, RrcEventType::kRatChange, active_.front()});
      active_.clear();
    }
    pending_handover_.reset();
    pending_adds_.clear();
    pending_removes_.clear();
    return events;
  }

  if (active_.empty()) {
    // Initial attach.
    active_.push_back(*candidate);
    events.push_back({now_s, RrcEventType::kPCellChange, *candidate});
  } else {
    const CarrierId pcell = active_.front();
    const double current_score = rsrp_dbm[pcell] + pcell_preference_bonus(pcell);
    const double candidate_score = rsrp_dbm[*candidate] + pcell_preference_bonus(*candidate);
    const bool a3 = *candidate != pcell &&
                    candidate_score > current_score + policy_.handover_hysteresis_db;
    if (*candidate != pcell && candidate_score > current_score && !a3) {
      // A stronger cell exists but sits inside the hysteresis margin —
      // the ping-pong suppression the paper's Fig. 17 transition stats
      // hinge on. Counted so runs can report how often it bites.
      CA5G_METRIC_COUNTER(hysteresis_blocks, "ran.handover_hysteresis_block_total");
      hysteresis_blocks.inc();
    }
    if (a3) {
      if (!pending_handover_ || pending_handover_->carrier != *candidate) {
        pending_handover_ = Pending{*candidate, now_s};
      } else if (now_s - pending_handover_->since_s >= policy_.time_to_trigger_s) {
        // Handover: release all SCells, switch PCell.
        for (std::size_t i = 1; i < active_.size(); ++i)
          events.push_back({now_s, RrcEventType::kSCellRemove, active_[i]});
        active_.clear();
        active_.push_back(*candidate);
        events.push_back({now_s, RrcEventType::kPCellChange, *candidate});
        pending_handover_.reset();
        pending_adds_.clear();
        pending_removes_.clear();
      }
    } else {
      pending_handover_.reset();
    }
  }

  if (!active_.empty()) rebuild_scells(rsrp_dbm, now_s, events);
  // RRC invariant: the aggregated combination never exceeds what the UE's
  // modem signalled in its capability report (paper Table 5 / Fig. 29).
  if (!active_.empty())
    CA5G_DCHECK_LE_MSG(static_cast<int>(active_.size()), max_ccs_for(active_.front()),
                       "active CC count exceeds UE capability");

  CA5G_METRIC_COUNTER(scell_adds, "ran.scell_add_total");
  CA5G_METRIC_COUNTER(scell_removes, "ran.scell_remove_total");
  CA5G_METRIC_COUNTER(pcell_changes, "ran.pcell_change_total");
  CA5G_METRIC_COUNTER(rat_changes, "ran.rat_change_total");
  CA5G_OBS_STMT(for (const auto& event : events) {
    switch (event.type) {
      case RrcEventType::kSCellAdd: scell_adds.inc(); break;
      case RrcEventType::kSCellRemove: scell_removes.inc(); break;
      case RrcEventType::kPCellChange: pcell_changes.inc(); break;
      case RrcEventType::kRatChange: rat_changes.inc(); break;
    }
  })
  return events;
}

}  // namespace ca5g::ran
