// Operator deployments: cell sites with configured carriers per the
// paper's Table 2 / Table 6 observations.
//
//  * OpX — 4G FDD low/mid portfolio; 5G n5 + n77 (2CC, up to 120 MHz)
//          plus dense-urban n260 mmWave (8CC).
//  * OpY — 4G portfolio; 5G n5 + n77+n77 (160 MHz) plus n261 mmWave.
//  * OpZ — aggressively re-farmed FR1: n71/n25/n41 with up to 4CC
//          (180 MHz aggregate), widest CA coverage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "phy/band.hpp"
#include "radio/propagation.hpp"

namespace ca5g::ran {

/// Index of a configured carrier within a Deployment.
using CarrierId = std::uint32_t;

/// The three (anonymized) US operators of the study.
enum class OperatorId : std::uint8_t { kOpX, kOpY, kOpZ };

[[nodiscard]] std::string operator_name(OperatorId op);

/// One configured channel (component-carrier candidate) at a site.
struct Carrier {
  CarrierId id = 0;
  phy::BandId band = phy::BandId::kN41;
  int bandwidth_mhz = 20;
  int scs_khz = 15;
  int pci = 0;               ///< physical cell id
  int channel_index = 0;     ///< distinguishes n41-a vs n41-b within a band
  double tx_power_dbm = 44;  ///< EIRP toward the UE
  std::size_t site = 0;      ///< owning site index
};

/// A cell site (gNB/eNB) hosting one or more carriers.
struct Site {
  radio::Position pos;
  std::vector<CarrierId> carriers;
};

/// How likely cells are loaded and how load varies over the day; drives
/// RB availability (paper §B.2 temporal dynamics, Tables 8–10).
struct LoadProfile {
  double base_load = 0.25;       ///< off-peak competing-traffic fraction
  double rush_hour_load = 0.65;  ///< peak-hour fraction
  double rush_hour_start_h = 16.0;
  double rush_hour_end_h = 18.0;

  /// Cell load in [0,1] at a wall-clock hour of day.
  [[nodiscard]] double load_at_hour(double hour) const;
};

/// A full operator deployment over one measurement area.
struct Deployment {
  OperatorId op = OperatorId::kOpZ;
  radio::Environment env = radio::Environment::kUrbanMacro;
  std::vector<Site> sites;
  std::vector<Carrier> carriers;
  LoadProfile load;

  [[nodiscard]] const Carrier& carrier(CarrierId id) const;
  [[nodiscard]] const Site& site_of(CarrierId id) const;
  /// Carriers filtered by radio access technology.
  [[nodiscard]] std::vector<CarrierId> carriers_of_rat(phy::Rat rat) const;
  /// A short display name like "n41-a(100)" for tables.
  [[nodiscard]] std::string carrier_label(CarrierId id) const;
};

/// Parameters for procedural deployment generation.
struct DeploymentParams {
  double extent_m = 2000.0;       ///< square area half-extent (centre at 0,0)
  double site_spacing_m = 350.0;  ///< target inter-site distance
  std::uint64_t seed = 1;
};

/// Build an operator deployment for an environment. Site density, carrier
/// sets, and 5G-CA prevalence follow the paper's per-operator findings
/// (§3.1: 5G CA coverage ≈ 24% OpX / 44% OpY / 86% OpZ of urban area).
[[nodiscard]] Deployment make_deployment(OperatorId op, radio::Environment env,
                                         const DeploymentParams& params);

/// Site index with the most carriers of the given RAT — where an
/// ideal-condition (line-of-sight hot spot) measurement would park.
[[nodiscard]] std::size_t best_ca_site(const Deployment& dep, phy::Rat rat);

}  // namespace ca5g::ran
