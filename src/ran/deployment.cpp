#include "ran/deployment.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::ran {
namespace {

using phy::BandId;

/// Template for one carrier to configure at a site.
struct CarrierTemplate {
  BandId band;
  int bandwidth_mhz;
  int scs_khz;
  double tx_power_dbm;
};

/// Carrier bundle a site may host, with a deployment probability.
struct SiteProfile {
  std::vector<CarrierTemplate> carriers;
  double probability;  ///< fraction of sites hosting this bundle
};

// 4G carrier sets (most sites of every operator host rich LTE CA — the
// paper observes up to 5 LTE CCs for all three operators).
std::vector<SiteProfile> lte_profiles(OperatorId op) {
  switch (op) {
    case OperatorId::kOpX:
      return {{{{BandId::kB2, 20, 15, 28}, {BandId::kB66, 20, 15, 28},
                {BandId::kB12, 10, 15, 30}, {BandId::kB30, 10, 15, 27},
                {BandId::kB29, 5, 15, 30}},
               0.85},
              {{{BandId::kB2, 10, 15, 27}, {BandId::kB12, 10, 15, 30}}, 0.15}};
    case OperatorId::kOpY:
      return {{{{BandId::kB2, 20, 15, 28}, {BandId::kB66, 20, 15, 28},
                {BandId::kB13, 10, 15, 30}, {BandId::kB5, 10, 15, 30},
                {BandId::kB48, 20, 15, 28}},
               0.85},
              {{{BandId::kB66, 15, 15, 27}, {BandId::kB13, 10, 15, 30}}, 0.15}};
    case OperatorId::kOpZ:
      return {{{{BandId::kB2, 20, 15, 28}, {BandId::kB66, 20, 15, 28},
                {BandId::kB71, 5, 15, 30}, {BandId::kB41, 20, 15, 28},
                {BandId::kB25, 5, 15, 27}},
               0.85},
              {{{BandId::kB2, 15, 15, 27}, {BandId::kB71, 5, 15, 30}}, 0.15}};
  }
  return {};
}

// 5G carrier sets. Probabilities reflect §3.1 CA prevalence: OpZ ≈ 86%,
// OpY ≈ 44% (+25% mmWave urban), OpX ≈ 24% (+6% mmWave urban).
std::vector<SiteProfile> nr_profiles(OperatorId op, radio::Environment env) {
  const bool urban = env == radio::Environment::kUrbanMacro ||
                     env == radio::Environment::kIndoor;
  const bool suburban = env == radio::Environment::kSuburbanMacro;
  switch (op) {
    case OperatorId::kOpX: {
      std::vector<SiteProfile> profiles;
      const double ca_frac = urban ? 0.25 : (suburban ? 0.12 : 0.08);
      // 2CC C-band CA (n77+n77, 120 MHz aggregate).
      profiles.push_back({{{BandId::kN77, 100, 30, 28}, {BandId::kN77, 40, 30, 28},
                           {BandId::kN5, 10, 15, 30}},
                          ca_frac});
      if (urban) {
        // Dense-urban mmWave: 8 n260 CCs.
        SiteProfile mm;
        for (int i = 0; i < 8; ++i) mm.carriers.push_back({BandId::kN260, 100, 120, 46});
        mm.carriers.push_back({BandId::kN5, 10, 15, 30});
        mm.probability = 0.06;
        profiles.push_back(std::move(mm));
      }
      // Non-CA 5G coverage sites.
      profiles.push_back({{{BandId::kN77, 100, 30, 28}}, 0.35});
      profiles.push_back({{{BandId::kN5, 10, 15, 30}}, 1.0});  // remainder
      return profiles;
    }
    case OperatorId::kOpY: {
      std::vector<SiteProfile> profiles;
      const double ca_frac = urban ? 0.44 : (suburban ? 0.22 : 0.12);
      // 2CC C-band (n77+n77, 160 MHz aggregate).
      profiles.push_back({{{BandId::kN77, 100, 30, 28}, {BandId::kN77, 60, 30, 28},
                           {BandId::kN5, 10, 15, 30}},
                          ca_frac});
      if (urban) {
        SiteProfile mm;
        for (int i = 0; i < 8; ++i) mm.carriers.push_back({BandId::kN261, 100, 120, 46});
        mm.carriers.push_back({BandId::kN5, 10, 15, 30});
        mm.probability = 0.25;
        profiles.push_back(std::move(mm));
      }
      profiles.push_back({{{BandId::kN77, 100, 30, 28}}, 0.25});
      profiles.push_back({{{BandId::kN5, 10, 15, 30}}, 1.0});
      return profiles;
    }
    case OperatorId::kOpZ: {
      std::vector<SiteProfile> profiles;
      const double ca4_frac = urban ? 0.55 : (suburban ? 0.40 : 0.25);
      const double ca2_frac = urban ? 0.31 : (suburban ? 0.35 : 0.30);
      // 4CC FR1: n41(100) + n41(40) + n25(20) + n71(20) — 180 MHz.
      profiles.push_back({{{BandId::kN41, 100, 30, 28}, {BandId::kN41, 40, 30, 28},
                           {BandId::kN25, 20, 15, 28}, {BandId::kN71, 20, 15, 30}},
                          ca4_frac});
      // 2CC: n41 + n71 (up to 120 MHz).
      profiles.push_back({{{BandId::kN41, 100, 30, 28}, {BandId::kN71, 20, 15, 30}},
                          ca2_frac});
      profiles.push_back({{{BandId::kN71, 15, 15, 30}}, 1.0});
      return profiles;
    }
  }
  return {};
}

}  // namespace

std::string operator_name(OperatorId op) {
  switch (op) {
    case OperatorId::kOpX: return "OpX";
    case OperatorId::kOpY: return "OpY";
    case OperatorId::kOpZ: return "OpZ";
  }
  return "Op?";
}

double LoadProfile::load_at_hour(double hour) const {
  const double h = std::fmod(std::max(hour, 0.0), 24.0);
  if (h >= rush_hour_start_h && h < rush_hour_end_h) return rush_hour_load;
  // Shoulders: ramp over one hour on either side of the rush window.
  if (h >= rush_hour_start_h - 1.0 && h < rush_hour_start_h) {
    const double t = h - (rush_hour_start_h - 1.0);
    return base_load + (rush_hour_load - base_load) * t;
  }
  if (h >= rush_hour_end_h && h < rush_hour_end_h + 1.0) {
    const double t = h - rush_hour_end_h;
    return rush_hour_load + (base_load - rush_hour_load) * t;
  }
  // Night time (midnight measurements in the paper) is lighter still.
  if (h < 6.0) return base_load * 0.4;
  return base_load;
}

const Carrier& Deployment::carrier(CarrierId id) const {
  CA5G_CHECK_MSG(id < carriers.size(), "carrier id out of range: " << id);
  return carriers[id];
}

const Site& Deployment::site_of(CarrierId id) const { return sites[carrier(id).site]; }

std::vector<CarrierId> Deployment::carriers_of_rat(phy::Rat rat) const {
  std::vector<CarrierId> out;
  for (const auto& c : carriers)
    if (phy::band_info(c.band).rat == rat) out.push_back(c.id);
  return out;
}

std::string Deployment::carrier_label(CarrierId id) const {
  const Carrier& c = carrier(id);
  std::string label{phy::band_info(c.band).name};
  label += '-';
  label += static_cast<char>('a' + (c.channel_index % 26));
  label += '(' + std::to_string(c.bandwidth_mhz) + ')';
  return label;
}

Deployment make_deployment(OperatorId op, radio::Environment env,
                           const DeploymentParams& params) {
  CA5G_CHECK_MSG(params.extent_m > 0 && params.site_spacing_m > 0, "bad deployment params");
  common::Rng rng(params.seed);

  Deployment dep;
  dep.op = op;
  dep.env = env;
  if (env == radio::Environment::kHighway) {
    dep.load.base_load = 0.15;
    dep.load.rush_hour_load = 0.45;
  } else if (env == radio::Environment::kUrbanMacro) {
    dep.load.base_load = 0.3;
    dep.load.rush_hour_load = 0.7;
  }

  // Grid of sites with positional jitter. Highways get a 1-D string of
  // sites along the route axis instead of a grid.
  std::vector<radio::Position> site_positions;
  if (env == radio::Environment::kHighway) {
    const int n = std::max(2, static_cast<int>(2.0 * params.extent_m / params.site_spacing_m));
    for (int i = 0; i < n; ++i) {
      const double x = -params.extent_m + 2.0 * params.extent_m * i / (n - 1);
      site_positions.push_back({x + rng.normal(0, 40.0), rng.normal(0, 120.0)});
    }
  } else {
    const int per_axis =
        std::max(2, static_cast<int>(2.0 * params.extent_m / params.site_spacing_m));
    for (int ix = 0; ix < per_axis; ++ix) {
      for (int iy = 0; iy < per_axis; ++iy) {
        const double x = -params.extent_m + 2.0 * params.extent_m * ix / (per_axis - 1);
        const double y = -params.extent_m + 2.0 * params.extent_m * iy / (per_axis - 1);
        site_positions.push_back({x + rng.normal(0, 50.0), y + rng.normal(0, 50.0)});
      }
    }
  }

  const auto lte = lte_profiles(op);
  const auto nr = nr_profiles(op, env);
  // Channel-index counters give same-band channels distinct labels
  // (n41-a, n41-b, …) and decorrelated frequencies.
  std::array<int, phy::kBandCount> channel_counter{};
  int next_pci = 100;

  auto add_carrier = [&](std::size_t site_idx, const CarrierTemplate& t) {
    Carrier c;
    c.id = static_cast<CarrierId>(dep.carriers.size());
    c.band = t.band;
    c.bandwidth_mhz = t.bandwidth_mhz;
    c.scs_khz = t.scs_khz;
    c.tx_power_dbm = t.tx_power_dbm;
    c.pci = next_pci++;
    c.channel_index = channel_counter[static_cast<std::size_t>(t.band)]++ % 4;
    c.site = site_idx;
    dep.sites[site_idx].carriers.push_back(c.id);
    dep.carriers.push_back(c);
  };

  auto pick_profile = [&](const std::vector<SiteProfile>& profiles) -> const SiteProfile* {
    double u = rng.uniform();
    for (const auto& p : profiles) {
      if (u < p.probability) return &p;
      u -= p.probability;
    }
    return profiles.empty() ? nullptr : &profiles.back();
  };

  for (const auto& pos : site_positions) {
    const std::size_t site_idx = dep.sites.size();
    dep.sites.push_back({pos, {}});
    // Per-site channel indexes restart so intra-band channels at one site
    // stay distinguishable (a/b) regardless of global counts.
    channel_counter.fill(0);
    if (const SiteProfile* p = pick_profile(lte)) {
      for (const auto& t : p->carriers) add_carrier(site_idx, t);
    }
    if (const SiteProfile* p = pick_profile(nr)) {
      for (const auto& t : p->carriers) add_carrier(site_idx, t);
    }
  }

  CA5G_CHECK_MSG(!dep.carriers.empty(), "deployment generated no carriers");
  return dep;
}

std::size_t best_ca_site(const Deployment& dep, phy::Rat rat) {
  std::size_t best = 0;
  std::size_t best_count = 0;
  for (std::size_t s = 0; s < dep.sites.size(); ++s) {
    std::size_t count = 0;
    for (auto id : dep.sites[s].carriers)
      if (phy::band_info(dep.carrier(id).band).rat == rat) ++count;
    if (count > best_count) {
      best_count = count;
      best = s;
    }
  }
  return best;
}

}  // namespace ca5g::ran
