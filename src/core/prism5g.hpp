// Prism5G — the paper's CA-aware deep-learning throughput predictor
// (§5). Three principles, mirrored here one-to-one:
//
//  1. Per-CC modeling (blue in Fig. 16): a weights-SHARED LSTM encodes
//     each component carrier's feature sequence X_c → h_c.
//  2. CA event monitoring (green): RRC signaling is translated into a
//     binary activation mask I ∈ {0,1}^{C×T}; inputs are gated
//     X'_c = X_c ⊙ I, and an embedding turns I into a dense context E.
//  3. Fusion learning (orange): h_f = Fusion([h_1..h_C, E]) captures
//     the inter-carrier interplay; each head then predicts its CC's
//     future throughput from h'_c = h_c + h_f, and the aggregate is
//     y = Σ_c MLP(h'_c).
//
// The two ablation switches reproduce Table 13: `use_state` disables the
// mask gating + embedding ("No State"), `use_fusion` disables the fusion
// module ("No Fusion").
#pragma once

#include <memory>

#include "nn/attention.hpp"
#include "predictors/deep.hpp"

namespace ca5g::core {

/// Which sequence encoder the per-CC modules use. The paper uses LSTM
/// and lists transformers as future work; both are supported (§9).
enum class EncoderKind : std::uint8_t { kLstm, kTransformer };

/// Prism5G configuration beyond the shared training hyper-parameters.
struct Prism5gConfig {
  bool use_state = true;        ///< state-trigger mechanism (mask + embedding)
  bool use_fusion = true;       ///< fusion-learning module
  std::size_t embed_dim = 16;   ///< dense mask-embedding width
  float per_cc_loss_weight = 0.5f;  ///< auxiliary per-CC supervision weight
  EncoderKind encoder = EncoderKind::kLstm;
};

class Prism5G final : public predictors::DeepPredictor {
 public:
  explicit Prism5G(predictors::TrainConfig train = predictors::train_config_from_env(),
                   Prism5gConfig config = Prism5gConfig{});

  [[nodiscard]] std::string name() const override;

  /// Per-CC future throughput predictions for one window (normalized):
  /// [C][H]. The aggregate prediction is their sum (paper Figs. 33–34).
  [[nodiscard]] std::vector<std::vector<double>> predict_per_cc(
      const traces::Window& w) const;

  [[nodiscard]] const Prism5gConfig& prism_config() const noexcept { return pconfig_; }

 protected:
  void build(const traces::Dataset& ds, common::Rng& rng) override;
  [[nodiscard]] nn::Tensor forward_batch(std::span<const traces::Window* const> batch,
                                         bool training) const override;
  [[nodiscard]] std::vector<nn::Tensor> trainable_parameters() override;
  [[nodiscard]] nn::Tensor compute_loss(
      std::span<const traces::Window* const> batch) override;
  /// Compiled plan covering the LSTM encoder and both ablations
  /// (no-state / no-fusion); the transformer encoder variant returns
  /// nullptr and keeps the autograd path (see docs/SERVING.md).
  [[nodiscard]] std::unique_ptr<InferencePlan> compile_plan() const override;

 private:
  /// Width of one encoder input: per-CC features plus the shared
  /// context (aggregate history, RRC event flag, CC count).
  [[nodiscard]] static std::size_t encoder_input_dim() {
    return traces::kCcFeatureDim + 1 + traces::kGlobalFeatureDim;
  }
  /// Per-CC input sequences ([C] of [T] tensors batch × F'), mask-gated
  /// when the state mechanism is on. Each CC's features are augmented
  /// with the shared context so encoders see the same information the
  /// flat baselines do (paper Table 3: HisTput + signaling are inputs).
  [[nodiscard]] std::vector<std::vector<nn::Tensor>> make_cc_sequences(
      std::span<const traces::Window* const> batch) const;
  /// Flattened binary mask (batch × C·T) for the embedding.
  [[nodiscard]] nn::Tensor make_mask_matrix(
      std::span<const traces::Window* const> batch) const;
  /// Per-CC head outputs ([C] of batch × H tensors).
  [[nodiscard]] std::vector<nn::Tensor> forward_per_cc(
      std::span<const traces::Window* const> batch) const;

  Prism5gConfig pconfig_;
  std::size_t cc_slots_ = 4;

  /// Encode one CC's sequence with whichever encoder is configured.
  [[nodiscard]] nn::Tensor encode(std::span<const nn::Tensor> sequence) const;

  std::unique_ptr<nn::Lstm> encoder_;      ///< weights shared across CCs
  std::unique_ptr<nn::SelfAttentionEncoder> attention_;  ///< transformer option
  std::unique_ptr<nn::Linear> mask_embed_; ///< sparse mask → dense E
  std::unique_ptr<nn::Mlp> fusion_;
  std::unique_ptr<nn::Mlp> head_;          ///< weights shared across CCs
};

}  // namespace ca5g::core
