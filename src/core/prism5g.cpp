#include "core/prism5g.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "nn/infer.hpp"

namespace ca5g::core {
namespace {

namespace infer = nn::infer;

/// Compiled Prism5G forward: per-CC shared-LSTM encoding over
/// mask-gated inputs, mask embedding + fusion, shared heads, mask
/// gating at the last step, and the ordered per-CC sum — mirroring
/// forward_per_cc/forward_batch op for op so the result is
/// bit-identical to the autograd path. Honors both ablation switches.
class Prism5gPlan final : public predictors::DeepPredictor::InferencePlan {
 public:
  Prism5gPlan(const nn::Lstm& encoder, const nn::Linear& mask_embed,
              const nn::Mlp& fusion, const nn::Mlp& head, bool use_state,
              bool use_fusion, std::size_t cc_slots, std::size_t horizon)
      : encoder_(encoder),
        mask_embed_(mask_embed),
        fusion_(fusion),
        head_(head),
        use_state_(use_state),
        use_fusion_(use_fusion),
        cc_slots_(cc_slots),
        horizon_(horizon) {}

  void run(std::span<const traces::Window* const> batch, infer::Arena& arena,
           float* out) const override {
    const std::size_t rows = batch.size();
    const std::size_t t_len = batch.front()->cc_feat.size();
    const std::size_t hidden = encoder_.hidden();
    const std::size_t in_dim = encoder_.cells.front().in;
    const std::size_t g4 = 4 * hidden;

    // 1. Shared per-CC encoding into h_all[c] (rows × hidden each).
    float* h_all = arena.alloc(cc_slots_ * rows * hidden);
    float* x = arena.alloc(rows * in_dim);
    float* states = arena.alloc(encoder_.state_floats(rows));
    float* xg = arena.alloc(rows * g4);
    float* hg = arena.alloc(rows * g4);
    for (std::size_t c = 0; c < cc_slots_; ++c) {
      encoder_.zero_states(states, rows);
      const float* top = nullptr;
      for (std::size_t t = 0; t < t_len; ++t) {
        stage_cc_step(batch, c, t, x);
        top = encoder_.step(x, states, rows, xg, hg);
      }
      std::copy(top, top + rows * hidden, h_all + c * rows * hidden);
    }

    // 2+3. Mask embedding and fusion over [h_1..h_C, E].
    const float* fused = nullptr;
    if (use_fusion_) {
      const float* embed = nullptr;
      std::size_t embed_dim = 0;
      if (use_state_) {
        float* mask = arena.alloc(rows * cc_slots_ * t_len);
        for (std::size_t b = 0; b < rows; ++b)
          for (std::size_t c = 0; c < cc_slots_; ++c)
            for (std::size_t t = 0; t < t_len; ++t)
              mask[b * cc_slots_ * t_len + c * t_len + t] =
                  static_cast<float>(batch[b]->mask[t][c]);
        embed_dim = mask_embed_.out;
        float* e = arena.alloc(rows * embed_dim);
        mask_embed_.forward(mask, rows, e);
        embed = e;
      }
      const std::size_t fusion_in = cc_slots_ * hidden + embed_dim;
      float* fin = arena.alloc(rows * fusion_in);
      for (std::size_t r = 0; r < rows; ++r) {
        float* frow = fin + r * fusion_in;
        for (std::size_t c = 0; c < cc_slots_; ++c)
          std::copy(h_all + c * rows * hidden + r * hidden,
                    h_all + c * rows * hidden + (r + 1) * hidden,
                    frow + c * hidden);
        if (embed)
          std::copy(embed + r * embed_dim, embed + (r + 1) * embed_dim,
                    frow + cc_slots_ * hidden);
      }
      fused = fusion_.forward(arena, fin, rows);
    }

    // 4. Shared heads on h'_c = h_c + h_f, gated by the last-step mask,
    // summed across CCs in order (y_0, then += y_1, ...).
    const std::size_t t_last = t_len - 1;
    float* hsum = arena.alloc(rows * hidden);
    for (std::size_t c = 0; c < cc_slots_; ++c) {
      const float* hc = h_all + c * rows * hidden;
      if (fused) {
        for (std::size_t i = 0; i < rows * hidden; ++i)
          hsum[i] = hc[i] + fused[i];
        hc = hsum;
      }
      const float* y = head_.forward(arena, hc, rows);
      for (std::size_t b = 0; b < rows; ++b) {
        const float gate =
            use_state_ ? static_cast<float>(batch[b]->mask[t_last][c]) : 1.0f;
        float* orow = out + b * horizon_;
        const float* yrow = y + b * horizon_;
        if (c == 0) {
          for (std::size_t h = 0; h < horizon_; ++h)
            orow[h] = use_state_ ? yrow[h] * gate : yrow[h];
        } else {
          for (std::size_t h = 0; h < horizon_; ++h)
            orow[h] = orow[h] + (use_state_ ? yrow[h] * gate : yrow[h]);
        }
      }
    }
  }

 private:
  /// Stage CC c's step t inputs: gated features + shared context, with
  /// the gate applied in double before the float cast, exactly like
  /// make_cc_sequences.
  void stage_cc_step(std::span<const traces::Window* const> batch, std::size_t c,
                     std::size_t t, float* x) const {
    const std::size_t dim = encoder_.cells.front().in;
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const auto& feat = batch[b]->cc_feat[t][c];
      const double gate = use_state_ ? batch[b]->mask[t][c] : 1.0;
      float* row = x + b * dim;
      std::size_t f = 0;
      for (; f < traces::kCcFeatureDim; ++f)
        row[f] = static_cast<float>(feat[f] * gate);
      row[f++] = static_cast<float>(batch[b]->agg_history[t] * gate);
      for (std::size_t g = 0; g < traces::kGlobalFeatureDim; ++g)
        row[f++] = static_cast<float>(batch[b]->global[t][g] * gate);
    }
  }

  infer::PackedLstm encoder_;
  infer::PackedLinear mask_embed_;
  infer::PackedMlp fusion_;
  infer::PackedMlp head_;
  bool use_state_;
  bool use_fusion_;
  std::size_t cc_slots_;
  std::size_t horizon_;
};

}  // namespace

Prism5G::Prism5G(predictors::TrainConfig train, Prism5gConfig config)
    : predictors::DeepPredictor(train), pconfig_(config) {}

std::string Prism5G::name() const {
  std::string base = pconfig_.encoder == EncoderKind::kTransformer
                         ? "Prism5G(transformer)"
                         : "Prism5G";
  if (!pconfig_.use_state && !pconfig_.use_fusion) return base + "(-state,-fusion)";
  if (!pconfig_.use_state) return base + "(no-state)";
  if (!pconfig_.use_fusion) return base + "(no-fusion)";
  return base;
}

void Prism5G::build(const traces::Dataset& ds, common::Rng& rng) {
  cc_slots_ = ds.cc_slots();
  const std::size_t hidden = config_.hidden;

  // One encoder instance == shared weights across all CC slots.
  if (pconfig_.encoder == EncoderKind::kTransformer) {
    attention_ = std::make_unique<nn::SelfAttentionEncoder>(rng, encoder_input_dim(),
                                                            hidden);
    encoder_.reset();
  } else {
    encoder_ = std::make_unique<nn::Lstm>(rng, encoder_input_dim(), hidden,
                                          config_.layers);
    attention_.reset();
  }
  mask_embed_ = std::make_unique<nn::Linear>(rng, cc_slots_ * ds.history(),
                                             pconfig_.embed_dim);
  const std::size_t fusion_in = cc_slots_ * hidden +
                                (pconfig_.use_state ? pconfig_.embed_dim : 0);
  fusion_ = std::make_unique<nn::Mlp>(
      rng, std::vector<std::size_t>{fusion_in, hidden, hidden});
  head_ = std::make_unique<nn::Mlp>(
      rng, std::vector<std::size_t>{hidden, hidden, ds.horizon()});
}

std::vector<std::vector<nn::Tensor>> Prism5G::make_cc_sequences(
    std::span<const traces::Window* const> batch) const {
  CA5G_CHECK_MSG(!batch.empty(), "empty batch");
  const std::size_t t_len = batch.front()->cc_feat.size();
  std::vector<std::vector<nn::Tensor>> sequences(cc_slots_);
  for (std::size_t c = 0; c < cc_slots_; ++c) {
    sequences[c].reserve(t_len);
    for (std::size_t t = 0; t < t_len; ++t) {
      nn::Tensor x(batch.size(), encoder_input_dim());
      for (std::size_t b = 0; b < batch.size(); ++b) {
        const auto& feat = batch[b]->cc_feat[t][c];
        // State trigger: gate per-CC features by the RRC-derived
        // activation mask (X' = X ⊙ I). Without it, raw features pass
        // through untouched — inactive CCs then still look like zeros in
        // most features, but the model loses the explicit on/off signal.
        const double gate = pconfig_.use_state ? batch[b]->mask[t][c] : 1.0;
        std::size_t f = 0;
        for (; f < traces::kCcFeatureDim; ++f)
          x.set(b, f, static_cast<float>(feat[f] * gate));
        // Shared context (aggregate history + globals), gated like the
        // rest: X'_c = X_c ⊙ I deactivates the whole module.
        x.set(b, f++, static_cast<float>(batch[b]->agg_history[t] * gate));
        for (std::size_t g = 0; g < traces::kGlobalFeatureDim; ++g)
          x.set(b, f++, static_cast<float>(batch[b]->global[t][g] * gate));
      }
      sequences[c].push_back(std::move(x));
    }
  }
  return sequences;
}

nn::Tensor Prism5G::make_mask_matrix(std::span<const traces::Window* const> batch) const {
  const std::size_t t_len = batch.front()->mask.size();
  nn::Tensor m(batch.size(), cc_slots_ * t_len);
  for (std::size_t b = 0; b < batch.size(); ++b)
    for (std::size_t c = 0; c < cc_slots_; ++c)
      for (std::size_t t = 0; t < t_len; ++t)
        m.set(b, c * t_len + t, static_cast<float>(batch[b]->mask[t][c]));
  return m;
}

std::vector<nn::Tensor> Prism5G::forward_per_cc(
    std::span<const traces::Window* const> batch) const {
  const auto sequences = make_cc_sequences(batch);

  // 1. Shared per-CC encoding.
  std::vector<nn::Tensor> hidden_states;
  hidden_states.reserve(cc_slots_);
  for (std::size_t c = 0; c < cc_slots_; ++c)
    hidden_states.push_back(encode(sequences[c]));

  // 2+3. Mask embedding and fusion over [h_1..h_C, E].
  nn::Tensor fused;
  if (pconfig_.use_fusion) {
    std::vector<nn::Tensor> fusion_inputs = hidden_states;
    if (pconfig_.use_state)
      fusion_inputs.push_back(mask_embed_->forward(make_mask_matrix(batch)));
    fused = fusion_->forward(nn::concat_cols(fusion_inputs));
  }

  // 4. Shared per-CC heads on h'_c = h_c + h_f. With the state trigger
  // on, a module whose carrier is inactive at prediction time is
  // deactivated outright: it contributes exactly zero throughput.
  const std::size_t t_last = batch.front()->mask.size() - 1;
  std::vector<nn::Tensor> outputs;
  outputs.reserve(cc_slots_);
  for (std::size_t c = 0; c < cc_slots_; ++c) {
    const nn::Tensor h = fused.defined() ? hidden_states[c] + fused : hidden_states[c];
    nn::Tensor y = head_->forward(h);
    if (pconfig_.use_state) {
      nn::Tensor gate(batch.size(), 1);
      for (std::size_t b = 0; b < batch.size(); ++b)
        gate.set(b, 0, static_cast<float>(batch[b]->mask[t_last][c]));
      // Broadcast the per-row gate across the horizon columns.
      std::vector<nn::Tensor> cols;
      cols.reserve(horizon_);
      for (std::size_t hcol = 0; hcol < horizon_; ++hcol) cols.push_back(gate);
      y = y * nn::concat_cols(cols);
    }
    outputs.push_back(y);
  }
  return outputs;
}

nn::Tensor Prism5G::forward_batch(std::span<const traces::Window* const> batch,
                                  bool /*training*/) const {
  const auto per_cc = forward_per_cc(batch);
  nn::Tensor agg = per_cc.front();
  for (std::size_t c = 1; c < per_cc.size(); ++c) agg = agg + per_cc[c];
  return agg;
}

nn::Tensor Prism5G::compute_loss(std::span<const traces::Window* const> batch) {
  const auto per_cc = forward_per_cc(batch);
  nn::Tensor agg = per_cc.front();
  for (std::size_t c = 1; c < per_cc.size(); ++c) agg = agg + per_cc[c];
  nn::Tensor loss = nn::mse_loss(agg, make_target(batch, horizon_));

  if (pconfig_.per_cc_loss_weight > 0.0f) {
    // Auxiliary per-CC supervision: each head should track its own CC.
    for (std::size_t c = 0; c < per_cc.size(); ++c) {
      nn::Tensor cc_target(batch.size(), horizon_);
      for (std::size_t b = 0; b < batch.size(); ++b)
        for (std::size_t h = 0; h < horizon_; ++h)
          cc_target.set(b, h, static_cast<float>(batch[b]->cc_target[h][c]));
      loss = loss + nn::scale(nn::mse_loss(per_cc[c], cc_target),
                              pconfig_.per_cc_loss_weight /
                                  static_cast<float>(per_cc.size()));
    }
  }
  return loss;
}

std::vector<std::vector<double>> Prism5G::predict_per_cc(const traces::Window& w) const {
  const traces::Window* ptr = &w;
  const auto per_cc =
      forward_per_cc(std::span<const traces::Window* const>(&ptr, 1));
  std::vector<std::vector<double>> out(per_cc.size());
  for (std::size_t c = 0; c < per_cc.size(); ++c) {
    out[c].reserve(horizon_);
    for (std::size_t h = 0; h < horizon_; ++h)
      out[c].push_back(std::clamp<double>(per_cc[c].at(0, h), 0.0, 1.5));
  }
  return out;
}

nn::Tensor Prism5G::encode(std::span<const nn::Tensor> sequence) const {
  return attention_ ? attention_->last_hidden(sequence)
                    : encoder_->last_hidden(sequence);
}

std::unique_ptr<predictors::DeepPredictor::InferencePlan> Prism5G::compile_plan()
    const {
  // The transformer encoder stays on the autograd path: attention's
  // softmax/rowwise-dot chain is off the serving hot loop (the paper
  // deploys the LSTM encoder; §9 lists transformers as future work).
  if (attention_ || !encoder_) return nullptr;
  return std::make_unique<Prism5gPlan>(*encoder_, *mask_embed_, *fusion_, *head_,
                                       pconfig_.use_state, pconfig_.use_fusion,
                                       cc_slots_, horizon_);
}

std::vector<nn::Tensor> Prism5G::trainable_parameters() {
  auto params = attention_ ? attention_->parameters() : encoder_->parameters();
  for (auto& p : mask_embed_->parameters()) params.push_back(p);
  for (auto& p : fusion_->parameters()) params.push_back(p);
  for (auto& p : head_->parameters()) params.push_back(p);
  return params;
}

}  // namespace ca5g::core
