// Deep-learning baselines (paper §6.1), faithful to their citations:
//  * LSTM [28] (Mei et al.) — recurrent forecaster over the aggregate
//    bandwidth history.
//  * TCN [9] (Chen et al.) — temporal-convolutional forecaster over the
//    same history.
//  * Lumos5G [32] — the Seq2Seq architecture with generic (non-mmWave)
//    context features: throughput history + RRC event flag + CC count.
// None of them models individual component carriers — that is exactly
// the gap Prism5G fills (paper §5: existing approaches "blindly predict
// overall throughput").
#pragma once

#include <memory>

#include "nn/infer.hpp"
#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "predictors/predictor.hpp"

namespace ca5g::predictors {

/// Shared mini-batch supervised training loop with validation-based
/// early stopping and best-checkpoint restore. Subclasses define the
/// network; the base class owns fit/predict mechanics.
class DeepPredictor : public Predictor {
 public:
  explicit DeepPredictor(TrainConfig config) : config_(config) {}

  void fit(const traces::Dataset& ds, std::span<const traces::Window* const> train,
           std::span<const traces::Window* const> val) final;

  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const final;

  /// Real batched inference: chunks `windows` into forward_batch calls
  /// of at most the training batch size, so a serving micro-batch costs
  /// one forward pass instead of one per window.
  [[nodiscard]] std::vector<std::vector<double>> predict_many(
      std::span<const traces::Window* const> windows) const final;

  /// Validation RMSE trajectory of the last fit (for tests/benches).
  [[nodiscard]] const std::vector<double>& val_history() const noexcept {
    return val_history_;
  }

  /// Persist the trained parameters (call after fit()).
  void save(const std::string& path);

  /// Rebuild the network for `ds`'s dimensions and load parameters
  /// previously stored with save(). The model is then ready to predict.
  void load(const traces::Dataset& ds, const std::string& path);

  /// Toggle the compiled graph-free inference path (on by default).
  /// With it off — or when the model has no plan — predict() and
  /// predict_many() run the autograd graph, which stays the reference
  /// oracle for the plan's bit-identity tests.
  void set_fast_path(bool enabled) noexcept { fast_path_enabled_ = enabled; }

  /// True when predictions run a compiled plan instead of the graph.
  [[nodiscard]] bool fast_path_active() const noexcept {
    return fast_path_enabled_ && plan_ != nullptr;
  }

  /// A compiled graph-free forward: stages window features straight
  /// into arena buffers and runs nn::infer kernels against weights
  /// packed at compile_plan() time. run() writes (batch × horizon)
  /// normalized predictions into `out` (arena-backed, sized by the
  /// caller) and must reproduce forward_batch(batch, training=false)
  /// bit-for-bit. Plans are immutable once built — concurrent run()
  /// calls on a shared model are safe, each with its own arena.
  class InferencePlan {
   public:
    virtual ~InferencePlan() = default;
    virtual void run(std::span<const traces::Window* const> batch,
                     nn::infer::Arena& arena, float* out) const = 0;
  };

 protected:
  /// Compile this model's plan from the current weights. nullptr keeps
  /// the graph path (default, and e.g. the transformer Prism5G
  /// variant). fit() and load() recompile via rebuild_plan(), so plans
  /// never go stale: weights only change through those two paths.
  [[nodiscard]] virtual std::unique_ptr<InferencePlan> compile_plan() const {
    return nullptr;
  }

  /// Snapshot the current weights into a fresh plan.
  void rebuild_plan() { plan_ = compile_plan(); }
  /// Construct layers for the dataset's dimensions.
  virtual void build(const traces::Dataset& ds, common::Rng& rng) = 0;
  /// Forward a batch → (batch × horizon) normalized predictions.
  /// `training` enables teacher forcing where applicable.
  [[nodiscard]] virtual nn::Tensor forward_batch(
      std::span<const traces::Window* const> batch, bool training) const = 0;
  /// All trainable parameters.
  [[nodiscard]] virtual std::vector<nn::Tensor> trainable_parameters() = 0;

  /// Training loss for one batch; default is MSE of the aggregate
  /// prediction. Prism5G overrides this to add per-CC supervision.
  [[nodiscard]] virtual nn::Tensor compute_loss(
      std::span<const traces::Window* const> batch);

  /// What each step's input vector contains.
  enum class InputMode {
    kThroughputOnly,        ///< [agg_tput] — classic bandwidth forecasting
    kThroughputPlusGlobal,  ///< [agg_tput, global...] — generic context
    kFullFlat,              ///< all CC features + globals + aggregate
  };

  /// Sequence of T input tensors for a batch under an input mode.
  [[nodiscard]] static std::vector<nn::Tensor> make_sequence(
      std::span<const traces::Window* const> batch, InputMode mode);

  /// Input width for a mode over a dataset.
  [[nodiscard]] static std::size_t input_dim(const traces::Dataset& ds, InputMode mode);

  /// Sequence of T input tensors (batch × flat_dim) for a batch.
  [[nodiscard]] static std::vector<nn::Tensor> make_flat_sequence(
      std::span<const traces::Window* const> batch);
  /// Target tensor (batch × horizon).
  [[nodiscard]] static nn::Tensor make_target(std::span<const traces::Window* const> batch,
                                              std::size_t horizon);

  TrainConfig config_;
  std::size_t horizon_ = 10;
  std::size_t flat_dim_ = 0;

 private:
  [[nodiscard]] std::vector<std::vector<float>> snapshot_parameters();
  void restore_parameters(const std::vector<std::vector<float>>& snapshot);

  /// Run the compiled plan on one micro-batch (at most batch_size
  /// windows) and append the clamped prediction rows to `out`.
  void run_plan(std::span<const traces::Window* const> batch,
                std::vector<std::vector<double>>& out) const;

  std::vector<double> val_history_;
  std::unique_ptr<InferencePlan> plan_;
  bool fast_path_enabled_ = true;
};

/// Plain LSTM over flattened features → linear head (baseline "LSTM").
class LstmPredictor final : public DeepPredictor {
 public:
  explicit LstmPredictor(TrainConfig config = train_config_from_env())
      : DeepPredictor(config) {}
  [[nodiscard]] std::string name() const override { return "LSTM"; }

 protected:
  void build(const traces::Dataset& ds, common::Rng& rng) override;
  [[nodiscard]] nn::Tensor forward_batch(std::span<const traces::Window* const> batch,
                                         bool training) const override;
  [[nodiscard]] std::vector<nn::Tensor> trainable_parameters() override;
  [[nodiscard]] std::unique_ptr<InferencePlan> compile_plan() const override;

 private:
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::Linear> head_;
};

/// Temporal convolutional network: stacked causal dilated convolutions.
class TcnPredictor final : public DeepPredictor {
 public:
  explicit TcnPredictor(TrainConfig config = train_config_from_env())
      : DeepPredictor(config) {}
  [[nodiscard]] std::string name() const override { return "TCN"; }

 protected:
  void build(const traces::Dataset& ds, common::Rng& rng) override;
  [[nodiscard]] nn::Tensor forward_batch(std::span<const traces::Window* const> batch,
                                         bool training) const override;
  [[nodiscard]] std::vector<nn::Tensor> trainable_parameters() override;
  [[nodiscard]] std::unique_ptr<InferencePlan> compile_plan() const override;

 private:
  std::vector<nn::CausalConv1d> convs_;
  std::unique_ptr<nn::Linear> head_;
};

/// Lumos5G-style Seq2Seq: LSTM encoder, LSTM decoder unrolled over the
/// horizon with teacher forcing during training.
class Lumos5gPredictor final : public DeepPredictor {
 public:
  explicit Lumos5gPredictor(TrainConfig config = train_config_from_env())
      : DeepPredictor(config) {}
  [[nodiscard]] std::string name() const override { return "Lumos5G"; }

 protected:
  void build(const traces::Dataset& ds, common::Rng& rng) override;
  [[nodiscard]] nn::Tensor forward_batch(std::span<const traces::Window* const> batch,
                                         bool training) const override;
  [[nodiscard]] std::vector<nn::Tensor> trainable_parameters() override;
  [[nodiscard]] std::unique_ptr<InferencePlan> compile_plan() const override;

 private:
  std::unique_ptr<nn::Lstm> encoder_;
  std::unique_ptr<nn::Lstm> decoder_;
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace ca5g::predictors
