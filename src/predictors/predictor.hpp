// Common throughput-predictor interface (paper §6.1): every model is
// fitted on normalized windows and predicts the H-step future aggregate
// throughput (normalized). The evaluation harness, transition-zone
// plots, and both QoE applications swap predictors through this
// interface exactly as §7 swaps them inside ViVo and MPC.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "traces/dataset.hpp"

namespace ca5g::predictors {

/// Training hyper-parameters shared by the deep models (paper §C.1:
/// Adam, lr 0.01, batch 128, hidden 128, 2 layers, max 200 epochs; we
/// default to CPU-sized equivalents and honour env overrides).
struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  float lr = 0.01f;
  std::size_t hidden = 32;
  std::size_t layers = 2;
  std::size_t patience = 6;   ///< early-stop patience (validation RMSE)
  std::uint64_t seed = 1234;
};

/// Config with CA5G_EPOCHS / CA5G_HIDDEN / CA5G_BATCH / CA5G_FAST env
/// overrides applied (CA5G_FAST=1 halves epochs and hidden width).
[[nodiscard]] TrainConfig train_config_from_env();

/// Abstract throughput predictor.
class Predictor {
 public:
  virtual ~Predictor() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fit on training windows; `val` guides model selection/early stop.
  virtual void fit(const traces::Dataset& ds,
                   std::span<const traces::Window* const> train,
                   std::span<const traces::Window* const> val) = 0;

  /// Predict the normalized aggregate throughput for the full horizon.
  [[nodiscard]] virtual std::vector<double> predict(const traces::Window& w) const = 0;

  /// Batched prediction: one horizon vector per input window, in order.
  /// The default loops over predict(); models with a real batched
  /// forward pass (the deep family) override it so a serving batch
  /// costs one forward instead of |windows|. Must be thread-safe on a
  /// fitted model, like predict() — the serving layer calls it from
  /// several worker threads concurrently.
  [[nodiscard]] virtual std::vector<std::vector<double>> predict_many(
      std::span<const traces::Window* const> windows) const;
};

/// RMSE of a fitted predictor over test windows (all horizon steps),
/// in normalized units — directly comparable to the paper's Table 4.
[[nodiscard]] double evaluate_rmse(const Predictor& model,
                                   std::span<const traces::Window* const> test);

/// Mean absolute error, same conventions.
[[nodiscard]] double evaluate_mae(const Predictor& model,
                                  std::span<const traces::Window* const> test);

}  // namespace ca5g::predictors
