#include "predictors/trees.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::predictors {
namespace {

double subset_mean(const std::vector<double>& y, const std::vector<std::size_t>& idx,
                   std::size_t begin, std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) acc += y[idx[i]];
  return acc / static_cast<double>(end - begin);
}

}  // namespace

std::vector<double> flatten_window(const traces::Window& w) {
  std::vector<double> flat;
  for (std::size_t t = 0; t < w.cc_feat.size(); ++t) {
    const auto step = traces::Dataset::flatten_step(w, t);
    flat.insert(flat.end(), step.begin(), step.end());
  }
  return flat;
}

void RegressionTree::fit(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y, const Config& config,
                         common::Rng& rng) {
  CA5G_CHECK_MSG(!x.empty() && x.size() == y.size(), "tree fit shape mismatch");
  nodes_.clear();
  std::vector<std::size_t> indices(x.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  build(x, y, indices, 0, indices.size(), 0, config, rng);
}

std::int32_t RegressionTree::build(const std::vector<std::vector<double>>& x,
                                   const std::vector<double>& y,
                                   std::vector<std::size_t>& indices, std::size_t begin,
                                   std::size_t end, std::size_t depth, const Config& config,
                                   common::Rng& rng) {
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].value = subset_mean(y, indices, begin, end);

  const std::size_t n = end - begin;
  if (depth >= config.max_depth || n < 2 * config.min_samples_leaf) return node_id;

  const std::size_t num_features = x.front().size();
  std::size_t k = config.feature_subsample;
  if (k == 0) k = std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(num_features)));
  k = std::min(k, num_features);

  // Candidate features for this split.
  std::vector<std::size_t> features;
  features.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    features.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_features) - 1)));

  // Best split by variance reduction (equivalently, max sum of child
  // squared-sums). Scan sorted values per candidate feature.
  double best_score = -1.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) total_sum += y[indices[i]];

  std::vector<std::size_t> sorted(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                  indices.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t f : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) { return x[a][f] < x[b][f]; });
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_sum += y[sorted[i]];
      const std::size_t n_left = i + 1;
      const std::size_t n_right = sorted.size() - n_left;
      if (n_left < config.min_samples_leaf || n_right < config.min_samples_leaf) continue;
      if (x[sorted[i]][f] == x[sorted[i + 1]][f]) continue;  // no valid threshold here
      const double right_sum = total_sum - left_sum;
      const double score = left_sum * left_sum / static_cast<double>(n_left) +
                           right_sum * right_sum / static_cast<double>(n_right);
      if (score > best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x[sorted[i]][f] + x[sorted[i + 1]][f]);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t i) { return x[i][static_cast<std::size_t>(best_feature)] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  const auto left = build(x, y, indices, begin, mid, depth + 1, config, rng);
  const auto right = build(x, y, indices, mid, end, depth + 1, config, rng);
  TreeNode& node = nodes_[static_cast<std::size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double RegressionTree::predict(const std::vector<double>& x) const {
  CA5G_CHECK_MSG(!nodes_.empty(), "predict on unfitted tree");
  std::int32_t node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const TreeNode& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

// ---- GBDT ------------------------------------------------------------------

void GbdtPredictor::fit(const traces::Dataset& ds,
                        std::span<const traces::Window* const> train,
                        std::span<const traces::Window* const> /*val*/) {
  CA5G_CHECK_MSG(!train.empty(), "GBDT fit on empty training set");
  common::Rng rng(config_.seed);

  std::vector<std::vector<double>> x;
  x.reserve(train.size());
  for (const auto* w : train) x.push_back(flatten_window(*w));

  const std::size_t horizon = ds.horizon();
  base_.assign(horizon, 0.0);
  chains_.assign(horizon, {});

  for (std::size_t h = 0; h < horizon; ++h) {
    std::vector<double> y(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) y[i] = train[i]->target[h];
    double mean = 0.0;
    for (double v : y) mean += v;
    mean /= static_cast<double>(y.size());
    base_[h] = mean;

    std::vector<double> residual(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - mean;

    for (std::size_t t = 0; t < config_.num_trees; ++t) {
      RegressionTree tree;
      tree.fit(x, residual, config_.tree, rng);
      for (std::size_t i = 0; i < residual.size(); ++i)
        residual[i] -= config_.learning_rate * tree.predict(x[i]);
      chains_[h].push_back(std::move(tree));
    }
  }
}

std::vector<double> GbdtPredictor::predict(const traces::Window& w) const {
  CA5G_CHECK_MSG(!chains_.empty(), "predict on unfitted GBDT");
  const auto flat = flatten_window(w);
  std::vector<double> out;
  const std::size_t horizon = chains_.size();
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double pred = base_[h];
    for (const auto& tree : chains_[h]) pred += config_.learning_rate * tree.predict(flat);
    out.push_back(std::clamp(pred, 0.0, 1.5));
  }
  return out;
}

// ---- Random forest -----------------------------------------------------------

void RandomForestPredictor::fit(const traces::Dataset& ds,
                                std::span<const traces::Window* const> train,
                                std::span<const traces::Window* const> /*val*/) {
  CA5G_CHECK_MSG(!train.empty(), "RF fit on empty training set");
  common::Rng rng(config_.seed);

  std::vector<std::vector<double>> x;
  x.reserve(train.size());
  for (const auto* w : train) x.push_back(flatten_window(*w));

  const std::size_t horizon = ds.horizon();
  forests_.assign(horizon, {});
  for (std::size_t h = 0; h < horizon; ++h) {
    std::vector<double> y(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) y[i] = train[i]->target[h];
    for (std::size_t t = 0; t < config_.num_trees; ++t) {
      // Bootstrap resample.
      std::vector<std::vector<double>> xb(x.size());
      std::vector<double> yb(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(x.size()) - 1));
        xb[i] = x[j];
        yb[i] = y[j];
      }
      RegressionTree tree;
      tree.fit(xb, yb, config_.tree, rng);
      forests_[h].push_back(std::move(tree));
    }
  }
}

std::vector<double> RandomForestPredictor::predict(const traces::Window& w) const {
  CA5G_CHECK_MSG(!forests_.empty(), "predict on unfitted RF");
  const auto flat = flatten_window(w);
  std::vector<double> out;
  const std::size_t horizon = forests_.size();
  out.reserve(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    double acc = 0.0;
    for (const auto& tree : forests_[h]) acc += tree.predict(flat);
    out.push_back(acc / static_cast<double>(forests_[h].size()));
  }
  return out;
}

}  // namespace ca5g::predictors
