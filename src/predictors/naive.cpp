#include "predictors/naive.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace ca5g::predictors {

std::vector<double> HarmonicMeanPredictor::predict(const traces::Window& w) const {
  CA5G_CHECK_MSG(!w.agg_history.empty(), "empty history");
  double denom = 0.0;
  std::size_t n = 0;
  for (double x : w.agg_history) {
    denom += 1.0 / std::max(x, 1e-6);
    ++n;
  }
  const double hm = static_cast<double>(n) / denom;
  return std::vector<double>(horizon_, hm);
}

std::vector<double> ridge_solve(const std::vector<std::vector<double>>& a,
                                const std::vector<double>& y, double lambda) {
  CA5G_CHECK_MSG(!a.empty() && a.size() == y.size(), "ridge_solve shape mismatch");
  const std::size_t n = a.size();
  const std::size_t d = a.front().size();

  // Normal equations: M = AᵀA + λI, b = Aᵀy.
  std::vector<std::vector<double>> m(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    CA5G_CHECK_MSG(a[i].size() == d, "ragged design matrix");
    for (std::size_t r = 0; r < d; ++r) {
      b[r] += a[i][r] * y[i];
      for (std::size_t c = 0; c < d; ++c) m[r][c] += a[i][r] * a[i][c];
    }
  }
  for (std::size_t r = 0; r < d; ++r) m[r][r] += lambda;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r)
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    CA5G_CHECK_MSG(std::abs(m[col][col]) > 1e-12, "singular ridge system");
    for (std::size_t r = col + 1; r < d; ++r) {
      const double factor = m[r][col] / m[col][col];
      for (std::size_t c = col; c < d; ++c) m[r][c] -= factor * m[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(d, 0.0);
  for (std::size_t col = d; col-- > 0;) {
    double acc = b[col];
    for (std::size_t c = col + 1; c < d; ++c) acc -= m[col][c] * x[c];
    x[col] = acc / m[col][col];
  }
  return x;
}

std::vector<double> ProphetLitePredictor::predict(const traces::Window& w) const {
  const std::size_t t_len = w.agg_history.size();
  CA5G_CHECK_MSG(t_len >= 3, "history too short for Prophet-lite");
  const double period = static_cast<double>(t_len);

  auto features = [&](double t) {
    std::vector<double> row{1.0, t / period};
    for (std::size_t k = 1; k <= config_.fourier_order; ++k) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) * t / period;
      row.push_back(std::sin(angle));
      row.push_back(std::cos(angle));
    }
    return row;
  };

  std::vector<std::vector<double>> design;
  design.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) design.push_back(features(static_cast<double>(t)));
  const auto coef = ridge_solve(design, w.agg_history, config_.ridge_lambda);

  std::vector<double> out;
  out.reserve(horizon_);
  for (std::size_t h = 0; h < horizon_; ++h) {
    const auto row = features(static_cast<double>(t_len + h));
    double pred = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) pred += row[c] * coef[c];
    // Throughput cannot be negative; allow mild extrapolation above 1.
    out.push_back(std::clamp(pred, 0.0, 1.5));
  }
  return out;
}

}  // namespace ca5g::predictors
