#include "predictors/deep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::predictors {

// ---- Base training loop ------------------------------------------------------

std::size_t DeepPredictor::input_dim(const traces::Dataset& ds, InputMode mode) {
  switch (mode) {
    case InputMode::kThroughputOnly: return 1;
    case InputMode::kThroughputPlusGlobal: return 1 + traces::kGlobalFeatureDim;
    case InputMode::kFullFlat: return ds.flat_dim();
  }
  return ds.flat_dim();
}

std::vector<nn::Tensor> DeepPredictor::make_sequence(
    std::span<const traces::Window* const> batch, InputMode mode) {
  if (mode == InputMode::kFullFlat) return make_flat_sequence(batch);
  CA5G_CHECK_MSG(!batch.empty(), "empty batch");
  const std::size_t t_len = batch.front()->agg_history.size();
  const std::size_t dim =
      mode == InputMode::kThroughputOnly ? 1 : 1 + traces::kGlobalFeatureDim;
  std::vector<nn::Tensor> sequence;
  sequence.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    nn::Tensor x(batch.size(), dim);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      x.set(b, 0, static_cast<float>(batch[b]->agg_history[t]));
      if (mode == InputMode::kThroughputPlusGlobal)
        for (std::size_t g = 0; g < traces::kGlobalFeatureDim; ++g)
          x.set(b, 1 + g, static_cast<float>(batch[b]->global[t][g]));
    }
    sequence.push_back(std::move(x));
  }
  return sequence;
}

std::vector<nn::Tensor> DeepPredictor::make_flat_sequence(
    std::span<const traces::Window* const> batch) {
  CA5G_CHECK_MSG(!batch.empty(), "empty batch");
  const std::size_t t_len = batch.front()->cc_feat.size();
  const auto first = traces::Dataset::flatten_step(*batch.front(), 0);
  const std::size_t dim = first.size();

  std::vector<nn::Tensor> sequence;
  sequence.reserve(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    nn::Tensor x(batch.size(), dim);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      const auto flat = traces::Dataset::flatten_step(*batch[b], t);
      CA5G_CHECK_MSG(flat.size() == dim, "inconsistent flat dims in batch");
      for (std::size_t c = 0; c < dim; ++c)
        x.set(b, c, static_cast<float>(flat[c]));
    }
    sequence.push_back(std::move(x));
  }
  return sequence;
}

nn::Tensor DeepPredictor::make_target(std::span<const traces::Window* const> batch,
                                      std::size_t horizon) {
  nn::Tensor y(batch.size(), horizon);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    CA5G_CHECK_MSG(batch[b]->target.size() >= horizon, "target shorter than horizon");
    for (std::size_t h = 0; h < horizon; ++h)
      y.set(b, h, static_cast<float>(batch[b]->target[h]));
  }
  return y;
}

std::vector<std::vector<float>> DeepPredictor::snapshot_parameters() {
  std::vector<std::vector<float>> snapshot;
  for (const auto& p : trainable_parameters()) snapshot.push_back(p.values());
  return snapshot;
}

void DeepPredictor::restore_parameters(const std::vector<std::vector<float>>& snapshot) {
  auto params = trainable_parameters();
  CA5G_CHECK_MSG(params.size() == snapshot.size(), "snapshot size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) params[i].values() = snapshot[i];
}

void DeepPredictor::fit(const traces::Dataset& ds,
                        std::span<const traces::Window* const> train,
                        std::span<const traces::Window* const> val) {
  CA5G_CHECK_MSG(!train.empty(), "fit with empty training set");
  horizon_ = ds.horizon();
  flat_dim_ = ds.flat_dim();

  common::Rng rng(config_.seed);
  build(ds, rng);

  nn::Adam::Config adam_config;
  adam_config.lr = config_.lr;
  nn::Adam optimizer(trainable_parameters(), adam_config);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double best_val = 1e30;
  std::vector<std::vector<float>> best_params = snapshot_parameters();
  std::size_t since_best = 0;
  val_history_.clear();

  CA5G_METRIC_COUNTER(epochs_total, "nn.train_epochs_total");
  CA5G_METRIC_COUNTER(batches_total, "nn.train_batches_total");
  CA5G_METRIC_HISTOGRAM(backward_ns, "nn.backward_ns");
  CA5G_METRIC_GAUGE(epoch_val_rmse, "nn.epoch_val_rmse");

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    epochs_total.inc();
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      std::vector<const traces::Window*> batch;
      batch.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) batch.push_back(train[order[i]]);

      batches_total.inc();
      optimizer.zero_grad();
      nn::Tensor loss = compute_loss(batch);
      {
        CA5G_SCOPED_TIMER(backward_ns);
        loss.backward();
      }
      optimizer.step();
    }

    // Validation RMSE for model selection.
    double val_rmse = 0.0;
    if (!val.empty()) {
      double sq = 0.0;
      std::size_t count = 0;
      for (std::size_t start = 0; start < val.size(); start += config_.batch_size) {
        const std::size_t end = std::min(val.size(), start + config_.batch_size);
        std::vector<const traces::Window*> batch(val.begin() + static_cast<std::ptrdiff_t>(start),
                                                 val.begin() + static_cast<std::ptrdiff_t>(end));
        const nn::Tensor pred = forward_batch(batch, /*training=*/false);
        for (std::size_t b = 0; b < batch.size(); ++b)
          for (std::size_t h = 0; h < horizon_; ++h) {
            const double d = pred.at(b, h) - batch[b]->target[h];
            sq += d * d;
            ++count;
          }
      }
      val_rmse = std::sqrt(sq / static_cast<double>(std::max<std::size_t>(count, 1)));
      epoch_val_rmse.set(val_rmse);
      val_history_.push_back(val_rmse);
      if (val_rmse < best_val - 1e-5) {
        best_val = val_rmse;
        best_params = snapshot_parameters();
        since_best = 0;
      } else if (++since_best >= config_.patience) {
        break;  // early stop
      }
    }
  }
  if (!val.empty()) restore_parameters(best_params);
  rebuild_plan();
}

void DeepPredictor::save(const std::string& path) {
  nn::save_parameters(trainable_parameters(), path);
}

void DeepPredictor::load(const traces::Dataset& ds, const std::string& path) {
  horizon_ = ds.horizon();
  flat_dim_ = ds.flat_dim();
  common::Rng rng(config_.seed);
  build(ds, rng);
  auto params = trainable_parameters();
  nn::load_parameters(params, path);
  rebuild_plan();
}

nn::Tensor DeepPredictor::compute_loss(std::span<const traces::Window* const> batch) {
  const nn::Tensor pred = forward_batch(batch, /*training=*/true);
  const nn::Tensor target = make_target(batch, horizon_);
  return nn::mse_loss(pred, target);
}

void DeepPredictor::run_plan(std::span<const traces::Window* const> batch,
                             std::vector<std::vector<double>>& out) const {
  CA5G_METRIC_COUNTER(plan_runs, "infer.plan_runs_total");
  CA5G_METRIC_GAUGE(arena_bytes, "infer.arena_bytes");
  CA5G_METRIC_HISTOGRAM(window_ns, "infer.window_ns");

  nn::infer::Arena& arena = nn::infer::thread_arena();
  arena.reset();
  float* pred = arena.alloc(batch.size() * horizon_);
  CA5G_OBS_STMT(const auto t0 = std::chrono::steady_clock::now();)
  plan_->run(batch, arena, pred);
  CA5G_OBS_STMT(
      const auto dt = std::chrono::steady_clock::now() - t0;
      window_ns.observe(
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
          static_cast<double>(batch.size()));
      arena_bytes.set(static_cast<double>(arena.high_water_bytes()));)
  plan_runs.inc();

  for (std::size_t b = 0; b < batch.size(); ++b) {
    std::vector<double> row;
    row.reserve(horizon_);
    for (std::size_t h = 0; h < horizon_; ++h)
      row.push_back(std::clamp<double>(pred[b * horizon_ + h], 0.0, 1.5));
    out.push_back(std::move(row));
  }
}

std::vector<double> DeepPredictor::predict(const traces::Window& w) const {
  const traces::Window* ptr = &w;
  const std::span<const traces::Window* const> batch(&ptr, 1);
  if (fast_path_active()) {
    std::vector<std::vector<double>> rows;
    rows.reserve(1);
    run_plan(batch, rows);
    return std::move(rows.front());
  }
  CA5G_METRIC_COUNTER(graph_runs, "infer.graph_runs_total");
  graph_runs.inc();
  const nn::Tensor pred = forward_batch(batch, /*training=*/false);
  std::vector<double> out;
  out.reserve(horizon_);
  for (std::size_t h = 0; h < horizon_; ++h)
    out.push_back(std::clamp<double>(pred.at(0, h), 0.0, 1.5));
  return out;
}

std::vector<std::vector<double>> DeepPredictor::predict_many(
    std::span<const traces::Window* const> windows) const {
  std::vector<std::vector<double>> out;
  out.reserve(windows.size());
  const std::size_t chunk = std::max<std::size_t>(1, config_.batch_size);
  const bool fast = fast_path_active();
  for (std::size_t start = 0; start < windows.size(); start += chunk) {
    const auto batch = windows.subspan(start, std::min(chunk, windows.size() - start));
    if (fast) {
      run_plan(batch, out);
      continue;
    }
    CA5G_METRIC_COUNTER(graph_runs, "infer.graph_runs_total");
    graph_runs.inc();
    const nn::Tensor pred = forward_batch(batch, /*training=*/false);
    for (std::size_t b = 0; b < batch.size(); ++b) {
      std::vector<double> row;
      row.reserve(horizon_);
      for (std::size_t h = 0; h < horizon_; ++h)
        row.push_back(std::clamp<double>(pred.at(b, h), 0.0, 1.5));
      out.push_back(std::move(row));
    }
  }
  return out;
}

// ---- Compiled inference plans ---------------------------------------------------
//
// Each plan mirrors its model's forward_batch(training=false) op by op
// with the nn::infer kernels; accumulation orders are chosen to match
// the graph bit-for-bit (see nn/infer.hpp). Input staging replicates
// make_sequence's float casts exactly.

namespace {

namespace infer = nn::infer;

/// Stage one kThroughputOnly step: x (rows × 1).
void stage_throughput(std::span<const traces::Window* const> batch, std::size_t t,
                      float* x) {
  for (std::size_t b = 0; b < batch.size(); ++b)
    x[b] = static_cast<float>(batch[b]->agg_history[t]);
}

/// Stage one kThroughputPlusGlobal step: x (rows × (1 + globals)).
void stage_throughput_global(std::span<const traces::Window* const> batch,
                             std::size_t t, float* x) {
  constexpr std::size_t dim = 1 + traces::kGlobalFeatureDim;
  for (std::size_t b = 0; b < batch.size(); ++b) {
    float* row = x + b * dim;
    row[0] = static_cast<float>(batch[b]->agg_history[t]);
    for (std::size_t g = 0; g < traces::kGlobalFeatureDim; ++g)
      row[1 + g] = static_cast<float>(batch[b]->global[t][g]);
  }
}

/// LSTM baseline: lstm over the throughput history → linear head.
class LstmPlan final : public DeepPredictor::InferencePlan {
 public:
  LstmPlan(const nn::Lstm& lstm, const nn::Linear& head)
      : lstm_(lstm), head_(head) {}

  void run(std::span<const traces::Window* const> batch, infer::Arena& arena,
           float* out) const override {
    const std::size_t rows = batch.size();
    const std::size_t t_len = batch.front()->agg_history.size();
    const std::size_t g4 = 4 * lstm_.hidden();
    float* x = arena.alloc(rows);
    float* states = lstm_.alloc_states(arena, rows);
    float* xg = arena.alloc(rows * g4);
    float* hg = arena.alloc(rows * g4);
    for (std::size_t t = 0; t < t_len; ++t) {
      stage_throughput(batch, t, x);
      lstm_.step(x, states, rows, xg, hg);
    }
    head_.forward(lstm_.top_hidden(states, rows), rows, out);
  }

 private:
  infer::PackedLstm lstm_;
  infer::PackedLinear head_;
};

/// TCN baseline: stacked causal convolutions with ReLU, head on the
/// last step.
class TcnPlan final : public DeepPredictor::InferencePlan {
 public:
  TcnPlan(const std::vector<nn::CausalConv1d>& convs, const nn::Linear& head)
      : head_(head) {
    for (const auto& conv : convs) convs_.emplace_back(conv);
  }

  void run(std::span<const traces::Window* const> batch, infer::Arena& arena,
           float* out) const override {
    const std::size_t rows = batch.size();
    const std::size_t t_len = batch.front()->agg_history.size();
    float* seq = arena.alloc(t_len * rows);
    for (std::size_t t = 0; t < t_len; ++t)
      stage_throughput(batch, t, seq + t * rows);
    const float* cur = seq;
    for (const auto& conv : convs_) {
      float* next = arena.alloc(t_len * rows * conv.out);
      float* tmp = arena.alloc(rows * conv.out);
      for (std::size_t t = 0; t < t_len; ++t)
        conv.forward_step(cur, t, t_len, rows, next + t * rows * conv.out, tmp);
      infer::relu_inplace(next, t_len * rows * conv.out);
      cur = next;
    }
    const std::size_t ch = convs_.back().out;
    head_.forward(cur + (t_len - 1) * rows * ch, rows, out);
  }

 private:
  std::vector<infer::PackedConv1d> convs_;
  infer::PackedLinear head_;
};

/// Lumos5G Seq2Seq: LSTM encoder seeds the decoder's states; the
/// decoder unrolls over the horizon feeding its own output back.
class LumosPlan final : public DeepPredictor::InferencePlan {
 public:
  LumosPlan(const nn::Lstm& encoder, const nn::Lstm& decoder,
            const nn::Linear& head, std::size_t horizon)
      : encoder_(encoder), decoder_(decoder), head_(head), horizon_(horizon) {}

  void run(std::span<const traces::Window* const> batch, infer::Arena& arena,
           float* out) const override {
    const std::size_t rows = batch.size();
    const std::size_t t_len = batch.front()->agg_history.size();
    constexpr std::size_t enc_dim = 1 + traces::kGlobalFeatureDim;
    const std::size_t g4 = 4 * encoder_.hidden();

    float* x = arena.alloc(rows * enc_dim);
    float* states = encoder_.alloc_states(arena, rows);
    float* xg = arena.alloc(rows * g4);
    float* hg = arena.alloc(rows * g4);
    for (std::size_t t = 0; t < t_len; ++t) {
      stage_throughput_global(batch, t, x);
      encoder_.step(x, states, rows, xg, hg);
    }

    // The decoder runs on the encoder's final states (same layers and
    // hidden width by construction) and starts from the last observed
    // aggregate throughput.
    float* y = arena.alloc(rows);
    for (std::size_t b = 0; b < rows; ++b)
      y[b] = static_cast<float>(batch[b]->agg_history.back());
    for (std::size_t h = 0; h < horizon_; ++h) {
      const float* top = decoder_.step(y, states, rows, xg, hg);
      head_.forward(top, rows, y);
      for (std::size_t b = 0; b < rows; ++b) out[b * horizon_ + h] = y[b];
    }
  }

 private:
  infer::PackedLstm encoder_;
  infer::PackedLstm decoder_;
  infer::PackedLinear head_;
  std::size_t horizon_;
};

}  // namespace

// ---- LSTM baseline -------------------------------------------------------------

void LstmPredictor::build(const traces::Dataset& ds, common::Rng& rng) {
  lstm_ = std::make_unique<nn::Lstm>(rng, input_dim(ds, InputMode::kThroughputOnly),
                                     config_.hidden, config_.layers);
  head_ = std::make_unique<nn::Linear>(rng, config_.hidden, ds.horizon());
}

nn::Tensor LstmPredictor::forward_batch(std::span<const traces::Window* const> batch,
                                        bool /*training*/) const {
  const auto sequence = make_sequence(batch, InputMode::kThroughputOnly);
  return head_->forward(lstm_->last_hidden(sequence));
}

std::vector<nn::Tensor> LstmPredictor::trainable_parameters() {
  auto params = lstm_->parameters();
  for (auto& p : head_->parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<DeepPredictor::InferencePlan> LstmPredictor::compile_plan() const {
  if (!lstm_ || !head_) return nullptr;
  return std::make_unique<LstmPlan>(*lstm_, *head_);
}

// ---- TCN baseline ---------------------------------------------------------------

void TcnPredictor::build(const traces::Dataset& ds, common::Rng& rng) {
  convs_.clear();
  const std::size_t h = config_.hidden;
  convs_.emplace_back(rng, input_dim(ds, InputMode::kThroughputOnly), h, 3, 1);
  convs_.emplace_back(rng, h, h, 3, 2);
  convs_.emplace_back(rng, h, h, 3, 4);
  head_ = std::make_unique<nn::Linear>(rng, h, ds.horizon());
}

nn::Tensor TcnPredictor::forward_batch(std::span<const traces::Window* const> batch,
                                       bool /*training*/) const {
  std::vector<nn::Tensor> seq = make_sequence(batch, InputMode::kThroughputOnly);
  for (const auto& conv : convs_) {
    seq = conv.forward(seq);
    for (auto& x : seq) x = nn::relu(x);
  }
  return head_->forward(seq.back());
}

std::vector<nn::Tensor> TcnPredictor::trainable_parameters() {
  std::vector<nn::Tensor> params;
  for (auto& conv : convs_)
    for (auto& p : conv.parameters()) params.push_back(p);
  for (auto& p : head_->parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<DeepPredictor::InferencePlan> TcnPredictor::compile_plan() const {
  if (convs_.empty() || !head_) return nullptr;
  return std::make_unique<TcnPlan>(convs_, *head_);
}

// ---- Lumos5G (Seq2Seq) -----------------------------------------------------------

void Lumos5gPredictor::build(const traces::Dataset& ds, common::Rng& rng) {
  encoder_ = std::make_unique<nn::Lstm>(
      rng, input_dim(ds, InputMode::kThroughputPlusGlobal), config_.hidden,
      config_.layers);
  decoder_ = std::make_unique<nn::Lstm>(rng, 1, config_.hidden, config_.layers);
  out_ = std::make_unique<nn::Linear>(rng, config_.hidden, 1);
}

nn::Tensor Lumos5gPredictor::forward_batch(std::span<const traces::Window* const> batch,
                                           bool training) const {
  const auto sequence = make_sequence(batch, InputMode::kThroughputPlusGlobal);
  auto states = encoder_->final_states(sequence);

  // Decoder starts from the last observed aggregate throughput.
  nn::Tensor input(batch.size(), 1);
  for (std::size_t b = 0; b < batch.size(); ++b)
    input.set(b, 0, static_cast<float>(batch[b]->agg_history.back()));

  std::vector<nn::Tensor> step_outputs;
  for (std::size_t h = 0; h < horizon_; ++h) {
    const nn::Tensor hidden = decoder_->step_with_states(input, states);
    nn::Tensor y = out_->forward(hidden);
    step_outputs.push_back(y);
    if (training) {
      // Teacher forcing: next decoder input is the ground truth.
      nn::Tensor forced(batch.size(), 1);
      for (std::size_t b = 0; b < batch.size(); ++b)
        forced.set(b, 0, static_cast<float>(batch[b]->target[h]));
      input = forced;
    } else {
      input = y.detach();
    }
  }
  return nn::concat_cols(step_outputs);
}

std::vector<nn::Tensor> Lumos5gPredictor::trainable_parameters() {
  auto params = encoder_->parameters();
  for (auto& p : decoder_->parameters()) params.push_back(p);
  for (auto& p : out_->parameters()) params.push_back(p);
  return params;
}

std::unique_ptr<DeepPredictor::InferencePlan> Lumos5gPredictor::compile_plan() const {
  if (!encoder_ || !decoder_ || !out_) return nullptr;
  return std::make_unique<LumosPlan>(*encoder_, *decoder_, *out_, horizon_);
}

}  // namespace ca5g::predictors
