#include "predictors/predictor.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::predictors {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

TrainConfig train_config_from_env() {
  TrainConfig config;
  config.epochs = env_size("CA5G_EPOCHS", config.epochs);
  config.hidden = env_size("CA5G_HIDDEN", config.hidden);
  config.batch_size = env_size("CA5G_BATCH", config.batch_size);
  if (const char* fast = std::getenv("CA5G_FAST"); fast && fast[0] == '1') {
    // Fast mode trims epochs but keeps the model capacity: an
    // under-sized Prism5G inverts every comparison downstream.
    config.epochs = std::max<std::size_t>(14, config.epochs / 2);
  }
  return config;
}

std::vector<std::vector<double>> Predictor::predict_many(
    std::span<const traces::Window* const> windows) const {
  std::vector<std::vector<double>> out;
  out.reserve(windows.size());
  for (const traces::Window* w : windows) out.push_back(predict(*w));
  return out;
}

namespace {

/// Shared evaluation walk: batched inference over the test set, then
/// prediction/truth pairs truncated to each window's available target.
void collect_predictions(const Predictor& model,
                         std::span<const traces::Window* const> test,
                         std::vector<double>& pred, std::vector<double>& truth) {
  CA5G_METRIC_HISTOGRAM(inference_ns, "predictor.inference_ns");
  CA5G_METRIC_COUNTER(samples, "predictor.samples_total");
  samples.inc(test.size());
  const auto predictions = [&] {
    CA5G_SCOPED_TIMER(inference_ns);
    return model.predict_many(test);
  }();
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto& p = predictions[i];
    const traces::Window* w = test[i];
    const std::size_t n = std::min(p.size(), w->target.size());
    pred.insert(pred.end(), p.begin(), p.begin() + static_cast<std::ptrdiff_t>(n));
    truth.insert(truth.end(), w->target.begin(),
                 w->target.begin() + static_cast<std::ptrdiff_t>(n));
  }
}

}  // namespace

double evaluate_rmse(const Predictor& model,
                     std::span<const traces::Window* const> test) {
  CA5G_CHECK_MSG(!test.empty(), "evaluate_rmse on empty test set");
  std::vector<double> pred, truth;
  collect_predictions(model, test, pred, truth);
  return common::rmse(pred, truth);
}

double evaluate_mae(const Predictor& model,
                    std::span<const traces::Window* const> test) {
  CA5G_CHECK_MSG(!test.empty(), "evaluate_mae on empty test set");
  std::vector<double> pred, truth;
  collect_predictions(model, test, pred, truth);
  return common::mae(pred, truth);
}

}  // namespace ca5g::predictors
