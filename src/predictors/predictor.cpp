#include "predictors/predictor.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"

namespace ca5g::predictors {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace

TrainConfig train_config_from_env() {
  TrainConfig config;
  config.epochs = env_size("CA5G_EPOCHS", config.epochs);
  config.hidden = env_size("CA5G_HIDDEN", config.hidden);
  config.batch_size = env_size("CA5G_BATCH", config.batch_size);
  if (const char* fast = std::getenv("CA5G_FAST"); fast && fast[0] == '1') {
    // Fast mode trims epochs but keeps the model capacity: an
    // under-sized Prism5G inverts every comparison downstream.
    config.epochs = std::max<std::size_t>(14, config.epochs / 2);
  }
  return config;
}

double evaluate_rmse(const Predictor& model,
                     std::span<const traces::Window* const> test) {
  CA5G_CHECK_MSG(!test.empty(), "evaluate_rmse on empty test set");
  CA5G_METRIC_HISTOGRAM(inference_ns, "predictor.inference_ns");
  CA5G_METRIC_COUNTER(samples, "predictor.samples_total");
  std::vector<double> pred, truth;
  for (const traces::Window* w : test) {
    samples.inc();
    const auto p = [&] {
      CA5G_SCOPED_TIMER(inference_ns);
      return model.predict(*w);
    }();
    const std::size_t n = std::min(p.size(), w->target.size());
    pred.insert(pred.end(), p.begin(), p.begin() + static_cast<std::ptrdiff_t>(n));
    truth.insert(truth.end(), w->target.begin(),
                 w->target.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return common::rmse(pred, truth);
}

double evaluate_mae(const Predictor& model,
                    std::span<const traces::Window* const> test) {
  CA5G_CHECK_MSG(!test.empty(), "evaluate_mae on empty test set");
  CA5G_METRIC_HISTOGRAM(inference_ns, "predictor.inference_ns");
  CA5G_METRIC_COUNTER(samples, "predictor.samples_total");
  std::vector<double> pred, truth;
  for (const traces::Window* w : test) {
    samples.inc();
    const auto p = [&] {
      CA5G_SCOPED_TIMER(inference_ns);
      return model.predict(*w);
    }();
    const std::size_t n = std::min(p.size(), w->target.size());
    pred.insert(pred.end(), p.begin(), p.begin() + static_cast<std::ptrdiff_t>(n));
    truth.insert(truth.end(), w->target.begin(),
                 w->target.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return common::mae(pred, truth);
}

}  // namespace ca5g::predictors
