// Statistical baselines:
//  * HarmonicMean — MPC's default bandwidth estimator (paper §7).
//  * ProphetLite — a Stan-free stand-in for Prophet [44]: per-window
//    ridge fit of linear trend + Fourier seasonality, refit at every
//    prediction like the paper's rolling cross-validation protocol.
#pragma once

#include "predictors/predictor.hpp"

namespace ca5g::predictors {

/// Harmonic mean of the history, repeated across the horizon.
class HarmonicMeanPredictor final : public Predictor {
 public:
  [[nodiscard]] std::string name() const override { return "HarmonicMean"; }
  void fit(const traces::Dataset& ds, std::span<const traces::Window* const>,
           std::span<const traces::Window* const>) override {
    horizon_ = ds.horizon();
  }
  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const override;

 private:
  std::size_t horizon_ = 10;
};

/// Trend + Fourier-seasonality regression, refit per window.
class ProphetLitePredictor final : public Predictor {
 public:
  struct Config {
    std::size_t fourier_order = 2;  ///< harmonics of the window period
    double ridge_lambda = 0.5;      ///< L2 regularization strength
  };

  ProphetLitePredictor() = default;
  explicit ProphetLitePredictor(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Prophet"; }
  void fit(const traces::Dataset& ds, std::span<const traces::Window* const>,
           std::span<const traces::Window* const>) override {
    horizon_ = ds.horizon();
  }
  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const override;

 private:
  Config config_{};
  std::size_t horizon_ = 10;
};

/// Solve the ridge-regularized normal equations (AᵀA + λI)x = Aᵀy by
/// Gaussian elimination with partial pivoting. Exposed for testing.
[[nodiscard]] std::vector<double> ridge_solve(const std::vector<std::vector<double>>& a,
                                              const std::vector<double>& y, double lambda);

}  // namespace ca5g::predictors
