// Classical ML baselines on flattened window features (paper §C.1:
// "combine all historical data into a single feature"): CART regression
// trees with variance-reduction splits, bagged into a Random Forest [4]
// and boosted into GBDT [32]. One ensemble is trained per horizon step.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "predictors/predictor.hpp"

namespace ca5g::predictors {

/// A single CART regression tree (axis-aligned variance-reduction splits
/// with per-split random feature subsampling).
class RegressionTree {
 public:
  struct Config {
    std::size_t max_depth = 6;
    std::size_t min_samples_leaf = 8;
    std::size_t feature_subsample = 0;  ///< 0 = sqrt(num features)
  };

  void fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           const Config& config, common::Rng& rng);
  [[nodiscard]] double predict(const std::vector<double>& x) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct TreeNode {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0;
    double value = 0.0;     ///< leaf prediction
    std::int32_t left = -1;
    std::int32_t right = -1;
  };

  std::int32_t build(const std::vector<std::vector<double>>& x,
                     const std::vector<double>& y, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     const Config& config, common::Rng& rng);

  std::vector<TreeNode> nodes_;
};

/// Gradient-boosted regression trees, one chain per horizon step.
class GbdtPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t num_trees = 30;
    double learning_rate = 0.15;
    RegressionTree::Config tree{4, 8, 0};
    std::uint64_t seed = 97;
  };

  GbdtPredictor() = default;
  explicit GbdtPredictor(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "GBDT"; }
  void fit(const traces::Dataset& ds, std::span<const traces::Window* const> train,
           std::span<const traces::Window* const> val) override;
  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const override;

 private:
  Config config_{};
  std::vector<double> base_;                        ///< per-horizon mean
  std::vector<std::vector<RegressionTree>> chains_; ///< [horizon][tree]
};

/// Random forest (bootstrap-aggregated trees), one forest per horizon.
class RandomForestPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t num_trees = 15;
    RegressionTree::Config tree{8, 4, 0};
    std::uint64_t seed = 131;
  };

  RandomForestPredictor() = default;
  explicit RandomForestPredictor(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "RF"; }
  void fit(const traces::Dataset& ds, std::span<const traces::Window* const> train,
           std::span<const traces::Window* const> val) override;
  [[nodiscard]] std::vector<double> predict(const traces::Window& w) const override;

 private:
  Config config_{};
  std::vector<std::vector<RegressionTree>> forests_;  ///< [horizon][tree]
};

/// Flatten a window into the single feature vector the tree models use.
[[nodiscard]] std::vector<double> flatten_window(const traces::Window& w);

}  // namespace ca5g::predictors
