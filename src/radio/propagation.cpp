#include "radio/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::radio {

double distance_m(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double path_loss_db(double freq_mhz, double dist_m, Environment env) {
  CA5G_CHECK_MSG(freq_mhz > 0.0, "frequency must be positive");
  const double d = std::max(dist_m, 10.0);  // clamp inside the near field
  const double fc_ghz = freq_mhz / 1000.0;

  if (fc_ghz >= 24.0) {
    // FR2: UMi-street-canyon-like with heavy blockage-driven exponent.
    return 32.4 + 31.0 * std::log10(d) + 20.0 * std::log10(fc_ghz);
  }

  double exponent = 0.0;   // 10·n, path-loss slope per decade
  double intercept = 0.0;  // dB at 1 m (after frequency term)
  switch (env) {
    case Environment::kUrbanMacro:
      intercept = 13.54;
      exponent = 39.08;  // NLOS UMa
      break;
    case Environment::kSuburbanMacro:
      intercept = 19.2;
      exponent = 34.0;
      break;
    case Environment::kHighway:
      intercept = 21.0;
      exponent = 31.0;  // near-LOS rural macro
      break;
    case Environment::kIndoor:
      // Indoor UE served by an outdoor macro: urban curve; the wall loss
      // is added separately by o2i_penetration_db().
      intercept = 13.54;
      exponent = 39.08;
      break;
  }
  return intercept + exponent * std::log10(d) + 20.0 * std::log10(fc_ghz);
}

double o2i_penetration_db(double freq_mhz) {
  const double fc_ghz = freq_mhz / 1000.0;
  if (fc_ghz >= 24.0) return 60.0;  // mmWave: effectively blocked by walls
  // Low-loss O2I model: grows with frequency, ≈12 dB at 600 MHz and
  // ≈23 dB at 3.7 GHz — low-band keeps indoor coverage (paper Fig. 28).
  return 10.0 + 3.5 * fc_ghz;
}

double noise_power_dbm(double bandwidth_hz, double noise_figure_db) {
  CA5G_CHECK_MSG(bandwidth_hz > 0.0, "bandwidth must be positive");
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace ca5g::radio
