// Per-link stochastic channel state: spatially correlated log-normal
// shadowing (Gudmundson) plus temporally correlated fast fading (AR(1)).
//
// Intra-band component carriers at the same site share most of their
// propagation environment, so their shadowing processes are generated
// with a configurable cross-correlation — this is what produces the
// paper's Fig. 13 contrast (intra-band RSRPs track each other; inter-band
// RSRPs do not).
#pragma once

#include "common/rng.hpp"
#include "radio/propagation.hpp"

namespace ca5g::radio {

/// Parameters of the correlated shadowing/fading processes.
struct ChannelModelParams {
  double shadow_sigma_db = 5.0;       ///< log-normal shadowing std-dev
  double shadow_corr_distance_m = 90; ///< decorrelation distance
  double fading_sigma_db = 3.0;       ///< fast-fading std-dev (post-MRC)
  double fading_corr_time_s = 0.25;   ///< fading coherence time
};

/// Evolving shadowing + fading state for one cell↔UE link.
class LinkChannel {
 public:
  LinkChannel(common::Rng rng, ChannelModelParams params);

  /// Advance the processes after the UE moved `moved_m` metres over
  /// `dt_s` seconds.
  void advance(double moved_m, double dt_s);

  /// Force a correlated restart from another link's shadowing value
  /// (used to correlate intra-band CCs at the same site): the new
  /// shadowing is rho·other + sqrt(1-rho²)·own.
  void correlate_with(const LinkChannel& other, double rho);

  [[nodiscard]] double shadow_db() const noexcept { return shadow_db_; }
  [[nodiscard]] double fading_db() const noexcept { return fading_db_; }
  /// Total stochastic loss contribution (positive = weaker signal).
  [[nodiscard]] double total_db() const noexcept { return shadow_db_ + fading_db_; }

 private:
  common::Rng rng_;
  ChannelModelParams params_;
  double shadow_db_ = 0.0;
  double fading_db_ = 0.0;
};

/// Instantaneous link-quality measurements a UE reports for one carrier.
struct LinkMeasurement {
  double rsrp_dbm = -140.0;  ///< SS-RSRP
  double rsrq_db = -20.0;    ///< SS-RSRQ
  double sinr_db = -10.0;    ///< SS-SINR
};

/// Inputs for a link-budget evaluation of one carrier at one instant.
struct LinkBudgetInputs {
  double tx_power_dbm = 28.0;       ///< per-RE EIRP toward the UE (incl. gains)
  double freq_mhz = 1900.0;
  double dist_m = 100.0;
  Environment env = Environment::kUrbanMacro;
  bool ue_indoor = false;
  double stochastic_loss_db = 0.0;  ///< LinkChannel::total_db()
  int scs_khz = 30;                 ///< subcarrier spacing (per-RE noise floor)
  double interference_load = 0.3;   ///< neighbour-cell activity in [0,1]
  /// Explicit co-channel interference power (dBm, per-RE). When set
  /// (> -300), it replaces the load-based rise-over-thermal model —
  /// the simulator computes it from actual neighbour received powers.
  double explicit_interference_dbm = -1000.0;
};

/// Compute RSRP/RSRQ/SINR from the link budget. Interference is modelled
/// as a load-scaled rise over thermal noise.
[[nodiscard]] LinkMeasurement compute_link(const LinkBudgetInputs& in);

}  // namespace ca5g::radio
