// Radio propagation models (simplified 3GPP TR 38.901): distance- and
// frequency-dependent path loss per environment, outdoor-to-indoor
// penetration (frequency dependent — the reason the paper's OpZ uses
// FDD low-band n71 as indoor PCell, Fig. 28), and thermal noise.
#pragma once

namespace ca5g::radio {

/// Deployment environment for path-loss selection.
enum class Environment { kUrbanMacro, kSuburbanMacro, kHighway, kIndoor };

/// 2D position in metres. Routes and cell sites share this plane.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance_m(const Position& a, const Position& b) noexcept;

/// Path loss in dB for a link of `dist_m` metres at `freq_mhz`.
/// Uses UMa-style log-distance curves with environment-specific exponents;
/// mmWave frequencies incur their steeper FR2 curve.
[[nodiscard]] double path_loss_db(double freq_mhz, double dist_m, Environment env);

/// Outdoor-to-indoor penetration loss in dB. Low-band (<1 GHz) penetrates
/// walls far better than mid-band; mmWave is effectively blocked.
[[nodiscard]] double o2i_penetration_db(double freq_mhz);

/// Thermal noise power over `bandwidth_hz` including a UE noise figure.
[[nodiscard]] double noise_power_dbm(double bandwidth_hz, double noise_figure_db = 7.0);

}  // namespace ca5g::radio
