#include "radio/channel_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::radio {

LinkChannel::LinkChannel(common::Rng rng, ChannelModelParams params)
    : rng_(rng), params_(params) {
  shadow_db_ = rng_.normal(0.0, params_.shadow_sigma_db);
  fading_db_ = rng_.normal(0.0, params_.fading_sigma_db);
}

void LinkChannel::advance(double moved_m, double dt_s) {
  CA5G_CHECK_MSG(moved_m >= 0.0 && dt_s >= 0.0, "negative movement/time");
  // Gudmundson spatial correlation for shadowing.
  const double rho_s = std::exp(-moved_m / params_.shadow_corr_distance_m);
  shadow_db_ = rho_s * shadow_db_ +
               std::sqrt(std::max(0.0, 1.0 - rho_s * rho_s)) *
                   rng_.normal(0.0, params_.shadow_sigma_db);
  // AR(1) temporal correlation for fast fading. Even a stationary UE sees
  // fading churn (scatterer motion), hence time- not distance-driven.
  const double rho_f = std::exp(-dt_s / params_.fading_corr_time_s);
  fading_db_ = rho_f * fading_db_ +
               std::sqrt(std::max(0.0, 1.0 - rho_f * rho_f)) *
                   rng_.normal(0.0, params_.fading_sigma_db);
}

void LinkChannel::correlate_with(const LinkChannel& other, double rho) {
  CA5G_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "correlation out of range: " << rho);
  shadow_db_ = rho * other.shadow_db_ + std::sqrt(1.0 - rho * rho) * shadow_db_;
}

LinkMeasurement compute_link(const LinkBudgetInputs& in) {
  double loss = path_loss_db(in.freq_mhz, in.dist_m, in.env) + in.stochastic_loss_db;
  if (in.ue_indoor) loss += o2i_penetration_db(in.freq_mhz);

  LinkMeasurement m;
  m.rsrp_dbm = in.tx_power_dbm - loss;

  // Per-resource-element noise floor: SS-RSRP and SS-SINR are per-RE
  // quantities, so the comparison uses the subcarrier bandwidth.
  const double noise_dbm = noise_power_dbm(in.scs_khz * 1e3);
  const double signal_dbm = m.rsrp_dbm;
  // Neighbour-cell interference: explicit co-channel power when the
  // caller computed it from actual neighbour links; otherwise a
  // load-scaled rise over thermal (~8 dB at a busy cell edge).
  const double interference_dbm =
      in.explicit_interference_dbm > -300.0
          ? in.explicit_interference_dbm
          : noise_dbm + 10.0 * std::log10(
                            1.0 + 7.0 * std::clamp(in.interference_load, 0.0, 1.0));
  const double denom_mw = std::pow(10.0, noise_dbm / 10.0) +
                          std::pow(10.0, interference_dbm / 10.0);
  m.sinr_db = signal_dbm - 10.0 * std::log10(denom_mw);
  m.sinr_db = std::clamp(m.sinr_db, -15.0, 35.0);

  // RSRQ = N·RSRP/RSSI; map via SINR so quality degrades with load.
  // Perfect channel → ≈ -5 dB; cell edge → ≈ -19 dB.
  m.rsrq_db = std::clamp(-19.5 + 14.0 * (m.sinr_db + 15.0) / 50.0, -19.5, -5.0);
  return m;
}

}  // namespace ca5g::radio
