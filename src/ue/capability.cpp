#include "ue/capability.hpp"

#include <array>

#include "common/check.hpp"

namespace ca5g::ue {
namespace {

// Paper Table 5 (phones/modems) + Fig. 29 (S10: no SA CA; S21: 2CC;
// S22: 3CC). X70-class devices reach 4CC FR1 / 8CC FR2 as observed in
// the paper's Jan-2024 data.
constexpr std::array<UeCapability, kModemCount> kCapabilities{{
    {ModemModel::kX50, "X50", "Galaxy S10", 1, 4, 5, 4, false},
    {ModemModel::kX55, "X55", "Galaxy S20 Ultra", 2, 6, 5, 4, false},
    {ModemModel::kX60, "X60", "Galaxy S21 Ultra", 2, 8, 5, 4, true},
    {ModemModel::kX65, "X65", "Galaxy S22", 3, 8, 5, 4, true},
    {ModemModel::kX70, "X70", "Galaxy S23", 4, 8, 5, 4, true},
}};

}  // namespace

const UeCapability& ue_capability(ModemModel modem) {
  const auto idx = static_cast<std::size_t>(modem);
  CA5G_CHECK_MSG(idx < kCapabilities.size(), "unknown modem model");
  return kCapabilities[idx];
}

ModemModel modem_from_name(std::string_view name) {
  for (const auto& cap : kCapabilities)
    if (cap.modem_name == name) return cap.modem;
  CA5G_CHECK_MSG(false, "unknown modem name: " << name);
  return ModemModel::kX50;  // unreachable
}

}  // namespace ca5g::ue
