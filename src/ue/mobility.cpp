#include "ue/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ca5g::ue {

WalkingMobility::WalkingMobility(common::Rng rng, radio::Position start,
                                 double area_half_extent_m, double speed_mps)
    : rng_(rng), origin_(start), pos_(start), half_extent_(area_half_extent_m),
      speed_(speed_mps) {
  CA5G_CHECK_MSG(area_half_extent_m > 0.0, "walking area must be positive");
  CA5G_CHECK_MSG(speed_mps > 0.0, "walking speed must be positive");
  pick_waypoint();
}

void WalkingMobility::pick_waypoint() {
  waypoint_.x = origin_.x + rng_.uniform(-half_extent_, half_extent_);
  waypoint_.y = origin_.y + rng_.uniform(-half_extent_, half_extent_);
}

radio::Position WalkingMobility::step(double dt_s) {
  double budget = speed_ * dt_s;
  while (budget > 0.0) {
    const double dist = radio::distance_m(pos_, waypoint_);
    if (dist <= budget) {
      pos_ = waypoint_;
      budget -= dist;
      pick_waypoint();
      if (radio::distance_m(pos_, waypoint_) < 1e-6) break;  // degenerate waypoint
    } else {
      const double frac = budget / dist;
      pos_.x += (waypoint_.x - pos_.x) * frac;
      pos_.y += (waypoint_.y - pos_.y) * frac;
      budget = 0.0;
    }
  }
  return pos_;
}

DrivingMobility::DrivingMobility(common::Rng rng, std::vector<radio::Position> route,
                                 double speed_mps, double stop_probability_per_min,
                                 double stop_duration_s)
    : rng_(rng), route_(std::move(route)), speed_(speed_mps),
      stop_probability_per_min_(stop_probability_per_min), stop_duration_s_(stop_duration_s) {
  CA5G_CHECK_MSG(route_.size() >= 2, "driving route needs at least two waypoints");
  CA5G_CHECK_MSG(speed_mps > 0.0, "driving speed must be positive");
  pos_ = route_.front();
}

radio::Position DrivingMobility::step(double dt_s) {
  if (stop_remaining_s_ > 0.0) {
    stop_remaining_s_ -= dt_s;
    return pos_;
  }
  // Poisson-like stop events (urban traffic lights).
  if (stop_probability_per_min_ > 0.0 &&
      rng_.bernoulli(stop_probability_per_min_ * dt_s / 60.0)) {
    stop_remaining_s_ = stop_duration_s_ * rng_.uniform(0.5, 1.5);
    return pos_;
  }

  // ±15% speed jitter around the nominal speed.
  double budget = speed_ * rng_.uniform(0.85, 1.15) * dt_s;
  while (budget > 0.0 && segment_ + 1 < route_.size()) {
    const radio::Position& a = route_[segment_];
    const radio::Position& b = route_[segment_ + 1];
    const double seg_len = radio::distance_m(a, b);
    const double remaining = seg_len - segment_progress_;
    if (remaining <= budget) {
      budget -= remaining;
      ++segment_;
      segment_progress_ = 0.0;
      pos_ = b;
    } else {
      segment_progress_ += budget;
      const double frac = segment_progress_ / seg_len;
      pos_.x = a.x + (b.x - a.x) * frac;
      pos_.y = a.y + (b.y - a.y) * frac;
      budget = 0.0;
    }
  }
  // Loop the route so long simulations keep moving.
  if (segment_ + 1 >= route_.size()) {
    segment_ = 0;
    segment_progress_ = 0.0;
  }
  return pos_;
}

std::vector<radio::Position> straight_route(radio::Position a, radio::Position b,
                                            std::size_t n) {
  CA5G_CHECK_MSG(n >= 2, "route needs at least two points");
  std::vector<radio::Position> route;
  route.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    route.push_back({a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t});
  }
  return route;
}

}  // namespace ca5g::ue
