// UE mobility models for the paper's three measurement modes:
// stationary (hot-spot line-of-sight), walking (indoor/outdoor,
// ~1.4 m/s random waypoints), and driving (waypoint routes at urban /
// suburban / beltway speeds with stop-and-go).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "radio/propagation.hpp"

namespace ca5g::ue {

/// Polymorphic mobility model advanced in fixed time steps.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advance by dt seconds; returns the new position.
  virtual radio::Position step(double dt_s) = 0;

  [[nodiscard]] virtual radio::Position position() const = 0;

  /// Mean speed in m/s (0 for stationary) — used for reporting.
  [[nodiscard]] virtual double nominal_speed() const = 0;
};

/// UE pinned at a fixed location (ideal-condition measurements).
class StationaryMobility final : public MobilityModel {
 public:
  explicit StationaryMobility(radio::Position pos) : pos_(pos) {}
  radio::Position step(double /*dt_s*/) override { return pos_; }
  [[nodiscard]] radio::Position position() const override { return pos_; }
  [[nodiscard]] double nominal_speed() const override { return 0.0; }

 private:
  radio::Position pos_;
};

/// Random-waypoint walking inside a rectangular area.
class WalkingMobility final : public MobilityModel {
 public:
  WalkingMobility(common::Rng rng, radio::Position start, double area_half_extent_m,
                  double speed_mps = 1.4);
  radio::Position step(double dt_s) override;
  [[nodiscard]] radio::Position position() const override { return pos_; }
  [[nodiscard]] double nominal_speed() const override { return speed_; }

 private:
  void pick_waypoint();

  common::Rng rng_;
  radio::Position origin_;
  radio::Position pos_;
  radio::Position waypoint_;
  double half_extent_;
  double speed_;
};

/// Driving along a fixed route of waypoints, with speed noise and
/// occasional stops (traffic lights) in urban settings.
class DrivingMobility final : public MobilityModel {
 public:
  DrivingMobility(common::Rng rng, std::vector<radio::Position> route, double speed_mps,
                  double stop_probability_per_min = 0.0, double stop_duration_s = 15.0);
  radio::Position step(double dt_s) override;
  [[nodiscard]] radio::Position position() const override { return pos_; }
  [[nodiscard]] double nominal_speed() const override { return speed_; }

 private:
  common::Rng rng_;
  std::vector<radio::Position> route_;
  std::size_t segment_ = 0;      ///< index of the segment start waypoint
  double segment_progress_ = 0;  ///< metres into the current segment
  radio::Position pos_;
  double speed_;
  double stop_probability_per_min_;
  double stop_duration_s_;
  double stop_remaining_s_ = 0.0;
};

/// Straight-line route of `n` points from a to b (route helper).
[[nodiscard]] std::vector<radio::Position> straight_route(radio::Position a,
                                                          radio::Position b, std::size_t n);

}  // namespace ca5g::ue
