// UE capability modelling (paper Table 5 and Fig. 29): the modem
// generation bounds how many component carriers can be aggregated and
// whether mmWave / SA CA are usable at all.
#pragma once

#include <cstdint>
#include <string_view>

namespace ca5g::ue {

/// Qualcomm Snapdragon modem generations used in the paper's phones.
enum class ModemModel : std::uint8_t { kX50, kX55, kX60, kX65, kX70 };

inline constexpr std::size_t kModemCount = 5;

/// CA-relevant capabilities of one modem generation.
struct UeCapability {
  ModemModel modem;
  std::string_view modem_name;   ///< "X55"
  std::string_view phone_model;  ///< representative handset
  int max_nr_fr1_ccs;            ///< max NR CCs in low/mid band (SA CA)
  int max_nr_fr2_ccs;            ///< max NR CCs in mmWave
  int max_lte_ccs;               ///< max LTE CCs
  int max_mimo_layers;           ///< DL spatial layers supported
  bool supports_sa_ca;           ///< standalone-5G carrier aggregation
};

/// Capability lookup for a modem generation.
[[nodiscard]] const UeCapability& ue_capability(ModemModel modem);

/// Modem by name ("X50".."X70"); throws CheckError for unknown names.
[[nodiscard]] ModemModel modem_from_name(std::string_view name);

}  // namespace ca5g::ue
