file(REMOVE_RECURSE
  "CMakeFiles/ca5g.dir/ca5g_cli.cpp.o"
  "CMakeFiles/ca5g.dir/ca5g_cli.cpp.o.d"
  "ca5g"
  "ca5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
