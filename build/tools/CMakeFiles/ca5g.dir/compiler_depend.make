# Empty compiler generated dependencies file for ca5g.
# This may be replaced when dependencies are built.
