file(REMOVE_RECURSE
  "CMakeFiles/abr_streaming.dir/abr_streaming.cpp.o"
  "CMakeFiles/abr_streaming.dir/abr_streaming.cpp.o.d"
  "abr_streaming"
  "abr_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
