file(REMOVE_RECURSE
  "CMakeFiles/drive_study.dir/drive_study.cpp.o"
  "CMakeFiles/drive_study.dir/drive_study.cpp.o.d"
  "drive_study"
  "drive_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
