# Empty compiler generated dependencies file for drive_study.
# This may be replaced when dependencies are built.
