file(REMOVE_RECURSE
  "CMakeFiles/vivo_streaming.dir/vivo_streaming.cpp.o"
  "CMakeFiles/vivo_streaming.dir/vivo_streaming.cpp.o.d"
  "vivo_streaming"
  "vivo_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vivo_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
