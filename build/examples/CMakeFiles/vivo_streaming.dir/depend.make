# Empty dependencies file for vivo_streaming.
# This may be replaced when dependencies are built.
