# Empty dependencies file for ca5g_phy.
# This may be replaced when dependencies are built.
