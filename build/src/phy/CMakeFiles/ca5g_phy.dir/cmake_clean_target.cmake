file(REMOVE_RECURSE
  "libca5g_phy.a"
)
