
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/band.cpp" "src/phy/CMakeFiles/ca5g_phy.dir/band.cpp.o" "gcc" "src/phy/CMakeFiles/ca5g_phy.dir/band.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/ca5g_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/ca5g_phy.dir/mcs.cpp.o.d"
  "/root/repo/src/phy/numerology.cpp" "src/phy/CMakeFiles/ca5g_phy.dir/numerology.cpp.o" "gcc" "src/phy/CMakeFiles/ca5g_phy.dir/numerology.cpp.o.d"
  "/root/repo/src/phy/tbs.cpp" "src/phy/CMakeFiles/ca5g_phy.dir/tbs.cpp.o" "gcc" "src/phy/CMakeFiles/ca5g_phy.dir/tbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
