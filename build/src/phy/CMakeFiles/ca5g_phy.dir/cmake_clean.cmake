file(REMOVE_RECURSE
  "CMakeFiles/ca5g_phy.dir/band.cpp.o"
  "CMakeFiles/ca5g_phy.dir/band.cpp.o.d"
  "CMakeFiles/ca5g_phy.dir/mcs.cpp.o"
  "CMakeFiles/ca5g_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/ca5g_phy.dir/numerology.cpp.o"
  "CMakeFiles/ca5g_phy.dir/numerology.cpp.o.d"
  "CMakeFiles/ca5g_phy.dir/tbs.cpp.o"
  "CMakeFiles/ca5g_phy.dir/tbs.cpp.o.d"
  "libca5g_phy.a"
  "libca5g_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
