# Empty compiler generated dependencies file for ca5g_traces.
# This may be replaced when dependencies are built.
