file(REMOVE_RECURSE
  "CMakeFiles/ca5g_traces.dir/dataset.cpp.o"
  "CMakeFiles/ca5g_traces.dir/dataset.cpp.o.d"
  "libca5g_traces.a"
  "libca5g_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
