file(REMOVE_RECURSE
  "libca5g_traces.a"
)
