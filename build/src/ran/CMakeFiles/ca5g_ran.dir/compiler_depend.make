# Empty compiler generated dependencies file for ca5g_ran.
# This may be replaced when dependencies are built.
