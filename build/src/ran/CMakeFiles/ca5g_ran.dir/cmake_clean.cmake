file(REMOVE_RECURSE
  "CMakeFiles/ca5g_ran.dir/ca_manager.cpp.o"
  "CMakeFiles/ca5g_ran.dir/ca_manager.cpp.o.d"
  "CMakeFiles/ca5g_ran.dir/deployment.cpp.o"
  "CMakeFiles/ca5g_ran.dir/deployment.cpp.o.d"
  "CMakeFiles/ca5g_ran.dir/scheduler.cpp.o"
  "CMakeFiles/ca5g_ran.dir/scheduler.cpp.o.d"
  "libca5g_ran.a"
  "libca5g_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
