
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/ca_manager.cpp" "src/ran/CMakeFiles/ca5g_ran.dir/ca_manager.cpp.o" "gcc" "src/ran/CMakeFiles/ca5g_ran.dir/ca_manager.cpp.o.d"
  "/root/repo/src/ran/deployment.cpp" "src/ran/CMakeFiles/ca5g_ran.dir/deployment.cpp.o" "gcc" "src/ran/CMakeFiles/ca5g_ran.dir/deployment.cpp.o.d"
  "/root/repo/src/ran/scheduler.cpp" "src/ran/CMakeFiles/ca5g_ran.dir/scheduler.cpp.o" "gcc" "src/ran/CMakeFiles/ca5g_ran.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca5g_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ca5g_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/ca5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/ca5g_ue.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
