file(REMOVE_RECURSE
  "libca5g_ran.a"
)
