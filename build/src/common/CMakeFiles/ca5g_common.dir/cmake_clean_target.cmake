file(REMOVE_RECURSE
  "libca5g_common.a"
)
