# Empty compiler generated dependencies file for ca5g_common.
# This may be replaced when dependencies are built.
