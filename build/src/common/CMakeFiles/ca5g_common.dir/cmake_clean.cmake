file(REMOVE_RECURSE
  "CMakeFiles/ca5g_common.dir/csv.cpp.o"
  "CMakeFiles/ca5g_common.dir/csv.cpp.o.d"
  "CMakeFiles/ca5g_common.dir/rng.cpp.o"
  "CMakeFiles/ca5g_common.dir/rng.cpp.o.d"
  "CMakeFiles/ca5g_common.dir/stats.cpp.o"
  "CMakeFiles/ca5g_common.dir/stats.cpp.o.d"
  "CMakeFiles/ca5g_common.dir/table.cpp.o"
  "CMakeFiles/ca5g_common.dir/table.cpp.o.d"
  "libca5g_common.a"
  "libca5g_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
