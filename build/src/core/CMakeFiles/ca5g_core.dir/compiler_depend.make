# Empty compiler generated dependencies file for ca5g_core.
# This may be replaced when dependencies are built.
