file(REMOVE_RECURSE
  "CMakeFiles/ca5g_core.dir/prism5g.cpp.o"
  "CMakeFiles/ca5g_core.dir/prism5g.cpp.o.d"
  "libca5g_core.a"
  "libca5g_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
