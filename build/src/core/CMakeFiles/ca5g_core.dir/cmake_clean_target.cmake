file(REMOVE_RECURSE
  "libca5g_core.a"
)
