# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("phy")
subdirs("radio")
subdirs("ran")
subdirs("ue")
subdirs("sim")
subdirs("traces")
subdirs("nn")
subdirs("predictors")
subdirs("core")
subdirs("apps")
subdirs("eval")
