file(REMOVE_RECURSE
  "libca5g_ue.a"
)
