file(REMOVE_RECURSE
  "CMakeFiles/ca5g_ue.dir/capability.cpp.o"
  "CMakeFiles/ca5g_ue.dir/capability.cpp.o.d"
  "CMakeFiles/ca5g_ue.dir/mobility.cpp.o"
  "CMakeFiles/ca5g_ue.dir/mobility.cpp.o.d"
  "libca5g_ue.a"
  "libca5g_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
