# Empty compiler generated dependencies file for ca5g_ue.
# This may be replaced when dependencies are built.
