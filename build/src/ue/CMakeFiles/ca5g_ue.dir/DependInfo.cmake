
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ue/capability.cpp" "src/ue/CMakeFiles/ca5g_ue.dir/capability.cpp.o" "gcc" "src/ue/CMakeFiles/ca5g_ue.dir/capability.cpp.o.d"
  "/root/repo/src/ue/mobility.cpp" "src/ue/CMakeFiles/ca5g_ue.dir/mobility.cpp.o" "gcc" "src/ue/CMakeFiles/ca5g_ue.dir/mobility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ca5g_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/ca5g_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
