file(REMOVE_RECURSE
  "libca5g_eval.a"
)
