# Empty dependencies file for ca5g_eval.
# This may be replaced when dependencies are built.
