file(REMOVE_RECURSE
  "CMakeFiles/ca5g_eval.dir/importance.cpp.o"
  "CMakeFiles/ca5g_eval.dir/importance.cpp.o.d"
  "CMakeFiles/ca5g_eval.dir/pipeline.cpp.o"
  "CMakeFiles/ca5g_eval.dir/pipeline.cpp.o.d"
  "libca5g_eval.a"
  "libca5g_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
