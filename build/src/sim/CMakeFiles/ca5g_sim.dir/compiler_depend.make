# Empty compiler generated dependencies file for ca5g_sim.
# This may be replaced when dependencies are built.
