file(REMOVE_RECURSE
  "CMakeFiles/ca5g_sim.dir/engine.cpp.o"
  "CMakeFiles/ca5g_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ca5g_sim.dir/trace.cpp.o"
  "CMakeFiles/ca5g_sim.dir/trace.cpp.o.d"
  "CMakeFiles/ca5g_sim.dir/trace_io.cpp.o"
  "CMakeFiles/ca5g_sim.dir/trace_io.cpp.o.d"
  "libca5g_sim.a"
  "libca5g_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
