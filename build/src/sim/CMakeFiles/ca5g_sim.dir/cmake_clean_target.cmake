file(REMOVE_RECURSE
  "libca5g_sim.a"
)
