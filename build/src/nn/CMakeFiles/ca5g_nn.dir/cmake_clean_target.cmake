file(REMOVE_RECURSE
  "libca5g_nn.a"
)
