file(REMOVE_RECURSE
  "CMakeFiles/ca5g_nn.dir/attention.cpp.o"
  "CMakeFiles/ca5g_nn.dir/attention.cpp.o.d"
  "CMakeFiles/ca5g_nn.dir/layers.cpp.o"
  "CMakeFiles/ca5g_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ca5g_nn.dir/optim.cpp.o"
  "CMakeFiles/ca5g_nn.dir/optim.cpp.o.d"
  "CMakeFiles/ca5g_nn.dir/serialize.cpp.o"
  "CMakeFiles/ca5g_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/ca5g_nn.dir/tensor.cpp.o"
  "CMakeFiles/ca5g_nn.dir/tensor.cpp.o.d"
  "libca5g_nn.a"
  "libca5g_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
