# Empty dependencies file for ca5g_nn.
# This may be replaced when dependencies are built.
