# Empty dependencies file for ca5g_radio.
# This may be replaced when dependencies are built.
