file(REMOVE_RECURSE
  "CMakeFiles/ca5g_radio.dir/channel_model.cpp.o"
  "CMakeFiles/ca5g_radio.dir/channel_model.cpp.o.d"
  "CMakeFiles/ca5g_radio.dir/propagation.cpp.o"
  "CMakeFiles/ca5g_radio.dir/propagation.cpp.o.d"
  "libca5g_radio.a"
  "libca5g_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
