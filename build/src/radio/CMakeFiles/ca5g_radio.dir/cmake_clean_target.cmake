file(REMOVE_RECURSE
  "libca5g_radio.a"
)
