file(REMOVE_RECURSE
  "CMakeFiles/ca5g_predictors.dir/deep.cpp.o"
  "CMakeFiles/ca5g_predictors.dir/deep.cpp.o.d"
  "CMakeFiles/ca5g_predictors.dir/naive.cpp.o"
  "CMakeFiles/ca5g_predictors.dir/naive.cpp.o.d"
  "CMakeFiles/ca5g_predictors.dir/predictor.cpp.o"
  "CMakeFiles/ca5g_predictors.dir/predictor.cpp.o.d"
  "CMakeFiles/ca5g_predictors.dir/trees.cpp.o"
  "CMakeFiles/ca5g_predictors.dir/trees.cpp.o.d"
  "libca5g_predictors.a"
  "libca5g_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
