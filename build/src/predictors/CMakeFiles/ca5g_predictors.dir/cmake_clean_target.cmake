file(REMOVE_RECURSE
  "libca5g_predictors.a"
)
