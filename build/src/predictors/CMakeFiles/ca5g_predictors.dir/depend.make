# Empty dependencies file for ca5g_predictors.
# This may be replaced when dependencies are built.
