# Empty dependencies file for ca5g_apps.
# This may be replaced when dependencies are built.
