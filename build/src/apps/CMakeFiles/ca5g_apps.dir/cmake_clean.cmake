file(REMOVE_RECURSE
  "CMakeFiles/ca5g_apps.dir/abr.cpp.o"
  "CMakeFiles/ca5g_apps.dir/abr.cpp.o.d"
  "CMakeFiles/ca5g_apps.dir/estimator.cpp.o"
  "CMakeFiles/ca5g_apps.dir/estimator.cpp.o.d"
  "CMakeFiles/ca5g_apps.dir/vivo.cpp.o"
  "CMakeFiles/ca5g_apps.dir/vivo.cpp.o.d"
  "libca5g_apps.a"
  "libca5g_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca5g_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
