file(REMOVE_RECURSE
  "libca5g_apps.a"
)
