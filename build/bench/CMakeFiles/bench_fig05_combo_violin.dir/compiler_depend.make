# Empty compiler generated dependencies file for bench_fig05_combo_violin.
# This may be replaced when dependencies are built.
