# Empty dependencies file for bench_fig14_mimo_drop.
# This may be replaced when dependencies are built.
