file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_speceff.dir/bench_fig10_speceff.cpp.o"
  "CMakeFiles/bench_fig10_speceff.dir/bench_fig10_speceff.cpp.o.d"
  "bench_fig10_speceff"
  "bench_fig10_speceff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_speceff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
