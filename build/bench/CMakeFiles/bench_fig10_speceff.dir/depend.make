# Empty dependencies file for bench_fig10_speceff.
# This may be replaced when dependencies are built.
