# Empty compiler generated dependencies file for bench_table02_combos.
# This may be replaced when dependencies are built.
