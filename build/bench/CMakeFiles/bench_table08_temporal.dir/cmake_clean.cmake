file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_temporal.dir/bench_table08_temporal.cpp.o"
  "CMakeFiles/bench_table08_temporal.dir/bench_table08_temporal.cpp.o.d"
  "bench_table08_temporal"
  "bench_table08_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
