# Empty dependencies file for bench_table08_temporal.
# This may be replaced when dependencies are built.
