file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_multimodal.dir/bench_fig02_multimodal.cpp.o"
  "CMakeFiles/bench_fig02_multimodal.dir/bench_fig02_multimodal.cpp.o.d"
  "bench_fig02_multimodal"
  "bench_fig02_multimodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_multimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
