# Empty dependencies file for bench_fig20_abr.
# This may be replaced when dependencies are built.
