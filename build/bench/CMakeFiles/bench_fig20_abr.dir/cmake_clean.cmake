file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_abr.dir/bench_fig20_abr.cpp.o"
  "CMakeFiles/bench_fig20_abr.dir/bench_fig20_abr.cpp.o.d"
  "bench_fig20_abr"
  "bench_fig20_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
