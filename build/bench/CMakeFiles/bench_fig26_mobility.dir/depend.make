# Empty dependencies file for bench_fig26_mobility.
# This may be replaced when dependencies are built.
