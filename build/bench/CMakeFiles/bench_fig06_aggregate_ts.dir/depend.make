# Empty dependencies file for bench_fig06_aggregate_ts.
# This may be replaced when dependencies are built.
