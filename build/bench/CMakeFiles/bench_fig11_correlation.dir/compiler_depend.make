# Empty compiler generated dependencies file for bench_fig11_correlation.
# This may be replaced when dependencies are built.
