# Empty dependencies file for bench_table01_dataset.
# This may be replaced when dependencies are built.
