# Empty dependencies file for bench_fig01_ideal_ca.
# This may be replaced when dependencies are built.
