file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_ideal_ca.dir/bench_fig01_ideal_ca.cpp.o"
  "CMakeFiles/bench_fig01_ideal_ca.dir/bench_fig01_ideal_ca.cpp.o.d"
  "bench_fig01_ideal_ca"
  "bench_fig01_ideal_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_ideal_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
