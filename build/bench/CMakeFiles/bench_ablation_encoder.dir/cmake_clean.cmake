file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_encoder.dir/bench_ablation_encoder.cpp.o"
  "CMakeFiles/bench_ablation_encoder.dir/bench_ablation_encoder.cpp.o.d"
  "bench_ablation_encoder"
  "bench_ablation_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
