# Empty dependencies file for bench_fig07_cc_dynamics.
# This may be replaced when dependencies are built.
