file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_vivo_qoe.dir/bench_fig08_vivo_qoe.cpp.o"
  "CMakeFiles/bench_fig08_vivo_qoe.dir/bench_fig08_vivo_qoe.cpp.o.d"
  "bench_fig08_vivo_qoe"
  "bench_fig08_vivo_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_vivo_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
