# Empty compiler generated dependencies file for bench_fig08_vivo_qoe.
# This may be replaced when dependencies are built.
