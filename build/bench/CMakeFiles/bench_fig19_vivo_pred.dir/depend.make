# Empty dependencies file for bench_fig19_vivo_pred.
# This may be replaced when dependencies are built.
