file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_vivo_pred.dir/bench_fig19_vivo_pred.cpp.o"
  "CMakeFiles/bench_fig19_vivo_pred.dir/bench_fig19_vivo_pred.cpp.o.d"
  "bench_fig19_vivo_pred"
  "bench_fig19_vivo_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_vivo_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
