file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_deployment.dir/bench_fig04_deployment.cpp.o"
  "CMakeFiles/bench_fig04_deployment.dir/bench_fig04_deployment.cpp.o.d"
  "bench_fig04_deployment"
  "bench_fig04_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
