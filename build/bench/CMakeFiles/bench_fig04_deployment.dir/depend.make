# Empty dependencies file for bench_fig04_deployment.
# This may be replaced when dependencies are built.
