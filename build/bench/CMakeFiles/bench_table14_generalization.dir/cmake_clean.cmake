file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_generalization.dir/bench_table14_generalization.cpp.o"
  "CMakeFiles/bench_table14_generalization.dir/bench_table14_generalization.cpp.o.d"
  "bench_table14_generalization"
  "bench_table14_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
