# Empty compiler generated dependencies file for bench_table14_generalization.
# This may be replaced when dependencies are built.
