# Empty dependencies file for bench_fig17_transitions.
# This may be replaced when dependencies are built.
