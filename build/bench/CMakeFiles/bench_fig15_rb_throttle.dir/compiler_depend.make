# Empty compiler generated dependencies file for bench_fig15_rb_throttle.
# This may be replaced when dependencies are built.
