file(REMOVE_RECURSE
  "CMakeFiles/test_phy_throughput.dir/test_phy_throughput.cpp.o"
  "CMakeFiles/test_phy_throughput.dir/test_phy_throughput.cpp.o.d"
  "test_phy_throughput"
  "test_phy_throughput.pdb"
  "test_phy_throughput[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
