# Empty dependencies file for test_phy_throughput.
# This may be replaced when dependencies are built.
