file(REMOVE_RECURSE
  "CMakeFiles/test_channel_model.dir/test_channel_model.cpp.o"
  "CMakeFiles/test_channel_model.dir/test_channel_model.cpp.o.d"
  "test_channel_model"
  "test_channel_model.pdb"
  "test_channel_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
