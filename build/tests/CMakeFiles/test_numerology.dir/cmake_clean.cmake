file(REMOVE_RECURSE
  "CMakeFiles/test_numerology.dir/test_numerology.cpp.o"
  "CMakeFiles/test_numerology.dir/test_numerology.cpp.o.d"
  "test_numerology"
  "test_numerology.pdb"
  "test_numerology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
