
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_numerology.cpp" "tests/CMakeFiles/test_numerology.dir/test_numerology.cpp.o" "gcc" "tests/CMakeFiles/test_numerology.dir/test_numerology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ca5g_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ca5g_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ca5g_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/ca5g_predictors.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/ca5g_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ca5g_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/ca5g_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/ue/CMakeFiles/ca5g_ue.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/ca5g_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ca5g_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ca5g_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ca5g_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
