# Empty compiler generated dependencies file for test_numerology.
# This may be replaced when dependencies are built.
