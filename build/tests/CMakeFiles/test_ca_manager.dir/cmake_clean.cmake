file(REMOVE_RECURSE
  "CMakeFiles/test_ca_manager.dir/test_ca_manager.cpp.o"
  "CMakeFiles/test_ca_manager.dir/test_ca_manager.cpp.o.d"
  "test_ca_manager"
  "test_ca_manager.pdb"
  "test_ca_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ca_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
