# Empty dependencies file for test_ca_manager.
# This may be replaced when dependencies are built.
