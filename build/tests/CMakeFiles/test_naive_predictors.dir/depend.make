# Empty dependencies file for test_naive_predictors.
# This may be replaced when dependencies are built.
