file(REMOVE_RECURSE
  "CMakeFiles/test_naive_predictors.dir/test_naive_predictors.cpp.o"
  "CMakeFiles/test_naive_predictors.dir/test_naive_predictors.cpp.o.d"
  "test_naive_predictors"
  "test_naive_predictors.pdb"
  "test_naive_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naive_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
