file(REMOVE_RECURSE
  "CMakeFiles/test_prism5g.dir/test_prism5g.cpp.o"
  "CMakeFiles/test_prism5g.dir/test_prism5g.cpp.o.d"
  "test_prism5g"
  "test_prism5g.pdb"
  "test_prism5g[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prism5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
