# Empty compiler generated dependencies file for test_prism5g.
# This may be replaced when dependencies are built.
