file(REMOVE_RECURSE
  "CMakeFiles/test_deep_predictors.dir/test_deep_predictors.cpp.o"
  "CMakeFiles/test_deep_predictors.dir/test_deep_predictors.cpp.o.d"
  "test_deep_predictors"
  "test_deep_predictors.pdb"
  "test_deep_predictors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
