# Empty compiler generated dependencies file for test_deep_predictors.
# This may be replaced when dependencies are built.
