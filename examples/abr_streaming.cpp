// 16K video-on-demand streaming with MPC ABR (paper §7): train Prism5G
// at the 1 s scale and compare MPC's default harmonic-mean forecaster
// against the CA-aware predictor over a long streaming session.
#include <iostream>
#include <memory>

#include "apps/abr.hpp"
#include "common/table.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;

  std::cout << "Building the training campaign (OpZ driving, 1 s scale)...\n";
  eval::GenerationConfig gen;
  gen.traces = 4;
  gen.long_trace_duration_s = 200.0;
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kLong, gen);
  common::Rng rng(2);
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::cout << "Training Prism5G on " << split.train.size() << " windows...\n";
  predictors::TrainConfig tc = predictors::train_config_from_env();
  tc.epochs = std::min<std::size_t>(tc.epochs, 15);
  auto prism = std::make_shared<core::Prism5G>(tc);
  prism->fit(ds, split.train, split.val);

  // A fresh 1 s-scale channel trace for the streaming session.
  auto session_gen = gen;
  session_gen.seed = gen.seed + 808;
  session_gen.traces = 1;
  const auto trace =
      eval::generate_traces(id, eval::TimeScale::kLong, session_gen).front();

  apps::AbrConfig config;  // the paper's 16K ladder up to 585 Mbps
  config.total_chunks = 60;

  traces::DatasetSpec spec;
  apps::HarmonicMeanEstimator harmonic(5);
  apps::ModelEstimator model(prism, spec, ds.cc_slots(), ds.tput_scale_mbps());
  apps::IdealEstimator ideal;

  common::TextTable table("MPC streaming a 2-minute 16K video");
  table.set_header({"Forecaster", "AvgBitrate(Mbps)", "Stall(s)", "Switches"});
  auto add = [&](const char* name, const apps::ThroughputEstimator& est) {
    const auto r = apps::run_mpc_abr(trace, est, config);
    table.add_row({name, common::TextTable::num(r.avg_bitrate_mbps, 1),
                   common::TextTable::num(r.stall_time_s, 1),
                   std::to_string(r.quality_switches)});
  };
  add("Harmonic mean (MPC default)", harmonic);
  add("Prism5G", model);
  add("Ideal (oracle)", ideal);
  std::cout << table;

  std::cout << "\nBitrate ladder: 360p=1.5, 480p=2.5, 2K=40.7, 4K=152.7, 8K=280,\n"
            << "16K=585 Mbps (paper §7). Prism5G's CA-aware forecasts avoid the\n"
            << "stalls harmonic mean incurs when component carriers drop.\n";
  return 0;
}
