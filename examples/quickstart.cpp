// Quickstart: simulate a 5G CA drive test, inspect the trace, train
// Prism5G and an LSTM baseline, and compare their prediction error.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "common/stats.hpp"
#include "core/prism5g.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;

  // --- 1. Simulate a measurement campaign: OpZ urban driving ------------
  std::cout << "Simulating OpZ urban driving traces...\n";
  eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  auto gen = eval::GenerationConfig::from_env();
  gen.traces = 3;
  gen.short_trace_duration_s = 30.0;
  const auto traces_vec = eval::generate_traces(id, eval::TimeScale::kShort, gen);

  const auto& trace = traces_vec.front();
  const auto agg = trace.aggregate_series();
  const auto ccs = trace.cc_count_series();
  std::size_t events = 0;
  for (const auto& s : trace.samples) events += s.events.size();
  std::cout << "  trace: " << trace.samples.size() << " samples @ " << trace.step_s
            << " s\n"
            << "  throughput mean " << common::mean(agg) << " Mbps, max "
            << common::max_value(agg) << " Mbps\n"
            << "  CC count mean " << common::mean(ccs) << ", max "
            << common::max_value(ccs) << ", RRC events " << events << "\n";

  // --- 2. Window into an ML dataset --------------------------------------
  traces::DatasetSpec spec;
  spec.stride = 10;
  const auto ds = traces::Dataset::from_traces(traces_vec, spec);
  common::Rng rng(7);
  const auto split = ds.random_split(0.5, 0.2, rng);
  std::cout << "  dataset: " << ds.windows().size() << " windows (train "
            << split.train.size() << ", test " << split.test.size() << "), scale "
            << ds.tput_scale_mbps() << " Mbps\n";

  // --- 3. Train Prism5G and baselines ------------------------------------
  predictors::TrainConfig config = predictors::train_config_from_env();
  config.epochs = std::min<std::size_t>(config.epochs, 10);

  core::Prism5G prism(config);
  const double prism_rmse = eval::train_and_evaluate(prism, ds, split);

  predictors::LstmPredictor lstm(config);
  const double lstm_rmse = eval::train_and_evaluate(lstm, ds, split);

  predictors::ProphetLitePredictor prophet;
  const double prophet_rmse = eval::train_and_evaluate(prophet, ds, split);

  std::cout << "\nTest RMSE (normalized):\n"
            << "  Prophet  " << prophet_rmse << "\n"
            << "  LSTM     " << lstm_rmse << "\n"
            << "  Prism5G  " << prism_rmse << "\n";

  // --- 4. Per-CC predictions from Prism5G --------------------------------
  const auto& w = *split.test.front();
  const auto per_cc = prism.predict_per_cc(w);
  std::cout << "\nPer-CC first-step predictions (Mbps):";
  for (std::size_t c = 0; c < per_cc.size(); ++c)
    std::cout << " cc" << c << "=" << per_cc[c].front() * ds.tput_scale_mbps();
  std::cout << "\n";
  return 0;
}
