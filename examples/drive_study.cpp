// Drive study: run a measurement campaign like the paper's §3 — drive a
// route through an operator's deployment, record the XCAL-style trace,
// census the CA combinations observed, and export the trace to CSV.
//
// Usage: drive_study [OpX|OpY|OpZ] [urban|suburban|beltway] [out.csv]
#include <iostream>
#include <map>
#include <set>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace ca5g;

  ran::OperatorId op = ran::OperatorId::kOpZ;
  radio::Environment env = radio::Environment::kUrbanMacro;
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "OpX") op = ran::OperatorId::kOpX;
    if (name == "OpY") op = ran::OperatorId::kOpY;
  }
  if (argc > 2) {
    const std::string name = argv[2];
    if (name == "suburban") env = radio::Environment::kSuburbanMacro;
    if (name == "beltway") env = radio::Environment::kHighway;
  }

  std::cout << "Driving a 2-minute route through " << ran::operator_name(op)
            << "'s deployment...\n";
  sim::ScenarioConfig config;
  config.op = op;
  config.env = env;
  config.mobility = sim::Mobility::kDriving;
  config.duration_s = 120.0;
  config.step_s = 0.02;
  config.seed = 20260707;
  const auto trace = sim::run_scenario(config);

  // Summary statistics.
  const auto agg = trace.aggregate_series();
  const auto ccs = trace.cc_count_series();
  std::cout << "  throughput: mean " << common::TextTable::num(common::mean(agg), 0)
            << " Mbps, std " << common::TextTable::num(common::stddev(agg), 0)
            << ", peak " << common::TextTable::num(common::max_value(agg), 0) << "\n"
            << "  CC count:   mean " << common::TextTable::num(common::mean(ccs), 2)
            << ", max " << common::TextTable::num(common::max_value(ccs), 0) << "\n";

  // CA combination census over the drive.
  std::map<std::string, std::size_t> combos;
  for (const auto& s : trace.samples) {
    std::string combo;
    for (const auto& cc : s.ccs) {
      if (!cc.active) continue;
      if (!combo.empty()) combo += "+";
      combo += std::string(phy::band_info(cc.band).name) + "-" +
               static_cast<char>('a' + cc.channel_index);
    }
    if (!combo.empty()) ++combos[combo];
  }
  common::TextTable table("CA combinations observed along the route");
  table.set_header({"Combination", "Share(%)"});
  for (const auto& [combo, count] : combos)
    table.add_row({combo, common::TextTable::num(
                              100.0 * count / trace.samples.size(), 1)});
  std::cout << table;

  // RRC event ledger.
  std::cout << "\nRRC CA events:\n";
  for (const auto& s : trace.samples)
    for (const auto& e : s.events)
      std::cout << "  t=" << common::TextTable::num(e.time_s, 2) << "s  "
                << ran::rrc_event_name(e.type) << "\n";

  if (argc > 3) {
    sim::save_trace(trace, argv[3]);
    std::cout << "\nTrace exported to " << argv[3] << " ("
              << trace.samples.size() << " rows)\n";
  }
  return 0;
}
