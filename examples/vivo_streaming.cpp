// ViVo XR streaming over a 5G CA channel (paper §3.3 / §7): train
// Prism5G on a simulated campaign, then stream volumetric video over a
// fresh trace with four different bandwidth estimators and compare QoE.
#include <iostream>
#include <memory>

#include "apps/vivo.hpp"
#include "common/table.hpp"
#include "eval/pipeline.hpp"

int main() {
  using namespace ca5g;

  std::cout << "Building the training campaign (OpZ driving, 10 ms scale)...\n";
  eval::GenerationConfig gen;
  gen.traces = 4;
  gen.short_trace_duration_s = 40.0;
  gen.short_stride = 10;
  const eval::SubDatasetId id{ran::OperatorId::kOpZ, sim::Mobility::kDriving};
  const auto ds = eval::make_ml_dataset(id, eval::TimeScale::kShort, gen);
  common::Rng rng(1);
  const auto split = ds.random_split(0.5, 0.2, rng);

  std::cout << "Training Prism5G on " << split.train.size() << " windows...\n";
  predictors::TrainConfig tc = predictors::train_config_from_env();
  tc.epochs = std::min<std::size_t>(tc.epochs, 15);
  auto prism = std::make_shared<core::Prism5G>(tc);
  prism->fit(ds, split.train, split.val);

  // Fresh trace = a new XR session's channel.
  auto session_gen = gen;
  session_gen.seed = gen.seed + 555;
  session_gen.traces = 1;
  session_gen.short_trace_duration_s = 60.0;
  const auto trace =
      eval::generate_traces(id, eval::TimeScale::kShort, session_gen).front();

  apps::VivoConfig config;
  config.max_bitrate_mbps = 750.0;  // scaled-up ViVo for the CA channel

  traces::DatasetSpec spec;
  apps::IdealEstimator ideal;
  apps::HistoryMeanEstimator history(10);
  apps::ModelEstimator model(prism, spec, ds.cc_slots(), ds.tput_scale_mbps());

  const auto r_ideal = apps::run_vivo(trace, ideal, config);
  const auto r_history = apps::run_vivo(trace, history, config);
  const auto r_model = apps::run_vivo(trace, model, config);

  common::TextTable table("ViVo QoE over a 60 s XR session");
  table.set_header({"Estimator", "AvgQuality(1-6)", "AvgBitrate(Mbps)", "Stall(s)",
                    "StalledFrames"});
  auto add = [&](const char* name, const apps::VivoResult& r) {
    table.add_row({name, common::TextTable::num(r.avg_quality, 2),
                   common::TextTable::num(r.avg_quality_mbps, 0),
                   common::TextTable::num(r.stall_time_s, 2),
                   std::to_string(r.stalled_frames)});
  };
  add("Ideal (oracle)", r_ideal);
  add("History mean", r_history);
  add("Prism5G", r_model);
  std::cout << table;

  std::cout << "\nvs ideal: history quality drop "
            << common::TextTable::num(r_history.quality_drop_pct(r_ideal), 1)
            << "%, Prism5G quality drop "
            << common::TextTable::num(r_model.quality_drop_pct(r_ideal), 1) << "%\n";
  return 0;
}
